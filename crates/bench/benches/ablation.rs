//! Ablation benches for the design choices DESIGN.md §8 calls out:
//! index-backed vs scan joins, the pointer-shortcut term equality, and
//! semi-naive vs naive differentiation.

use chainsplit_engine::{naive_eval, seminaive_eval, BottomUpOptions};
use chainsplit_logic::{parse_program, Term};
use chainsplit_relation::{Database, Relation, Tuple};
use chainsplit_workloads::chain_edges;
use criterion::{criterion_group, criterion_main, Criterion};

fn wide_relation(rows: usize) -> Relation {
    let mut r = Relation::new(2);
    for i in 0..rows {
        r.insert(Tuple::new(vec![
            Term::Int((i % 100) as i64),
            Term::Int(i as i64),
        ]));
    }
    r
}

fn bench_index_vs_scan(c: &mut Criterion) {
    // `select` auto-indexes above a size threshold, so the scan baseline
    // is measured against the raw row iterator.
    let rel = wide_relation(10_000);
    let key = [Term::Int(42)];
    let mut group = c.benchmark_group("ablation_join");
    group.bench_function("full_scan", |b| {
        b.iter(|| {
            rel.rows()
                .iter()
                .filter(|row| row.get(0) == &key[0])
                .count()
        })
    });
    group.bench_function("select_lazy_indexed", |b| {
        b.iter(|| rel.select(&[0], &key).count())
    });
    group.finish();
}

fn bench_term_equality(c: &mut Criterion) {
    let shared = Term::int_list(0..512);
    let same = shared.clone(); // structure-shared: pointer shortcut fires
    let rebuilt = Term::int_list(0..512); // fresh spine: full walk
    let mut group = c.benchmark_group("ablation_term_eq");
    group.bench_function("shared_pointers", |b| b.iter(|| shared == same));
    group.bench_function("fresh_spines", |b| b.iter(|| shared == rebuilt));
    group.finish();
}

fn bench_seminaive_vs_naive(c: &mut Criterion) {
    let program = parse_program(
        "path(X, Y) :- edge(X, Y).
         path(X, Y) :- edge(X, Z), path(Z, Y).",
    )
    .unwrap();
    let (_, rules) = program.split_facts();
    let edb = Database::from_facts(chain_edges(64));
    let mut group = c.benchmark_group("ablation_differentiation");
    group.sample_size(10);
    group.bench_function("naive", |b| {
        b.iter(|| naive_eval(&rules, &edb, BottomUpOptions::default()).unwrap())
    });
    group.bench_function("seminaive", |b| {
        b.iter(|| seminaive_eval(&rules, &edb, BottomUpOptions::default()).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(20);
    targets = bench_index_vs_scan, bench_term_equality, bench_seminaive_vs_naive
}
criterion_main!(ablations);
