//! Criterion benches — one group per experiment (E1–E6), timing the same
//! configurations the `table_e*` binaries print. `cargo bench` regenerates
//! the wall-clock side of EXPERIMENTS.md.

use chainsplit_bench::{append_db, measure, merged_sg_db, scsg_db, sg_db, sorting_db, travel_db};
use chainsplit_core::Strategy;
use chainsplit_logic::Term;
use chainsplit_workloads::{endpoints, random_ints, FamilyConfig, FlightConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_e1_scsg_magic(c: &mut Criterion) {
    let cfg = FamilyConfig {
        countries: 2,
        people_per_country: 16,
        generations: 4,
    };
    let q = format!("scsg({}, Y)", chainsplit_workloads::query_person(cfg));
    let mut group = c.benchmark_group("e1_scsg_magic");
    group.bench_function("standard_magic", |b| {
        b.iter(|| {
            let mut db = scsg_db(cfg);
            measure(&mut db, &q, Strategy::Magic).unwrap()
        })
    });
    group.bench_function("chain_split_magic", |b| {
        b.iter(|| {
            let mut db = scsg_db(cfg);
            measure(&mut db, &q, Strategy::ChainSplitMagic).unwrap()
        })
    });
    group.finish();
}

fn bench_e2_merged(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_merged_vs_per_chain");
    group.bench_function("per_chain_magic", |b| {
        b.iter(|| {
            let cfg = FamilyConfig {
                countries: 1,
                people_per_country: 8,
                generations: 4,
            };
            let mut db = sg_db(cfg);
            measure(&mut db, "sg(g4_0_0, Y)", Strategy::Magic).unwrap()
        })
    });
    group.bench_function("merged_cross_product", |b| {
        b.iter(|| {
            let mut db = merged_sg_db(8, 4);
            measure(&mut db, "msg(Y)", Strategy::Auto).unwrap()
        })
    });
    group.finish();
}

fn bench_e3_append(c: &mut Criterion) {
    let w = Term::int_list(random_ints(64, 5));
    let q = format!("append(U, V, {w})");
    let mut group = c.benchmark_group("e3_append_ffb");
    group.bench_function("buffered_chain_split", |b| {
        b.iter(|| {
            let mut db = append_db();
            measure(&mut db, &q, Strategy::ChainSplit).unwrap()
        })
    });
    group.bench_function("top_down_sld", |b| {
        b.iter(|| {
            let mut db = append_db();
            measure(&mut db, &q, Strategy::TopDown).unwrap()
        })
    });
    group.finish();
}

fn bench_e4_travel(c: &mut Criterion) {
    let cfg = FlightConfig {
        airports: 12,
        extra_flights: 12,
        fare_min: 100,
        fare_max: 400,
        seed: 13,
    };
    let (from, to) = endpoints(cfg);
    let constrained = format!("travel(L, {from}, DT, {to}, AT, F), F <= 900");
    let unconstrained = format!("travel(L, {from}, DT, {to}, AT, F)");
    let mut group = c.benchmark_group("e4_travel_constraints");
    group.bench_function("push_constraint", |b| {
        b.iter(|| {
            let mut db = travel_db(cfg);
            measure(&mut db, &constrained, Strategy::ChainSplit).unwrap()
        })
    });
    group.bench_function("filter_at_end", |b| {
        b.iter(|| {
            let mut db = travel_db(cfg);
            measure(&mut db, &unconstrained, Strategy::ChainSplit).unwrap()
        })
    });
    group.finish();
}

fn bench_e5_isort(c: &mut Criterion) {
    let list = Term::int_list(random_ints(32, 21));
    let q = format!("isort({list}, Ys)");
    let mut group = c.benchmark_group("e5_isort");
    group.bench_function("nested_chain_split", |b| {
        b.iter(|| {
            let mut db = sorting_db();
            measure(&mut db, &q, Strategy::ChainSplit).unwrap()
        })
    });
    group.bench_function("top_down_sld", |b| {
        b.iter(|| {
            let mut db = sorting_db();
            measure(&mut db, &q, Strategy::TopDown).unwrap()
        })
    });
    group.finish();
}

fn bench_e6_qsort(c: &mut Criterion) {
    let list = Term::int_list(random_ints(32, 33));
    let q = format!("qsort({list}, Ys)");
    let mut group = c.benchmark_group("e6_qsort");
    group.bench_function("nonlinear_chain_split", |b| {
        b.iter(|| {
            let mut db = sorting_db();
            measure(&mut db, &q, Strategy::ChainSplit).unwrap()
        })
    });
    group.bench_function("top_down_sld", |b| {
        b.iter(|| {
            let mut db = sorting_db();
            measure(&mut db, &q, Strategy::TopDown).unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_e1_scsg_magic, bench_e2_merged, bench_e3_append,
              bench_e4_travel, bench_e5_isort, bench_e6_qsort
}
criterion_main!(benches);
