//! Hot-path microbenches for the frontier-at-a-time join executor
//! (DESIGN.md §6): probe-loop throughput isolated from the E-tables, so a
//! regression in `match_relation_frontier` or the copy-on-write `Subst`
//! shows up even when the table-level ordinal claims survive it.
//!
//! Three shapes:
//! - **skewed_keys**: a large frontier whose probe keys repeat heavily
//!   (the magic/chain-split shape) — where probe memoization pays;
//! - **distinct_keys**: every substitution probes its own key — the
//!   memo's worst case, bounding its overhead;
//! - **wide_tuples**: few probes, wide tuples with many free columns —
//!   dominated by per-tuple unification and substitution forking.
//!
//! Each case also runs the legacy per-substitution loop
//! (`match_relation` over the frontier) as the comparison baseline; the
//! acceptance bar is the frontier executor at >= 2x on `skewed_keys`.

use chainsplit_engine::{match_relation, match_relation_frontier, Counters};
use chainsplit_logic::{parse_query, Atom, Subst, Term, Var};
use chainsplit_relation::{Relation, Tuple};
use criterion::{criterion_group, criterion_main, Criterion};

/// edge(K, V): `keys` distinct K values, `fanout` V children each.
fn edge_relation(keys: usize, fanout: usize) -> Relation {
    let mut r = Relation::new(2);
    for k in 0..keys {
        for v in 0..fanout {
            r.insert(Tuple::new(vec![
                Term::Int(k as i64),
                Term::Int((k * fanout + v) as i64),
            ]));
        }
    }
    r
}

/// A groundness-uniform frontier binding X to `key(i)` for i in 0..n.
fn frontier_on_x(n: usize, key: impl Fn(usize) -> i64) -> Vec<Subst> {
    (0..n)
        .map(|i| {
            let mut s = Subst::new();
            s.bind(Var::named("X"), Term::Int(key(i)));
            s.bind(Var::named("Tag"), Term::Int(i as i64));
            s
        })
        .collect()
}

fn bench_pair(
    c: &mut Criterion,
    group_name: &str,
    rel: &Relation,
    atom: &Atom,
    frontier: &[Subst],
) {
    let mut group = c.benchmark_group(group_name);
    group.bench_function("frontier", |b| {
        b.iter(|| {
            let mut counters = Counters::default();
            let mut out = Vec::new();
            match_relation_frontier(rel, atom, frontier, &mut counters, &mut out);
            out.len()
        })
    });
    group.bench_function("legacy_per_subst", |b| {
        b.iter(|| {
            let mut counters = Counters::default();
            let mut out = Vec::new();
            for s in frontier {
                match_relation(rel, atom, s, &mut counters, &mut out);
            }
            out.len()
        })
    });
    group.finish();
}

fn bench_skewed_keys(c: &mut Criterion) {
    // 4096 substitutions funneled onto 16 hot keys: the shape magic and
    // chain-split frontiers take, where one level fans out over few
    // distinct bindings. The relation sits below LAZY_INDEX_THRESHOLD —
    // the typical size of a hand-written EDB predicate — so every
    // physical probe is a key scan, and the memo collapses 4096 of them
    // to 16.
    let rel = edge_relation(31, 1);
    assert!(rel.len() < chainsplit_relation::LAZY_INDEX_THRESHOLD);
    let atom = parse_query("edge(X, Y)").unwrap();
    let frontier = frontier_on_x(4096, |i| (i % 16) as i64);
    bench_pair(c, "join_skewed_keys", &rel, &atom, &frontier);
}

fn bench_skewed_keys_indexed(c: &mut Criterion) {
    // Same key skew over an indexed relation: the memo now only saves
    // the per-probe select overhead (key vectors, hash lookup, trace
    // span), not scan work — the modest-win end of the spectrum.
    let rel = edge_relation(64, 8);
    let atom = parse_query("edge(X, Y)").unwrap();
    let frontier = frontier_on_x(4096, |i| (i % 16) as i64);
    bench_pair(c, "join_skewed_keys_indexed", &rel, &atom, &frontier);
}

fn bench_distinct_keys(c: &mut Criterion) {
    // Every substitution probes a different key: memoization never hits,
    // so this bounds its bookkeeping overhead against the legacy loop.
    let rel = edge_relation(2048, 4);
    let atom = parse_query("edge(X, Y)").unwrap();
    let frontier = frontier_on_x(2048, |i| i as i64);
    bench_pair(c, "join_distinct_keys", &rel, &atom, &frontier);
}

fn bench_wide_tuples(c: &mut Criterion) {
    // wide(X, C1..C6): one bound column, six free — per-tuple cost is all
    // unification and substitution forking, the COW Subst's hot path.
    let mut rel = Relation::new(7);
    for k in 0..64i64 {
        for row in 0..8i64 {
            let mut fields = vec![Term::Int(k)];
            fields.extend((0..6).map(|c| Term::Int(row * 10 + c)));
            rel.insert(Tuple::new(fields));
        }
    }
    let atom = parse_query("wide(X, A, B, C, D, E, F)").unwrap();
    let frontier = frontier_on_x(512, |i| (i % 64) as i64);
    bench_pair(c, "join_wide_tuples", &rel, &atom, &frontier);
}

criterion_group! {
    name = joins;
    config = Criterion::default().sample_size(20);
    targets = bench_skewed_keys, bench_skewed_keys_indexed, bench_distinct_keys, bench_wide_tuples
}
criterion_main!(joins);
