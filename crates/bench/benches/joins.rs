//! Planner microbench (DESIGN.md §14): the skewed star join of
//! experiment E9, planner-on vs planner-off, timed end to end through
//! `DeductiveDb` so the measurement includes planning, provisioning and
//! the plan cache — not just the join loop. The table-level ordinal
//! claim (planner-on wins `probed` everywhere) lives in `table_e9`; this
//! bench watches the wall-clock side of the same gap and the planner's
//! own overhead on a workload where it cannot help (the plan equals the
//! syntactic order).

use chainsplit_bench::star_db;
use chainsplit_core::{DeductiveDb, Strategy};
use criterion::{criterion_group, criterion_main, Criterion};

const HUBS: usize = 2;
const SPOKES: usize = 32;
const FANOUT: usize = 4;

fn run(db: &mut DeductiveDb) -> usize {
    db.query_with("q(A, B, C, H)", Strategy::SemiNaive)
        .expect("star join evaluates")
        .answers
        .len()
}

fn bench_star_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner_star_join");
    group.bench_function("planner_on", |b| {
        let mut db = star_db(HUBS, SPOKES, FANOUT);
        let _ = db.system();
        b.iter(|| run(&mut db))
    });
    group.bench_function("planner_off", |b| {
        let mut db = star_db(HUBS, SPOKES, FANOUT);
        db.set_plan_enabled(false);
        let _ = db.system();
        b.iter(|| run(&mut db))
    });
    group.finish();
}

fn bench_planner_overhead(c: &mut Criterion) {
    // Transitive closure on a plain chain: every stored atom is the same
    // size, so the planned order matches the syntactic one and the
    // difference is pure planner bookkeeping (one cache hit per body per
    // round after the first query).
    let mut group = c.benchmark_group("planner_overhead_chain_tc");
    let build = || {
        let mut db = DeductiveDb::new();
        db.load("path(X, Y) :- edge(X, Y).\npath(X, Y) :- edge(X, Z), path(Z, Y).")
            .unwrap();
        for i in 0..64 {
            db.load(&format!("edge(n{i}, n{}).", i + 1)).unwrap();
        }
        db
    };
    group.bench_function("planner_on", |b| {
        let mut db = build();
        let _ = db.system();
        b.iter(|| {
            db.query_with("path(n0, Y)", Strategy::SemiNaive)
                .unwrap()
                .answers
                .len()
        })
    });
    group.bench_function("planner_off", |b| {
        let mut db = build();
        db.set_plan_enabled(false);
        let _ = db.system();
        b.iter(|| {
            db.query_with("path(n0, Y)", Strategy::SemiNaive)
                .unwrap()
                .answers
                .len()
        })
    });
    group.finish();
}

criterion_group! {
    name = joins;
    config = Criterion::default().sample_size(20);
    targets = bench_star_join, bench_planner_overhead
}
criterion_main!(joins);
