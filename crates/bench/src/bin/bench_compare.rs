//! Regression gate over two recorded benchmark runs.
//!
//! ```text
//! bench_compare OLD.json NEW.json [--threshold 0.25] [--skip-wall] [--skip-counters]
//! ```
//!
//! Exits nonzero when the new run breaks an ordinal claim of the old one
//! (a winner flips, a crossover moves), changes a machine-independent
//! counter, or regresses wall-clock beyond the threshold. CI compares a
//! fresh `table_e1` run against the committed baseline with `--skip-wall`,
//! because the baseline was recorded on different hardware but the
//! counters are exact.

use chainsplit_bench::report::{compare, summarize, BenchReport, CompareOptions};
use std::process::ExitCode;

const USAGE: &str =
    "usage: bench_compare OLD.json NEW.json [--threshold FRACTION] [--skip-wall] [--skip-counters]";

fn main() -> ExitCode {
    let mut paths: Vec<String> = Vec::new();
    let mut opts = CompareOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => {
                let Some(v) = args.next().and_then(|s| s.parse::<f64>().ok()) else {
                    eprintln!("bench_compare: --threshold needs a number\n{USAGE}");
                    return ExitCode::from(2);
                };
                opts.wall_threshold = v;
            }
            "--skip-wall" => opts.check_wall = false,
            "--skip-counters" => opts.check_counters = false,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("bench_compare: unknown flag `{arg}`\n{USAGE}");
                return ExitCode::from(2);
            }
            _ => paths.push(arg),
        }
    }
    if paths.len() != 2 {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let load =
        |p: &str| -> Result<BenchReport, String> { BenchReport::load(std::path::Path::new(p)) };
    let (old, new) = match (load(&paths[0]), load(&paths[1])) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_compare: {e}");
            return ExitCode::from(2);
        }
    };

    let failures = compare(&old, &new, &opts);
    if failures.is_empty() {
        println!("bench_compare: OK — {}", summarize(&new));
        ExitCode::SUCCESS
    } else {
        println!(
            "bench_compare: {} failure(s) comparing {} -> {}",
            failures.len(),
            paths[0],
            paths[1]
        );
        for f in &failures {
            println!("  FAIL {f}");
        }
        ExitCode::FAILURE
    }
}
