//! E1 — Efficiency-based chain-split magic sets on `scsg` (Example 1.2 /
//! Algorithm 3.1).
//!
//! Sweep the join expansion ratio of `same_country` (people per country);
//! compare standard magic sets (binding crosses `same_country`) against
//! chain-split magic sets. Paper claim: the chain-split plan "is more
//! efficient than the method which relies on blind binding passing".
//!
//! A second table sweeps the worker thread count (1/2/4/8) on the largest
//! configuration: wall-clock and speedup move with the host's cores, the
//! work counters must not move at all (DESIGN.md §5).
//!
//! `table_e1 [--threads N]` sets the thread count for the main table
//! (default: `CHAINSPLIT_THREADS` or 1).

use chainsplit_bench::{header, measure, row, scsg_db, BenchReport};
use chainsplit_core::Strategy;
use chainsplit_par::env_threads;
use chainsplit_workloads::{query_person, FamilyConfig};

fn arg_threads() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--threads" {
            if let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) {
                return n.max(1);
            }
            eprintln!("usage: table_e1 [--threads N]");
            std::process::exit(2);
        }
    }
    env_threads()
}

fn main() {
    let threads = arg_threads();
    let mut report = BenchReport::new("e1");
    println!("# E1: scsg — standard magic vs chain-split magic (Algorithm 3.1)");
    println!("# countries=2, generations=4; expansion ratio of same_country = people/country");
    println!("# threads={threads}\n");
    header(&[
        "people/country",
        "EDB facts",
        "method",
        "answers",
        "magic facts",
        "derived",
        "probed",
        "matched",
        "rounds",
        "wall ms",
    ]);
    for people in [4usize, 8, 16, 32, 48] {
        let cfg = FamilyConfig {
            countries: 2,
            people_per_country: people,
            generations: 4,
        };
        let facts = chainsplit_workloads::fact_count(cfg);
        let q = format!("scsg({}, Y)", query_person(cfg));
        for (name, strat) in [
            ("standard magic", Strategy::Magic),
            ("supplementary magic", Strategy::SupplementaryMagic),
            ("chain-split magic", Strategy::ChainSplitMagic),
        ] {
            let mut db = scsg_db(cfg);
            db.set_threads(threads);
            let r = measure(&mut db, &q, strat).expect("scsg evaluates");
            report.push_run(
                &format!("people={people}"),
                people as f64,
                name,
                &format!("{strat:?}"),
                &r,
            );
            row(&[
                people.to_string(),
                facts.to_string(),
                name.to_string(),
                r.answers.to_string(),
                r.magic_facts.to_string(),
                r.derived.to_string(),
                r.probed.to_string(),
                r.matched.to_string(),
                r.rounds.to_string(),
                format!("{:.2}", r.wall_ms),
            ]);
        }
    }

    // Threads sweep: the parallel semi-naive fixpoint under chain-split
    // magic on the largest configuration. Speedup is wall-clock relative
    // to 1 thread (host-dependent); probed/matched are asserted invariant.
    let cfg = FamilyConfig {
        countries: 2,
        people_per_country: 48,
        generations: 4,
    };
    let q = format!("scsg({}, Y)", query_person(cfg));
    println!("\n# threads sweep: chain-split magic, people/country=48");
    header(&["threads", "wall ms", "speedup", "probed", "matched"]);
    let mut base: Option<(f64, usize, usize)> = None;
    for t in [1usize, 2, 4, 8] {
        let mut db = scsg_db(cfg);
        db.set_threads(t);
        let r = measure(&mut db, &q, Strategy::ChainSplitMagic).expect("scsg evaluates");
        let (base_wall, base_probed, base_matched) =
            *base.get_or_insert((r.wall_ms, r.probed, r.matched));
        assert_eq!(
            (r.probed, r.matched),
            (base_probed, base_matched),
            "work counters must be thread-invariant"
        );
        // param_value offset sorts the sweep after the main table's
        // params, keeping the winner/crossover sequence readable.
        report.push_run(
            &format!("threads={t}"),
            10_000.0 + t as f64,
            "chain-split magic (threads sweep)",
            "ChainSplitMagic",
            &r,
        );
        row(&[
            t.to_string(),
            format!("{:.2}", r.wall_ms),
            format!("{:.2}x", base_wall / r.wall_ms.max(f64::MIN_POSITIVE)),
            r.probed.to_string(),
            r.matched.to_string(),
        ]);
    }
    report.write_default().expect("write BENCH_e1.json");
}
