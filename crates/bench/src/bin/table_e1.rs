//! E1 — Efficiency-based chain-split magic sets on `scsg` (Example 1.2 /
//! Algorithm 3.1).
//!
//! Sweep the join expansion ratio of `same_country` (people per country);
//! compare standard magic sets (binding crosses `same_country`) against
//! chain-split magic sets. Paper claim: the chain-split plan "is more
//! efficient than the method which relies on blind binding passing".

use chainsplit_bench::{header, measure, row, scsg_db, BenchReport};
use chainsplit_core::Strategy;
use chainsplit_workloads::{query_person, FamilyConfig};

fn main() {
    let mut report = BenchReport::new("e1");
    println!("# E1: scsg — standard magic vs chain-split magic (Algorithm 3.1)");
    println!("# countries=2, generations=4; expansion ratio of same_country = people/country\n");
    header(&[
        "people/country",
        "EDB facts",
        "method",
        "answers",
        "magic facts",
        "derived",
        "probed",
        "matched",
        "rounds",
        "wall ms",
    ]);
    for people in [4usize, 8, 16, 32, 48] {
        let cfg = FamilyConfig {
            countries: 2,
            people_per_country: people,
            generations: 4,
        };
        let facts = chainsplit_workloads::fact_count(cfg);
        let q = format!("scsg({}, Y)", query_person(cfg));
        for (name, strat) in [
            ("standard magic", Strategy::Magic),
            ("supplementary magic", Strategy::SupplementaryMagic),
            ("chain-split magic", Strategy::ChainSplitMagic),
        ] {
            let mut db = scsg_db(cfg);
            let r = measure(&mut db, &q, strat).expect("scsg evaluates");
            report.push_run(
                &format!("people={people}"),
                people as f64,
                name,
                &format!("{strat:?}"),
                &r,
            );
            row(&[
                people.to_string(),
                facts.to_string(),
                name.to_string(),
                r.answers.to_string(),
                r.magic_facts.to_string(),
                r.derived.to_string(),
                r.probed.to_string(),
                r.matched.to_string(),
                r.rounds.to_string(),
                format!("{:.2}", r.wall_ms),
            ]);
        }
    }
    report.write_default().expect("write BENCH_e1.json");
}
