//! E2 — Merging multiple chains into one path vs per-chain evaluation
//! (§1.1's claim, after \[11, 14\]).
//!
//! `sg` is a 2-chain recursion. The merged variant crams both chains into
//! one path over the *cross product* of the parent relations (`step`
//! pairs); the paper calls iterating over such cross products "terribly
//! inefficient". We sweep the lineage count and compare the merged
//! single-chain evaluation against per-chain magic evaluation of the
//! original program.

use chainsplit_bench::{header, measure, merged_sg_db, row, sg_db, BenchReport};
use chainsplit_core::Strategy;
use chainsplit_workloads::FamilyConfig;

fn main() {
    let mut report = BenchReport::new("e2");
    println!("# E2: sg — merged cross-product chain vs per-chain (magic) evaluation");
    println!("# generations=4; merged step relation is quadratic in lineages\n");
    header(&[
        "lineages",
        "method",
        "EDB facts",
        "answers",
        "derived",
        "probed",
        "matched",
        "wall ms",
    ]);
    for people in [2usize, 4, 8, 16, 24] {
        let generations = 4;

        // Per-chain: ordinary sg with magic sets.
        let cfg = FamilyConfig {
            countries: 1,
            people_per_country: people,
            generations,
        };
        let mut db = sg_db(cfg);
        let q = format!("sg(g{generations}_0_0, Y)");
        let r = measure(&mut db, &q, Strategy::Magic).expect("sg magic evaluates");
        report.push_run(
            &format!("lineages={people}"),
            people as f64,
            "per-chain (magic)",
            "Magic",
            &r,
        );
        let edb: usize = {
            let sys = db.system();
            sys.edb.total_rows()
        };
        row(&[
            people.to_string(),
            "per-chain (magic)".to_string(),
            edb.to_string(),
            r.answers.to_string(),
            r.derived.to_string(),
            r.probed.to_string(),
            r.matched.to_string(),
            format!("{:.2}", r.wall_ms),
        ]);

        // Merged: single chain over the pair cross product.
        let mut db = merged_sg_db(people, generations);
        let q = "msg(Y)".to_string();
        let r = measure(&mut db, &q, Strategy::Auto).expect("merged sg evaluates");
        report.push_run(
            &format!("lineages={people}"),
            people as f64,
            "merged cross-product",
            "Auto",
            &r,
        );
        let edb: usize = {
            let sys = db.system();
            sys.edb.total_rows()
        };
        row(&[
            people.to_string(),
            "merged cross-product".to_string(),
            edb.to_string(),
            r.answers.to_string(),
            r.derived.to_string(),
            r.probed.to_string(),
            r.matched.to_string(),
            format!("{:.2}", r.wall_ms),
        ]);
    }
    report.write_default().expect("write BENCH_e2.json");
}
