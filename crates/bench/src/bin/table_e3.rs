//! E3 — Finiteness-based chain-split on `append^ffb` (§2.2, Algorithm 3.2).
//!
//! `?- append(U, V, W)` with `W` bound: the compiled chain contains an
//! infinitely evaluable `cons` under this adornment, so the chain *must*
//! split; buffered evaluation decomposes `W` upward (buffering each
//! element) and reconstructs `U` downward. Baselines: top-down SLD (the
//! Prolog evaluation) and bottom-up semi-naive, which cannot evaluate the
//! functional recursion at all (reported DNF).
//!
//! A second table sweeps the worker thread count (1/2/4/8) on the largest
//! list for the buffered chain-split up-sweep: wall-clock moves with the
//! host, the work counters must not move at all (DESIGN.md §5).
//!
//! `table_e3 [--threads N]` sets the thread count for the main table
//! (default: `CHAINSPLIT_THREADS` or 1).

use chainsplit_bench::{append_db, header, measure, row, BenchReport};
use chainsplit_core::Strategy;
use chainsplit_logic::Term;
use chainsplit_par::env_threads;
use chainsplit_workloads::random_ints;

fn arg_threads() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--threads" {
            if let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) {
                return n.max(1);
            }
            eprintln!("usage: table_e3 [--threads N]");
            std::process::exit(2);
        }
    }
    env_threads()
}

fn main() {
    let threads = arg_threads();
    let mut report = BenchReport::new("e3");
    println!("# E3: append(U, V, W^b) — buffered chain-split vs baselines (Algorithm 3.2)");
    println!("# |W| elements; answers = |W|+1 splits");
    println!("# threads={threads}\n");
    header(&[
        "|W|", "method", "answers", "derived", "buffered", "probed", "wall ms",
    ]);
    for len in [16usize, 64, 256, 512] {
        let w = Term::int_list(random_ints(len, 5));
        let q = format!("append(U, V, {w})");
        for (name, strat) in [
            ("buffered chain-split", Strategy::ChainSplit),
            ("top-down SLD", Strategy::TopDown),
            ("tabled", Strategy::Tabled),
            ("semi-naive bottom-up", Strategy::SemiNaive),
        ] {
            // The tabled baseline re-derives quadratically on this
            // workload; keep its rows to the small sizes.
            if strat == Strategy::Tabled && len > 64 {
                continue;
            }
            let mut db = append_db();
            db.set_threads(threads);
            let param = format!("|W|={len}");
            let strategy = format!("{strat:?}");
            match measure(&mut db, &q, strat) {
                Ok(r) => {
                    report.push_run(&param, len as f64, name, &strategy, &r);
                    row(&[
                        len.to_string(),
                        name.to_string(),
                        r.answers.to_string(),
                        r.derived.to_string(),
                        r.buffered_peak.to_string(),
                        r.probed.to_string(),
                        format!("{:.2}", r.wall_ms),
                    ]);
                }
                Err(e) => {
                    report.push_dnf(&param, len as f64, name, &strategy);
                    row(&[
                        len.to_string(),
                        name.to_string(),
                        "DNF".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        format!("({e})"),
                    ]);
                }
            }
        }
    }

    // Threads sweep: the buffered up-sweep partitions each level's
    // frontier across workers. Speedup is wall-clock relative to 1 thread
    // (host-dependent); probed/matched are asserted invariant.
    let len = 512usize;
    let w = Term::int_list(random_ints(len, 5));
    let q = format!("append(U, V, {w})");
    println!("\n# threads sweep: buffered chain-split, |W|=512");
    header(&["threads", "wall ms", "speedup", "probed", "matched"]);
    let mut base: Option<(f64, usize, usize)> = None;
    for t in [1usize, 2, 4, 8] {
        let mut db = append_db();
        db.set_threads(t);
        let r = measure(&mut db, &q, Strategy::ChainSplit).expect("append evaluates");
        let (base_wall, base_probed, base_matched) =
            *base.get_or_insert((r.wall_ms, r.probed, r.matched));
        assert_eq!(
            (r.probed, r.matched),
            (base_probed, base_matched),
            "work counters must be thread-invariant"
        );
        // param_value offset sorts the sweep after the main table's
        // params, keeping the winner/crossover sequence readable.
        report.push_run(
            &format!("threads={t}"),
            10_000.0 + t as f64,
            "buffered chain-split (threads sweep)",
            "ChainSplit",
            &r,
        );
        row(&[
            t.to_string(),
            format!("{:.2}", r.wall_ms),
            format!("{:.2}x", base_wall / r.wall_ms.max(f64::MIN_POSITIVE)),
            r.probed.to_string(),
            r.matched.to_string(),
        ]);
    }
    report.write_default().expect("write BENCH_e3.json");
}
