//! E3 — Finiteness-based chain-split on `append^ffb` (§2.2, Algorithm 3.2).
//!
//! `?- append(U, V, W)` with `W` bound: the compiled chain contains an
//! infinitely evaluable `cons` under this adornment, so the chain *must*
//! split; buffered evaluation decomposes `W` upward (buffering each
//! element) and reconstructs `U` downward. Baselines: top-down SLD (the
//! Prolog evaluation) and bottom-up semi-naive, which cannot evaluate the
//! functional recursion at all (reported DNF).

use chainsplit_bench::{append_db, header, measure, row, BenchReport};
use chainsplit_core::Strategy;
use chainsplit_logic::Term;
use chainsplit_workloads::random_ints;

fn main() {
    let mut report = BenchReport::new("e3");
    println!("# E3: append(U, V, W^b) — buffered chain-split vs baselines (Algorithm 3.2)");
    println!("# |W| elements; answers = |W|+1 splits\n");
    header(&[
        "|W|", "method", "answers", "derived", "buffered", "probed", "wall ms",
    ]);
    for len in [16usize, 64, 256, 512] {
        let w = Term::int_list(random_ints(len, 5));
        let q = format!("append(U, V, {w})");
        for (name, strat) in [
            ("buffered chain-split", Strategy::ChainSplit),
            ("top-down SLD", Strategy::TopDown),
            ("tabled", Strategy::Tabled),
            ("semi-naive bottom-up", Strategy::SemiNaive),
        ] {
            // The tabled baseline re-derives quadratically on this
            // workload; keep its rows to the small sizes.
            if strat == Strategy::Tabled && len > 64 {
                continue;
            }
            let mut db = append_db();
            let param = format!("|W|={len}");
            let strategy = format!("{strat:?}");
            match measure(&mut db, &q, strat) {
                Ok(r) => {
                    report.push_run(&param, len as f64, name, &strategy, &r);
                    row(&[
                        len.to_string(),
                        name.to_string(),
                        r.answers.to_string(),
                        r.derived.to_string(),
                        r.buffered_peak.to_string(),
                        r.probed.to_string(),
                        format!("{:.2}", r.wall_ms),
                    ]);
                }
                Err(e) => {
                    report.push_dnf(&param, len as f64, name, &strategy);
                    row(&[
                        len.to_string(),
                        name.to_string(),
                        "DNF".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        format!("({e})"),
                    ]);
                }
            }
        }
    }
    report.write_default().expect("write BENCH_e3.json");
}
