//! E4 — Chain-split partial evaluation with constraint pushing on `travel`
//! (§3.3, Algorithm 3.3).
//!
//! Sweep the network size; compare pushing the fare budget into the chain
//! (partial sums prune the up sweep) against evaluating everything and
//! filtering at the end, and against top-down SLD with a final filter.

use chainsplit_bench::{header, measure, row, travel_db, BenchReport};
use chainsplit_core::Strategy;
use chainsplit_workloads::{endpoints, FlightConfig};

fn main() {
    let mut report = BenchReport::new("e4");
    println!("# E4: travel with fare budget — constraint pushing vs filter-at-end (Algorithm 3.3)");
    println!("# fares 100-400 per hop, budget 900: routes over ~3 hops are hopeless\n");
    header(&[
        "airports", "method", "answers", "buffered", "probed", "wall ms",
    ]);
    for airports in [8usize, 12, 16, 24] {
        let cfg = FlightConfig {
            airports,
            extra_flights: airports,
            fare_min: 100,
            fare_max: 400,
            seed: 13,
        };
        let (from, to) = endpoints(cfg);
        let budget = 900;
        let constrained = format!("travel(L, {from}, DT, {to}, AT, F), F <= {budget}");
        let unconstrained = format!("travel(L, {from}, DT, {to}, AT, F)");

        // Pushed: Auto evaluates with the guard pruning the up sweep.
        let mut db = travel_db(cfg);
        let pushed = measure(&mut db, &constrained, Strategy::ChainSplit).expect("pushed run");
        let param = format!("airports={airports}");
        report.push_run(
            &param,
            airports as f64,
            "push constraint (3.3)",
            "ChainSplit",
            &pushed,
        );
        row(&[
            airports.to_string(),
            "push constraint (3.3)".to_string(),
            pushed.answers.to_string(),
            pushed.buffered_peak.to_string(),
            pushed.probed.to_string(),
            format!("{:.2}", pushed.wall_ms),
        ]);

        // Filter at end: full enumeration, then count the survivors.
        let mut db = travel_db(cfg);
        let full = measure(&mut db, &unconstrained, Strategy::ChainSplit).expect("full run");
        report.push_run(
            &param,
            airports as f64,
            "filter at end",
            "ChainSplit",
            &full,
        );
        row(&[
            airports.to_string(),
            "filter at end".to_string(),
            format!("{} (of {})", pushed.answers, full.answers),
            full.buffered_peak.to_string(),
            full.probed.to_string(),
            format!("{:.2}", full.wall_ms),
        ]);

        // Top-down baseline (full enumeration + filter).
        let mut db = travel_db(cfg);
        match measure(&mut db, &unconstrained, Strategy::TopDown) {
            Ok(td) => {
                report.push_run(&param, airports as f64, "top-down SLD", "TopDown", &td);
                row(&[
                    airports.to_string(),
                    "top-down SLD".to_string(),
                    format!("{} (of {})", pushed.answers, td.answers),
                    "-".to_string(),
                    td.probed.to_string(),
                    format!("{:.2}", td.wall_ms),
                ]);
            }
            Err(e) => {
                report.push_dnf(&param, airports as f64, "top-down SLD", "TopDown");
                row(&[
                    airports.to_string(),
                    "top-down SLD".to_string(),
                    "DNF".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    format!("({e})"),
                ]);
            }
        }
    }
    report.write_default().expect("write BENCH_e4.json");
}
