//! E5 — Nested linear recursion: `isort` (§4.1).
//!
//! Chain-split evaluates the outer `isort` chain (buffering each list
//! head) and dispatches the inner `insert^bbf` recursion to its own
//! chain-split plan. Baseline: top-down SLD on the original program.

use chainsplit_bench::{header, measure, row, sorting_db, BenchReport};
use chainsplit_core::Strategy;
use chainsplit_logic::Term;
use chainsplit_workloads::{descending, random_ints};

fn main() {
    let mut report = BenchReport::new("e5");
    println!("# E5: isort — nested chain-split vs top-down SLD (§4.1)");
    println!("# random lists (seeded) and descending lists (insert's easy case)\n");
    header(&["len", "shape", "method", "derived", "probed", "wall ms"]);
    for len in [8usize, 32, 64, 128] {
        for (shape, list) in [
            ("random", Term::int_list(random_ints(len, 21))),
            ("descending", descending(len)),
        ] {
            let q = format!("isort({list}, Ys)");
            for (name, strat) in [
                ("nested chain-split", Strategy::ChainSplit),
                ("top-down SLD", Strategy::TopDown),
            ] {
                let mut db = sorting_db();
                let r = measure(&mut db, &q, strat).expect("isort evaluates");
                assert_eq!(r.answers, 1);
                report.push_run(
                    &format!("len={len} {shape}"),
                    len as f64,
                    name,
                    &format!("{strat:?}"),
                    &r,
                );
                row(&[
                    len.to_string(),
                    shape.to_string(),
                    name.to_string(),
                    r.derived.to_string(),
                    r.probed.to_string(),
                    format!("{:.2}", r.wall_ms),
                ]);
            }
        }
    }
    report.write_default().expect("write BENCH_e5.json");
}
