//! E6 — Nonlinear recursion: `qsort` (§4.2).
//!
//! The nonlinear rule is evaluated by mode-driven goal-directed resolution
//! with chain-split scheduling; the embedded `append` runs under its own
//! buffered chain-split plan. Baseline: top-down SLD.

use chainsplit_bench::{header, measure, row, sorting_db, BenchReport};
use chainsplit_core::Strategy;
use chainsplit_logic::Term;
use chainsplit_workloads::random_ints;

fn main() {
    let mut report = BenchReport::new("e6");
    println!("# E6: qsort — nonlinear chain-split vs top-down SLD (§4.2)\n");
    header(&["len", "method", "derived", "probed", "wall ms"]);
    for len in [8usize, 32, 64, 128] {
        let list = Term::int_list(random_ints(len, 33));
        let q = format!("qsort({list}, Ys)");
        for (name, strat) in [
            ("nonlinear chain-split", Strategy::ChainSplit),
            ("top-down SLD", Strategy::TopDown),
        ] {
            let mut db = sorting_db();
            let r = measure(&mut db, &q, strat).expect("qsort evaluates");
            assert_eq!(r.answers, 1);
            report.push_run(
                &format!("len={len}"),
                len as f64,
                name,
                &format!("{strat:?}"),
                &r,
            );
            row(&[
                len.to_string(),
                name.to_string(),
                r.derived.to_string(),
                r.probed.to_string(),
                format!("{:.2}", r.wall_ms),
            ]);
        }
    }
    report.write_default().expect("write BENCH_e6.json");
}
