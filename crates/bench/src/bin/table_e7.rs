//! E7 — Threshold ablation for the efficiency-based split decision (§2.1).
//!
//! Sweep the join expansion ratio of `same_country` across the cost
//! model's thresholds and compare three planners: always-follow (standard
//! magic), always-split (forced DelayPreds), and the threshold-driven
//! decision (Algorithm 3.1). The claim under test: the quantitative rule
//! tracks the better of the two forced plans on both sides of the
//! crossover.

use chainsplit_bench::{header, row, run_from_magic, scsg_system, time_ms, BenchReport};
use chainsplit_core::{chain_split_magic, CostModel};
use chainsplit_engine::{magic_eval, BottomUpOptions, DelayPreds, FullSip};
use chainsplit_logic::{parse_query, Pred};
use chainsplit_workloads::{query_person, FamilyConfig};
use std::collections::HashSet;

fn main() {
    let mut report = BenchReport::new("e7");
    println!("# E7: scsg threshold ablation — follow vs split vs cost-model decision");
    println!(
        "# expansion ratio of same_country = people/country; thresholds: follow < 2, split > 16\n"
    );
    header(&[
        "expansion",
        "planner",
        "answers",
        "magic facts",
        "probed",
        "matched",
        "rounds",
        "wall ms",
        "decision",
    ]);
    for people in [1usize, 2, 4, 8, 16, 32] {
        let cfg = FamilyConfig {
            countries: 2,
            people_per_country: people,
            generations: 4,
        };
        let sys = scsg_system(cfg);
        let q = parse_query(&format!("scsg({}, Y)", query_person(cfg))).unwrap();
        let model = CostModel::default();
        let opts = BottomUpOptions::default();
        let weak = model.weak_linkages(&sys, &q);
        let decision = if weak.is_empty() { "follow" } else { "split" };

        let mut runs: Vec<(&str, _, f64, &str)> = Vec::new();
        let (follow, t_follow) = time_ms(|| {
            magic_eval(&sys.rectified.rules, &sys.edb, &q, &FullSip, opts.clone()).unwrap()
        });
        runs.push(("forced follow", follow, t_follow, ""));
        let forced: HashSet<Pred> = [Pred::new("same_country", 2)].into();
        let (split, t_split) = time_ms(|| {
            magic_eval(
                &sys.rectified.rules,
                &sys.edb,
                &q,
                &DelayPreds(forced.clone()),
                opts.clone(),
            )
            .unwrap()
        });
        runs.push(("forced split", split, t_split, ""));
        let (auto, t_auto) = time_ms(|| chain_split_magic(&sys, &q, &model, opts.clone()).unwrap());
        runs.push(("cost model (3.1)", auto, t_auto, decision));

        for (name, r, wall, note) in runs {
            report.push_run(
                &format!("expansion={people}"),
                people as f64,
                name,
                if note.is_empty() { name } else { note },
                &run_from_magic(&r, wall, opts.threads),
            );
            row(&[
                people.to_string(),
                name.to_string(),
                r.answers.len().to_string(),
                r.counters.magic_facts.to_string(),
                r.counters.probed.to_string(),
                r.counters.matched.to_string(),
                r.rounds.len().to_string(),
                format!("{wall:.2}"),
                note.to_string(),
            ]);
        }
    }
    report.write_default().expect("write BENCH_e7.json");
}
