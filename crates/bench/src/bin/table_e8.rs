//! E8 — Repeated-query sessions through the answer cache (DESIGN.md §11).
//!
//! A session poses the same `scsg` query `repeats` times against an
//! unchanged database. Cache-off re-evaluates from scratch every time, so
//! its work counters grow linearly in `repeats`; cache-on pays the full
//! first evaluation and answers every repeat from the epoch-validated
//! answer cache with zero new probed/matched work. The claim under test:
//! the cached session's total work is *constant* in `repeats` — the
//! crossover sits at the second repetition and the hit rate is
//! `(repeats - 1) / repeats`.
//!
//! Counters are summed across the session (`buffered_peak` is a max), so
//! every row is the machine-independent cost of the whole session, and
//! the `bench_compare` ordinal gate checks the crossover like any other
//! table.

use chainsplit_bench::{header, row, scsg_db, time_ms, BenchReport, Run};
use chainsplit_core::{DeductiveDb, Strategy};
use chainsplit_engine::Counters;
use chainsplit_workloads::{query_person, FamilyConfig};

/// Runs the same query `repeats` times on one database handle, summing
/// the session's counters.
fn session(db: &mut DeductiveDb, query: &str, repeats: usize) -> Run {
    let strategy = Strategy::SemiNaive;
    // Compile (and on the cache-off side, build indexes) outside the
    // timed section, mirroring `measure`.
    let _ = db.system();
    let hits_before = db.cache_stats().hits;
    let mut total = Counters::default();
    let mut answers = 0;
    let mut rounds = 0;
    let ((), wall_ms) = time_ms(|| {
        for _ in 0..repeats {
            let o = db.query_with(query, strategy).expect("scsg evaluates");
            total.add(&o.counters);
            answers = o.answers.len();
            rounds += o.rounds.len();
        }
    });
    Run {
        answers,
        wall_ms,
        derived: total.derived,
        probed: total.probed,
        matched: total.matched,
        magic_facts: total.magic_facts,
        buffered_peak: total.buffered_peak,
        rounds,
        index_hits: total.index_hits,
        scans: total.scans,
        cache_hits: (db.cache_stats().hits - hits_before) as usize,
        plan_hits: total.plan_hits,
        plan_misses: total.plan_misses,
        plan_replans: total.plan_replans,
        threads: db.threads(),
    }
}

fn main() {
    let mut report = BenchReport::new("e8");
    let cfg = FamilyConfig {
        countries: 2,
        people_per_country: 16,
        generations: 4,
    };
    let q = format!("scsg({}, Y)", query_person(cfg));
    println!("# E8: repeated scsg sessions — answer cache off vs on (semi-naive)");
    println!("# total work per session; cache-on pays the first evaluation only\n");
    header(&[
        "repeats", "cache", "answers", "probed", "matched", "derived", "hits", "hit rate",
        "wall ms",
    ]);
    for repeats in [1usize, 2, 4, 8, 16] {
        for (name, enabled) in [("cache-off", false), ("cache-on", true)] {
            let mut db = scsg_db(cfg);
            db.set_cache_enabled(enabled);
            let r = session(&mut db, &q, repeats);
            report.push_run(
                &format!("repeats={repeats}"),
                repeats as f64,
                name,
                "SemiNaive",
                &r,
            );
            row(&[
                repeats.to_string(),
                name.to_string(),
                r.answers.to_string(),
                r.probed.to_string(),
                r.matched.to_string(),
                r.derived.to_string(),
                r.cache_hits.to_string(),
                format!("{:.0}%", 100.0 * r.cache_hits as f64 / repeats as f64),
                format!("{:.2}", r.wall_ms),
            ]);
        }
    }
    report.write_default().expect("write BENCH_e8.json");
}
