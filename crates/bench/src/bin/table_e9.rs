//! E9 — Cost-based join planning on a skewed star join (DESIGN.md §14).
//!
//! The `STAR_JOIN` rule lists three wide spoke relations first and the
//! selective `hub` relation last, so the syntactic left-to-right order
//! materializes the spoke cross product before filtering. The planner's
//! `|p| / distinct(p)` estimate puts `hub` first and turns every spoke
//! atom into an indexed probe on the bound hub variable. We sweep the
//! spoke count and compare planner-on against planner-off on identical
//! databases; answers must agree, and planner-on must win `probed`
//! everywhere (the ordinal claim the bench gate pins).

use chainsplit_bench::{header, measure, row, star_db, BenchReport, Run};
use chainsplit_core::Strategy;

const HUBS: usize = 2;
const FANOUT: usize = 4;

fn leg(spokes: usize, plan: bool) -> Run {
    let mut db = star_db(HUBS, spokes, FANOUT);
    db.set_plan_enabled(plan);
    measure(&mut db, "q(A, B, C, H)", Strategy::SemiNaive).expect("star join evaluates")
}

fn main() {
    let mut report = BenchReport::new("e9");
    println!("# E9: skewed star join — planner-on vs planner-off (semi-naive)");
    println!("# hubs={HUBS}, fanout={FANOUT}; rule lists the selective hub relation last\n");
    header(&[
        "spokes",
        "planner",
        "answers",
        "probed",
        "matched",
        "derived",
        "plans m/h/r",
        "probed ratio",
        "wall ms",
    ]);
    for spokes in [8usize, 16, 32, 64] {
        let on = leg(spokes, true);
        let off = leg(spokes, false);
        // The planner only reorders joins: the answer sets must agree.
        assert_eq!(on.answers, off.answers, "planner changed the answers");
        let ratio = off.probed as f64 / on.probed.max(1) as f64;
        for (method, r) in [("planner-on", &on), ("planner-off", &off)] {
            report.push_run(
                &format!("spokes={spokes}"),
                spokes as f64,
                method,
                "SemiNaive",
                r,
            );
            row(&[
                spokes.to_string(),
                method.to_string(),
                r.answers.to_string(),
                r.probed.to_string(),
                r.matched.to_string(),
                r.derived.to_string(),
                format!("{}/{}/{}", r.plan_misses, r.plan_hits, r.plan_replans),
                format!("{ratio:.1}x"),
                format!("{:.2}", r.wall_ms),
            ]);
        }
    }
    report.write_default().expect("write BENCH_e9.json");
}
