//! # chainsplit-bench
//!
//! The benchmark harness regenerating the paper's evaluation (experiments
//! E1–E7) plus the extension experiments (E8 answer cache, E9 join
//! planner; see DESIGN.md §4 for the index and EXPERIMENTS.md for
//! recorded results). Each `table_eN` binary prints one paper-style table; the
//! criterion benches in `benches/` time the same configurations.
//!
//! The harness reports machine-independent counters (derived facts, magic
//! facts, buffered tuples, join probes) alongside wall-clock, so the
//! paper's *ordinal* claims (who wins, where the crossover falls) can be
//! checked without the authors' hardware.

#![forbid(unsafe_code)]

pub mod report;

use chainsplit_core::{DeductiveDb, Strategy, System};
use chainsplit_logic::{parse_program, Program, Rule};
use chainsplit_workloads as workloads;
use std::time::Instant;

pub use chainsplit_engine::duration_ms;
pub use report::{compare, summarize, BenchReport, BenchRow, CompareOptions};

/// Wall-clock one closure, in milliseconds. The conversion is
/// [`duration_ms`] — the same helper `EXPLAIN ANALYZE` uses — so the
/// tables and the metrics layer can never disagree on rounding.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, duration_ms(start.elapsed()))
}

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a markdown-style header + separator.
pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// One measured run of a query under a strategy.
#[derive(Debug)]
pub struct Run {
    pub answers: usize,
    pub wall_ms: f64,
    pub derived: usize,
    /// Candidate tuples inspected across all access paths.
    pub probed: usize,
    /// Candidates that actually unified with their goal.
    pub matched: usize,
    pub magic_facts: usize,
    pub buffered_peak: usize,
    /// Semi-naive (or chain-level) rounds to fixpoint.
    pub rounds: usize,
    pub index_hits: usize,
    pub scans: usize,
    /// Queries answered from the answer cache during the run. [`measure`]
    /// always reports 0 (it runs one query on a cache-off database);
    /// the repeated-query experiment (E8) fills it in from
    /// [`DeductiveDb::cache_stats`].
    pub cache_hits: usize,
    /// Join plans served from the plan cache (DESIGN.md §14).
    pub plan_hits: usize,
    /// Join plans computed for a body/signature seen for the first time.
    pub plan_misses: usize,
    /// Join plans recomputed after an epoch or size-band invalidation.
    pub plan_replans: usize,
    /// Worker threads the run used (counters are thread-invariant; this
    /// contextualizes `wall_ms`).
    pub threads: usize,
}

/// Runs `query` on `db` under `strategy`, measuring wall-clock and
/// counters. Returns `Err(reason)` when the method cannot evaluate the
/// query (reported as DNF in the tables).
pub fn measure(db: &mut DeductiveDb, query: &str, strategy: Strategy) -> Result<Run, String> {
    // Force compilation outside the timed section.
    let _ = db.system();
    let (out, wall_ms) = time_ms(|| db.query_with(query, strategy));
    match out {
        Ok(o) => Ok(Run {
            answers: o.answers.len(),
            wall_ms,
            derived: o.counters.derived,
            probed: o.counters.probed,
            matched: o.counters.matched,
            magic_facts: o.counters.magic_facts,
            buffered_peak: o.counters.buffered_peak,
            rounds: o.rounds.len(),
            index_hits: o.counters.index_hits,
            scans: o.counters.scans,
            cache_hits: 0,
            plan_hits: o.counters.plan_hits,
            plan_misses: o.counters.plan_misses,
            plan_replans: o.counters.plan_replans,
            threads: db.threads(),
        }),
        Err(e) => Err(e.to_string()),
    }
}

/// Builds a [`Run`] from an engine-level
/// [`MagicResult`](chainsplit_engine::MagicResult) (experiment E7
/// drives `magic_eval`/`chain_split_magic` directly rather than going
/// through [`DeductiveDb`]).
pub fn run_from_magic(r: &chainsplit_engine::MagicResult, wall_ms: f64, threads: usize) -> Run {
    Run {
        answers: r.answers.len(),
        wall_ms,
        derived: r.counters.derived,
        probed: r.counters.probed,
        matched: r.counters.matched,
        magic_facts: r.counters.magic_facts,
        buffered_peak: r.counters.buffered_peak,
        rounds: r.rounds.len(),
        index_hits: r.counters.index_hits,
        scans: r.counters.scans,
        cache_hits: 0,
        plan_hits: r.counters.plan_hits,
        plan_misses: r.counters.plan_misses,
        plan_replans: r.counters.plan_replans,
        threads,
    }
}

/// Builds the scsg database for a family configuration.
pub fn scsg_db(cfg: workloads::FamilyConfig) -> DeductiveDb {
    let mut db = DeductiveDb::new();
    db.load(workloads::fixtures::SCSG).unwrap();
    for f in workloads::family_facts(cfg) {
        db.add_fact(f).expect("in-memory add_fact cannot fail");
    }
    db
}

/// Builds the sg database for a family configuration.
pub fn sg_db(cfg: workloads::FamilyConfig) -> DeductiveDb {
    let mut db = DeductiveDb::new();
    db.load(workloads::fixtures::SG).unwrap();
    for f in workloads::family_facts(cfg) {
        db.add_fact(f).expect("in-memory add_fact cannot fail");
    }
    db
}

/// Builds the travel database for a flight configuration.
pub fn travel_db(cfg: workloads::FlightConfig) -> DeductiveDb {
    let mut db = DeductiveDb::new();
    db.load(workloads::fixtures::TRAVEL).unwrap();
    for f in workloads::flight_facts(cfg) {
        db.add_fact(f).expect("in-memory add_fact cannot fail");
    }
    db
}

/// Builds the sorting database (isort + qsort).
pub fn sorting_db() -> DeductiveDb {
    let mut db = DeductiveDb::new();
    db.load(workloads::fixtures::ISORT).unwrap();
    db.load(workloads::fixtures::QSORT).unwrap();
    db
}

/// Builds the append database.
pub fn append_db() -> DeductiveDb {
    let mut db = DeductiveDb::new();
    db.load(workloads::fixtures::APPEND).unwrap();
    db
}

/// Builds the skewed star-join database (experiment E9, DESIGN.md §14).
pub fn star_db(hubs: usize, spokes: usize, fanout: usize) -> DeductiveDb {
    let mut db = DeductiveDb::new();
    db.load(workloads::fixtures::STAR_JOIN).unwrap();
    for f in workloads::star_join_facts(hubs, spokes, fanout) {
        db.add_fact(f).expect("in-memory add_fact cannot fail");
    }
    db
}

/// Builds the merged-chain sg database (experiment E2's anti-pattern).
pub fn merged_sg_db(people: usize, generations: usize) -> DeductiveDb {
    let mut db = DeductiveDb::new();
    db.load(workloads::fixtures::SG_MERGED).unwrap();
    for f in workloads::merged_sg_facts(people, generations) {
        db.add_fact(f).expect("in-memory add_fact cannot fail");
    }
    db
}

/// A compiled `System` for the scsg workload (for API-level benches).
pub fn scsg_system(cfg: workloads::FamilyConfig) -> System {
    let mut program: Program = parse_program(workloads::fixtures::SCSG).unwrap();
    for f in workloads::family_facts(cfg) {
        program.rules.push(Rule::fact(f));
    }
    System::build(&program)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_counters() {
        let mut db = sg_db(workloads::FamilyConfig {
            countries: 1,
            people_per_country: 4,
            generations: 2,
        });
        let r = measure(&mut db, "sg(g2_0_0, Y)", Strategy::Magic).unwrap();
        assert!(r.answers >= 1);
        assert!(r.magic_facts > 0);
        assert!(r.wall_ms >= 0.0);
    }

    #[test]
    fn measure_reports_dnf_as_error() {
        let mut db = append_db();
        // Bottom-up cannot evaluate a functional recursion.
        let err = measure(&mut db, "append(U, V, [1, 2])", Strategy::SemiNaive).unwrap_err();
        assert!(err.contains("not finitely evaluable"), "{err}");
    }

    #[test]
    fn builders_produce_queryable_dbs() {
        let mut db = travel_db(workloads::FlightConfig {
            airports: 4,
            extra_flights: 2,
            ..Default::default()
        });
        assert!(!db.query("travel(L, a0, DT, a3, AT, F)").unwrap().is_empty());
        let mut db = merged_sg_db(3, 2);
        assert!(db.query("msg(P, Q)").is_ok());
        let mut db = sorting_db();
        assert_eq!(db.query("isort([3, 1, 2], Ys)").unwrap().len(), 1);
    }
}
