//! Machine-readable benchmark records (`results/BENCH_*.json`) and the
//! regression comparison behind the `bench_compare` binary.
//!
//! Every `table_eN` binary prints its human-readable markdown table *and*
//! pushes the same measurements into a [`BenchReport`], written as a
//! schema-versioned JSON file next to the `.txt`. The paper's claims are
//! ordinal — who wins a row, where a crossover falls — so [`compare`]
//! checks exactly those properties between two recorded runs, using the
//! machine-independent `probed` counter to rank methods (wall-clock is
//! gated separately, with a tolerance, because it moves with the host).

use crate::Run;
use chainsplit_trace::json::Json;
use std::fmt::Write as _;

/// Version of the `BENCH_*.json` schema. Bump when row keys change *or*
/// when the meaning of a recorded counter changes (old baselines stop
/// being comparable either way).
/// v2 added `threads` (worker threads the row ran with; 0 for DNF rows).
/// v3 kept the key set but changed counter semantics: under the
/// frontier-at-a-time executor (DESIGN.md §6), `probed`, `index_hits` and
/// `scans` count *physical* probes — one per distinct key per join step —
/// while `matched` stays per substitution-tuple pair, so `matched` may
/// exceed `probed`.
/// v4 added `cache_hits` (queries in the row answered from the answer
/// cache, DESIGN.md §11; 0 everywhere except cache experiments).
/// v5 added `plan_hits` / `plan_misses` / `plan_replans` (the cost-based
/// join planner's cache counters, DESIGN.md §14) and, because the planner
/// is on by default, changed the recorded join orders — `probed`,
/// `matched`, `index_hits` and `scans` moved on planner-sensitive rows.
pub const BENCH_SCHEMA_VERSION: usize = 5;

/// The exact key set of one serialized row, in document order — pinned by
/// a golden test so schema drift is deliberate.
pub const BENCH_ROW_KEYS: [&str; 20] = [
    "param",
    "param_value",
    "method",
    "strategy",
    "dnf",
    "answers",
    "wall_ms",
    "derived",
    "probed",
    "matched",
    "magic_facts",
    "buffered_peak",
    "rounds",
    "index_hits",
    "scans",
    "cache_hits",
    "plan_hits",
    "plan_misses",
    "plan_replans",
    "threads",
];

/// One measured table row.
#[derive(Clone, Debug)]
pub struct BenchRow {
    /// Human-readable sweep position, e.g. `people=8` or `|W|=256`.
    pub param: String,
    /// Numeric sweep position (orders the rows of a method).
    pub param_value: f64,
    /// Display name of the method, e.g. `chain-split magic`.
    pub method: String,
    /// The [`Strategy`](chainsplit_core::Strategy) (or planner) that ran.
    pub strategy: String,
    /// Did-not-finish: the method cannot evaluate this row's query. The
    /// numeric fields are zero and excluded from comparisons.
    pub dnf: bool,
    /// Answer count and work counters (see [`Run`]).
    pub answers: usize,
    /// Wall-clock milliseconds (host-dependent).
    pub wall_ms: f64,
    /// Tuples derived.
    pub derived: usize,
    /// Candidates inspected — the machine-independent work measure that
    /// ranks methods in [`compare`].
    pub probed: usize,
    /// Candidates that unified.
    pub matched: usize,
    /// Magic/supplementary tuples.
    pub magic_facts: usize,
    /// Peak buffered tuples (chain-split methods).
    pub buffered_peak: usize,
    /// Fixpoint rounds or chain levels.
    pub rounds: usize,
    /// `select` calls answered by an index.
    pub index_hits: usize,
    /// `select` calls that scanned.
    pub scans: usize,
    /// Queries in the row answered from the answer cache (DESIGN.md §11).
    /// Zero outside cache experiments: `measure` runs cache-off.
    pub cache_hits: usize,
    /// Join plans served from the plan cache (DESIGN.md §14).
    pub plan_hits: usize,
    /// Join plans computed for a first-seen body/signature.
    pub plan_misses: usize,
    /// Join plans recomputed after an invalidation.
    pub plan_replans: usize,
    /// Worker threads the row ran with (0 on DNF rows). Counters are
    /// thread-invariant by construction (DESIGN.md §5), so rows measured
    /// at different thread counts stay counter-comparable; `threads`
    /// contextualizes the wall-clock column.
    pub threads: usize,
}

/// A full experiment record: what `results/BENCH_eN.json` holds.
#[derive(Clone, Debug, Default)]
pub struct BenchReport {
    /// Experiment id, e.g. `e1`.
    pub experiment: String,
    /// Rows in sweep order (methods interleaved per param, as printed).
    pub rows: Vec<BenchRow>,
}

impl BenchReport {
    /// An empty report for `experiment` (e.g. `"e3"`).
    pub fn new(experiment: &str) -> BenchReport {
        BenchReport {
            experiment: experiment.to_string(),
            rows: Vec::new(),
        }
    }

    /// Records a finished [`Run`].
    pub fn push_run(
        &mut self,
        param: &str,
        param_value: f64,
        method: &str,
        strategy: &str,
        r: &Run,
    ) {
        self.rows.push(BenchRow {
            param: param.to_string(),
            param_value,
            method: method.to_string(),
            strategy: strategy.to_string(),
            dnf: false,
            answers: r.answers,
            wall_ms: r.wall_ms,
            derived: r.derived,
            probed: r.probed,
            matched: r.matched,
            magic_facts: r.magic_facts,
            buffered_peak: r.buffered_peak,
            rounds: r.rounds,
            index_hits: r.index_hits,
            scans: r.scans,
            cache_hits: r.cache_hits,
            plan_hits: r.plan_hits,
            plan_misses: r.plan_misses,
            plan_replans: r.plan_replans,
            threads: r.threads,
        });
    }

    /// Records a method that could not evaluate the row's query (DNF).
    pub fn push_dnf(&mut self, param: &str, param_value: f64, method: &str, strategy: &str) {
        self.rows.push(BenchRow {
            param: param.to_string(),
            param_value,
            method: method.to_string(),
            strategy: strategy.to_string(),
            dnf: true,
            answers: 0,
            wall_ms: 0.0,
            derived: 0,
            probed: 0,
            matched: 0,
            magic_facts: 0,
            buffered_peak: 0,
            rounds: 0,
            index_hits: 0,
            scans: 0,
            cache_hits: 0,
            plan_hits: 0,
            plan_misses: 0,
            plan_replans: 0,
            threads: 0,
        });
    }

    /// The JSON document for this report.
    pub fn to_json(&self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("param".into(), Json::str(r.param.clone())),
                    ("param_value".into(), Json::Num(r.param_value)),
                    ("method".into(), Json::str(r.method.clone())),
                    ("strategy".into(), Json::str(r.strategy.clone())),
                    ("dnf".into(), Json::Bool(r.dnf)),
                    ("answers".into(), Json::int(r.answers)),
                    ("wall_ms".into(), Json::Num(r.wall_ms)),
                    ("derived".into(), Json::int(r.derived)),
                    ("probed".into(), Json::int(r.probed)),
                    ("matched".into(), Json::int(r.matched)),
                    ("magic_facts".into(), Json::int(r.magic_facts)),
                    ("buffered_peak".into(), Json::int(r.buffered_peak)),
                    ("rounds".into(), Json::int(r.rounds)),
                    ("index_hits".into(), Json::int(r.index_hits)),
                    ("scans".into(), Json::int(r.scans)),
                    ("cache_hits".into(), Json::int(r.cache_hits)),
                    ("plan_hits".into(), Json::int(r.plan_hits)),
                    ("plan_misses".into(), Json::int(r.plan_misses)),
                    ("plan_replans".into(), Json::int(r.plan_replans)),
                    ("threads".into(), Json::int(r.threads)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema_version".into(), Json::int(BENCH_SCHEMA_VERSION)),
            ("experiment".into(), Json::str(self.experiment.clone())),
            ("rows".into(), Json::Arr(rows)),
        ])
    }

    /// Reads a report back from its JSON document.
    pub fn from_json(doc: &Json) -> Result<BenchReport, String> {
        let version = doc
            .get("schema_version")
            .and_then(Json::as_usize)
            .ok_or("missing schema_version")?;
        if version != BENCH_SCHEMA_VERSION {
            return Err(format!(
                "schema_version {version} (this binary reads {BENCH_SCHEMA_VERSION})"
            ));
        }
        let experiment = doc
            .get("experiment")
            .and_then(Json::as_str)
            .ok_or("missing experiment")?
            .to_string();
        let mut rows = Vec::new();
        for (i, row) in doc
            .get("rows")
            .ok_or("missing rows")?
            .as_array()
            .iter()
            .enumerate()
        {
            let s = |k: &str| -> Result<String, String> {
                row.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or(format!("row {i}: missing {k}"))
            };
            let n = |k: &str| -> Result<usize, String> {
                row.get(k)
                    .and_then(Json::as_usize)
                    .ok_or(format!("row {i}: missing {k}"))
            };
            let f = |k: &str| -> Result<f64, String> {
                row.get(k)
                    .and_then(Json::as_f64)
                    .ok_or(format!("row {i}: missing {k}"))
            };
            rows.push(BenchRow {
                param: s("param")?,
                param_value: f("param_value")?,
                method: s("method")?,
                strategy: s("strategy")?,
                dnf: row
                    .get("dnf")
                    .and_then(Json::as_bool)
                    .ok_or(format!("row {i}: missing dnf"))?,
                answers: n("answers")?,
                wall_ms: f("wall_ms")?,
                derived: n("derived")?,
                probed: n("probed")?,
                matched: n("matched")?,
                magic_facts: n("magic_facts")?,
                buffered_peak: n("buffered_peak")?,
                rounds: n("rounds")?,
                index_hits: n("index_hits")?,
                scans: n("scans")?,
                cache_hits: n("cache_hits")?,
                plan_hits: n("plan_hits")?,
                plan_misses: n("plan_misses")?,
                plan_replans: n("plan_replans")?,
                threads: n("threads")?,
            });
        }
        Ok(BenchReport { experiment, rows })
    }

    /// Loads a report from a file.
    pub fn load(path: &std::path::Path) -> Result<BenchReport, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        BenchReport::from_json(&doc).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Writes this report to `<dir>/BENCH_<experiment>.json`, where `dir`
    /// is `$BENCH_DIR` or `results`. Called at the end of every `table_eN`
    /// binary; the note goes to stderr so it cannot contaminate the table
    /// on stdout.
    pub fn write_default(&self) -> std::io::Result<std::path::PathBuf> {
        let dir = std::env::var("BENCH_DIR").unwrap_or_else(|_| "results".to_string());
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.experiment));
        std::fs::write(&path, self.to_json().to_pretty())?;
        eprintln!("[bench] wrote {}", path.display());
        Ok(path)
    }
}

/// Knobs for [`compare`].
#[derive(Clone, Copy, Debug)]
pub struct CompareOptions {
    /// Fractional wall-clock slowdown tolerated per row (0.25 = +25%).
    pub wall_threshold: f64,
    /// Ignore slowdowns smaller than this many milliseconds — sub-ms rows
    /// are dominated by timer noise.
    pub wall_floor_ms: f64,
    /// Gate wall-clock at all (off when comparing across hosts, e.g. a
    /// committed baseline in CI).
    pub check_wall: bool,
    /// Require the machine-independent counters to match exactly.
    pub check_counters: bool,
}

impl Default for CompareOptions {
    fn default() -> Self {
        CompareOptions {
            wall_threshold: 0.25,
            wall_floor_ms: 1.0,
            check_wall: true,
            check_counters: true,
        }
    }
}

/// Winner sequence over the sweep: for each param (in `param_value`
/// order), the method with the least `probed` work among the methods that
/// finished. Ties break to the method name, so the sequence is total.
fn winners(report: &BenchReport) -> Vec<(String, Option<String>)> {
    let mut params: Vec<(f64, String)> = Vec::new();
    for r in &report.rows {
        if !params.iter().any(|(_, p)| *p == r.param) {
            params.push((r.param_value, r.param.clone()));
        }
    }
    params.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    params
        .into_iter()
        .map(|(_, param)| {
            let winner = report
                .rows
                .iter()
                .filter(|r| r.param == param && !r.dnf)
                .min_by(|a, b| (a.probed, &a.method).cmp(&(b.probed, &b.method)))
                .map(|r| r.method.clone());
            (param, winner)
        })
        .collect()
}

/// The sweep position after which the winner changes, as `(param, from,
/// to)` transitions — the paper's "crossover".
fn crossovers(w: &[(String, Option<String>)]) -> Vec<String> {
    let mut out = Vec::new();
    for pair in w.windows(2) {
        let (pa, wa) = &pair[0];
        let (pb, wb) = &pair[1];
        if wa != wb {
            out.push(format!(
                "{pa}->{pb}: {} -> {}",
                wa.as_deref().unwrap_or("(none)"),
                wb.as_deref().unwrap_or("(none)")
            ));
        }
    }
    out
}

/// Compares a new run against an old one. Returns one message per
/// violated check; empty means the new run preserves the old run's
/// ordinal claims (and wall-clock/counters, per `opts`).
pub fn compare(old: &BenchReport, new: &BenchReport, opts: &CompareOptions) -> Vec<String> {
    let mut failures = Vec::new();
    if old.experiment != new.experiment {
        failures.push(format!(
            "experiment mismatch: old is `{}`, new is `{}`",
            old.experiment, new.experiment
        ));
        return failures;
    }

    // Row-by-row: every (param, method) pair must exist on both sides.
    for o in &old.rows {
        let Some(n) = new
            .rows
            .iter()
            .find(|n| n.param == o.param && n.method == o.method)
        else {
            failures.push(format!("row [{} | {}] disappeared", o.param, o.method));
            continue;
        };
        if o.dnf != n.dnf {
            failures.push(format!(
                "row [{} | {}]: DNF flipped {} -> {}",
                o.param, o.method, o.dnf, n.dnf
            ));
            continue;
        }
        if o.dnf {
            continue;
        }
        if opts.check_counters {
            let pairs = [
                ("answers", o.answers, n.answers),
                ("derived", o.derived, n.derived),
                ("probed", o.probed, n.probed),
                ("matched", o.matched, n.matched),
                ("magic_facts", o.magic_facts, n.magic_facts),
                ("buffered_peak", o.buffered_peak, n.buffered_peak),
                ("rounds", o.rounds, n.rounds),
                ("index_hits", o.index_hits, n.index_hits),
                ("scans", o.scans, n.scans),
                ("cache_hits", o.cache_hits, n.cache_hits),
                ("plan_hits", o.plan_hits, n.plan_hits),
                ("plan_misses", o.plan_misses, n.plan_misses),
                ("plan_replans", o.plan_replans, n.plan_replans),
                // `threads` is deliberately absent: it is run context,
                // like wall_ms — counters must match across thread
                // counts, which is exactly what this check proves.
            ];
            for (name, ov, nv) in pairs {
                if ov != nv {
                    failures.push(format!(
                        "row [{} | {}]: {name} changed {ov} -> {nv}",
                        o.param, o.method
                    ));
                }
            }
        }
        if opts.check_wall && n.wall_ms > o.wall_ms * (1.0 + opts.wall_threshold) {
            let slow = n.wall_ms - o.wall_ms;
            if slow > opts.wall_floor_ms {
                failures.push(format!(
                    "row [{} | {}]: wall regression {:.2} ms -> {:.2} ms (+{:.0}%, threshold {:.0}%)",
                    o.param,
                    o.method,
                    o.wall_ms,
                    n.wall_ms,
                    100.0 * slow / o.wall_ms,
                    100.0 * opts.wall_threshold
                ));
            }
        }
    }
    for n in &new.rows {
        if !old
            .rows
            .iter()
            .any(|o| o.param == n.param && o.method == n.method)
        {
            failures.push(format!("row [{} | {}] is new", n.param, n.method));
        }
    }

    // Ordinal claims: the winner at every sweep position, and the
    // crossover structure, must be stable.
    let wo = winners(old);
    let wn = winners(new);
    for (param, w_old) in &wo {
        if let Some((_, w_new)) = wn.iter().find(|(p, _)| p == param) {
            if w_old != w_new {
                failures.push(format!(
                    "ordinal flip at {param}: winner was {}, now {}",
                    w_old.as_deref().unwrap_or("(none)"),
                    w_new.as_deref().unwrap_or("(none)")
                ));
            }
        }
    }
    let (co, cn) = (crossovers(&wo), crossovers(&wn));
    if co != cn {
        failures.push(format!(
            "crossover moved: old [{}] vs new [{}]",
            co.join("; "),
            cn.join("; ")
        ));
    }
    failures
}

/// One-paragraph textual summary of a report, for `bench_compare`'s
/// success output.
pub fn summarize(report: &BenchReport) -> String {
    let mut out = String::new();
    let w = winners(report);
    write!(
        out,
        "{}: {} rows over {} sweep positions",
        report.experiment,
        report.rows.len(),
        w.len()
    )
    .unwrap();
    let co = crossovers(&w);
    if co.is_empty() {
        if let Some((_, Some(m))) = w.first() {
            write!(out, "; {m} wins throughout").unwrap();
        }
    } else {
        write!(out, "; crossovers: {}", co.join("; ")).unwrap();
    }
    out
}
