//! Golden test pinning the `BENCH_*.json` schema, plus behavioral tests
//! for the `bench_compare` regression checks. If the schema must change,
//! bump `BENCH_SCHEMA_VERSION` and update `BENCH_ROW_KEYS` deliberately.

use chainsplit_bench::report::{BENCH_ROW_KEYS, BENCH_SCHEMA_VERSION};
use chainsplit_bench::{compare, measure, sg_db, BenchReport, CompareOptions};
use chainsplit_core::Strategy;
use chainsplit_trace::json::Json;
use chainsplit_workloads::FamilyConfig;

/// A small but real report: one sweep position, two methods, measured.
fn small_report() -> BenchReport {
    let cfg = FamilyConfig {
        countries: 1,
        people_per_country: 4,
        generations: 2,
    };
    let mut report = BenchReport::new("golden");
    for (name, strat) in [
        ("magic", Strategy::Magic),
        ("semi-naive", Strategy::SemiNaive),
    ] {
        let mut db = sg_db(cfg);
        let r = measure(&mut db, "sg(g2_0_0, Y)", strat).expect("sg evaluates");
        report.push_run("people=4", 4.0, name, &format!("{strat:?}"), &r);
    }
    report
}

#[test]
fn golden_schema_is_pinned() {
    let report = small_report();
    let doc = Json::parse(&report.to_json().to_pretty()).expect("self-parse");

    // Top level: version stamp, experiment id, rows.
    assert_eq!(
        doc.get("schema_version").and_then(Json::as_usize),
        Some(BENCH_SCHEMA_VERSION)
    );
    assert_eq!(doc.get("experiment").and_then(Json::as_str), Some("golden"));
    let rows = doc.get("rows").expect("rows").as_array();
    assert_eq!(rows.len(), 2, "one row per (param, method) pair");

    // Every row carries exactly the pinned key set, in document order.
    for row in rows {
        assert_eq!(row.keys(), BENCH_ROW_KEYS, "row key set drifted");
    }

    // Round-trip through the parser preserves the measurements.
    let back = BenchReport::from_json(&doc).expect("round-trip");
    assert_eq!(back.experiment, report.experiment);
    assert_eq!(back.rows.len(), report.rows.len());
    for (a, b) in back.rows.iter().zip(&report.rows) {
        assert_eq!(a.method, b.method);
        assert_eq!(a.probed, b.probed);
        assert_eq!(a.answers, b.answers);
    }
}

/// The `:why export` proof document is version-stamped alongside the
/// bench schema: pin its key sets here too, from a real export, so a
/// drift in either surface fails the same golden gate.
#[test]
fn proof_export_schema_is_pinned() {
    use chainsplit_provenance::{PROOF_DOC_KEYS, PROOF_NODE_KEYS, PROOF_SCHEMA_VERSION};
    let cfg = FamilyConfig {
        countries: 1,
        people_per_country: 4,
        generations: 2,
    };
    let mut db = sg_db(cfg);
    let report = db.explain_answer("sg(g2_0_0, Y)").expect("sg explains");
    assert!(!report.proofs.is_empty(), "sg must have at least one proof");
    let doc = Json::parse(&report.export_json().to_pretty()).expect("self-parse");
    assert_eq!(doc.keys(), PROOF_DOC_KEYS, "proof document keys drifted");
    assert_eq!(
        doc.get("schema_version").and_then(Json::as_usize),
        Some(PROOF_SCHEMA_VERSION)
    );
    fn check_node(node: &Json) {
        assert_eq!(node.keys(), PROOF_NODE_KEYS, "proof node keys drifted");
        for child in node.get("children").expect("children").as_array() {
            check_node(child);
        }
    }
    for proof in doc.get("proofs").expect("proofs").as_array() {
        check_node(proof);
    }
}

#[test]
fn unknown_schema_version_is_rejected() {
    let mut doc = small_report().to_json();
    if let Json::Obj(fields) = &mut doc {
        fields[0].1 = Json::int(BENCH_SCHEMA_VERSION + 1);
    }
    let err = BenchReport::from_json(&doc).unwrap_err();
    assert!(err.contains("schema_version"), "{err}");
}

#[test]
fn identical_runs_compare_clean() {
    let report = small_report();
    let failures = compare(&report, &report, &CompareOptions::default());
    assert!(failures.is_empty(), "{failures:?}");
}

#[test]
fn ordinal_flip_is_detected() {
    let old = small_report();
    let mut new = old.clone();
    // Invert the probed ordering so the per-param winner flips.
    let max = new.rows.iter().map(|r| r.probed).max().unwrap();
    for r in &mut new.rows {
        r.probed = max + 1 - r.probed;
    }
    let opts = CompareOptions {
        check_counters: false,
        check_wall: false,
        ..CompareOptions::default()
    };
    let failures = compare(&old, &new, &opts);
    assert!(
        failures.iter().any(|f| f.contains("ordinal flip")),
        "{failures:?}"
    );
}

#[test]
fn counter_drift_is_detected() {
    let old = small_report();
    let mut new = old.clone();
    new.rows[0].derived += 1;
    let failures = compare(&old, &new, &CompareOptions::default());
    assert!(
        failures.iter().any(|f| f.contains("derived changed")),
        "{failures:?}"
    );
}

#[test]
fn wall_regression_respects_threshold_and_skip() {
    let mut old = small_report();
    for r in &mut old.rows {
        r.wall_ms = 100.0;
    }
    let mut new = old.clone();
    new.rows[0].wall_ms = 140.0; // +40% > 25% threshold

    let failures = compare(&old, &new, &CompareOptions::default());
    assert!(
        failures.iter().any(|f| f.contains("wall regression")),
        "{failures:?}"
    );

    // --skip-wall: same drift passes (cross-machine comparison).
    let opts = CompareOptions {
        check_wall: false,
        ..CompareOptions::default()
    };
    assert!(compare(&old, &new, &opts).is_empty());

    // Within threshold: passes.
    new.rows[0].wall_ms = 120.0;
    assert!(compare(&old, &new, &CompareOptions::default()).is_empty());
}

#[test]
fn missing_row_is_detected() {
    let old = small_report();
    let mut new = old.clone();
    new.rows.pop();
    let failures = compare(&old, &new, &CompareOptions::default());
    assert!(
        failures.iter().any(|f| f.contains("disappeared")),
        "{failures:?}"
    );
}
