//! Compiled chain form of a linear recursion.
//!
//! A rectified linear recursion compiles into exit rules plus one normalized
//! recursive rule whose non-recursive body atoms partition into *chain
//! generating paths*: maximal groups of atoms connected by shared variables
//! (paper (1.3)/(1.4); Han-Zeng 1992). `sg` compiles into two single-
//! predicate chains (`parent` on the X side, `parent` on the Y side);
//! `scsg` compiles into **one** chain generating path of three connected
//! predicates (`parent`, `same_country`, `parent`); rectified `append`
//! compiles into one chain of two `cons` atoms connected through `X1`.

use crate::classify::{classify, Classified, RecursionClass};
use crate::graph::DepGraph;
use chainsplit_logic::{Atom, Pred, Program, Rule, Term, Var};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// One chain generating path.
#[derive(Clone, Debug)]
pub struct ChainPath {
    /// Indexes into the recursive rule's body of this path's atoms.
    pub atom_idxs: Vec<usize>,
    /// The path's atoms (same order as `atom_idxs`).
    pub atoms: Vec<Atom>,
    /// Variables shared with the head (the `X_{i-1}` group).
    pub head_vars: Vec<Var>,
    /// Variables shared with the recursive call (the `X_i` group).
    pub rec_vars: Vec<Var>,
}

impl fmt::Display for ChainPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A compiled linear (or nested-linear) recursion.
#[derive(Clone, Debug)]
pub struct CompiledRecursion {
    pub pred: Pred,
    pub class: RecursionClass,
    /// The single recursive rule (rectified).
    pub recursive_rule: Rule,
    /// Index of the recursive atom in `recursive_rule.body`.
    pub rec_idx: usize,
    pub exit_rules: Vec<Rule>,
    /// The chain generating paths (connected components of the non-
    /// recursive body atoms). An `n`-chain recursion has `n` entries; a
    /// recursion whose entire body connects has 1.
    pub chains: Vec<ChainPath>,
    /// Head positions whose variable is passed unchanged to the recursive
    /// call and touches no path atom (like `V` in `append(U, V, W) :-
    /// append(U1, V, W1), …`).
    pub invariant_positions: Vec<usize>,
    /// Recursive predicates from other SCCs called inside the paths
    /// (non-empty for nested linear recursions).
    pub nested_preds: Vec<Pred>,
}

/// Why compilation into chain form failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// The predicate's class does not admit the normalized single-rule form.
    WrongClass(RecursionClass),
    /// No rules at all for the predicate.
    NoRules,
    /// The recursive rule is not rectified (head args must be distinct
    /// variables, recursive-call args must be variables).
    NotRectified,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::WrongClass(c) => {
                write!(
                    f,
                    "cannot compile {c} recursion into single-rule chain form"
                )
            }
            CompileError::NoRules => write!(f, "predicate has no rules"),
            CompileError::NotRectified => write!(f, "recursive rule is not rectified"),
        }
    }
}

impl std::error::Error for CompileError {}

impl CompiledRecursion {
    /// Head position of a variable (rectified heads have distinct vars).
    pub fn head_pos(&self, v: Var) -> Option<usize> {
        self.recursive_rule
            .head
            .args
            .iter()
            .position(|t| *t == Term::Var(v))
    }

    /// The variable at head position `j`.
    pub fn head_var(&self, j: usize) -> Var {
        match &self.recursive_rule.head.args[j] {
            Term::Var(v) => *v,
            other => unreachable!("rectified head arg must be a var, got {other}"),
        }
    }

    /// The recursive atom.
    pub fn rec_atom(&self) -> &Atom {
        &self.recursive_rule.body[self.rec_idx]
    }

    /// The variable at recursive-call position `j`.
    pub fn rec_var(&self, j: usize) -> Var {
        match &self.rec_atom().args[j] {
            Term::Var(v) => *v,
            other => unreachable!("rectified rec arg must be a var, got {other}"),
        }
    }

    /// All non-recursive body atoms (the union of the chain paths), with
    /// their body indexes.
    pub fn path_atoms(&self) -> Vec<(usize, &Atom)> {
        self.recursive_rule
            .body
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != self.rec_idx)
            .collect()
    }

    /// Number of chains.
    pub fn n_chains(&self) -> usize {
        self.chains.len()
    }

    pub fn is_single_chain(&self) -> bool {
        self.chains.len() == 1
    }

    pub fn arity(&self) -> usize {
        self.pred.arity as usize
    }
}

/// Compiles the (rectified) definition of `pred` into chain form.
pub fn compile(
    program: &Program,
    graph: &DepGraph,
    pred: Pred,
) -> Result<CompiledRecursion, CompileError> {
    let c: Classified = classify(program, graph, pred);
    match c.class {
        RecursionClass::Linear | RecursionClass::NestedLinear => {}
        RecursionClass::NonRecursive if !c.exit_rules.is_empty() => {
            // A non-recursive definition is a degenerate chain form: exit
            // rules only, no chains.
            return Ok(CompiledRecursion {
                pred,
                class: c.class,
                recursive_rule: c.exit_rules[0].clone(),
                rec_idx: usize::MAX,
                exit_rules: c.exit_rules,
                chains: vec![],
                invariant_positions: vec![],
                nested_preds: c.nested_preds,
            });
        }
        RecursionClass::NonRecursive => return Err(CompileError::NoRules),
        other => return Err(CompileError::WrongClass(other)),
    }

    let rule = c.recursive_rules[0].clone();
    let rec_idx = rule
        .body
        .iter()
        .position(|a| a.pred == pred)
        .expect("linear recursive rule must call its own predicate");

    // Rectification requirements.
    let mut seen = HashSet::new();
    let head_ok = rule.head.args.iter().all(|t| match t {
        Term::Var(v) => seen.insert(*v),
        _ => false,
    });
    let rec_ok = rule.body[rec_idx]
        .args
        .iter()
        .all(|t| matches!(t, Term::Var(_)));
    if !head_ok || !rec_ok {
        return Err(CompileError::NotRectified);
    }

    let head_vars: Vec<Var> = rule.head.vars();
    let rec_vars_all: Vec<Var> = rule.body[rec_idx].vars();

    // Union-find over the non-recursive body atoms by shared variables.
    let path: Vec<(usize, &Atom)> = rule
        .body
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != rec_idx)
        .collect();
    let mut parent: Vec<usize> = (0..path.len()).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let r = find(parent, parent[i]);
            parent[i] = r;
        }
        parent[i]
    }
    let mut var_owner: HashMap<Var, usize> = HashMap::new();
    for (pi, (_, atom)) in path.iter().enumerate() {
        for v in atom.vars() {
            match var_owner.get(&v) {
                Some(&other) => {
                    let (a, b) = (find(&mut parent, pi), find(&mut parent, other));
                    if a != b {
                        parent[a] = b;
                    }
                }
                None => {
                    var_owner.insert(v, pi);
                }
            }
        }
    }

    // Collect components in first-atom order.
    let mut comp_order: Vec<usize> = Vec::new();
    let mut comp_atoms: HashMap<usize, Vec<usize>> = HashMap::new();
    for pi in 0..path.len() {
        let root = find(&mut parent, pi);
        if !comp_atoms.contains_key(&root) {
            comp_order.push(root);
        }
        comp_atoms.entry(root).or_default().push(pi);
    }

    let head_set: HashSet<Var> = head_vars.iter().copied().collect();
    let rec_set: HashSet<Var> = rec_vars_all.iter().copied().collect();
    let chains: Vec<ChainPath> = comp_order
        .iter()
        .map(|root| {
            let members = &comp_atoms[root];
            let atom_idxs: Vec<usize> = members.iter().map(|&pi| path[pi].0).collect();
            let atoms: Vec<Atom> = members.iter().map(|&pi| path[pi].1.clone()).collect();
            let mut vars: Vec<Var> = Vec::new();
            for a in &atoms {
                for v in a.vars() {
                    if !vars.contains(&v) {
                        vars.push(v);
                    }
                }
            }
            ChainPath {
                head_vars: vars
                    .iter()
                    .copied()
                    .filter(|v| head_set.contains(v))
                    .collect(),
                rec_vars: vars
                    .iter()
                    .copied()
                    .filter(|v| rec_set.contains(v))
                    .collect(),
                atom_idxs,
                atoms,
            }
        })
        .collect();

    // Invariant positions: head arg var equals the recursive arg at the
    // same position and occurs in no path atom.
    let path_vars: HashSet<Var> = chains
        .iter()
        .flat_map(|c| c.atoms.iter().flat_map(|a| a.vars()))
        .collect();
    let rec_atom = &rule.body[rec_idx];
    let invariant_positions: Vec<usize> = rule
        .head
        .args
        .iter()
        .enumerate()
        .filter(|(j, t)| {
            *j < rec_atom.args.len()
                && rec_atom.args[*j] == **t
                && matches!(t, Term::Var(v) if !path_vars.contains(v))
        })
        .map(|(j, _)| j)
        .collect();

    Ok(CompiledRecursion {
        pred,
        class: c.class,
        recursive_rule: rule,
        rec_idx,
        exit_rules: c.exit_rules,
        chains,
        invariant_positions,
        nested_preds: c.nested_preds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rectify::rectify_program;
    use chainsplit_logic::parse_program;

    fn compiled(src: &str, name: &str, arity: u32) -> CompiledRecursion {
        let p = rectify_program(&parse_program(src).unwrap());
        let g = DepGraph::build(&p);
        compile(&p, &g, Pred::new(name, arity)).unwrap()
    }

    #[test]
    fn sg_is_two_chain() {
        let c = compiled(
            "sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).
             sg(X, Y) :- sibling(X, Y).",
            "sg",
            2,
        );
        assert_eq!(c.n_chains(), 2);
        assert_eq!(c.exit_rules.len(), 1);
        assert!(c.invariant_positions.is_empty());
        // X-side chain: head var X, rec var X1.
        let x_chain = &c.chains[0];
        assert_eq!(x_chain.head_vars, vec![Var::named("X")]);
        assert_eq!(x_chain.rec_vars, vec![Var::named("X1")]);
    }

    #[test]
    fn scsg_is_single_chain_of_three_predicates() {
        let c = compiled(
            "scsg(X, Y) :- parent(X, X1), same_country(X1, Y1), parent(Y, Y1), scsg(X1, Y1).
             scsg(X, Y) :- sibling(X, Y).",
            "scsg",
            2,
        );
        assert_eq!(c.n_chains(), 1, "same_country links the two parent atoms");
        assert_eq!(c.chains[0].atoms.len(), 3);
        let hv = &c.chains[0].head_vars;
        assert!(hv.contains(&Var::named("X")) && hv.contains(&Var::named("Y")));
    }

    #[test]
    fn append_single_chain_with_invariant() {
        let c = compiled(
            "append([], L, L).
             append([X | L1], L2, [X | L3]) :- append(L1, L2, L3).",
            "append",
            3,
        );
        assert_eq!(c.n_chains(), 1, "the two cons atoms share X");
        assert_eq!(c.chains[0].atoms.len(), 2);
        // L2 is passed through untouched: invariant position 1.
        assert_eq!(c.invariant_positions, vec![1]);
        assert!(c.chains[0]
            .atoms
            .iter()
            .all(|a| a.pred.name.as_str() == "cons"));
    }

    #[test]
    fn isort_compiles_nested() {
        let c = compiled(
            "isort([X | Xs], Ys) :- isort(Xs, Zs), insert(X, Zs, Ys).
             isort([], []).
             insert(X, [], [X]).
             insert(X, [Y | Ys], [Y | Zs]) :- X > Y, insert(X, Ys, Zs).
             insert(X, [Y | Ys], [X, Y | Ys]) :- X <= Y.",
            "isort",
            2,
        );
        assert_eq!(c.class, RecursionClass::NestedLinear);
        assert_eq!(c.nested_preds, vec![Pred::new("insert", 3)]);
        // cons(X, Xs, XXs) and insert(X, Zs, Ys) share X: one chain.
        assert_eq!(c.n_chains(), 1);
        assert_eq!(c.exit_rules.len(), 1);
    }

    #[test]
    fn travel_single_chain() {
        // The paper's travel (3.5)-(3.6): flight extended with fare summing
        // and flight-number list building; one connected chain.
        let c = compiled(
            "travel(L, D, DT, A, AT, F) :- flight(Fno, D, DT, A1, AT1, F1),
                 travel(L1, A1, DT1, A, AT, F2), AT1 <= DT1,
                 plus(F1, F2, F), cons(Fno, L1, L).
             travel(L, D, DT, A, AT, F) :- flight(Fno, D, DT, A, AT, F), cons(Fno, [], L).",
            "travel",
            6,
        );
        assert_eq!(c.n_chains(), 1);
        assert_eq!(c.chains[0].atoms.len(), 4);
        assert_eq!(c.exit_rules.len(), 1);
    }

    #[test]
    fn nonrecursive_compiles_degenerate() {
        let p = rectify_program(&parse_program("gp(X, Z) :- parent(X, Y), parent(Y, Z).").unwrap());
        let g = DepGraph::build(&p);
        let c = compile(&p, &g, Pred::new("gp", 2)).unwrap();
        assert_eq!(c.n_chains(), 0);
        assert_eq!(c.exit_rules.len(), 1);
    }

    #[test]
    fn nonlinear_rejected() {
        let p = rectify_program(
            &parse_program(
                "t(X, Y) :- e(X, Z), t(Z, W), t(W, Y).
                 t(X, Y) :- e(X, Y).",
            )
            .unwrap(),
        );
        let g = DepGraph::build(&p);
        let err = compile(&p, &g, Pred::new("t", 2)).unwrap_err();
        assert_eq!(err, CompileError::WrongClass(RecursionClass::NonLinear));
    }

    #[test]
    fn unrectified_rejected() {
        let p = parse_program(
            "append([], L, L).
             append([X | L1], L2, [X | L3]) :- append(L1, L2, L3).",
        )
        .unwrap();
        let g = DepGraph::build(&p);
        let err = compile(&p, &g, Pred::new("append", 3)).unwrap_err();
        assert_eq!(err, CompileError::NotRectified);
    }

    #[test]
    fn accessors() {
        let c = compiled(
            "sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).
             sg(X, Y) :- sibling(X, Y).",
            "sg",
            2,
        );
        assert_eq!(c.head_var(0), Var::named("X"));
        assert_eq!(c.rec_var(1), Var::named("Y1"));
        assert_eq!(c.head_pos(Var::named("Y")), Some(1));
        assert_eq!(c.head_pos(Var::named("Z")), None);
        assert_eq!(c.path_atoms().len(), 2);
        assert_eq!(c.rec_atom().pred, Pred::new("sg", 2));
        assert_eq!(c.arity(), 2);
    }
}
