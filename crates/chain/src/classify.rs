//! Recursion classification.
//!
//! The chain-split paper works over the taxonomy of Han-Lu/Han-Zeng:
//! a predicate's definition is classified before compilation, and each class
//! gets its own evaluation discipline (§1, §4):
//!
//! - **NonRecursive** definitions unfold;
//! - **Linear** recursions (one recursive rule, one self-call) compile into
//!   chain form and are the home turf of Algorithms 3.1–3.3;
//! - **NestedLinear** recursions (§4.1, `isort`) are linear at the top level
//!   but call other recursive predicates inside the chain path — each level
//!   is normalized independently;
//! - **NonLinear** recursions (§4.2, `qsort`) have several self-calls;
//! - **MultipleLinear** (several linear recursive rules) and
//!   **MutuallyRecursive** definitions fall outside the normalized chain
//!   framework and are evaluated by the generic methods.

use crate::graph::DepGraph;
use chainsplit_logic::{Pred, Program, Rule};
use std::fmt;

/// The recursion class of one predicate's definition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecursionClass {
    NonRecursive,
    Linear,
    NestedLinear,
    NonLinear,
    MultipleLinear,
    MutuallyRecursive,
}

impl fmt::Display for RecursionClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RecursionClass::NonRecursive => "non-recursive",
            RecursionClass::Linear => "linear",
            RecursionClass::NestedLinear => "nested linear",
            RecursionClass::NonLinear => "nonlinear",
            RecursionClass::MultipleLinear => "multiple linear",
            RecursionClass::MutuallyRecursive => "mutually recursive",
        };
        f.write_str(s)
    }
}

/// The classified definition of one predicate.
pub struct Classified {
    pub pred: Pred,
    pub class: RecursionClass,
    /// Rules whose body references the predicate's own SCC.
    pub recursive_rules: Vec<Rule>,
    /// Rules with no reference to the SCC (exit rules).
    pub exit_rules: Vec<Rule>,
    /// Recursive IDB predicates (other SCCs) called from the rule bodies —
    /// non-empty exactly for nested recursions.
    pub nested_preds: Vec<Pred>,
}

/// Classifies the definition of `pred` in `program`.
pub fn classify(program: &Program, graph: &DepGraph, pred: Pred) -> Classified {
    let scc = graph.scc(pred);
    let in_scc = |q: Pred| scc.contains(&q);

    let mut recursive_rules = Vec::new();
    let mut exit_rules = Vec::new();
    let mut max_self_calls = 0usize;
    for r in program.rules_for(pred) {
        let n = r.body.iter().filter(|a| in_scc(a.pred)).count();
        max_self_calls = max_self_calls.max(n);
        if n > 0 {
            recursive_rules.push(r.clone());
        } else {
            exit_rules.push(r.clone());
        }
    }

    let mut nested_preds: Vec<Pred> = Vec::new();
    for r in recursive_rules.iter().chain(exit_rules.iter()) {
        for a in &r.body {
            if !in_scc(a.pred) && graph.is_recursive(a.pred) && !nested_preds.contains(&a.pred) {
                nested_preds.push(a.pred);
            }
        }
    }

    let class = if !graph.is_recursive(pred) {
        RecursionClass::NonRecursive
    } else if scc.len() > 1 {
        RecursionClass::MutuallyRecursive
    } else if max_self_calls > 1 {
        RecursionClass::NonLinear
    } else if recursive_rules.len() > 1 {
        RecursionClass::MultipleLinear
    } else if !nested_preds.is_empty() {
        RecursionClass::NestedLinear
    } else {
        RecursionClass::Linear
    };

    Classified {
        pred,
        class,
        recursive_rules,
        exit_rules,
        nested_preds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainsplit_logic::parse_program;

    fn class_of(src: &str, name: &str, arity: u32) -> RecursionClass {
        let p = parse_program(src).unwrap();
        let g = DepGraph::build(&p);
        classify(&p, &g, Pred::new(name, arity)).class
    }

    #[test]
    fn sg_is_linear() {
        let c = class_of(
            "sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).
             sg(X, Y) :- sibling(X, Y).",
            "sg",
            2,
        );
        assert_eq!(c, RecursionClass::Linear);
    }

    #[test]
    fn gp_is_nonrecursive() {
        let c = class_of("gp(X, Z) :- parent(X, Y), parent(Y, Z).", "gp", 2);
        assert_eq!(c, RecursionClass::NonRecursive);
    }

    #[test]
    fn isort_is_nested_linear() {
        let src = "isort([X | Xs], Ys) :- isort(Xs, Zs), insert(X, Zs, Ys).
             isort([], []).
             insert(X, [], [X]).
             insert(X, [Y | Ys], [Y | Zs]) :- X > Y, insert(X, Ys, Zs).
             insert(X, [Y | Ys], [X, Y | Ys]) :- X <= Y.";
        assert_eq!(class_of(src, "isort", 2), RecursionClass::NestedLinear);
        // insert has exactly one recursive rule (X > Y case); the other two
        // are exits, so it is linear.
        assert_eq!(class_of(src, "insert", 3), RecursionClass::Linear);
    }

    #[test]
    fn insert_single_recursive_rule_is_linear() {
        // The paper's rectified insert has one recursive rule (4.9) and the
        // base/comparison cases as exits.
        let src = "insert(X, [Y | Ys], [Y | Zs]) :- X > Y, insert(X, Ys, Zs).
             insert(X, [], [X]).
             insert(X, [Y | Ys], [X, Y | Ys]) :- X <= Y.";
        assert_eq!(class_of(src, "insert", 3), RecursionClass::Linear);
    }

    #[test]
    fn qsort_is_nonlinear() {
        let src = "qsort([X | Xs], Ys) :- partition(Xs, X, Ls, Bs),
                       qsort(Ls, SLs), qsort(Bs, SBs), append(SLs, [X | SBs], Ys).
             qsort([], []).
             partition([X | Xs], Y, [X | Ls], Bs) :- X <= Y, partition(Xs, Y, Ls, Bs).
             partition([X | Xs], Y, Ls, [X | Bs]) :- X > Y, partition(Xs, Y, Ls, Bs).
             partition([], Y, [], []).
             append([], L, L).
             append([X | L1], L2, [X | L3]) :- append(L1, L2, L3).";
        assert_eq!(class_of(src, "qsort", 2), RecursionClass::NonLinear);
        assert_eq!(
            class_of(src, "partition", 4),
            RecursionClass::MultipleLinear
        );
        assert_eq!(class_of(src, "append", 3), RecursionClass::Linear);
    }

    #[test]
    fn mutual_recursion_detected() {
        let src = "even(X) :- pred(X, Y), odd(Y).
             odd(X) :- pred(X, Y), even(Y).
             even(z).";
        assert_eq!(class_of(src, "even", 1), RecursionClass::MutuallyRecursive);
    }

    #[test]
    fn nested_preds_listed() {
        let p = parse_program(
            "isort([X | Xs], Ys) :- isort(Xs, Zs), insert(X, Zs, Ys).
             isort([], []).
             insert(X, [Y | Ys], [Y | Zs]) :- X > Y, insert(X, Ys, Zs).
             insert(X, [], [X]).",
        )
        .unwrap();
        let g = DepGraph::build(&p);
        let c = classify(&p, &g, Pred::new("isort", 2));
        assert_eq!(c.nested_preds, vec![Pred::new("insert", 3)]);
        assert_eq!(c.recursive_rules.len(), 1);
        assert_eq!(c.exit_rules.len(), 1);
    }

    #[test]
    fn exit_and_recursive_rules_partitioned() {
        let p = parse_program(
            "sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).
             sg(X, Y) :- sibling(X, Y).",
        )
        .unwrap();
        let g = DepGraph::build(&p);
        let c = classify(&p, &g, Pred::new("sg", 2));
        assert_eq!(c.recursive_rules.len(), 1);
        assert_eq!(c.exit_rules.len(), 1);
        assert!(c.nested_preds.is_empty());
    }
}
