//! Finiteness constraints and finite-evaluability of whole queries.
//!
//! A finiteness constraint `X → Y` over predicate `r` says each value of
//! argument set `X` corresponds to a *finite* set of `Y` values \[6\]. It is
//! strictly weaker than a functional dependency and holds trivially for
//! every finite (EDB) predicate. The [`crate::modes::ModeTable`] encodes
//! exactly the finiteness constraints of builtins (a registered mode `bbf`
//! for `plus` is the constraint `{1,2} → {3}`); this module layers the
//! query-level admissibility test on top: a query on a compiled recursion
//! is finitely evaluable iff a [`crate::split::SplitPlan`] exists for its
//! adornment.

use crate::chain_form::CompiledRecursion;
use crate::modes::ModeTable;
use crate::split::{plan_split, SplitError, SplitPlan};
use chainsplit_logic::{Adornment, Atom};
use std::collections::HashSet;

/// A finiteness constraint on one predicate: bound argument positions
/// `from` determine finitely many values for positions `to`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FinitenessConstraint {
    pub from: Vec<usize>,
    pub to: Vec<usize>,
}

impl FinitenessConstraint {
    /// The adornment expressing this constraint as a finite mode: `from`
    /// positions bound, everything else free (evaluating then yields the
    /// `to` positions finitely — and any position not in `from ∪ to` is
    /// not constrained, so the mode is only valid if `from ∪ to` covers
    /// the predicate).
    pub fn to_mode(&self, arity: usize) -> Option<Adornment> {
        let covered: HashSet<usize> = self.from.iter().chain(self.to.iter()).copied().collect();
        if covered.len() != arity {
            return None;
        }
        let mut ads = vec![chainsplit_logic::Ad::Free; arity];
        for &j in &self.from {
            ads[j] = chainsplit_logic::Ad::Bound;
        }
        Some(Adornment(ads))
    }
}

/// The adornment of a query atom: argument positions holding ground terms
/// are bound, the rest free.
pub fn query_adornment(query: &Atom) -> Adornment {
    Adornment(
        query
            .args
            .iter()
            .map(|t| {
                if t.is_ground() {
                    chainsplit_logic::Ad::Bound
                } else {
                    chainsplit_logic::Ad::Free
                }
            })
            .collect(),
    )
}

/// Decides finite evaluability of a query adornment against a compiled
/// recursion, returning the witnessing split plan.
///
/// This is the §2.2 admissibility check: the up sweep must be non-empty
/// and reproduce its own bindings, every delayed atom must be evaluable in
/// the down sweep, and every exit rule must be evaluable under the stable
/// adornment.
pub fn check_finitely_evaluable(
    rec: &CompiledRecursion,
    ad: &Adornment,
    modes: &ModeTable,
) -> Result<SplitPlan, SplitError> {
    plan_split(rec, ad, modes, &[])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain_form::compile;
    use crate::graph::DepGraph;
    use crate::rectify::rectify_program;
    use chainsplit_logic::{parse_program, parse_query, Pred};

    #[test]
    fn query_adornment_from_ground_args() {
        let q = parse_query("append(U, V, [1,2,3])").unwrap();
        assert_eq!(query_adornment(&q).to_string(), "ffb");
        let q = parse_query("sg(adam, Y)").unwrap();
        assert_eq!(query_adornment(&q).to_string(), "bf");
        let q = parse_query("p([X | Xs])").unwrap();
        assert_eq!(query_adornment(&q).to_string(), "f");
    }

    #[test]
    fn constraint_to_mode() {
        // plus: {0,1} -> {2}
        let c = FinitenessConstraint {
            from: vec![0, 1],
            to: vec![2],
        };
        assert_eq!(c.to_mode(3).unwrap().to_string(), "bbf");
        // Non-covering constraint gives no mode.
        let c = FinitenessConstraint {
            from: vec![0],
            to: vec![1],
        };
        assert!(c.to_mode(3).is_none());
    }

    #[test]
    fn append_admissibility_matrix() {
        let p = rectify_program(
            &parse_program(
                "append([], L, L).
                 append([X | L1], L2, [X | L3]) :- append(L1, L2, L3).",
            )
            .unwrap(),
        );
        let g = DepGraph::build(&p);
        let rec = compile(&p, &g, Pred::new("append", 3)).unwrap();
        let modes = ModeTable::with_builtins();
        // Finitely evaluable: the result bound, or both inputs bound.
        for ad in ["ffb", "bfb", "fbb", "bbb", "bbf"] {
            assert!(
                check_finitely_evaluable(&rec, &Adornment::parse(ad), &modes).is_ok(),
                "append^{ad} should be admissible"
            );
        }
        // Not finitely evaluable: `append([1,2], V, W)` has infinitely many
        // answers (bff), as do fff and fbf.
        for ad in ["fff", "fbf", "bff"] {
            assert!(
                check_finitely_evaluable(&rec, &Adornment::parse(ad), &modes).is_err(),
                "append^{ad} should be inadmissible"
            );
        }
    }
}
