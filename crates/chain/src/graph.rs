//! Predicate dependency graph and strongly connected components.
//!
//! Recursion classification starts from the dependency graph: predicate `p`
//! depends on `q` when `q` occurs in the body of a rule with head `p`.
//! A predicate is recursive iff it lies on a dependency cycle, i.e. its SCC
//! has more than one member or a self-loop.

use chainsplit_logic::{Pred, Program};
use std::collections::HashMap;

/// The dependency graph of a program's IDB.
pub struct DepGraph {
    preds: Vec<Pred>,
    index: HashMap<Pred, usize>,
    /// adjacency: edges[i] = predicates that preds[i]'s rules call
    edges: Vec<Vec<usize>>,
    /// scc id per predicate, in reverse topological order of SCCs
    scc_of: Vec<usize>,
    scc_count: usize,
    self_loop: Vec<bool>,
}

impl DepGraph {
    /// Builds the graph for every head predicate of `program`. Body
    /// predicates with no rules (EDB, builtins) are included as sink nodes.
    pub fn build(program: &Program) -> DepGraph {
        let mut index: HashMap<Pred, usize> = HashMap::new();
        let mut preds: Vec<Pred> = Vec::new();
        let mut intern = |p: Pred, preds: &mut Vec<Pred>| -> usize {
            *index.entry(p).or_insert_with(|| {
                preds.push(p);
                preds.len() - 1
            })
        };
        let mut edges: Vec<Vec<usize>> = Vec::new();
        let mut self_loop: Vec<bool> = Vec::new();
        for r in &program.rules {
            let h = intern(r.head.pred, &mut preds);
            while edges.len() < preds.len() {
                edges.push(Vec::new());
                self_loop.push(false);
            }
            for b in &r.body {
                let t = intern(b.pred, &mut preds);
                while edges.len() < preds.len() {
                    edges.push(Vec::new());
                    self_loop.push(false);
                }
                if !edges[h].contains(&t) {
                    edges[h].push(t);
                }
                if h == t {
                    self_loop[h] = true;
                }
            }
        }
        let scc = tarjan(&edges);
        DepGraph {
            scc_count: scc.count,
            scc_of: scc.comp,
            preds,
            index,
            edges,
            self_loop,
        }
    }

    fn id(&self, p: Pred) -> Option<usize> {
        self.index.get(&p).copied()
    }

    /// True iff `p` is on a dependency cycle (counts self-loops).
    pub fn is_recursive(&self, p: Pred) -> bool {
        let Some(i) = self.id(p) else { return false };
        self.self_loop[i] || self.scc_members(self.scc_of[i]).len() > 1
    }

    /// True iff `p` and `q` are mutually recursive (same non-trivial SCC).
    pub fn same_scc(&self, p: Pred, q: Pred) -> bool {
        match (self.id(p), self.id(q)) {
            (Some(i), Some(j)) => self.scc_of[i] == self.scc_of[j],
            _ => false,
        }
    }

    /// The predicates in SCC `c`.
    fn scc_members(&self, c: usize) -> Vec<Pred> {
        (0..self.preds.len())
            .filter(|&i| self.scc_of[i] == c)
            .map(|i| self.preds[i])
            .collect()
    }

    /// The SCC of `p` as a predicate list (singleton for non-recursive).
    pub fn scc(&self, p: Pred) -> Vec<Pred> {
        match self.id(p) {
            Some(i) => self.scc_members(self.scc_of[i]),
            None => vec![p],
        }
    }

    /// Direct callees of `p`.
    pub fn callees(&self, p: Pred) -> Vec<Pred> {
        match self.id(p) {
            Some(i) => self.edges[i].iter().map(|&j| self.preds[j]).collect(),
            None => vec![],
        }
    }

    /// Every predicate reachable from `p` (excluding `p` unless on a cycle).
    pub fn reachable(&self, p: Pred) -> Vec<Pred> {
        let Some(start) = self.id(p) else {
            return vec![];
        };
        let mut seen = vec![false; self.preds.len()];
        let mut stack = vec![start];
        let mut out = Vec::new();
        while let Some(i) = stack.pop() {
            for &j in &self.edges[i] {
                if !seen[j] {
                    seen[j] = true;
                    out.push(self.preds[j]);
                    stack.push(j);
                }
            }
        }
        out
    }

    pub fn scc_count(&self) -> usize {
        self.scc_count
    }
}

struct SccResult {
    comp: Vec<usize>,
    count: usize,
}

/// Iterative Tarjan SCC (iterative to survive deep rule chains).
fn tarjan(edges: &[Vec<usize>]) -> SccResult {
    let n = edges.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![usize::MAX; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut count = 0usize;

    // Explicit DFS frames: (node, next child position).
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
            if *ci < edges[v].len() {
                let w = edges[v][*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().unwrap();
                        on_stack[w] = false;
                        comp[w] = count;
                        if w == v {
                            break;
                        }
                    }
                    count += 1;
                }
            }
        }
    }
    SccResult { comp, count }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainsplit_logic::parse_program;

    #[test]
    fn sg_is_self_recursive() {
        let p = parse_program(
            "sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).
             sg(X, Y) :- sibling(X, Y).",
        )
        .unwrap();
        let g = DepGraph::build(&p);
        assert!(g.is_recursive(Pred::new("sg", 2)));
        assert!(!g.is_recursive(Pred::new("parent", 2)));
        assert!(!g.is_recursive(Pred::new("sibling", 2)));
    }

    #[test]
    fn mutual_recursion_shares_scc() {
        let p = parse_program(
            "even(X) :- pred(X, Y), odd(Y).
             odd(X) :- pred(X, Y), even(Y).
             even(z).",
        )
        .unwrap();
        let g = DepGraph::build(&p);
        let even = Pred::new("even", 1);
        let odd = Pred::new("odd", 1);
        assert!(g.is_recursive(even));
        assert!(g.is_recursive(odd));
        assert!(g.same_scc(even, odd));
        assert_eq!(g.scc(even).len(), 2);
    }

    #[test]
    fn nested_preds_are_separate_sccs() {
        // isort calls insert; both self-recursive, not mutually.
        let p = parse_program(
            "isort(L, S) :- cons(X, Xs, L), isort(Xs, Zs), insert(X, Zs, S).
             isort(L, S) :- L = [], S = [].
             insert(X, Ys, Zs) :- cons(Y, Ys1, Ys), X > Y, insert(X, Ys1, Zs1), cons(Y, Zs1, Zs).
             insert(X, Ys, Zs) :- Ys = [], cons(X, [], Zs).",
        )
        .unwrap();
        let g = DepGraph::build(&p);
        let isort = Pred::new("isort", 2);
        let insert = Pred::new("insert", 3);
        assert!(g.is_recursive(isort));
        assert!(g.is_recursive(insert));
        assert!(!g.same_scc(isort, insert));
        assert!(g.reachable(isort).contains(&insert));
        assert!(!g.reachable(insert).contains(&isort));
    }

    #[test]
    fn nonrecursive_program() {
        let p = parse_program("gp(X, Z) :- parent(X, Y), parent(Y, Z).").unwrap();
        let g = DepGraph::build(&p);
        assert!(!g.is_recursive(Pred::new("gp", 2)));
        assert_eq!(g.callees(Pred::new("gp", 2)), vec![Pred::new("parent", 2)]);
    }

    #[test]
    fn long_cycle_detected() {
        let p = parse_program(
            "a(X) :- b(X).
             b(X) :- c(X).
             c(X) :- a(X).",
        )
        .unwrap();
        let g = DepGraph::build(&p);
        assert!(g.is_recursive(Pred::new("a", 1)));
        assert_eq!(g.scc(Pred::new("a", 1)).len(), 3);
    }
}
