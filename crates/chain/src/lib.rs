//! # chainsplit-chain
//!
//! The recursion compiler of the chain-split deductive database:
//!
//! - [`rectify`]: function symbols → functional predicates (`cons`,
//!   arithmetic), heads and IDB calls flattened to variables;
//! - [`graph`] / [`mod@classify`]: dependency analysis and the recursion
//!   taxonomy (linear, nested linear, nonlinear, …);
//! - [`chain_form`]: compilation of a linear recursion into exit rules plus
//!   chain generating paths (Han-Lu 1989, Han-Zeng 1992);
//! - [`modes`]: finite-evaluability modes (finiteness constraints \[6\]) for
//!   builtins, EDB and compiled IDB predicates;
//! - [`split`]: the chain-split planner — evaluated portion, delayed
//!   portion, buffered variables, stable adornment (§2 of the paper);
//! - [`finiteness`]: query-level finite-evaluability admissibility.

#![forbid(unsafe_code)]

pub mod chain_form;
pub mod classify;
pub mod finiteness;
pub mod graph;
pub mod modes;
pub mod rectify;
pub mod split;

pub use chain_form::{compile, ChainPath, CompileError, CompiledRecursion};
pub use classify::{classify, Classified, RecursionClass};
pub use finiteness::{check_finitely_evaluable, query_adornment, FinitenessConstraint};
pub use graph::DepGraph;
pub use modes::{builtin_modes, is_builtin, ModeTable};
pub use rectify::{is_rectified, rectify_program, rectify_rule};
pub use split::{
    exit_order, exit_order_costed, greedy_closure, greedy_closure_costed, plan_split,
    plan_split_costed, CostFn, SplitError, SplitPlan,
};
