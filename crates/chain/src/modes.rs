//! Mode (finite-evaluability) declarations for predicates.
//!
//! §2.2 of the paper: a chain generating path through a functional recursion
//! may contain predicates "defined on infinite domains" — `cons`, arithmetic,
//! comparisons. Whether an occurrence is *finitely evaluable* depends on its
//! adornment: `cons^ffb` finitely decomposes a bound list, `cons^fff` denotes
//! an infinite relation. The [`ModeTable`] records, per predicate, the
//! minimal binding patterns under which evaluation is finite; this is the
//! declarative counterpart of the finiteness constraints of \[6\].
//!
//! EDB relations are finite under every adornment. IDB predicates acquire
//! modes as the planner compiles them (e.g. once `insert^bbf` is shown
//! finitely evaluable by chain-split, `isort`'s compilation can use it).

use chainsplit_logic::{Adornment, Pred};
use std::collections::{HashMap, HashSet};

/// Finite-evaluability catalog.
#[derive(Clone, Default)]
pub struct ModeTable {
    /// pred -> minimal adornments under which evaluation is finite.
    finite_modes: HashMap<Pred, Vec<Adornment>>,
    /// Predicates whose extension is a finite stored relation.
    edb: HashSet<Pred>,
}

/// The built-in evaluable predicates and their finite modes.
///
/// - `cons/3`: `cons(H, T, L)` holds iff `L = [H|T]`. Finite when `L` is
///   bound (decomposition) or both `H` and `T` are (construction).
/// - `=/2`: finite when either side is bound.
/// - `\=/2` and the comparisons: checks; finite only fully bound.
/// - `plus/3`, `minus/3`, `times/3`: `op(X, Y, Z)` with `Z = X op Y`;
///   finite when any two arguments are bound (`times` needs the two
///   *inputs*, division by zero aside — we register all three patterns and
///   let evaluation fail cleanly where arithmetic cannot invert).
/// - `div/3`, `mod/3`: finite only in the forward direction.
/// - `length/2`: finite when the list is bound.
/// - `between/3`: `between(L, H, X)` enumerates `L..=H`; finite when both
///   bounds are bound.
/// - `abs/2`: `abs(X, Y)` with `Y = |X|`; invertible (`Y` bound yields the
///   two candidates).
pub fn builtin_modes() -> Vec<(Pred, Vec<&'static str>)> {
    vec![
        (Pred::new("cons", 3), vec!["ffb", "bbf"]),
        (Pred::new("=", 2), vec!["bf", "fb"]),
        (Pred::new("\\=", 2), vec!["bb"]),
        (Pred::new("<", 2), vec!["bb"]),
        (Pred::new("<=", 2), vec!["bb"]),
        (Pred::new(">", 2), vec!["bb"]),
        (Pred::new(">=", 2), vec!["bb"]),
        (Pred::new("plus", 3), vec!["bbf", "bfb", "fbb"]),
        (Pred::new("minus", 3), vec!["bbf", "bfb", "fbb"]),
        (Pred::new("times", 3), vec!["bbf", "bfb", "fbb"]),
        (Pred::new("div", 3), vec!["bbf"]),
        (Pred::new("mod", 3), vec!["bbf"]),
        (Pred::new("length", 2), vec!["bf"]),
        (Pred::new("between", 3), vec!["bbf"]),
        (Pred::new("abs", 2), vec!["bf", "fb"]),
    ]
}

/// The set of builtin predicates (those the engine evaluates procedurally).
pub fn is_builtin(pred: Pred) -> bool {
    builtin_modes().iter().any(|(p, _)| *p == pred)
}

impl ModeTable {
    /// A table pre-loaded with the builtin modes.
    pub fn with_builtins() -> ModeTable {
        let mut t = ModeTable::default();
        for (pred, modes) in builtin_modes() {
            for m in modes {
                t.add_mode(pred, Adornment::parse(m));
            }
        }
        t
    }

    /// Declares `pred` extensional (finite under every adornment).
    pub fn add_edb(&mut self, pred: Pred) {
        self.edb.insert(pred);
    }

    pub fn is_edb(&self, pred: Pred) -> bool {
        self.edb.contains(&pred)
    }

    /// Registers a finite mode for `pred` (builtin at construction time, or
    /// an IDB predicate whose compilation established the mode).
    pub fn add_mode(&mut self, pred: Pred, mode: Adornment) {
        assert_eq!(mode.len(), pred.arity as usize);
        let modes = self.finite_modes.entry(pred).or_default();
        if !modes.contains(&mode) {
            modes.push(mode);
        }
    }

    /// The registered minimal modes of `pred`.
    pub fn modes(&self, pred: Pred) -> &[Adornment] {
        self.finite_modes
            .get(&pred)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// True iff evaluating `pred` under `ad` is known to be finite: EDB
    /// predicates always are; others iff `ad` provides at least the
    /// bindings of some registered mode.
    pub fn is_finite(&self, pred: Pred, ad: &Adornment) -> bool {
        if self.edb.contains(&pred) {
            return true;
        }
        self.modes(pred).iter().any(|m| ad.subsumes(m))
    }

    /// True iff the predicate is known to the table at all.
    pub fn knows(&self, pred: Pred) -> bool {
        self.edb.contains(&pred) || self.finite_modes.contains_key(&pred)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cons_modes() {
        let t = ModeTable::with_builtins();
        let cons = Pred::new("cons", 3);
        assert!(t.is_finite(cons, &Adornment::parse("ffb"))); // decompose
        assert!(t.is_finite(cons, &Adornment::parse("bfb")));
        assert!(t.is_finite(cons, &Adornment::parse("bbb")));
        assert!(t.is_finite(cons, &Adornment::parse("bbf"))); // construct
        assert!(!t.is_finite(cons, &Adornment::parse("bff"))); // infinite
        assert!(!t.is_finite(cons, &Adornment::parse("fff")));
    }

    #[test]
    fn comparison_modes() {
        let t = ModeTable::with_builtins();
        let lt = Pred::new("<", 2);
        assert!(t.is_finite(lt, &Adornment::parse("bb")));
        assert!(!t.is_finite(lt, &Adornment::parse("bf")));
        let eq = Pred::new("=", 2);
        assert!(t.is_finite(eq, &Adornment::parse("bf")));
        assert!(t.is_finite(eq, &Adornment::parse("fb")));
        assert!(!t.is_finite(eq, &Adornment::parse("ff")));
    }

    #[test]
    fn arithmetic_modes() {
        let t = ModeTable::with_builtins();
        let plus = Pred::new("plus", 3);
        assert!(t.is_finite(plus, &Adornment::parse("bbf")));
        assert!(t.is_finite(plus, &Adornment::parse("fbb")));
        assert!(!t.is_finite(plus, &Adornment::parse("bff")));
        let div = Pred::new("div", 3);
        assert!(!t.is_finite(div, &Adornment::parse("bfb")));
    }

    #[test]
    fn edb_is_always_finite() {
        let mut t = ModeTable::with_builtins();
        let parent = Pred::new("parent", 2);
        assert!(!t.is_finite(parent, &Adornment::parse("ff")));
        t.add_edb(parent);
        assert!(t.is_finite(parent, &Adornment::parse("ff")));
        assert!(t.is_edb(parent));
    }

    #[test]
    fn idb_modes_registered_dynamically() {
        let mut t = ModeTable::with_builtins();
        let insert = Pred::new("insert", 3);
        assert!(!t.is_finite(insert, &Adornment::parse("bbf")));
        t.add_mode(insert, Adornment::parse("bbf"));
        assert!(t.is_finite(insert, &Adornment::parse("bbf")));
        assert!(t.is_finite(insert, &Adornment::parse("bbb")));
        assert!(!t.is_finite(insert, &Adornment::parse("bff")));
        // Duplicate registration is idempotent.
        t.add_mode(insert, Adornment::parse("bbf"));
        assert_eq!(t.modes(insert).len(), 1);
    }

    #[test]
    fn builtin_set_membership() {
        assert!(is_builtin(Pred::new("cons", 3)));
        assert!(is_builtin(Pred::new("<", 2)));
        assert!(!is_builtin(Pred::new("cons", 2)));
        assert!(!is_builtin(Pred::new("parent", 2)));
    }
}
