//! Rectification: eliminating function symbols from rule structure.
//!
//! Following \[21\] (and the transformation of \[12, 15, 17\] cited in §2.2),
//! rectification rewrites every rule so that
//!
//! - every head argument is a *distinct variable*, and
//! - every argument of an IDB body atom is a variable,
//!
//! by introducing fresh variables and *functional predicate* atoms:
//! `V = f(t1, …, tk)` becomes `f(t1, …, tk, V)`, and the list constructor
//! becomes the builtin `cons(H, T, L)` (`L = [H|T]`). Constants displaced
//! from heads and IDB calls become `=` atoms.
//!
//! Example (the paper's (1.13)–(1.16)):
//!
//! ```text
//! append([], L, L).                                append(U, V, W) :- U = [], V = W.
//! append([X|L1], L2, [X|L3]) :-          ⇒        append(U, V, W) :- append(L1, V, L3),
//!     append(L1, L2, L3).                              cons(X, L1, U), cons(X, L3, W).
//! ```
//!
//! Rectification converts *constructors to predicates*: the resulting rules
//! are function-free in structure, so all chain analysis happens in the
//! function-free framework, while `cons`/arithmetic atoms keep their
//! infinite-domain semantics (captured by the [`crate::modes::ModeTable`]).

use chainsplit_logic::{Atom, Pred, Program, Rule, Term, Var};
use std::collections::HashSet;
use std::sync::Arc;

/// Fresh-variable factory for one rule's rectification.
struct FreshVars {
    counter: u32,
    taken: HashSet<Var>,
}

impl FreshVars {
    fn new(rule: &Rule) -> FreshVars {
        FreshVars {
            counter: 0,
            taken: rule.vars().into_iter().collect(),
        }
    }

    fn fresh(&mut self) -> Var {
        loop {
            let v = Var::named(&format!("_r{}", self.counter));
            self.counter += 1;
            if !self.taken.contains(&v) {
                self.taken.insert(v);
                return v;
            }
        }
    }
}

/// Flattens term `t` to an atomic term, emitting functional-predicate atoms
/// into `out` that define any structure. The returned term is `t` itself
/// when `t` is already atomic.
fn flatten(t: &Term, fresh: &mut FreshVars, out: &mut Vec<Atom>) -> Term {
    match t {
        Term::Var(_) | Term::Int(_) | Term::Sym(_) | Term::Nil => t.clone(),
        Term::Cons(h, tl) => {
            let h = flatten(h, fresh, out);
            let tl = flatten(tl, fresh, out);
            let v = Term::Var(fresh.fresh());
            out.push(Atom::new("cons", vec![h, tl, v.clone()]));
            v
        }
        Term::Comp(f, args) => {
            let mut new_args: Vec<Term> = args.iter().map(|a| flatten(a, fresh, out)).collect();
            let v = Term::Var(fresh.fresh());
            new_args.push(v.clone());
            out.push(Atom {
                pred: Pred {
                    name: *f,
                    arity: new_args.len() as u32,
                },
                args: new_args,
            });
            v
        }
    }
}

fn eq_atom(a: Term, b: Term) -> Atom {
    Atom::new("=", vec![a, b])
}

/// Rectifies one rule. `idb` is the set of intensional predicates — their
/// body occurrences must end up with all-variable arguments.
pub fn rectify_rule(rule: &Rule, idb: &HashSet<Pred>) -> Rule {
    let mut fresh = FreshVars::new(rule);
    let mut extra: Vec<Atom> = Vec::new();

    // Head: distinct variables only.
    let mut seen_head: HashSet<Var> = HashSet::new();
    let head_args: Vec<Term> = rule
        .head
        .args
        .iter()
        .map(|arg| match arg {
            Term::Var(v) if !seen_head.contains(v) => {
                seen_head.insert(*v);
                arg.clone()
            }
            Term::Var(v) => {
                // Repeated head variable: fresh copy + equality.
                let nv = fresh.fresh();
                seen_head.insert(nv);
                extra.push(eq_atom(Term::Var(nv), Term::Var(*v)));
                Term::Var(nv)
            }
            t if t.is_atomic() => {
                let nv = fresh.fresh();
                seen_head.insert(nv);
                extra.push(eq_atom(Term::Var(nv), t.clone()));
                Term::Var(nv)
            }
            t => {
                let flat = flatten(t, &mut fresh, &mut extra);
                // `flatten` on a non-atomic term always returns a fresh var.
                let Term::Var(nv) = flat else { unreachable!() };
                seen_head.insert(nv);
                Term::Var(nv)
            }
        })
        .collect();

    // Body: flatten structured arguments everywhere; force IDB calls to
    // all-variable arguments.
    let mut body: Vec<Atom> = Vec::new();
    for atom in &rule.body {
        if atom.pred.name.as_str() == "=" {
            // `=` is the unification builtin; its arguments may stay
            // structured (it is how displaced structure is expressed).
            body.push(atom.clone());
            continue;
        }
        let force_vars = idb.contains(&atom.pred);
        let args: Vec<Term> = atom
            .args
            .iter()
            .map(|arg| match arg {
                Term::Var(_) => arg.clone(),
                t if t.is_atomic() => {
                    if force_vars {
                        let nv = fresh.fresh();
                        body.push(eq_atom(Term::Var(nv), t.clone()));
                        Term::Var(nv)
                    } else {
                        arg.clone()
                    }
                }
                t => flatten(t, &mut fresh, &mut body),
            })
            .collect();
        body.push(Atom {
            pred: atom.pred,
            args,
        });
    }
    body.extend(extra);

    Rule {
        head: Atom {
            pred: rule.head.pred,
            args: head_args,
        },
        body,
    }
}

/// Rectifies every rule of a program.
///
/// EDB facts (ground facts of predicates with no proper rules) pass through
/// untouched. Ground facts of *intensional* predicates — exit rules like
/// `isort([], []).` — are rectified like any other rule, becoming e.g.
/// `isort(V0, V1) :- V0 = [], V1 = [].`.
pub fn rectify_program(program: &Program) -> Program {
    let idb: HashSet<Pred> = program
        .rules
        .iter()
        .filter(|r| !(r.is_fact() && r.head.is_ground()))
        .map(|r| r.head.pred)
        .collect();
    Program::new(
        program
            .rules
            .iter()
            .map(|r| {
                if r.is_fact() && r.head.is_ground() && !idb.contains(&r.head.pred) {
                    r.clone()
                } else {
                    rectify_rule(r, &idb)
                }
            })
            .collect(),
    )
}

/// True iff a rule is in rectified form: all head arguments distinct
/// variables and all IDB body-atom arguments variables.
pub fn is_rectified(rule: &Rule, idb: &HashSet<Pred>) -> bool {
    let mut seen = HashSet::new();
    for a in &rule.head.args {
        match a {
            Term::Var(v) if seen.insert(*v) => {}
            _ => return false,
        }
    }
    rule.body.iter().all(|atom| {
        atom.pred.name.as_str() == "="
            || !idb.contains(&atom.pred)
            || atom.args.iter().all(|t| matches!(t, Term::Var(_)))
    })
}

/// Reconstructs a term from a `cons`-style functional atom, for display and
/// testing: the inverse direction of flattening for one atom.
pub fn functional_atom_term(atom: &Atom) -> Option<(Term, Term)> {
    if atom.pred.name.as_str() == "cons" && atom.pred.arity == 3 {
        let l = Term::Cons(
            Arc::new(atom.args[0].clone()),
            Arc::new(atom.args[1].clone()),
        );
        return Some((atom.args[2].clone(), l));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainsplit_logic::{parse_program, parse_rule};

    fn idb_of(p: &Program) -> HashSet<Pred> {
        p.rules
            .iter()
            .filter(|r| !(r.is_fact() && r.head.is_ground()))
            .map(|r| r.head.pred)
            .collect()
    }

    #[test]
    fn append_rectifies_to_paper_form() {
        let p = parse_program(
            "append([], L, L).
             append([X | L1], L2, [X | L3]) :- append(L1, L2, L3).",
        )
        .unwrap();
        let r = rectify_program(&p);
        let idb = idb_of(&r);
        for rule in &r.rules {
            assert!(is_rectified(rule, &idb), "not rectified: {rule}");
        }
        // Exit rule: append(V0, L, V1) :- V0 = [], V1 = L.
        let exit = &r.rules[0];
        assert_eq!(exit.body.len(), 2);
        assert!(exit.body.iter().all(|a| a.pred.name.as_str() == "="));
        // Recursive rule gains two cons atoms.
        let rec = &r.rules[1];
        let cons_count = rec
            .body
            .iter()
            .filter(|a| a.pred.name.as_str() == "cons")
            .count();
        assert_eq!(cons_count, 2);
        assert_eq!(rec.body.len(), 3);
    }

    #[test]
    fn isort_rectifies() {
        let p = parse_program(
            "isort([X | Xs], Ys) :- isort(Xs, Zs), insert(X, Zs, Ys).
             isort([], []).
             insert(X, [], [X]).
             insert(X, [Y | Ys], [Y | Zs]) :- X > Y, insert(X, Ys, Zs).
             insert(X, [Y | Ys], [X, Y | Ys]) :- X <= Y.",
        )
        .unwrap();
        let r = rectify_program(&p);
        let idb = idb_of(&r);
        for rule in &r.rules {
            assert!(is_rectified(rule, &idb), "not rectified: {rule}");
        }
        // insert(X, [], [X]) becomes insert(X, V0, V1) :- V0 = [], cons(X, [], V1).
        let base = r
            .rules
            .iter()
            .find(|rule| rule.head.pred == Pred::new("insert", 3) && rule.body.len() == 2)
            .expect("rectified insert base rule");
        let kinds: HashSet<&str> = base.body.iter().map(|a| a.pred.name.as_str()).collect();
        assert!(kinds.contains("=") && kinds.contains("cons"), "{base}");
    }

    #[test]
    fn nested_lists_flatten_recursively() {
        let idb = HashSet::new();
        let r = parse_rule("p(X) :- q([[1, 2], X]).").unwrap();
        let rect = rectify_rule(&r, &idb);
        // [[1,2], X] = cons([1,2], cons(X, [])) needs 4 cons atoms:
        // [1,2] itself needs 2, the spine needs 2.
        let cons_count = rect
            .body
            .iter()
            .filter(|a| a.pred.name.as_str() == "cons")
            .count();
        assert_eq!(cons_count, 4, "{rect}");
        // q's argument is now a variable.
        let q = rect
            .body
            .iter()
            .find(|a| a.pred.name.as_str() == "q")
            .unwrap();
        assert!(matches!(q.args[0], Term::Var(_)));
    }

    #[test]
    fn compound_terms_become_functional_predicates() {
        let idb = HashSet::new();
        let r = parse_rule("p(f(X, 1)) :- q(X).").unwrap();
        let rect = rectify_rule(&r, &idb);
        assert!(matches!(rect.head.args[0], Term::Var(_)));
        let f = rect
            .body
            .iter()
            .find(|a| a.pred.name.as_str() == "f")
            .expect("functional predicate f/3");
        assert_eq!(f.pred.arity, 3);
    }

    #[test]
    fn repeated_head_vars_get_equalities() {
        let idb = HashSet::new();
        let r = parse_rule("p(X, X) :- q(X).").unwrap();
        let rect = rectify_rule(&r, &idb);
        let mut seen = HashSet::new();
        for a in &rect.head.args {
            let Term::Var(v) = a else {
                panic!("head arg not var")
            };
            assert!(seen.insert(*v), "head vars not distinct: {rect}");
        }
        assert!(rect.body.iter().any(|a| a.pred.name.as_str() == "="));
    }

    #[test]
    fn constants_in_edb_atoms_are_preserved() {
        let idb = HashSet::new();
        let r = parse_rule("p(X) :- flight(X, vancouver, 600).").unwrap();
        let rect = rectify_rule(&r, &idb);
        let flight = rect
            .body
            .iter()
            .find(|a| a.pred.name.as_str() == "flight")
            .unwrap();
        assert_eq!(flight.args[1], Term::sym("vancouver"));
        assert_eq!(flight.args[2], Term::Int(600));
    }

    #[test]
    fn constants_in_idb_calls_are_displaced() {
        let p = parse_program(
            "p(X) :- p(0).
             p(1).",
        )
        .unwrap();
        let r = rectify_program(&p);
        let rec = r.rules.iter().find(|rule| !rule.body.is_empty()).unwrap();
        let call = rec
            .body
            .iter()
            .find(|a| a.pred == Pred::new("p", 1))
            .unwrap();
        assert!(matches!(call.args[0], Term::Var(_)), "{rec}");
    }

    #[test]
    fn ground_facts_pass_through() {
        let p = parse_program("p([1, 2]).").unwrap();
        let r = rectify_program(&p);
        assert_eq!(r.rules[0], p.rules[0]);
    }

    #[test]
    fn rectified_rule_is_idempotent() {
        let p = parse_program("append([X | L1], L2, [X | L3]) :- append(L1, L2, L3).").unwrap();
        let once = rectify_program(&p);
        let twice = rectify_program(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn fresh_vars_avoid_capture() {
        let idb = HashSet::new();
        // The rule already uses _r0; rectification must not reuse it.
        let r = parse_rule("p([A | _r0]) :- q(_r0, A).").unwrap();
        let rect = rectify_rule(&r, &idb);
        let all_vars = rect.vars();
        let distinct: HashSet<_> = all_vars.iter().collect();
        assert_eq!(all_vars.len(), distinct.len());
        assert!(is_rectified(&rect, &idb));
    }
}
