//! Chain-split planning: partitioning a chain generating path into an
//! immediately evaluable portion and a delayed-evaluation portion.
//!
//! §2.2 of the paper: given the query's adornment, walk the chain
//! generating path and greedily take every atom that is finitely evaluable
//! under the bindings accumulated so far (the *evaluated portion*). The
//! remaining atoms — those whose evaluation would range over an infinite
//! domain, plus any atoms the cost model *forces* to be delayed
//! (efficiency-based split, §2.1) — form the *delayed portion*, executed in
//! the down sweep once the recursive call's answers supply the missing
//! bindings. Variables produced in the up sweep and consumed by the delayed
//! portion are *buffered* per level (Algorithm 3.2).
//!
//! The planner also stabilises the chain adornment: the bindings available
//! at level `i+1` are exactly the recursive-call arguments bound at level
//! `i`, so the set of bound head positions must reproduce itself. We take
//! the greatest fixpoint inside the query's bound set (monotone, hence
//! terminating).

use crate::chain_form::CompiledRecursion;
use crate::modes::ModeTable;
use chainsplit_logic::{adorn::term_bound, Adornment, Atom, Rule, Var};
use std::collections::HashSet;
use std::fmt;

/// A chain-split evaluation plan for one compiled recursion and one query
/// adornment.
#[derive(Clone, Debug)]
pub struct SplitPlan {
    /// The stable adornment the chain iterates under (bound head
    /// positions reproduced at every level).
    pub adornment: Adornment,
    /// Body indexes of path atoms in the evaluated portion, in up-sweep
    /// evaluation order.
    pub evaluated: Vec<usize>,
    /// Body indexes of path atoms in the delayed portion, in down-sweep
    /// evaluation order.
    pub delayed: Vec<usize>,
    /// Variables bound during the up sweep (inputs included).
    pub up_bound: Vec<Var>,
    /// Up-sweep variables the down sweep needs: the per-level buffer of
    /// Algorithm 3.2. Empty iff no split is needed.
    pub buffered: Vec<Var>,
    /// Per exit rule: its body atoms in an evaluable order under the stable
    /// adornment.
    pub exit_orders: Vec<Vec<usize>>,
}

impl SplitPlan {
    /// True iff a genuine split happens (some atoms are delayed).
    pub fn is_split(&self) -> bool {
        !self.delayed.is_empty()
    }

    /// The frontier positions: bound head positions of the stable adornment.
    pub fn frontier(&self) -> Vec<usize> {
        self.adornment.bound_positions()
    }
}

impl fmt::Display for SplitPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "split[^{} eval={:?} delayed={:?} buffered={:?}]",
            self.adornment, self.evaluated, self.delayed, self.buffered
        )
    }
}

/// Why no split plan exists.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SplitError {
    /// A delayed atom stays non-evaluable even with the recursive call's
    /// full answer available: the query is not finitely evaluable by
    /// chain-split (§2.2's admissibility condition fails).
    NotFinitelyEvaluable { atom: String },
    /// The stable adornment has no bound position: nothing drives the
    /// chain iteration from this side.
    AdornmentCollapsed,
    /// Some head variable is never bound, so answers cannot be formed.
    UnboundAnswer { var: String },
    /// An exit rule cannot be evaluated under the stable adornment.
    ExitNotEvaluable { rule: String },
}

impl fmt::Display for SplitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SplitError::NotFinitelyEvaluable { atom } => {
                write!(f, "atom `{atom}` is not finitely evaluable in either sweep")
            }
            SplitError::AdornmentCollapsed => {
                write!(f, "no stable bound head position drives the chain")
            }
            SplitError::UnboundAnswer { var } => {
                write!(f, "head variable `{var}` is never bound")
            }
            SplitError::ExitNotEvaluable { rule } => {
                write!(f, "exit rule `{rule}` is not finitely evaluable")
            }
        }
    }
}

impl std::error::Error for SplitError {}

/// A cardinality estimate for one atom given the currently bound
/// variables: lower means "evaluate earlier". The chain crate has no
/// access to stored relations, so callers that want statistics-driven
/// ordering (the engine's cost-based join planner, DESIGN.md §14)
/// inject it here; `None` keeps the syntactic first-evaluable order.
pub type CostFn<'c> = &'c dyn Fn(&Atom, &HashSet<Var>) -> f64;

/// Greedily orders `atoms` by finite evaluability starting from `bound`.
/// Returns the chosen order and leaves `bound` extended with every variable
/// the chosen atoms bind. Atoms whose index is in `skip` are never chosen.
pub fn greedy_closure(
    atoms: &[(usize, &Atom)],
    bound: &mut HashSet<Var>,
    modes: &ModeTable,
    skip: &[usize],
) -> Vec<usize> {
    greedy_closure_costed(atoms, bound, modes, skip, None)
}

/// [`greedy_closure`] with an optional cost model: among all atoms that
/// are finitely evaluable under the current bound set, pick the one
/// with the smallest estimate (first position wins ties). Because
/// evaluability is monotone in the bound set (`Adornment::subsumes`),
/// the *set* of atoms ordered is identical whichever evaluable
/// candidate goes first — the cost model only changes the order within
/// a sweep, never the split structure or the answers.
pub fn greedy_closure_costed(
    atoms: &[(usize, &Atom)],
    bound: &mut HashSet<Var>,
    modes: &ModeTable,
    skip: &[usize],
    cost: Option<CostFn<'_>>,
) -> Vec<usize> {
    let mut order = Vec::new();
    let mut remaining: Vec<(usize, &Atom)> = atoms
        .iter()
        .filter(|(i, _)| !skip.contains(i))
        .copied()
        .collect();
    loop {
        let evaluable = |(_, a): &(usize, &Atom)| {
            let ad = Adornment::of_atom(a, bound);
            modes.is_finite(a.pred, &ad)
        };
        let pick = match cost {
            None => remaining.iter().position(evaluable),
            Some(cost) => remaining
                .iter()
                .enumerate()
                .filter(|(_, c)| evaluable(c))
                .map(|(k, (_, a))| (k, cost(a, bound)))
                .min_by(|x, y| x.1.total_cmp(&y.1).then(x.0.cmp(&y.0)))
                .map(|(k, _)| k),
        };
        match pick {
            Some(k) => {
                let (idx, atom) = remaining.remove(k);
                order.push(idx);
                for v in atom.vars() {
                    bound.insert(v);
                }
            }
            None => return order,
        }
    }
}

/// Checks an exit rule is finitely evaluable when the head positions in
/// `ad` are bound; returns the body evaluation order.
pub fn exit_order(rule: &Rule, ad: &Adornment, modes: &ModeTable) -> Option<Vec<usize>> {
    exit_order_costed(rule, ad, modes, None)
}

/// [`exit_order`] ranking evaluable candidates by `cost` (see
/// [`greedy_closure_costed`]).
pub fn exit_order_costed(
    rule: &Rule,
    ad: &Adornment,
    modes: &ModeTable,
    cost: Option<CostFn<'_>>,
) -> Option<Vec<usize>> {
    let mut bound: HashSet<Var> = HashSet::new();
    for (j, arg) in rule.head.args.iter().enumerate() {
        if ad.0[j].is_bound() {
            for v in arg.vars() {
                bound.insert(v);
            }
        }
    }
    let atoms: Vec<(usize, &Atom)> = rule.body.iter().enumerate().collect();
    let order = greedy_closure_costed(&atoms, &mut bound, modes, &[], cost);
    if order.len() != rule.body.len() {
        return None;
    }
    // Every head variable must be bound for the exit to produce answers.
    let all_bound = rule.head.args.iter().all(|arg| term_bound(arg, &bound));
    all_bound.then_some(order)
}

/// Computes the chain-split plan for `rec` under `query_ad`.
///
/// `forced_delays` lists body indexes of path atoms that must be delayed
/// regardless of evaluability — the hook the efficiency-based cost model
/// (§2.1 / Algorithm 3.1's modified binding-propagation rule) uses to stop
/// a binding from crossing a weak linkage.
pub fn plan_split(
    rec: &CompiledRecursion,
    query_ad: &Adornment,
    modes: &ModeTable,
    forced_delays: &[usize],
) -> Result<SplitPlan, SplitError> {
    plan_split_costed(rec, query_ad, modes, forced_delays, None)
}

/// [`plan_split`] with a cost model ranking each sweep's evaluable
/// candidates (see [`greedy_closure_costed`]). The split structure —
/// which atoms land in the evaluated vs delayed portion, the stable
/// adornment, the buffered variables — is identical with or without a
/// cost model; only the order *within* each sweep changes.
pub fn plan_split_costed(
    rec: &CompiledRecursion,
    query_ad: &Adornment,
    modes: &ModeTable,
    forced_delays: &[usize],
    cost: Option<CostFn<'_>>,
) -> Result<SplitPlan, SplitError> {
    assert_eq!(query_ad.len(), rec.arity());
    let path = rec.path_atoms();

    // --- Stabilise the adornment (greatest fixpoint within the query's
    // bound positions). ---
    let mut bound_pos: Vec<usize> = query_ad.bound_positions();
    let (evaluated, up_bound_set) = loop {
        if bound_pos.is_empty() {
            return Err(SplitError::AdornmentCollapsed);
        }
        let mut bound: HashSet<Var> = bound_pos.iter().map(|&j| rec.head_var(j)).collect();
        let order = greedy_closure_costed(&path, &mut bound, modes, forced_delays, cost);
        let rec_atom = rec.rec_atom();
        let next_pos: Vec<usize> = bound_pos
            .iter()
            .copied()
            .filter(|&j| term_bound(&rec_atom.args[j], &bound))
            .collect();
        if next_pos.len() == bound_pos.len() {
            break (order, bound);
        }
        bound_pos = next_pos;
    };

    let adornment = {
        let mut ads = vec![chainsplit_logic::Ad::Free; rec.arity()];
        for &j in &bound_pos {
            ads[j] = chainsplit_logic::Ad::Bound;
        }
        Adornment(ads)
    };

    // --- Delayed portion: remaining path atoms, ordered for the down sweep
    // where the recursive call's full answer is available. ---
    let delayed_idxs: Vec<usize> = path
        .iter()
        .map(|(i, _)| *i)
        .filter(|i| !evaluated.contains(i))
        .collect();
    let mut down_bound: HashSet<Var> = up_bound_set.clone();
    for v in rec.rec_atom().vars() {
        down_bound.insert(v);
    }
    let delayed_atoms: Vec<(usize, &Atom)> = path
        .iter()
        .filter(|(i, _)| delayed_idxs.contains(i))
        .copied()
        .collect();
    let delayed = greedy_closure_costed(&delayed_atoms, &mut down_bound, modes, &[], cost);
    if delayed.len() != delayed_idxs.len() {
        let missing = delayed_atoms
            .iter()
            .find(|(i, _)| !delayed.contains(i))
            .expect("some delayed atom was not ordered");
        return Err(SplitError::NotFinitelyEvaluable {
            atom: missing.1.to_string(),
        });
    }

    // --- Every head variable must be bound once both sweeps ran. ---
    for j in 0..rec.arity() {
        let v = rec.head_var(j);
        if !down_bound.contains(&v) {
            return Err(SplitError::UnboundAnswer { var: v.to_string() });
        }
    }

    // --- Exit rules must be evaluable under the stable adornment. ---
    let mut exit_orders = Vec::with_capacity(rec.exit_rules.len());
    for er in &rec.exit_rules {
        match exit_order_costed(er, &adornment, modes, cost) {
            Some(o) => exit_orders.push(o),
            None => {
                return Err(SplitError::ExitNotEvaluable {
                    rule: er.to_string(),
                })
            }
        }
    }

    // --- Buffered variables: bound in the up sweep, needed by the down
    // sweep (inside delayed atoms or as answers at unbound head positions),
    // and not already delivered by the recursive call's answer. ---
    let rec_vars: HashSet<Var> = rec.rec_atom().vars().into_iter().collect();
    let mut needed: HashSet<Var> = HashSet::new();
    for &i in &delayed {
        for v in rec.recursive_rule.body[i].vars() {
            needed.insert(v);
        }
    }
    for j in 0..rec.arity() {
        if !adornment.0[j].is_bound() {
            needed.insert(rec.head_var(j));
        }
    }
    let mut buffered: Vec<Var> = up_bound_set
        .iter()
        .copied()
        .filter(|v| needed.contains(v) && !rec_vars.contains(v))
        .collect();
    buffered.sort_by_key(|v| (v.name.as_str(), v.rename));

    let mut up_bound: Vec<Var> = up_bound_set.into_iter().collect();
    up_bound.sort_by_key(|v| (v.name.as_str(), v.rename));

    Ok(SplitPlan {
        adornment,
        evaluated,
        delayed,
        up_bound,
        buffered,
        exit_orders,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain_form::compile;
    use crate::graph::DepGraph;
    use crate::rectify::rectify_program;
    use chainsplit_logic::{parse_program, Pred};

    fn setup(src: &str, name: &str, arity: u32) -> (CompiledRecursion, ModeTable) {
        let p = rectify_program(&parse_program(src).unwrap());
        let g = DepGraph::build(&p);
        let rec = compile(&p, &g, Pred::new(name, arity)).unwrap();
        let mut modes = ModeTable::with_builtins();
        // Register EDB predicates: those not defined by rules.
        for pred in p.edb_preds() {
            if !crate::modes::is_builtin(pred) {
                modes.add_edb(pred);
            }
        }
        (rec, modes)
    }

    const APPEND: &str = "append([], L, L).
        append([X | L1], L2, [X | L3]) :- append(L1, L2, L3).";

    #[test]
    fn append_ffb_splits_on_the_u_side_cons() {
        // ?- append(U, V, [1,2,3]): W bound. The W-side cons decomposes
        // finitely; the U-side cons must be delayed (paper §2.2: the
        // compiled chain contains an infinitely evaluable cons under this
        // adornment).
        let (rec, modes) = setup(APPEND, "append", 3);
        let plan = plan_split(&rec, &Adornment::parse("ffb"), &modes, &[]).unwrap();
        assert!(plan.is_split());
        assert_eq!(plan.evaluated.len(), 1);
        assert_eq!(plan.delayed.len(), 1);
        // The evaluated atom mentions the third head variable (W side).
        let w = rec.head_var(2);
        let up_atom = &rec.recursive_rule.body[plan.evaluated[0]];
        assert!(up_atom.vars().contains(&w));
        // The shared element variable X is buffered.
        assert_eq!(plan.buffered.len(), 1);
        assert_eq!(plan.adornment.to_string(), "ffb");
    }

    #[test]
    fn append_bbf_needs_no_split() {
        // ?- append([1,2], [3], W): both inputs bound. Both cons atoms are
        // evaluable in the up sweep (decompose U, construct W... in fact
        // decompose U then construct W needs W1 from below).
        let (rec, modes) = setup(APPEND, "append", 3);
        let plan = plan_split(&rec, &Adornment::parse("bbf"), &modes, &[]).unwrap();
        // U-side cons decomposes; W-side cons waits for W1 from the
        // recursive answer, so it is delayed: chain-split again!
        assert!(plan.is_split());
        assert_eq!(plan.adornment.to_string(), "bbf");
    }

    #[test]
    fn append_fff_collapses() {
        let (rec, modes) = setup(APPEND, "append", 3);
        let err = plan_split(&rec, &Adornment::parse("fff"), &modes, &[]).unwrap_err();
        assert_eq!(err, SplitError::AdornmentCollapsed);
    }

    #[test]
    fn sg_bf_follows_chain_without_split() {
        let (rec, modes) = setup(
            "sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).
             sg(X, Y) :- sibling(X, Y).",
            "sg",
            2,
        );
        let plan = plan_split(&rec, &Adornment::parse("bf"), &modes, &[]).unwrap();
        // parent(Y, Y1) is EDB-finite even with everything free, so the
        // greedy up sweep takes both atoms: no finiteness-based split.
        // (Scanning the Y side per level is the merged-chain inefficiency
        // §1.1 warns about — curing it is the *efficiency-based* split,
        // exercised in the next test.)
        assert!(!plan.is_split());
        assert_eq!(plan.adornment.to_string(), "bf");
        // Y is produced in the up sweep and needed for answers: buffered.
        assert_eq!(
            plan.buffered
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>(),
            vec!["Y"]
        );
    }

    #[test]
    fn sg_bf_with_forced_delay_splits() {
        // The efficiency-based split (§2.1): the cost model forbids
        // propagating the binding through the Y-side parent atom.
        let (rec, modes) = setup(
            "sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).
             sg(X, Y) :- sibling(X, Y).",
            "sg",
            2,
        );
        // Find the body index of parent(Y, Y1).
        let y_idx = rec
            .path_atoms()
            .iter()
            .find(|(_, a)| a.vars().contains(&Var::named("Y")))
            .map(|(i, _)| *i)
            .unwrap();
        let plan = plan_split(&rec, &Adornment::parse("bf"), &modes, &[y_idx]).unwrap();
        assert!(plan.is_split());
        assert_eq!(plan.delayed, vec![y_idx]);
        // Y1 arrives from the recursive answer; nothing else needs buffering.
        assert!(plan.buffered.is_empty());
    }

    #[test]
    fn insert_bbf_buffers_the_list_head() {
        let (rec, mut modes) = setup(
            "insert(X, [Y | Ys], [Y | Zs]) :- X > Y, insert(X, Ys, Zs).
             insert(X, [], [X]).
             insert(X, [Y | Ys], [X, Y | Ys]) :- X <= Y.",
            "insert",
            3,
        );
        modes.add_mode(Pred::new("insert", 3), Adornment::parse("bbf"));
        let plan = plan_split(&rec, &Adornment::parse("bbf"), &modes, &[]).unwrap();
        assert!(plan.is_split());
        assert_eq!(plan.adornment.to_string(), "bbf");
        // Y (the list head compared against X) is buffered for the output
        // cons in the down sweep.
        assert_eq!(
            plan.buffered
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>(),
            vec!["Y"]
        );
        assert_eq!(plan.exit_orders.len(), 2);
    }

    #[test]
    fn non_evaluable_both_ways_errors() {
        // p(X, Y) :- q(X, Z), p(X1, Y1)... a path atom with a var bound in
        // neither sweep: r(W, W2) where W2 touches nothing.
        let (rec, modes) = setup(
            "p(X, Y) :- e(X, X1), W < X, p(X1, Y).
             p(X, Y) :- b(X, Y).",
            "p",
            2,
        );
        let err = plan_split(&rec, &Adornment::parse("bf"), &modes, &[]).unwrap_err();
        assert!(
            matches!(err, SplitError::NotFinitelyEvaluable { .. }),
            "{err}"
        );
    }

    #[test]
    fn exit_not_evaluable_reported() {
        // Exit rule needs an unbound comparison.
        let (rec, modes) = setup(
            "p(X, Y) :- e(X, X1), p(X1, Y).
             p(X, Y) :- X < Y.",
            "p",
            2,
        );
        let err = plan_split(&rec, &Adornment::parse("bf"), &modes, &[]).unwrap_err();
        assert!(matches!(err, SplitError::ExitNotEvaluable { .. }), "{err}");
    }

    #[test]
    fn greedy_closure_respects_skip() {
        let (rec, modes) = setup(
            "sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).
             sg(X, Y) :- sibling(X, Y).",
            "sg",
            2,
        );
        let path = rec.path_atoms();
        let mut bound: HashSet<Var> = [Var::named("X")].into();
        let all = greedy_closure(&path, &mut bound.clone(), &modes, &[]);
        assert_eq!(all.len(), 2);
        let skipped = greedy_closure(&path, &mut bound, &modes, &[path[0].0]);
        assert_eq!(skipped.len(), 1);
    }
}
