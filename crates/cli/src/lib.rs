//! The command processor behind the `chainsplit` shell.
//!
//! Kept as a library so the REPL loop is a thin stdin wrapper and every
//! command is unit-testable. One [`Shell`] holds a [`DeductiveDb`] plus
//! session settings; [`Shell::process`] executes one input line and
//! returns the text to print.

#![forbid(unsafe_code)]

use chainsplit_core::{DeductiveDb, Strategy};
use chainsplit_governor::Budget;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Interactive session state.
pub struct Shell {
    pub db: DeductiveDb,
    pub strategy: Strategy,
    /// Print timing and counters after each query.
    pub timing: bool,
    /// Maximum answers printed per query (0 = unlimited).
    pub max_print: usize,
    /// The last `:why` report, held for `:why export <file>`.
    pub last_why: Option<chainsplit_core::ProofReport>,
}

impl Default for Shell {
    fn default() -> Self {
        Shell {
            db: DeductiveDb::new(),
            strategy: Strategy::Auto,
            timing: false,
            max_print: 50,
            last_why: None,
        }
    }
}

const HELP: &str = "\
commands:
  ?- <goal>[, <constraint>…].   run a query (e.g. ?- sg(ann, Y), Y \\= ann.)
  <clause>.                      assert a fact or rule
  :retract <fact>.               retract a fact: a ground EDB fact comes
                                 out in place (the compiled system
                                 survives, affected cache entries and
                                 witnesses drop, a materialization
                                 repairs via delete-and-rederive); an
                                 exit-rule fact recompiles
  :materialize [status|off]      build the maintained IDB materialization
                                 (kept consistent across asserts and
                                 :retract by incremental DRed repair),
                                 show its state, or drop it
  :load <file>                   load a program file
  :strategy [name]               show or set the evaluation method
                                 (auto, top-down, naive, semi-naive, magic,
                                  supplementary-magic, chain-split-magic,
                                  chain-split, tabled)
  :explain <goal>                show the compilation / split plan
  :why <goal>                    run the query with provenance recording
                                 on and print one proof tree per answer
                                 (why does each answer hold?)
  :why export <file>             write the last :why report as a
                                 schema-versioned JSON document
  :profile <goal>                run the query and show per-round metrics
                                 (EXPLAIN ANALYZE under the set strategy)
  :exists <goal>                 existence check (first answer only)
  :trace on|off                  collect evaluation spans (compile, seed,
                                 fixpoint, per-round, per-access-path)
  :trace export <file>           write the collected spans as a Chrome
                                 trace-event file (chrome://tracing or
                                 https://ui.perfetto.dev), e.g.
                                   :trace on
                                   ?- sg(ann, Y).
                                   :trace export run.trace.json
  :timing on|off                 toggle per-query timing + counters
  :timeout [MS|off]              show or set a wall-clock deadline per
                                 query; an expired deadline returns the
                                 answers derived so far, marked incomplete
  :budget [show how all limits stand, or set one:]
  :budget rounds|tuples|bytes|wall <N>
  :budget off                    lift every limit (Ctrl-C still cancels
                                 the running query, not the shell)
  :cache on|off                  toggle the cross-query answer cache
                                 (epoch-invalidated: rule loads and fact
                                 inserts into supporting predicates drop
                                 exactly the affected entries)
  :cache stats                   hit/miss/invalidation/eviction counts
  :cache clear                   drop every cached answer set
  :plan on|off                   toggle the cost-based join planner
                                 (statistics-driven body ordering with a
                                 per-adornment plan cache; answers are
                                 identical either way)
  :plan stats                    plan-cache hit/miss/replan counts
  :threads [N]                   show or set worker threads for parallel
                                 evaluation (default: CHAINSPLIT_THREADS
                                 or 1; answers and counters are identical
                                 for every N)
  :constraint <body>             add an integrity constraint (denial)
  :check                         check all integrity constraints
  :save <file>                   write the loaded program to a file
  :wal [on|off|status]           show or toggle write-ahead logging
                                 (needs a data dir: chainsplit
                                 --data-dir DIR); re-enabling after
                                 unlogged mutations snapshots first so
                                 the durable state catches up
  :snapshot                      write an atomic snapshot and prune the
                                 WAL prefix it covers
  :stats                         database statistics (per-predicate
                                 cardinalities and EDB mutation epochs,
                                 built access paths, cache occupancy,
                                 materialization state)
  :help                          this text
  :quit                          leave";

fn parse_strategy(name: &str) -> Option<Strategy> {
    Some(match name {
        "auto" => Strategy::Auto,
        "top-down" | "topdown" | "sld" => Strategy::TopDown,
        "naive" => Strategy::Naive,
        "semi-naive" | "seminaive" => Strategy::SemiNaive,
        "magic" => Strategy::Magic,
        "supplementary-magic" | "supplementary" => Strategy::SupplementaryMagic,
        "chain-split-magic" | "split-magic" => Strategy::ChainSplitMagic,
        "chain-split" | "split" => Strategy::ChainSplit,
        "tabled" | "tabling" => Strategy::Tabled,
        _ => return None,
    })
}

/// What the REPL loop should do after a line.
#[derive(PartialEq, Eq, Debug)]
pub enum Control {
    Continue,
    Quit,
}

impl Shell {
    pub fn new() -> Shell {
        Shell::default()
    }

    /// Executes one input line; returns the text to print and whether to
    /// keep going.
    pub fn process(&mut self, line: &str) -> (String, Control) {
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            return (String::new(), Control::Continue);
        }
        if let Some(rest) = line.strip_prefix(':') {
            return self.command(rest);
        }
        if let Some(query) = line.strip_prefix("?-") {
            return (self.run_query(query), Control::Continue);
        }
        // Anything else is a clause to assert.
        match self.db.load(line) {
            Ok(()) => ("ok.".to_string(), Control::Continue),
            Err(e) => (format!("error: {e}"), Control::Continue),
        }
    }

    fn command(&mut self, rest: &str) -> (String, Control) {
        let mut parts = rest.splitn(2, char::is_whitespace);
        let cmd = parts.next().unwrap_or("");
        let arg = parts.next().unwrap_or("").trim();
        let out = match cmd {
            "help" | "h" => HELP.to_string(),
            "quit" | "q" | "exit" => return (String::new(), Control::Quit),
            "load" => match std::fs::read_to_string(arg) {
                Ok(src) => match self.db.load(&src) {
                    Ok(()) => format!("loaded {arg}."),
                    Err(e) => format!("error in {arg}: {e}"),
                },
                Err(e) => format!("cannot read {arg}: {e}"),
            },
            "strategy" => {
                if arg.is_empty() {
                    format!("strategy: {}", self.strategy)
                } else {
                    match parse_strategy(arg) {
                        Some(s) => {
                            self.strategy = s;
                            format!("strategy: {s}")
                        }
                        None => format!("unknown strategy `{arg}` (see :help)"),
                    }
                }
            }
            "explain" => match self.db.explain(arg) {
                Ok(e) => e,
                Err(e) => render_error(arg, &e),
            },
            "why" => self.why_command(arg),
            "profile" => match self.db.explain_analyze(arg, self.strategy) {
                Ok(m) => m.to_string(),
                Err(e) => render_error(arg, &e),
            },
            "exists" => match self.db.exists(arg) {
                Ok(b) => format!("{b}."),
                Err(e) => render_error(arg, &e),
            },
            "trace" => self.trace_command(arg),
            "timing" => {
                self.timing = arg == "on";
                format!("timing: {}", if self.timing { "on" } else { "off" })
            }
            "timeout" => self.timeout_command(arg),
            "budget" => self.budget_command(arg),
            "cache" => self.cache_command(arg),
            "plan" => self.plan_command(arg),
            "threads" => {
                if arg.is_empty() {
                    format!("threads: {}", self.db.threads())
                } else {
                    match arg.parse::<usize>() {
                        Ok(n) if n >= 1 => {
                            self.db.set_threads(n);
                            format!("threads: {n}")
                        }
                        _ => "usage: :threads <N> (N >= 1)".to_string(),
                    }
                }
            }
            "constraint" => match self.db.add_integrity_constraint(arg) {
                Ok(()) => "constraint added.".to_string(),
                Err(e) => format!("error: {e}"),
            },
            "check" => match self.db.check_integrity() {
                Ok(v) if v.is_empty() => "all constraints satisfied.".to_string(),
                Ok(v) => v.join("\n"),
                Err(e) => format!("error: {e}"),
            },
            "retract" => self.retract_command(arg),
            "materialize" => self.materialize_command(arg),
            "wal" => self.wal_command(arg),
            "snapshot" => self.snapshot_command(),
            "save" => match std::fs::write(arg, self.db.dump()) {
                Ok(()) => format!("saved {arg}."),
                Err(e) => format!("cannot write {arg}: {e}"),
            },
            "stats" => self.stats(),
            other => format!("unknown command `:{other}` (see :help)"),
        };
        (out, Control::Continue)
    }

    /// Replaces the session database with a durable one at `dir`
    /// (`--data-dir`): recovers the newest snapshot plus the WAL suffix
    /// and leaves logging on. Returns what recovery found, or an error
    /// message — recovery refuses on real corruption rather than
    /// continuing from a diverged state.
    pub fn open_data_dir(&mut self, dir: &str) -> Result<String, String> {
        match DeductiveDb::open(std::path::Path::new(dir)) {
            Ok(db) => {
                self.db = db;
                let r = self.db.recovery_report().cloned();
                Ok(match r {
                    Some(r)
                        if r.snapshot_seq > 0
                            || r.replayed_records > 0
                            || r.truncated_bytes > 0 =>
                    {
                        format!(
                            "data dir {dir}: recovered snapshot seq {}, replayed {} record(s), \
                             truncated {} torn byte(s), {} op(s) durable",
                            r.snapshot_seq, r.replayed_records, r.truncated_bytes, r.ops_durable
                        )
                    }
                    _ => format!("data dir {dir}: fresh database, wal on"),
                })
            }
            Err(e) => Err(format!("cannot open data dir {dir}: {e}")),
        }
    }

    fn wal_command(&mut self, arg: &str) -> String {
        const NO_DIR: &str = "wal: no data dir (start with --data-dir DIR)";
        match arg {
            "" | "status" => match self.db.store_status() {
                None => NO_DIR.to_string(),
                Some(st) => {
                    let mut out = format!(
                        "wal: {} | {st}",
                        if self.db.wal_enabled() { "on" } else { "off" }
                    );
                    if let Some(r) = self.db.recovery_report() {
                        write!(
                            out,
                            "\nrecovered: snapshot seq {}, {} record(s) replayed, \
                             {} torn byte(s) truncated",
                            r.snapshot_seq, r.replayed_records, r.truncated_bytes
                        )
                        .unwrap();
                    }
                    out
                }
            },
            "on" => match self.db.set_wal(true) {
                Ok(true) => "wal: on".to_string(),
                Ok(false) => NO_DIR.to_string(),
                Err(e) => format!("error: {e}"),
            },
            "off" => {
                let _ = self.db.set_wal(false);
                "wal: off".to_string()
            }
            _ => "usage: :wal [on|off|status]".to_string(),
        }
    }

    fn snapshot_command(&mut self) -> String {
        match self.db.snapshot() {
            Ok(Some(path)) => format!("snapshot written: {}", path.display()),
            Ok(None) => "snapshot: no data dir (start with --data-dir DIR)".to_string(),
            Err(e) => format!("error: {e}"),
        }
    }

    fn why_command(&mut self, arg: &str) -> String {
        if arg.is_empty() {
            return "usage: :why <goal> | :why export <file>".to_string();
        }
        if arg == "export" || arg.starts_with("export ") {
            let path = arg["export".len()..].trim();
            if path.is_empty() {
                return "usage: :why export <file>".to_string();
            }
            return match &self.last_why {
                None => "no proof collected yet (run :why <goal> first)".to_string(),
                Some(report) => match std::fs::write(path, report.export_json().to_pretty()) {
                    Ok(()) => {
                        format!("why: wrote {} proof(s) to {path}", report.proofs.len())
                    }
                    Err(e) => format!("cannot write {path}: {e}"),
                },
            };
        }
        match self.db.explain_answer_with(arg, self.strategy) {
            Ok(report) => {
                let mut out = if report.proofs.is_empty() {
                    "no.".to_string()
                } else {
                    report.render()
                };
                write!(
                    out,
                    "\n[{} | {} answer(s), {} proof(s){}]",
                    report.strategy,
                    report.answers.len(),
                    report.proofs.len(),
                    if report.cached { ", cached" } else { "" },
                )
                .unwrap();
                self.last_why = Some(report);
                out
            }
            Err(e) => render_error(arg, &e),
        }
    }

    fn trace_command(&mut self, arg: &str) -> String {
        match arg {
            "" => format!(
                "trace: {} ({} spans collected)",
                if chainsplit_trace::is_enabled() {
                    "on"
                } else {
                    "off"
                },
                chainsplit_trace::span_count()
            ),
            "on" => {
                chainsplit_trace::clear();
                chainsplit_trace::enable();
                "trace: on (spans collect until :trace export or :trace off)".to_string()
            }
            "off" => {
                chainsplit_trace::disable();
                format!(
                    "trace: off ({} spans still held; :trace export <file> to write)",
                    chainsplit_trace::span_count()
                )
            }
            arg => match arg.strip_prefix("export") {
                Some(path) if !path.trim().is_empty() => {
                    let path = path.trim();
                    match chainsplit_trace::export_chrome_to(std::path::Path::new(path)) {
                        Ok(n) => format!("trace: wrote {n} spans to {path}"),
                        Err(e) => format!("cannot write {path}: {e}"),
                    }
                }
                Some(_) => "usage: :trace export <file>".to_string(),
                None => "usage: :trace on|off|export <file>".to_string(),
            },
        }
    }

    fn timeout_command(&mut self, arg: &str) -> String {
        let mut budget = self.db.budget();
        match arg {
            "" => match budget.wall {
                Some(d) => format!("timeout: {} ms", d.as_millis()),
                None => "timeout: off".to_string(),
            },
            "off" => {
                budget.wall = None;
                self.db.set_budget(budget);
                "timeout: off".to_string()
            }
            ms => match ms.parse::<u64>() {
                Ok(ms) if ms >= 1 => {
                    budget.wall = Some(Duration::from_millis(ms));
                    self.db.set_budget(budget);
                    format!("timeout: {ms} ms")
                }
                _ => "usage: :timeout <MS>|off".to_string(),
            },
        }
    }

    fn budget_command(&mut self, arg: &str) -> String {
        let mut budget = self.db.budget();
        let show = |b: &Budget| {
            let lim = |v: Option<u64>| v.map_or("off".to_string(), |n| n.to_string());
            format!(
                "budget: wall {} | rounds {} | tuples {} | bytes {}",
                b.wall
                    .map_or("off".to_string(), |d| format!("{} ms", d.as_millis())),
                lim(b.max_rounds),
                lim(b.max_tuples),
                lim(b.max_bytes_est),
            )
        };
        if arg.is_empty() {
            return show(&budget);
        }
        if arg == "off" {
            self.db.set_budget(Budget::default());
            return show(&Budget::default());
        }
        let mut parts = arg.split_whitespace();
        let (Some(which), Some(value)) = (parts.next(), parts.next()) else {
            return "usage: :budget [rounds|tuples|bytes|wall <N> | off]".to_string();
        };
        let Ok(n) = value.parse::<u64>() else {
            return format!("`{value}` is not a number");
        };
        match which {
            "rounds" => budget.max_rounds = Some(n),
            "tuples" => budget.max_tuples = Some(n),
            "bytes" => budget.max_bytes_est = Some(n),
            "wall" => budget.wall = Some(Duration::from_millis(n)),
            other => return format!("unknown budget `{other}` (rounds, tuples, bytes, wall)"),
        }
        self.db.set_budget(budget);
        show(&budget)
    }

    fn cache_command(&mut self, arg: &str) -> String {
        match arg {
            "" => {
                let (entries, bytes) = self.db.cache_usage();
                format!(
                    "cache: {} ({entries} entries, {bytes} bytes)",
                    if self.db.cache_enabled() { "on" } else { "off" }
                )
            }
            "on" => {
                self.db.set_cache_enabled(true);
                "cache: on".to_string()
            }
            "off" => {
                self.db.set_cache_enabled(false);
                "cache: off".to_string()
            }
            "stats" => {
                let s = self.db.cache_stats();
                let (entries, bytes) = self.db.cache_usage();
                format!(
                    "cache: hits {} | misses {} | stale {} | evicted {} | entries {entries} | bytes {bytes}",
                    s.hits, s.misses, s.invalidations, s.evictions
                )
            }
            "clear" => {
                self.db.clear_cache();
                "cache: cleared.".to_string()
            }
            _ => "usage: :cache [on|off|stats|clear]".to_string(),
        }
    }

    fn plan_command(&mut self, arg: &str) -> String {
        match arg {
            "" => format!(
                "plan: {}",
                if self.db.plan_enabled() { "on" } else { "off" }
            ),
            "on" => {
                self.db.set_plan_enabled(true);
                "plan: on".to_string()
            }
            "off" => {
                self.db.set_plan_enabled(false);
                "plan: off".to_string()
            }
            "stats" => {
                let s = self.db.plan_stats();
                format!(
                    "plan: hits {} | misses {} | replans {} | invalidations {}",
                    s.hits, s.misses, s.replans, s.invalidations
                )
            }
            _ => "usage: :plan [on|off|stats]".to_string(),
        }
    }

    fn retract_command(&mut self, arg: &str) -> String {
        let src = arg.trim().trim_end_matches('.');
        if src.is_empty() {
            return "usage: :retract <fact>.".to_string();
        }
        let fact = match chainsplit_logic::parse_query(src) {
            Ok(a) => a,
            Err(e) => return format!("error: {e}"),
        };
        match self.db.retract_fact(&fact) {
            Ok(out) if !out.removed => format!("nothing to retract: {fact} is not loaded."),
            Ok(out) => {
                let mut text = format!("retracted {fact}.");
                if out.recompiled {
                    text.push_str(" (rule program changed: recompiled)");
                }
                if let Some(repair) = &out.repair {
                    write!(
                        text,
                        " [repair: {} deleted / {} rederived in {}+{} round(s)]",
                        repair.deleted,
                        repair.rederived,
                        repair.delete_rounds,
                        repair.rederive_rounds
                    )
                    .unwrap();
                    if repair.trip.is_some() {
                        text.push_str(" [tripped: materialization dropped]");
                    }
                }
                if out.witnesses_evicted > 0 {
                    write!(text, " [{} witness(es) evicted]", out.witnesses_evicted).unwrap();
                }
                text
            }
            Err(e) => format!("error: {e}"),
        }
    }

    fn materialize_command(&mut self, arg: &str) -> String {
        match arg {
            "" => match self.db.materialize() {
                Ok(true) => {
                    let m = self.db.materialization().unwrap();
                    format!(
                        "materialized: {} IDB tuple(s) over {} predicate(s).",
                        m.idb_rows(),
                        m.idb_preds().len()
                    )
                }
                Ok(false) => {
                    "cannot materialize: not bottom-up evaluable (or a budget tripped).".to_string()
                }
                Err(e) => format!("error: {e}"),
            },
            "status" => match self.db.materialization() {
                Some(m) => format!(
                    "materialized: yes | {} IDB tuple(s), {} predicate(s), {} repair(s)",
                    m.idb_rows(),
                    m.idb_preds().len(),
                    m.repairs()
                ),
                None => "materialized: no".to_string(),
            },
            "off" => {
                self.db.dematerialize();
                "materialization dropped.".to_string()
            }
            _ => "usage: :materialize [status|off]".to_string(),
        }
    }

    fn stats(&mut self) -> String {
        let cache_on = self.db.cache_enabled();
        let (cache_entries, cache_bytes) = self.db.cache_usage();
        let cache_stats = self.db.cache_stats();
        let epochs = self.db.edb_epochs().clone();
        let materialized = self
            .db
            .materialization()
            .map(|m| (m.idb_rows(), m.idb_preds().len(), m.repairs()));
        let sys = self.db.system();
        let mut out = String::new();
        writeln!(out, "EDB: {} facts", sys.edb.total_rows()).unwrap();
        for p in sys.edb.preds() {
            let rel = sys.edb.relation(p).unwrap();
            // Access paths appear on demand, so the listed column sets
            // record how queries have actually probed this relation.
            let index_cols = rel.index_cols();
            let paths = if index_cols.is_empty() {
                "scan only".to_string()
            } else {
                format!(
                    "{} access path(s): {}",
                    index_cols.len(),
                    index_cols
                        .iter()
                        .map(|cols| {
                            let cols: Vec<String> = cols.iter().map(usize::to_string).collect();
                            format!("[{}]", cols.join(","))
                        })
                        .collect::<Vec<_>>()
                        .join(" ")
                )
            };
            let epoch = epochs.get(&p).copied().unwrap_or(0);
            writeln!(out, "  {p}: {} tuples, epoch {epoch}, {paths}", rel.len()).unwrap();
        }
        writeln!(out, "IDB: {} predicates", sys.classes.len()).unwrap();
        for (p, class) in &sys.classes {
            let chains = sys
                .compiled
                .get(p)
                .map(|r| format!(", {} chain(s)", r.n_chains()))
                .unwrap_or_default();
            writeln!(out, "  {p}: {class}{chains}").unwrap();
        }
        writeln!(
            out,
            "cache: {} | {cache_entries} entries, {cache_bytes} bytes | hits {} | misses {} | stale {} | evicted {}",
            if cache_on { "on" } else { "off" },
            cache_stats.hits,
            cache_stats.misses,
            cache_stats.invalidations,
            cache_stats.evictions,
        )
        .unwrap();
        match materialized {
            Some((rows, preds, repairs)) => writeln!(
                out,
                "materialization: on | {rows} IDB tuple(s), {preds} predicate(s), {repairs} repair(s)"
            )
            .unwrap(),
            None => writeln!(out, "materialization: off").unwrap(),
        }
        if chainsplit_provenance::is_enabled() {
            writeln!(
                out,
                "provenance: on | {} witnesses, {} bytes",
                chainsplit_provenance::witness_count(),
                chainsplit_provenance::arena_bytes(),
            )
            .unwrap();
        }
        out.pop();
        out
    }

    fn run_query(&mut self, query: &str) -> String {
        // A Ctrl-C from a *previous* query must not cancel this one.
        chainsplit_governor::clear_interrupt();
        let start = Instant::now();
        match self.db.query_with(query, self.strategy) {
            Ok(outcome) => {
                let mut out = String::new();
                if outcome.answers.is_empty() {
                    out.push_str("no.");
                } else {
                    let shown = if self.max_print == 0 {
                        outcome.answers.len()
                    } else {
                        outcome.answers.len().min(self.max_print)
                    };
                    for a in &outcome.answers[..shown] {
                        writeln!(out, "{a}").unwrap();
                    }
                    if shown < outcome.answers.len() {
                        writeln!(out, "… {} more", outcome.answers.len() - shown).unwrap();
                    }
                    write!(out, "{} answer(s).", outcome.answers.len()).unwrap();
                }
                if let Some(trip) = &outcome.trip {
                    write!(out, "\n[incomplete: {trip}]").unwrap();
                }
                if self.timing {
                    let ms = start.elapsed().as_secs_f64() * 1e3;
                    write!(
                        out,
                        "\n[{} | {ms:.2} ms | derived {} | probed {} | matched {} | magic {} | buffered {}]",
                        outcome.strategy,
                        outcome.counters.derived,
                        outcome.counters.probed,
                        outcome.counters.matched,
                        outcome.counters.magic_facts,
                        outcome.counters.buffered_peak,
                    )
                    .unwrap();
                }
                out
            }
            Err(e) => render_error(query, &e),
        }
    }
}

/// Renders a [`DbError`] for the shell — every command that takes a goal
/// (queries, `:profile`, `:explain`, `:exists`) reports failures through
/// this one path. Parse errors additionally show the offending input line
/// with a caret under the failing column.
fn render_error(input: &str, e: &chainsplit_core::DbError) -> String {
    let mut out = format!("error: {e}");
    if let chainsplit_core::DbError::Parse(p) = e {
        if let Some(line) = input.trim().lines().nth(p.line.saturating_sub(1) as usize) {
            let caret_at = (p.col.saturating_sub(1) as usize).min(line.len());
            out.push_str(&format!("\n  {line}\n  {}^", " ".repeat(caret_at)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(shell: &mut Shell, lines: &[&str]) -> Vec<String> {
        lines.iter().map(|l| shell.process(l).0).collect()
    }

    #[test]
    fn assert_and_query() {
        let mut sh = Shell::new();
        let out = feed(
            &mut sh,
            &[
                "parent(a, b).",
                "anc(X, Y) :- parent(X, Y).",
                "anc(X, Y) :- parent(X, Z), anc(Z, Y).",
                "?- anc(a, Y).",
            ],
        );
        assert_eq!(out[0], "ok.");
        assert!(out[3].contains("Y = b"));
        assert!(out[3].contains("1 answer(s)."));
    }

    #[test]
    fn failing_query_says_no() {
        let mut sh = Shell::new();
        sh.process("p(1).");
        assert_eq!(sh.process("?- p(2).").0, "no.");
    }

    #[test]
    fn strategy_switching() {
        let mut sh = Shell::new();
        assert!(sh.process(":strategy").0.contains("auto"));
        assert!(sh.process(":strategy tabled").0.contains("tabled"));
        assert_eq!(sh.strategy, Strategy::Tabled);
        assert!(sh.process(":strategy nope").0.contains("unknown strategy"));
    }

    #[test]
    fn explain_and_exists() {
        let mut sh = Shell::new();
        sh.process("append([], L, L).");
        sh.process("append([X | L1], L2, [X | L3]) :- append(L1, L2, L3).");
        let e = sh.process(":explain append(U, V, [1, 2])").0;
        assert!(e.contains("split: yes"), "{e}");
        assert_eq!(sh.process(":exists append(U, V, [1, 2])").0, "true.");
        assert_eq!(sh.process(":exists append([9], V, [1, 2])").0, "false.");
    }

    #[test]
    fn profile_reports_metrics() {
        let mut sh = Shell::new();
        sh.process("edge(a, b). edge(b, c).");
        sh.process("path(X, Y) :- edge(X, Y).");
        sh.process("path(X, Y) :- edge(X, Z), path(Z, Y).");
        sh.process(":strategy semi-naive");
        let out = sh.process(":profile path(a, Y)").0;
        assert!(out.contains("2 answers"), "{out}");
        assert!(out.contains("phases:"), "{out}");
        assert!(out.contains("round"), "{out}");
        let bad = sh.process(":profile path(").0;
        assert!(bad.starts_with("error:"), "{bad}");
    }

    #[test]
    fn timing_toggle() {
        let mut sh = Shell::new();
        sh.process("p(1).");
        sh.process(":timing on");
        let out = sh.process("?- p(X).").0;
        assert!(out.contains("derived"), "{out}");
    }

    #[test]
    fn threads_command() {
        let mut sh = Shell::new();
        assert_eq!(sh.process(":threads 4").0, "threads: 4");
        assert_eq!(sh.process(":threads").0, "threads: 4");
        assert!(sh.process(":threads 0").0.starts_with("usage:"));
        assert!(sh.process(":threads many").0.starts_with("usage:"));
        // Queries still answer correctly with workers on.
        sh.process("edge(a, b).");
        sh.process("edge(b, c).");
        sh.process("path(X, Y) :- edge(X, Y).");
        sh.process("path(X, Y) :- edge(X, Z), path(Z, Y).");
        let out = sh.process("?- path(a, Y).").0;
        assert!(out.contains('b') && out.contains('c'), "{out}");
    }

    #[test]
    fn timeout_command_round_trips() {
        let mut sh = Shell::new();
        assert_eq!(sh.process(":timeout").0, "timeout: off");
        assert_eq!(sh.process(":timeout 250").0, "timeout: 250 ms");
        assert_eq!(sh.process(":timeout").0, "timeout: 250 ms");
        assert_eq!(sh.process(":timeout off").0, "timeout: off");
        assert!(sh.process(":timeout soon").0.starts_with("usage:"));
    }

    #[test]
    fn budget_command_sets_and_lifts_limits() {
        let mut sh = Shell::new();
        assert_eq!(
            sh.process(":budget").0,
            "budget: wall off | rounds off | tuples off | bytes off"
        );
        assert!(sh.process(":budget rounds 3").0.contains("rounds 3"));
        assert!(sh.process(":budget tuples 100").0.contains("tuples 100"));
        let shown = sh.process(":budget").0;
        assert!(
            shown.contains("rounds 3") && shown.contains("tuples 100"),
            "{shown}"
        );
        assert!(sh.process(":budget off").0.contains("rounds off"));
        assert!(sh.process(":budget fuel 9").0.contains("unknown budget"));
        assert!(sh.process(":budget rounds lots").0.contains("not a number"));
    }

    #[test]
    fn tripped_query_is_marked_incomplete_and_recovers() {
        let mut sh = Shell::new();
        sh.process("edge(a, b). edge(b, c). edge(c, d). edge(d, e).");
        sh.process("path(X, Y) :- edge(X, Y).");
        sh.process("path(X, Y) :- edge(X, Z), path(Z, Y).");
        sh.process(":strategy semi-naive");
        sh.process(":budget rounds 2");
        let out = sh.process("?- path(a, Y).").0;
        assert!(out.contains("[incomplete:"), "{out}");
        assert!(out.contains("rounds"), "{out}");
        // Lifting the budget restores the complete answer set on the
        // same shell session.
        sh.process(":budget off");
        let out = sh.process("?- path(a, Y).").0;
        assert!(out.contains("4 answer(s)."), "{out}");
        assert!(!out.contains("incomplete"), "{out}");
    }

    #[test]
    fn cache_command_round_trips() {
        let mut sh = Shell::new();
        sh.process("e(1).");
        sh.process("p(X) :- e(X).");
        assert_eq!(sh.process(":cache").0, "cache: off (0 entries, 0 bytes)");
        assert_eq!(sh.process(":cache on").0, "cache: on");
        sh.process("?- p(X).");
        sh.process("?- p(X).");
        let s = sh.process(":cache stats").0;
        assert!(s.contains("hits 1"), "{s}");
        assert!(s.contains("misses 1"), "{s}");
        assert!(s.contains("entries 1"), "{s}");
        let shown = sh.process(":cache").0;
        assert!(shown.starts_with("cache: on (1 entries"), "{shown}");
        assert_eq!(sh.process(":cache clear").0, "cache: cleared.");
        assert!(sh.process(":cache").0.contains("0 entries"));
        assert_eq!(sh.process(":cache off").0, "cache: off");
        assert!(sh.process(":cache sideways").0.starts_with("usage:"));
    }

    #[test]
    fn plan_command_round_trips() {
        let mut sh = Shell::new();
        sh.process("edge(1, 2). edge(2, 3).");
        sh.process("path(X, Y) :- edge(X, Y).");
        assert_eq!(sh.process(":plan").0, "plan: on");
        sh.process("?- path(1, Y).");
        let s = sh.process(":plan stats").0;
        assert!(s.starts_with("plan: hits"), "{s}");
        assert_eq!(sh.process(":plan off").0, "plan: off");
        assert_eq!(sh.process(":plan").0, "plan: off");
        assert_eq!(sh.process(":plan on").0, "plan: on");
        assert!(sh.process(":plan sideways").0.starts_with("usage:"));
        // :explain reports the planner switch and the per-rule join plans.
        let e = sh.process(":explain path(1, Y)").0;
        assert!(e.contains("planner: on"), "{e}");
        assert!(e.contains("join plans:"), "{e}");
        // :profile surfaces the plan-cache counters.
        let p = sh.process(":profile path(1, Y)").0;
        assert!(p.contains("plans: hits"), "{p}");
    }

    #[test]
    fn cache_survives_fact_asserts_to_unrelated_predicates() {
        let mut sh = Shell::new();
        sh.process("ea(1). eb(2).");
        sh.process("pa(X) :- ea(X).");
        sh.process("pb(X) :- eb(X).");
        sh.process(":cache on");
        sh.process("?- pa(X).");
        sh.process("?- pb(X).");
        // Asserting into `ea` drops only the `pa` entry.
        sh.process("ea(3).");
        sh.process("?- pb(X).");
        let s = sh.process(":cache stats").0;
        assert!(s.contains("hits 1"), "{s}");
        assert!(s.contains("stale"), "{s}");
        // The invalidated entry re-fills with the new answer set.
        let out = sh.process("?- pa(X).").0;
        assert!(out.contains("2 answer(s)."), "{out}");
    }

    #[test]
    fn stats_report() {
        let mut sh = Shell::new();
        sh.process("e(1, 2).");
        sh.process("t(X, Y) :- e(X, Y).");
        let s = sh.process(":stats").0;
        assert!(s.contains("e/2: 1 tuples"), "{s}");
        assert!(s.contains("t/2: non-recursive"), "{s}");
        assert!(s.contains("cache: off"), "{s}");
        // No query has probed `e` with a bound key yet: scan only.
        assert!(s.contains("scan only"), "{s}");
    }

    #[test]
    fn stats_reports_access_paths_and_cache_occupancy() {
        let mut sh = Shell::new();
        // A chain long enough to clear the lazy-index threshold, so the
        // bound-argument probes actually build an access path.
        for i in 0..=chainsplit_relation::LAZY_INDEX_THRESHOLD {
            sh.process(&format!("edge(n{i}, n{}).", i + 1));
        }
        sh.process("path(X, Y) :- edge(X, Y).");
        sh.process("path(X, Y) :- edge(X, Z), path(Z, Y).");
        sh.process(":cache on");
        // The default (auto) strategy probes the system's own EDB, so the
        // access paths it builds are visible to :stats afterwards;
        // top-down would probe a per-query scratch database.
        sh.process("?- path(n0, Y).");
        let s = sh.process(":stats").0;
        // The bound-first-argument probe built an index on column 0.
        assert!(s.contains("access path(s): [0]"), "{s}");
        assert!(s.contains("cache: on | 1 entries"), "{s}");
        assert!(s.contains("misses 1"), "{s}");
    }

    #[test]
    fn retract_removes_a_fact_in_place() {
        let mut sh = Shell::new();
        sh.process("edge(a, b). edge(b, c).");
        sh.process("path(X, Y) :- edge(X, Y).");
        sh.process("path(X, Y) :- edge(X, Z), path(Z, Y).");
        let before = sh.process("?- path(a, Y).").0;
        assert!(before.contains("2 answer(s)."), "{before}");
        let out = sh.process(":retract edge(b, c).").0;
        assert_eq!(out, "retracted edge(b, c).");
        let after = sh.process("?- path(a, Y).").0;
        assert!(after.contains("1 answer(s)."), "{after}");
        // Retracting it again is a no-op with an honest message.
        let again = sh.process(":retract edge(b, c).").0;
        assert!(again.starts_with("nothing to retract:"), "{again}");
        assert!(sh.process(":retract").0.starts_with("usage:"));
        assert!(sh.process(":retract edge(").0.starts_with("error:"));
    }

    #[test]
    fn retract_of_an_exit_rule_fact_recompiles() {
        let mut sh = Shell::new();
        sh.process("e(1).");
        sh.process("p(X) :- e(X).");
        sh.process("p(9).");
        let out = sh.process(":retract p(9).").0;
        assert!(out.contains("recompiled"), "{out}");
        assert_eq!(sh.process("?- p(9).").0, "no.");
    }

    #[test]
    fn materialize_builds_repairs_and_drops() {
        let mut sh = Shell::new();
        sh.process("edge(a, b). edge(b, c). edge(c, d).");
        sh.process("path(X, Y) :- edge(X, Y).");
        sh.process("path(X, Y) :- edge(X, Z), path(Z, Y).");
        let built = sh.process(":materialize").0;
        assert_eq!(built, "materialized: 6 IDB tuple(s) over 1 predicate(s).");
        // A retraction repairs the materialization incrementally …
        let out = sh.process(":retract edge(b, c).").0;
        assert!(out.contains("[repair:"), "{out}");
        let answers = sh.process("?- path(a, Y).").0;
        assert!(answers.contains("1 answer(s)."), "{answers}");
        let status = sh.process(":materialize status").0;
        assert!(status.contains("yes"), "{status}");
        assert!(status.contains("1 repair(s)"), "{status}");
        // … and :materialize off drops it without touching answers.
        assert_eq!(sh.process(":materialize off").0, "materialization dropped.");
        assert_eq!(sh.process(":materialize status").0, "materialized: no");
        assert!(sh.process(":materialize sideways").0.starts_with("usage:"));
    }

    #[test]
    fn goal_directed_programs_report_unmaterializable() {
        let mut sh = Shell::new();
        sh.process("append([], L, L).");
        sh.process("append([X | L1], L2, [X | L3]) :- append(L1, L2, L3).");
        let out = sh.process(":materialize").0;
        assert!(out.starts_with("cannot materialize:"), "{out}");
        assert_eq!(sh.process(":materialize status").0, "materialized: no");
    }

    #[test]
    fn stats_reports_edb_epochs_and_materialization() {
        let mut sh = Shell::new();
        sh.process("e(1, 2). e(2, 3).");
        sh.process("t(X, Y) :- e(X, Y).");
        let s = sh.process(":stats").0;
        assert!(s.contains("e/2: 2 tuples, epoch 0"), "{s}");
        assert!(s.contains("materialization: off"), "{s}");
        sh.process(":retract e(2, 3).");
        sh.process(":materialize");
        let s = sh.process(":stats").0;
        assert!(s.contains("e/2: 1 tuples, epoch 1"), "{s}");
        assert!(s.contains("materialization: on | 1 IDB tuple(s)"), "{s}");
    }

    #[test]
    fn why_renders_proof_trees() {
        let mut sh = Shell::new();
        sh.process("edge(a, b). edge(b, c).");
        sh.process("path(X, Y) :- edge(X, Y).");
        sh.process("path(X, Y) :- edge(X, Z), path(Z, Y).");
        let out = sh.process(":why path(a, c)").0;
        assert!(out.contains("path(a, c)"), "{out}");
        // The two-hop answer is justified through the recursive rule and
        // bottoms out in EDB facts.
        assert!(out.contains("edge(a, b)"), "{out}");
        assert!(out.contains("edge(b, c)"), "{out}");
        assert!(out.contains("fact"), "{out}");
        assert!(out.contains("1 answer(s), 1 proof(s)"), "{out}");
        // Recording is session-scoped: the shell's db left it off.
        assert!(!chainsplit_provenance::is_enabled());
    }

    #[test]
    fn why_says_no_for_underivable_goals() {
        let mut sh = Shell::new();
        sh.process("p(1).");
        let out = sh.process(":why p(2)").0;
        assert!(out.starts_with("no."), "{out}");
    }

    #[test]
    fn why_export_writes_schema_versioned_json() {
        let dir = std::env::temp_dir().join("chainsplit_cli_why_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("why.json");
        let path_str = path.to_str().unwrap().to_string();
        let mut sh = Shell::new();
        assert!(sh
            .process(&format!(":why export {path_str}"))
            .0
            .contains("no proof collected yet"));
        sh.process("edge(a, b).");
        sh.process("path(X, Y) :- edge(X, Y).");
        sh.process(":why path(a, Y)");
        let out = sh.process(&format!(":why export {path_str}")).0;
        assert!(out.contains("wrote 1 proof(s)"), "{out}");
        let doc =
            chainsplit_trace::json::Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema_version").and_then(|v| v.as_usize()),
            Some(chainsplit_provenance::PROOF_SCHEMA_VERSION)
        );
        assert_eq!(doc.get("proofs").map(|p| p.as_array().len()), Some(1));
    }

    #[test]
    fn why_and_explain_share_the_caret_error_path() {
        let mut sh = Shell::new();
        sh.process("p(1).");
        let why = sh.process(":why p(").0;
        let explain = sh.process(":explain p(").0;
        for out in [&why, &explain] {
            assert!(out.starts_with("error:"), "{out}");
            // The offending line echoes with a caret under the column.
            assert!(out.contains("p("), "{out}");
            assert!(out.contains('^'), "{out}");
        }
        assert!(sh.process(":why").0.starts_with("usage:"));
    }

    #[test]
    fn quit_and_comments() {
        let mut sh = Shell::new();
        assert_eq!(sh.process("% a comment").1, Control::Continue);
        assert_eq!(sh.process("").1, Control::Continue);
        assert_eq!(sh.process(":quit").1, Control::Quit);
    }

    #[test]
    fn parse_errors_are_reported_not_fatal() {
        let mut sh = Shell::new();
        let out = sh.process("p(").0;
        assert!(out.starts_with("error:"), "{out}");
        assert_eq!(sh.process("p(1).").0, "ok.");
    }

    #[test]
    fn max_print_truncates() {
        let mut sh = Shell::new();
        sh.max_print = 2;
        for i in 0..5 {
            sh.process(&format!("n({i})."));
        }
        let out = sh.process("?- n(X).").0;
        assert!(out.contains("… 3 more"), "{out}");
        assert!(out.contains("5 answer(s)."));
    }

    #[test]
    fn constraint_commands() {
        let mut sh = Shell::new();
        sh.process("parent(a, a).");
        assert_eq!(
            sh.process(":constraint parent(X, X)").0,
            "constraint added."
        );
        let out = sh.process(":check").0;
        assert!(out.contains("violated"), "{out}");
    }

    #[test]
    fn save_and_reload() {
        let dir = std::env::temp_dir().join("chainsplit_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dump.dl");
        let path_str = path.to_str().unwrap().to_string();
        let mut sh = Shell::new();
        sh.process("p(7).");
        sh.process("q(X) :- p(X).");
        assert!(sh
            .process(&format!(":save {path_str}"))
            .0
            .starts_with("saved"));
        let mut sh2 = Shell::new();
        assert!(sh2
            .process(&format!(":load {path_str}"))
            .0
            .starts_with("loaded"));
        assert!(sh2.process("?- q(X).").0.contains("X = 7"));
    }

    #[test]
    fn load_missing_file() {
        let mut sh = Shell::new();
        assert!(sh
            .process(":load /no/such/file.dl")
            .0
            .contains("cannot read"));
    }

    #[test]
    fn wal_commands_without_a_data_dir() {
        let mut sh = Shell::new();
        assert!(sh.process(":wal").0.contains("no data dir"));
        assert!(sh.process(":wal on").0.contains("no data dir"));
        assert!(sh.process(":snapshot").0.contains("no data dir"));
        assert!(sh.process(":wal sideways").0.starts_with("usage:"));
    }

    #[test]
    fn durable_session_survives_a_restart() {
        let dir = std::env::temp_dir().join(format!(
            "chainsplit_cli_wal_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_str = dir.to_str().unwrap().to_string();

        let mut sh = Shell::new();
        assert!(
            sh.open_data_dir(&dir_str).unwrap().contains("fresh"),
            "first open should be fresh"
        );
        sh.process("parent(a, b).");
        sh.process("anc(X, Y) :- parent(X, Y).");
        sh.process("anc(X, Y) :- parent(X, Z), anc(Z, Y).");
        let status = sh.process(":wal status").0;
        assert!(status.starts_with("wal: on"), "{status}");
        let snap = sh.process(":snapshot").0;
        assert!(snap.starts_with("snapshot written:"), "{snap}");
        sh.process("parent(b, c).");
        drop(sh); // simulated kill: nothing flushed beyond the WAL

        let mut sh2 = Shell::new();
        let report = sh2.open_data_dir(&dir_str).unwrap();
        assert!(report.contains("recovered snapshot"), "{report}");
        let out = sh2.process("?- anc(a, X).").0;
        assert!(out.contains("X = b") && out.contains("X = c"), "{out}");
        assert_eq!(sh2.process(":wal off").0, "wal: off");
        assert!(sh2.process(":wal status").0.starts_with("wal: off"));
        assert_eq!(sh2.process(":wal on").0, "wal: on");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
