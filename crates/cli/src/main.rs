//! `chainsplit` — interactive shell for the chain-split deductive database.
//!
//! ```sh
//! chainsplit [FILE …]            # load programs, then REPL
//! chainsplit -e '?- q(X).' FILE  # one-shot query
//! chainsplit --strategy tabled   # pick the evaluation method
//! chainsplit --data-dir DIR      # durable session: WAL + snapshots
//! ```

use chainsplit_cli::{Control, Shell};
use std::io::{BufRead, Write};

/// Routes Ctrl-C to [`chainsplit_governor::interrupt`]: the running query
/// observes the flag at its next cooperative check and drains to a partial
/// result; the shell itself keeps running. `interrupt()` is a single
/// relaxed atomic store, so the handler is async-signal-safe. Declaring
/// libc's `signal` directly avoids a signal-handling dependency.
///
/// Returns the previous disposition so the caller can restore it when the
/// REPL exits — a host process embedding the shell (or anything exec'd
/// after it) gets its own handler back instead of ours.
#[cfg(unix)]
fn install_sigint_handler() -> usize {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_sigint(_signum: i32) {
        chainsplit_governor::interrupt();
    }
    const SIGINT: i32 = 2;
    unsafe { signal(SIGINT, on_sigint as *const () as usize) }
}

/// Restores the SIGINT disposition captured by [`install_sigint_handler`].
#[cfg(unix)]
fn restore_sigint_handler(previous: usize) {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    unsafe {
        signal(SIGINT, previous);
    }
}

#[cfg(not(unix))]
fn install_sigint_handler() -> usize {
    0
}

#[cfg(not(unix))]
fn restore_sigint_handler(_previous: usize) {}

fn main() {
    let previous = install_sigint_handler();
    let code = run();
    restore_sigint_handler(previous);
    if code != 0 {
        std::process::exit(code);
    }
}

fn run() -> i32 {
    let mut shell = Shell::new();
    let mut args = std::env::args().skip(1);
    let mut one_shot: Option<String> = None;
    let mut data_dir: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-e" | "--eval" => {
                one_shot = args.next();
                if one_shot.is_none() {
                    eprintln!("-e needs a query argument");
                    return 2;
                }
            }
            "--strategy" => {
                let Some(name) = args.next() else {
                    eprintln!("--strategy needs a name");
                    return 2;
                };
                let (msg, _) = shell.process(&format!(":strategy {name}"));
                if msg.contains("unknown") {
                    eprintln!("{msg}");
                    return 2;
                }
            }
            "--data-dir" => {
                data_dir = args.next();
                if data_dir.is_none() {
                    eprintln!("--data-dir needs a directory argument");
                    return 2;
                }
            }
            "--timing" => {
                shell.process(":timing on");
            }
            "-h" | "--help" => {
                println!(
                    "usage: chainsplit [--strategy NAME] [--timing] [--data-dir DIR] \
                     [-e QUERY] [FILE …]"
                );
                let (help, _) = shell.process(":help");
                println!("{help}");
                return 0;
            }
            file => files.push(file.to_string()),
        }
    }

    // The data dir replaces the session database (recovering durable
    // state), so it must attach before any FILE loads into it.
    if let Some(dir) = data_dir {
        match shell.open_data_dir(&dir) {
            Ok(msg) => println!("{msg}"),
            Err(msg) => {
                eprintln!("{msg}");
                return 1;
            }
        }
    }
    for file in files {
        let (msg, _) = shell.process(&format!(":load {file}"));
        println!("{msg}");
        if msg.starts_with("cannot") || msg.starts_with("error") {
            return 1;
        }
    }

    if let Some(q) = one_shot {
        let q = if q.trim_start().starts_with("?-") || q.trim_start().starts_with(':') {
            q
        } else {
            format!("?- {q}")
        };
        let (out, _) = shell.process(&q);
        println!("{out}");
        return 0;
    }

    println!("chain-split deductive database — :help for commands");
    let stdin = std::io::stdin();
    loop {
        print!("?- ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                // Ctrl-C mid-read: the handler already flagged the
                // governor; this read just got EINTR. Re-prompt instead
                // of treating the interruption as EOF.
                println!();
                continue;
            }
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        // Bare goals at the `?-` prompt are queries; lines that already
        // carry a command prefix or clause syntax pass through.
        let trimmed = line.trim();
        let input = if trimmed.is_empty()
            || trimmed.starts_with(':')
            || trimmed.starts_with('%')
            || trimmed.starts_with("?-")
            || trimmed.contains(":-")
            || is_fact(trimmed)
        {
            trimmed.to_string()
        } else {
            format!("?- {trimmed}")
        };
        let (out, control) = shell.process(&input);
        if !out.is_empty() {
            println!("{out}");
        }
        if control == Control::Quit {
            break;
        }
    }
    0
}

/// Heuristic: a line ending in `.` with a single atom and no variables is
/// a fact assertion rather than a query.
fn is_fact(line: &str) -> bool {
    line.ends_with('.')
        && chainsplit_logic::parse_rule(line)
            .map(|r| r.is_fact() && r.head.is_ground())
            .unwrap_or(false)
}
