//! `chainsplit` — interactive shell for the chain-split deductive database.
//!
//! ```sh
//! chainsplit [FILE …]            # load programs, then REPL
//! chainsplit -e '?- q(X).' FILE  # one-shot query
//! chainsplit --strategy tabled   # pick the evaluation method
//! ```

use chainsplit_cli::{Control, Shell};
use std::io::{BufRead, Write};

/// Routes Ctrl-C to [`chainsplit_governor::interrupt`]: the running query
/// observes the flag at its next cooperative check and drains to a partial
/// result; the shell itself keeps running. `interrupt()` is a single
/// relaxed atomic store, so the handler is async-signal-safe. Declaring
/// libc's `signal` directly avoids a signal-handling dependency.
#[cfg(unix)]
fn install_sigint_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_sigint(_signum: i32) {
        chainsplit_governor::interrupt();
    }
    const SIGINT: i32 = 2;
    unsafe {
        signal(SIGINT, on_sigint as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_sigint_handler() {}

fn main() {
    install_sigint_handler();
    let mut shell = Shell::new();
    let mut args = std::env::args().skip(1);
    let mut one_shot: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-e" | "--eval" => {
                one_shot = args.next();
                if one_shot.is_none() {
                    eprintln!("-e needs a query argument");
                    std::process::exit(2);
                }
            }
            "--strategy" => {
                let Some(name) = args.next() else {
                    eprintln!("--strategy needs a name");
                    std::process::exit(2);
                };
                let (msg, _) = shell.process(&format!(":strategy {name}"));
                if msg.contains("unknown") {
                    eprintln!("{msg}");
                    std::process::exit(2);
                }
            }
            "--timing" => {
                shell.process(":timing on");
            }
            "-h" | "--help" => {
                println!("usage: chainsplit [--strategy NAME] [--timing] [-e QUERY] [FILE …]");
                let (help, _) = shell.process(":help");
                println!("{help}");
                return;
            }
            file => {
                let (msg, _) = shell.process(&format!(":load {file}"));
                println!("{msg}");
                if msg.starts_with("cannot") || msg.starts_with("error") {
                    std::process::exit(1);
                }
            }
        }
    }

    if let Some(q) = one_shot {
        let q = if q.trim_start().starts_with("?-") || q.trim_start().starts_with(':') {
            q
        } else {
            format!("?- {q}")
        };
        let (out, _) = shell.process(&q);
        println!("{out}");
        return;
    }

    println!("chain-split deductive database — :help for commands");
    let stdin = std::io::stdin();
    loop {
        print!("?- ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        // Bare goals at the `?-` prompt are queries; lines that already
        // carry a command prefix or clause syntax pass through.
        let trimmed = line.trim();
        let input = if trimmed.is_empty()
            || trimmed.starts_with(':')
            || trimmed.starts_with('%')
            || trimmed.starts_with("?-")
            || trimmed.contains(":-")
            || is_fact(trimmed)
        {
            trimmed.to_string()
        } else {
            format!("?- {trimmed}")
        };
        let (out, control) = shell.process(&input);
        if !out.is_empty() {
            println!("{out}");
        }
        if control == Control::Quit {
            break;
        }
    }
}

/// Heuristic: a line ending in `.` with a single atom and no variables is
/// a fact assertion rather than a query.
fn is_fact(line: &str) -> bool {
    line.ends_with('.')
        && chainsplit_logic::parse_rule(line)
            .map(|r| r.is_fact() && r.head.is_ground())
            .unwrap_or(false)
}
