//! End-to-end: `:trace on` → query → `:trace export` must produce a
//! Chrome-trace JSON file (the format Perfetto / chrome://tracing loads):
//! an array of complete events with `name`/`ph`/`ts`/`dur`/`pid`/`tid`,
//! whose span names cover the evaluation pipeline.

use chainsplit_cli::{Control, Shell};
use chainsplit_trace::json::Json;

#[test]
fn trace_export_writes_perfetto_loadable_file() {
    let mut shell = Shell::new();
    for line in [
        "parent(a, b).",
        "parent(b, c).",
        "parent(c, d).",
        "anc(X, Y) :- parent(X, Y).",
        "anc(X, Y) :- parent(X, Z), anc(Z, Y).",
    ] {
        let (out, ctl) = shell.process(line);
        assert_eq!(out, "ok.");
        assert_eq!(ctl, Control::Continue);
    }

    let (out, _) = shell.process(":trace on");
    assert!(out.starts_with("trace: on"), "{out}");

    let (out, _) = shell.process("?- anc(a, Y).");
    assert!(out.contains("Y = "), "{out}");

    let path = std::env::temp_dir().join(format!("chainsplit_trace_{}.json", std::process::id()));
    let (out, _) = shell.process(&format!(":trace export {}", path.display()));
    assert!(out.starts_with("trace: wrote"), "{out}");
    shell.process(":trace off");

    let text = std::fs::read_to_string(&path).expect("export file exists");
    std::fs::remove_file(&path).ok();

    // Valid JSON array of complete events.
    let doc = Json::parse(&text).expect("export is valid JSON");
    let events = doc.as_array();
    assert!(!events.is_empty(), "trace has events");
    for ev in events {
        for key in ["name", "cat", "ph", "ts", "dur", "pid", "tid"] {
            assert!(ev.get(key).is_some(), "event missing `{key}`: {ev:?}");
        }
        assert_eq!(ev.get("ph").and_then(Json::as_str), Some("X"));
        assert!(ev.get("ts").and_then(Json::as_f64).is_some());
        assert!(ev.get("dur").and_then(Json::as_f64).is_some());
    }

    // The span tree covers the evaluation pipeline.
    let names: Vec<&str> = events
        .iter()
        .filter_map(|ev| ev.get("name").and_then(Json::as_str))
        .collect();
    for expected in ["compile", "seed", "fixpoint", "answer", "query"] {
        assert!(
            names.iter().any(|n| n.contains(expected)),
            "no `{expected}` span in {names:?}"
        );
    }
    let cats: Vec<&str> = events
        .iter()
        .filter_map(|ev| ev.get("cat").and_then(Json::as_str))
        .collect();
    assert!(cats.contains(&"round"), "no per-round spans in {cats:?}");
    assert!(
        cats.contains(&"access"),
        "no per-access-path spans in {cats:?}"
    );
}
