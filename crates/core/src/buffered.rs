//! **Algorithm 3.2 — buffered chain-split evaluation** (and, with an empty
//! buffer, the counting method).
//!
//! Two sweeps over the compiled chain:
//!
//! 1. **Up sweep**: starting from the query constants at the stable
//!    adornment's bound positions (the *frontier*), evaluate the chain
//!    path's *evaluated portion* level by level. Each derivation step is
//!    recorded as a node `W_i` holding the values of every up-bound
//!    variable — the per-level **buffer** of the paper (for a
//!    chain-following run the buffered set is empty and `W_i` degenerates
//!    to the counting method's level-indexed magic set). At every level the
//!    exit rules fire against the frontier.
//! 2. **Down sweep**: answers propagate from the deepest level back to the
//!    query, joining each level's buffered nodes (on the recursive-call
//!    values) and evaluating the *delayed portion* with the buffered
//!    variables reinstated.
//!
//! The optional [`Pruner`] hook is Algorithm 3.3's constraint pushing: the
//! up sweep threads monotone partial sums through the frontier and prunes
//! hopeless derivations early (see `crate::partial`).

use crate::solver::{SolveOptions, Solver};
use chainsplit_chain::{CompiledRecursion, SplitPlan};
use chainsplit_engine::{Counters, EvalError, RoundMetrics};
use chainsplit_governor::BudgetTrip;
use chainsplit_logic::{unify, Atom, Subst, Term, Var};
use chainsplit_par::Pool;
use chainsplit_relation::{hash::FxHasher, term_estimated_bytes, FxHashMap, FxHashSet};
use std::hash::{Hash, Hasher};

/// How many hash partitions each level's frontier is split into. Fixed —
/// independent of the thread count — so partition membership, and with it
/// every per-partition counter, is identical whether the partitions run
/// on one thread or eight. See DESIGN.md §5.
pub const FRONTIER_PARTITIONS: usize = 8;

/// A monotone-sum guard (Algorithm 3.3): `addend` is summed along the
/// chain; a derivation whose partial sum can no longer satisfy
/// `sum op limit` is pruned. Soundness requires every addend (and the exit
/// contribution) to be non-negative — `crate::partial` verifies that
/// against the EDB before constructing the guard.
#[derive(Clone, Debug)]
pub struct SumGuard {
    pub addend: Var,
    pub limit: i64,
    /// `true` for `<`, `false` for `<=`.
    pub strict: bool,
}

impl SumGuard {
    fn admits(&self, partial: i64) -> bool {
        if self.strict {
            partial < self.limit
        } else {
            partial <= self.limit
        }
    }
}

/// A level-count guard: the paper's other monotone accumulator,
/// `length(L)` — every chain level conses one more element onto the
/// constrained list, so a derivation deeper than the limit is hopeless.
#[derive(Clone, Debug)]
pub struct CountGuard {
    pub limit: i64,
    /// `true` for `<`, `false` for `<=`.
    pub strict: bool,
}

impl CountGuard {
    fn admits(&self, level: usize) -> bool {
        // At chain level `d` the final list has at least `d + 1` elements
        // (the exit contributes at least... zero; `d` delayed conses have
        // accumulated). Prune when even `d` alone violates the bound.
        let d = level as i64;
        if self.strict {
            d < self.limit
        } else {
            d <= self.limit
        }
    }
}

/// The constraint-pushing hook for the up sweep.
#[derive(Clone, Debug, Default)]
pub struct Pruner {
    pub guards: Vec<SumGuard>,
    pub count_guards: Vec<CountGuard>,
}

impl Pruner {
    fn admits(&self, partials: &[i64]) -> bool {
        self.guards.iter().zip(partials).all(|(g, &p)| g.admits(p))
    }

    fn admits_level(&self, level: usize) -> bool {
        self.count_guards.iter().all(|g| g.admits(level))
    }
}

/// One buffered derivation step.
struct Node {
    /// Values of `plan.up_bound` variables (the buffer, inputs included).
    up_vals: Vec<Term>,
    /// Values of the recursive call's arguments at the frontier positions.
    out_key: Vec<Term>,
    /// Monotone partial sums (one per pruner guard).
    partials: Vec<i64>,
    /// Fully resolved evaluated-portion atoms of the first candidate that
    /// produced this node, in `plan.evaluated` order. Only captured while
    /// provenance recording is on: the down sweep needs them to compose
    /// the recursive rule's witness, because the down-sweep substitution
    /// never re-binds up-sweep-local variables.
    ev_atoms: Option<Vec<Atom>>,
}

/// A surviving up-sweep derivation before the merge-side node dedup:
/// `(up_vals, out_key, partials, evaluated-portion capture)`.
type Cand = (Vec<Term>, Vec<Term>, Vec<i64>, Option<Vec<Atom>>);

/// What one up-sweep worker returns for its frontier partition: raw
/// (undeduplicated) exit tuples, candidate nodes, and the work its child
/// solver did. Node and exit identity are global properties of the level,
/// so deduplication happens at the merge, in partition order.
struct WorkerOut {
    exits: Vec<Vec<Term>>,
    cands: Vec<Cand>,
    counters: Counters,
    rounds: Vec<RoundMetrics>,
    fuel_spent: usize,
    /// Witnesses buffered on the worker thread (exit-rule firings plus
    /// anything the child solver derived), flushed in partition order.
    wbuf: Vec<chainsplit_provenance::Pending>,
}

/// Folds a worker's counters into the parent's. Unlike [`Counters::add`]
/// this **sums** `buffered_peak`: a nested chain-split inside a worker
/// accumulates into the same cumulative buffer total the sequential code
/// tracked on the one shared counter struct.
fn merge_worker_counters(parent: &mut Counters, w: &Counters) {
    parent.derived += w.derived;
    parent.probed += w.probed;
    parent.matched += w.matched;
    parent.iterations += w.iterations;
    parent.magic_facts += w.magic_facts;
    parent.buffered_peak += w.buffered_peak;
    parent.index_hits += w.index_hits;
    parent.index_builds += w.index_builds;
    parent.scans += w.scans;
    parent.builtin_evals += w.builtin_evals;
}

/// Runs Algorithm 3.2 for `query` (an instance of `rec.pred`) under `plan`.
///
/// Appends one substitution per answer to `out`, each extending `s` with
/// the query's variables.
#[allow(clippy::too_many_arguments)]
pub fn eval_buffered(
    solver: &mut Solver,
    rec: &CompiledRecursion,
    plan: &SplitPlan,
    query: &Atom,
    s: &Subst,
    depth: usize,
    pruner: Option<&Pruner>,
    out: &mut Vec<Subst>,
) -> Result<(), EvalError> {
    let mut top_span = chainsplit_trace::span!("chain-split", pred = rec.pred);
    top_span.set_attr("split", plan.is_split());
    let frontier_pos = plan.frontier();
    let n_guards = pruner.map_or(0, |p| p.guards.len());

    // Level-0 frontier: the query's ground values at the bound positions.
    let seed_span = chainsplit_trace::span!("seed", pred = rec.pred);
    let mut q_vals: Vec<Term> = Vec::with_capacity(frontier_pos.len());
    for &j in &frontier_pos {
        let v = s.resolve(&query.args[j]);
        debug_assert!(v.is_ground(), "frontier arg must be ground: {v}");
        q_vals.push(v);
    }

    // frontier: tuple -> elementwise-min partial sums (min is sound: prune
    // only when even the cheapest path to this tuple is hopeless).
    let mut frontier: FxHashMap<Vec<Term>, Vec<i64>> = FxHashMap::default();
    frontier.insert(q_vals.clone(), vec![0; n_guards]);
    drop(seed_span);

    let delayed_atoms: Vec<&Atom> = plan
        .delayed
        .iter()
        .map(|&i| &rec.recursive_rule.body[i])
        .collect();
    let evaluated_atoms: Vec<&Atom> = plan
        .evaluated
        .iter()
        .map(|&i| &rec.recursive_rule.body[i])
        .collect();

    let mut nodes_up: Vec<Vec<Node>> = Vec::new(); // nodes_up[i]: frontier_i -> frontier_{i+1}
    let mut exits: Vec<Vec<Vec<Term>>> = Vec::new(); // exits[i]: full tuples at level i
    let pool = Pool::new(solver.opts.threads);
    let gov = solver.opts.governor.clone();

    // ---- Up sweep ----
    let up_span = chainsplit_trace::span!("up-sweep", pred = rec.pred);
    loop {
        let mut round_span =
            chainsplit_trace::Span::enter_cat(format!("level {}", nodes_up.len()), "round");
        round_span.set_attr("level", nodes_up.len());
        // Level boundary = drain point, but only for the *top-level*
        // chain-split: its completed levels feed a down sweep that yields
        // sound partial answers. A nested run (depth > 0) propagates the
        // trip instead — a truncated subgoal answer set inside an
        // enclosing conjunction would be silently unsound.
        if let Err(t) = gov.on_round("up-sweep") {
            if depth == 0 {
                solver.trip = Some(t);
                break;
            }
            return Err(t.into());
        }
        let round_base = solver.counters;
        solver.counters.iterations += 1;
        if nodes_up.len() >= solver.opts.max_levels {
            return Err(EvalError::FuelExceeded {
                limit: solver.opts.max_levels,
            });
        }

        // Partition the frontier by tuple hash — a fixed partition count,
        // so the split (and every counter each partition accrues) does
        // not depend on the thread count.
        let mut parts: Vec<Vec<(Vec<Term>, Vec<i64>)>> =
            (0..FRONTIER_PARTITIONS).map(|_| Vec::new()).collect();
        for (t, partials) in &frontier {
            let mut h = FxHasher::default();
            t.hash(&mut h);
            let slot = (h.finish() % FRONTIER_PARTITIONS as u64) as usize;
            parts[slot].push((t.clone(), partials.clone()));
        }

        // Level-count guards (length-style constraints): when the *next*
        // level is already hopeless, fire only the exit rules and stop
        // generating nodes entirely. The guard reads the level number
        // alone, so it is decided before the fan-out.
        let do_eval = pruner.is_none_or(|p| p.admits_level(nodes_up.len() + 1));

        // Each worker runs the exit rules and (when admitted) the
        // evaluated portion for its partition on a child solver seeded
        // with the parent's remaining fuel; nested chain-splits inside a
        // worker run sequentially.
        let level_id = round_span.id();
        let sys = solver.sys;
        let child_opts = SolveOptions {
            threads: 1,
            ..solver.opts.clone()
        };
        let child_opts = &child_opts;
        let fuel_left = solver.fuel_left;
        let evaluated_atoms_ref = &evaluated_atoms;
        let frontier_pos_ref = &frontier_pos;
        let tasks: Vec<_> = parts
            .iter()
            .enumerate()
            .filter(|(_, part)| !part.is_empty())
            .map(|(pi, part)| {
                move || -> Result<WorkerOut, EvalError> {
                    let mut worker_span = chainsplit_trace::Span::enter_cat_under(
                        format!("worker {pi}"),
                        "worker",
                        level_id,
                    );
                    worker_span.set_attr("pred", rec.pred);
                    worker_span.set_attr("tuples", part.len());
                    // Witnesses recorded on this thread (exit firings and
                    // everything inside the child solver) buffer locally
                    // and flush at the merge, in partition order —
                    // first-witness-wins stays schedule-independent. The
                    // inner closure keeps the begin/take pairing intact on
                    // every error path: pool threads and the participating
                    // caller are reused, so a leaked buffer would swallow
                    // later recordings.
                    let prov = chainsplit_provenance::is_enabled();
                    if prov {
                        chainsplit_provenance::begin_buffer();
                    }
                    let inner = || -> Result<WorkerOut, EvalError> {
                    let mut child = Solver::new(sys, child_opts.clone());
                    child.fuel_left = fuel_left;

                    // Exit rules against this partition of the frontier.
                    let mut raw_exits: Vec<Vec<Term>> = Vec::new();
                    for (t, _) in part {
                        for er in &rec.exit_rules {
                            let mut s0 = Subst::new();
                            let mut ok = true;
                            for (jj, &j) in frontier_pos_ref.iter().enumerate() {
                                if !unify(&mut s0, &er.head.args[j], &t[jj]) {
                                    ok = false;
                                    break;
                                }
                            }
                            if !ok {
                                continue;
                            }
                            let body: Vec<&Atom> = er.body.iter().collect();
                            let mut sols = Vec::new();
                            child.solve_body_dynamic(&body, &s0, depth + 1, &mut sols)?;
                            for sol in sols {
                                let tuple: Vec<Term> =
                                    er.head.args.iter().map(|a| sol.resolve(a)).collect();
                                if tuple.iter().any(|x| !x.is_ground()) {
                                    return Err(EvalError::NotEvaluable {
                                        atom: format!("exit answer not ground: {er}"),
                                    });
                                }
                                if prov {
                                    let whead = Atom {
                                        pred: er.head.pred,
                                        args: tuple.clone(),
                                    };
                                    let wbody: Vec<Atom> =
                                        er.body.iter().map(|a| sol.resolve_atom(a)).collect();
                                    chainsplit_provenance::record(&whead, er, &wbody);
                                }
                                raw_exits.push(tuple);
                            }
                        }
                    }

                    // Evaluated portion: one candidate per surviving
                    // derivation (pruning is per-derivation, so it stays
                    // in the worker; node identity is global, so the
                    // dedup waits for the merge).
                    let mut cands: Vec<Cand> = Vec::new();
                    if do_eval {
                        for (t, partials) in part {
                            let mut s0 = Subst::new();
                            for (jj, &j) in frontier_pos_ref.iter().enumerate() {
                                let hv = rec.head_var(j);
                                if !unify(&mut s0, &Term::Var(hv), &t[jj]) {
                                    unreachable!("binding fresh head var cannot fail");
                                }
                            }
                            let mut sols = Vec::new();
                            child.solve_body_dynamic(
                                evaluated_atoms_ref,
                                &s0,
                                depth + 1,
                                &mut sols,
                            )?;
                            for sol in sols {
                                let up_vals: Vec<Term> = plan
                                    .up_bound
                                    .iter()
                                    .map(|&v| sol.resolve(&Term::Var(v)))
                                    .collect();
                                // Partial sums for the pruner.
                                let mut new_partials = partials.clone();
                                if let Some(p) = pruner {
                                    let mut dead = false;
                                    for (gi, g) in p.guards.iter().enumerate() {
                                        let addend = sol.resolve(&Term::Var(g.addend));
                                        match addend {
                                            Term::Int(a) => new_partials[gi] += a,
                                            _ => {
                                                return Err(EvalError::TypeError {
                                                    atom: format!(
                                                        "monotone addend {} is not an integer: {addend}",
                                                        g.addend
                                                    ),
                                                })
                                            }
                                        }
                                        if !g.admits(new_partials[gi]) {
                                            dead = true;
                                        }
                                    }
                                    if dead || !p.admits(&new_partials) {
                                        child.counters.probed += 1;
                                        continue; // pruned: hopeless derivation
                                    }
                                }
                                let out_key: Vec<Term> = frontier_pos_ref
                                    .iter()
                                    .map(|&j| sol.resolve(&rec.rec_atom().args[j]))
                                    .collect();
                                if out_key.iter().any(|x| !x.is_ground()) {
                                    return Err(EvalError::NotEvaluable {
                                        atom: format!("chain step not ground for {}", rec.pred),
                                    });
                                }
                                let ev_cap = prov.then(|| {
                                    evaluated_atoms_ref
                                        .iter()
                                        .map(|a| sol.resolve_atom(a))
                                        .collect::<Vec<Atom>>()
                                });
                                cands.push((up_vals, out_key, new_partials, ev_cap));
                            }
                        }
                    }
                    Ok(WorkerOut {
                        exits: raw_exits,
                        cands,
                        counters: child.counters,
                        rounds: child.rounds,
                        fuel_spent: fuel_left - child.fuel_left,
                        wbuf: Vec::new(),
                    })
                    };
                    let mut result = inner();
                    let wbuf = if prov {
                        chainsplit_provenance::take_buffer()
                    } else {
                        Vec::new()
                    };
                    if let Ok(w) = &mut result {
                        w.wbuf = wbuf;
                    }
                    result
                }
            })
            .collect();
        let results = pool.run(tasks).map_err(EvalError::from)?;

        // Merge in partition order: counters, nested rounds, and fuel
        // fold in; exits deduplicate globally; candidates pass through
        // the same dedup-and-min rule the sequential code used. Every
        // step is schedule-independent.
        let mut level_exits: Vec<Vec<Term>> = Vec::new();
        let mut seen_exit: FxHashSet<Vec<Term>> = FxHashSet::default();
        let mut all_cands: Vec<Cand> = Vec::new();
        let mut level_trip: Option<BudgetTrip> = None;
        for r in results {
            match r {
                Ok(w) => {
                    merge_worker_counters(&mut solver.counters, &w.counters);
                    for mut rm in w.rounds {
                        rm.round = solver.rounds.len();
                        solver.rounds.push(rm);
                    }
                    solver.fuel_left = solver.fuel_left.saturating_sub(w.fuel_spent);
                    gov.add_bytes(chainsplit_provenance::flush(w.wbuf));
                    for tuple in w.exits {
                        if seen_exit.insert(tuple.clone()) {
                            level_exits.push(tuple);
                        }
                    }
                    all_cands.extend(w.cands);
                }
                // A budget trip inside a worker: the level is incomplete,
                // so its exits and candidates are all discarded and the
                // top-level run drains into the down sweep over the
                // completed levels. Nested runs propagate.
                Err(e) => match e.budget_trip() {
                    Some(t) if depth == 0 => level_trip = Some(t),
                    _ => return Err(e),
                },
            }
        }
        if let Some(t) = level_trip {
            solver.trip = Some(t);
            break;
        }
        exits.push(level_exits);

        if !do_eval {
            nodes_up.push(Vec::new());
            break;
        }

        // One node per distinct buffer content.
        let mut level_nodes: Vec<Node> = Vec::new();
        let mut node_index: FxHashMap<Vec<Term>, usize> = FxHashMap::default();
        let mut next_frontier: FxHashMap<Vec<Term>, Vec<i64>> = FxHashMap::default();
        for (up_vals, out_key, new_partials, ev_cap) in all_cands {
            match node_index.get(&up_vals) {
                Some(&i) => {
                    // Same buffer content reached again: keep the
                    // cheapest partials (same up_vals implies the same
                    // out_key, so the frontier entry takes the min too).
                    // The first candidate's evaluated-portion capture is
                    // kept, consistent with first-witness-wins.
                    let n = &mut level_nodes[i];
                    for (a, b) in n.partials.iter_mut().zip(&new_partials) {
                        *a = (*a).min(*b);
                    }
                    if let Some(ps) = next_frontier.get_mut(&out_key) {
                        for (a, b) in ps.iter_mut().zip(&new_partials) {
                            *a = (*a).min(*b);
                        }
                    }
                }
                None => {
                    node_index.insert(up_vals.clone(), level_nodes.len());
                    next_frontier
                        .entry(out_key.clone())
                        .and_modify(|ps| {
                            for (a, b) in ps.iter_mut().zip(&new_partials) {
                                *a = (*a).min(*b);
                            }
                        })
                        .or_insert_with(|| new_partials.clone());
                    level_nodes.push(Node {
                        up_vals,
                        out_key,
                        partials: new_partials,
                        ev_atoms: ev_cap,
                    });
                    solver.counters.derived += 1;
                }
            }
        }
        solver.counters.buffered_peak += level_nodes.len();
        // The buffered nodes are what this algorithm *stores*: they are
        // the byte-budget surface of the up sweep.
        if gov.active() {
            gov.add_tuples(level_nodes.len() as u64);
            let bytes: u64 = level_nodes
                .iter()
                .map(|n| n.up_vals.iter().map(term_estimated_bytes).sum::<usize>() as u64)
                .sum();
            gov.add_bytes(bytes);
        }
        // One round per chain level; the delta is the buffered-chain size
        // at this level (0 for chain-following / counting runs).
        solver.rounds.push(RoundMetrics {
            round: solver.rounds.len(),
            delta: level_nodes.len(),
            counters: solver.counters.since(&round_base),
        });
        round_span.set_attr("delta", level_nodes.len());
        let done = next_frontier.is_empty();
        nodes_up.push(level_nodes);
        if done {
            break;
        }
        frontier = next_frontier;
    }
    drop(up_span);

    // A trip before the first level completed leaves nothing to propagate:
    // no answers, which is the sound empty under-approximation.
    if exits.is_empty() {
        return Ok(());
    }

    // ---- Down sweep ----
    let _down_span = chainsplit_trace::span!("down-sweep", pred = rec.pred);
    let k = exits.len() - 1;
    // answers[i]: full tuples valid at level i, indexed by frontier values.
    let mut answers: FxHashMap<Vec<Term>, Vec<Vec<Term>>> = FxHashMap::default();
    let index_of =
        |tuple: &[Term]| -> Vec<Term> { frontier_pos.iter().map(|&j| tuple[j].clone()).collect() };
    let head_args = &rec.recursive_rule.head.args;
    let rec_args = &rec.rec_atom().args;

    for i in (0..=k).rev() {
        let mut level_answers: FxHashMap<Vec<Term>, Vec<Vec<Term>>> = FxHashMap::default();
        let mut level_seen: FxHashSet<Vec<Term>> = FxHashSet::default();
        let push = |tuple: Vec<Term>,
                    level_answers: &mut FxHashMap<Vec<Term>, Vec<Vec<Term>>>,
                    level_seen: &mut FxHashSet<Vec<Term>>| {
            if level_seen.insert(tuple.clone()) {
                level_answers
                    .entry(index_of(&tuple))
                    .or_default()
                    .push(tuple);
            }
        };
        for tuple in &exits[i] {
            push(tuple.clone(), &mut level_answers, &mut level_seen);
        }
        // Join this level's buffered nodes with the answers from below.
        if i < k {
            for node in &nodes_up[i] {
                let Some(below) = answers.get(&node.out_key) else {
                    continue;
                };
                for a in below {
                    solver.counters.probed += 1;
                    let mut s0 = Subst::new();
                    let mut ok = true;
                    for (&v, val) in plan.up_bound.iter().zip(&node.up_vals) {
                        if !unify(&mut s0, &Term::Var(v), val) {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for (arg, val) in rec_args.iter().zip(a.iter()) {
                            if !unify(&mut s0, arg, val) {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if !ok {
                        continue;
                    }
                    solver.counters.matched += 1;
                    let mut sols = Vec::new();
                    // The delayed portion re-enters goal-directed
                    // resolution, which polls the governor: once a trip is
                    // latched (e.g. drained out of the up sweep above),
                    // strided checks in here keep erroring. For the
                    // top-level run every solution already produced is
                    // independently proved, so keep the partials and move
                    // on; nested runs propagate as usual.
                    if let Err(e) =
                        solver.solve_body_dynamic(&delayed_atoms, &s0, depth + 1, &mut sols)
                    {
                        match e.budget_trip() {
                            Some(t) if depth == 0 => {
                                if solver.trip.is_none() {
                                    solver.trip = Some(t);
                                }
                            }
                            _ => return Err(e),
                        }
                    }
                    for sol in sols {
                        let tuple: Vec<Term> = head_args.iter().map(|h| sol.resolve(h)).collect();
                        if tuple.iter().any(|x| !x.is_ground()) {
                            return Err(EvalError::NotEvaluable {
                                atom: format!("answer not ground for {}", rec.pred),
                            });
                        }
                        if chainsplit_provenance::is_enabled() {
                            if let Some(ev) = &node.ev_atoms {
                                // The witness body in original rule order:
                                // the recursive atom and the delayed
                                // portion resolve under the down-sweep
                                // substitution; the evaluated portion was
                                // captured on the node at up-sweep time
                                // (its local variables are not bound
                                // here).
                                let whead = Atom {
                                    pred: rec.recursive_rule.head.pred,
                                    args: tuple.clone(),
                                };
                                let wbody: Vec<Atom> = rec
                                    .recursive_rule
                                    .body
                                    .iter()
                                    .enumerate()
                                    .map(|(bi, batom)| {
                                        match plan.evaluated.iter().position(|&e| e == bi) {
                                            Some(p) => ev[p].clone(),
                                            None => sol.resolve_atom(batom),
                                        }
                                    })
                                    .collect();
                                gov.add_bytes(chainsplit_provenance::record(
                                    &whead,
                                    &rec.recursive_rule,
                                    &wbody,
                                ));
                            }
                        }
                        push(tuple, &mut level_answers, &mut level_seen);
                    }
                }
            }
        }
        drop(level_seen);
        answers = level_answers;
    }

    // ---- Final answers: level-0 tuples unified with the query. ----
    if let Some(final_tuples) = answers.get(&q_vals) {
        for tuple in final_tuples {
            let cand = Atom {
                pred: query.pred,
                args: tuple.clone(),
            };
            let mut s2 = s.clone();
            if chainsplit_logic::unify_atoms(&mut s2, query, &cand) {
                solver.counters.derived += 1;
                out.push(s2);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveOptions;
    use crate::system::System;
    use chainsplit_logic::{parse_program, parse_query};

    fn run(src: &str, query: &str) -> Vec<String> {
        let sys = System::build(&parse_program(src).unwrap());
        let q = parse_query(query).unwrap();
        let mut solver = Solver::new(&sys, SolveOptions::default());
        let sols = solver.query(&q).unwrap();
        let mut v: Vec<String> = sols
            .iter()
            .map(|s| s.resolve_atom(&q).to_string())
            .collect();
        v.sort();
        v.dedup();
        v
    }

    const APPEND: &str = "append([], L, L).
        append([X | L1], L2, [X | L3]) :- append(L1, L2, L3).";

    #[test]
    fn append_backward_all_splits() {
        // §2.2's driving example: ?- append(U, V, [1,2,3]) by buffered
        // chain-split. Four splits of a 3-list.
        let v = run(APPEND, "append(U, V, [1, 2, 3])");
        assert_eq!(
            v,
            [
                "append([1, 2, 3], [], [1, 2, 3])",
                "append([1, 2], [3], [1, 2, 3])",
                "append([1], [2, 3], [1, 2, 3])",
                "append([], [1, 2, 3], [1, 2, 3])",
            ]
        );
    }

    #[test]
    fn append_forward() {
        let v = run(APPEND, "append([1, 2], [3], W)");
        assert_eq!(v, ["append([1, 2], [3], [1, 2, 3])"]);
    }

    #[test]
    fn append_check_mode() {
        assert_eq!(run(APPEND, "append([1], [2], [1, 2])").len(), 1);
        assert!(run(APPEND, "append([2], [1], [1, 2])").is_empty());
    }

    #[test]
    fn append_empty_list() {
        let v = run(APPEND, "append(U, V, [])");
        assert_eq!(v, ["append([], [], [])"]);
    }

    #[test]
    fn append_partially_bound_output() {
        // Query with a constant in a free-ish position: answers filter.
        let v = run(APPEND, "append(U, [3], [1, 2, 3])");
        assert_eq!(v, ["append([1, 2], [3], [1, 2, 3])"]);
    }

    #[test]
    fn single_chain_function_free_counting() {
        // path over a DAG by the degenerate (buffer-free) two-sweep: the
        // counting method.
        let src = "path(X, Y) :- edge(X, Y).
             path(X, Y) :- edge(X, Z), path(Z, Y).
             edge(a, b). edge(b, c). edge(c, d). edge(a, c).";
        let v = run(src, "path(a, Y)");
        assert_eq!(v.len(), 3); // b, c, d
    }

    #[test]
    fn levels_budget_guards_cycles() {
        let src = "path(X, Y) :- edge(X, Y).
             path(X, Y) :- edge(X, Z), path(Z, Y).
             edge(a, b). edge(b, a).";
        let sys = System::build(&parse_program(src).unwrap());
        let q = parse_query("path(a, Y)").unwrap();
        let mut solver = Solver::new(
            &sys,
            SolveOptions {
                max_levels: 50,
                ..SolveOptions::default()
            },
        );
        let err = solver.query(&q).unwrap_err();
        assert!(matches!(err, EvalError::FuelExceeded { .. }));
    }

    #[test]
    fn bytes_budget_drains_the_up_sweep() {
        let sys = System::build(&parse_program(APPEND).unwrap());
        let q = parse_query("append(U, V, [1, 2, 3, 4, 5, 6, 7, 8])").unwrap();
        let full = {
            let mut solver = Solver::new(&sys, SolveOptions::default());
            solver.query(&q).unwrap().len()
        };
        let opts = SolveOptions::default();
        opts.governor.set_budget(chainsplit_governor::Budget {
            max_bytes_est: Some(1),
            ..Default::default()
        });
        opts.governor.begin_query();
        let mut solver = Solver::new(&sys, opts);
        let sols = solver.query(&q).unwrap();
        let trip = solver.trip.expect("bytes budget must trip");
        assert_eq!(trip.resource, chainsplit_governor::Resource::Bytes);
        assert_eq!(trip.phase, "up-sweep");
        // The first buffered level already exceeds one byte, so the drain
        // happens mid-chain: fewer answers than the full run.
        assert!(sols.len() < full, "{} !< {full}", sols.len());
    }

    #[test]
    fn cancellation_reaches_the_up_sweep() {
        let sys = System::build(&parse_program(APPEND).unwrap());
        let q = parse_query("append(U, V, [1, 2, 3])").unwrap();
        let opts = SolveOptions::default();
        opts.governor.begin_query();
        opts.governor.cancel_token().cancel();
        let mut solver = Solver::new(&sys, opts);
        let sols = solver.query(&q).unwrap();
        let trip = solver.trip.expect("cancellation must trip");
        assert_eq!(trip.resource, chainsplit_governor::Resource::Cancelled);
        // Cancelled before the first level completed: no answers at all.
        assert!(sols.is_empty());
    }

    #[test]
    fn counters_track_buffer() {
        let sys = System::build(&parse_program(APPEND).unwrap());
        let q = parse_query("append(U, V, [1, 2, 3, 4])").unwrap();
        let mut solver = Solver::new(&sys, SolveOptions::default());
        let sols = solver.query(&q).unwrap();
        assert_eq!(sols.len(), 5);
        // One buffered node per level 0..3 (the [] level derives nothing).
        assert_eq!(solver.counters.buffered_peak, 4);
        assert!(solver.counters.iterations >= 5);
        // One round recorded per chain level, whose deltas are the
        // buffered-chain sizes.
        assert_eq!(solver.rounds.len(), 5);
        let deltas: Vec<usize> = solver.rounds.iter().map(|r| r.delta).collect();
        assert_eq!(deltas, [1, 1, 1, 1, 0]);
    }
}
