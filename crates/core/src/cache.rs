//! The cross-query answer cache (DESIGN.md §11).
//!
//! Recursive workloads re-ask the same goals; the tabling literature
//! (linear tabling, SLG) shows answer reuse across calls is the dominant
//! win there. [`AnswerCache`] memoizes *complete* query outcomes keyed by
//! the goal, its builtin constraints, the strategy, and the **program
//! epoch** — and each entry carries a snapshot of the **EDB epochs** of
//! its support set (the extensional predicates the goal can reach in the
//! dependency graph), so a fact insert invalidates exactly the entries it
//! can influence:
//!
//! - rule loads bump the program epoch → every older entry is
//!   unreachable (and purged);
//! - a fact insert bumps only the mutated predicate's EDB epoch → an
//!   entry goes stale iff that predicate is in its support set.
//!
//! Partial outcomes (budget trips) and errors are never cached, so the
//! cache cannot change what a query reports — a hit replays the complete
//! answer set bit-identically with zero new probed/matched work. Entries
//! are byte-estimated and evicted LRU under a byte budget (the same
//! accounting currency as `Budget::max_bytes_est` in the governor).

use crate::db::{Answer, Strategy};
use chainsplit_engine::Counters;
use chainsplit_logic::{Atom, Pred};
use chainsplit_provenance::Witness;
use std::collections::HashMap;

/// Default byte budget: generous for the workloads this engine targets,
/// small enough that a runaway answer set cannot hold the heap hostage.
pub const DEFAULT_CACHE_BYTES: u64 = 16 * 1024 * 1024;

/// What makes two queries "the same question".
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    pub goal: Atom,
    pub constraints: Vec<Atom>,
    pub strategy: Strategy,
    pub program_epoch: u64,
}

/// One cached outcome.
struct Entry {
    answers: Vec<Answer>,
    /// The work the original evaluation did — what `:cache stats` and an
    /// honest `:profile` can attribute a hit to.
    counters: Counters,
    /// EDB-epoch snapshot of the goal's support set at insert time.
    support: Vec<(Pred, u64)>,
    /// The transitive witness closure of the answers, captured at fill
    /// time while provenance recording was on. `None` when the entry was
    /// filled with recording off — such an entry cannot serve a
    /// provenance-on lookup (the hit would silently drop lineage).
    provenance: Option<Vec<Witness>>,
    bytes: u64,
    /// LRU stamp: bumped on every hit.
    last_used: u64,
}

/// Hit/miss/invalidation/eviction counters, cumulative per cache.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    /// Entries dropped because a supporting predicate's EDB epoch moved.
    pub invalidations: u64,
    /// Entries dropped by the LRU byte budget.
    pub evictions: u64,
}

/// What a lookup found: the cached answers plus the original counters
/// (and, when captured, the lineage snapshot for the hit to replay).
pub struct CachedOutcome<'a> {
    pub answers: &'a [Answer],
    pub counters: Counters,
    pub provenance: Option<&'a [Witness]>,
}

/// The epoch-invalidated, byte-budgeted answer cache.
pub struct AnswerCache {
    entries: HashMap<CacheKey, Entry>,
    bytes: u64,
    max_bytes: u64,
    clock: u64,
    stats: CacheStats,
}

impl Default for AnswerCache {
    fn default() -> Self {
        AnswerCache {
            entries: HashMap::new(),
            bytes: 0,
            max_bytes: DEFAULT_CACHE_BYTES,
            clock: 0,
            stats: CacheStats::default(),
        }
    }
}

impl AnswerCache {
    /// Looks `key` up, validating the entry's support set against the
    /// current per-predicate EDB epochs. A stale entry is removed and
    /// counted as an invalidation (and a miss). With `need_provenance`
    /// set, an entry filled without a lineage snapshot is treated as a
    /// miss (left in place — a later provenance-off lookup can still use
    /// it; a provenance-on refill replaces it).
    pub fn lookup(
        &mut self,
        key: &CacheKey,
        edb_epochs: &HashMap<Pred, u64>,
        need_provenance: bool,
    ) -> Option<CachedOutcome<'_>> {
        let stale = match self.entries.get(key) {
            None => {
                self.stats.misses += 1;
                self.trace_event("miss", &key.goal);
                return None;
            }
            Some(e) => e
                .support
                .iter()
                .any(|(p, epoch)| edb_epochs.get(p).copied().unwrap_or(0) != *epoch),
        };
        if stale {
            let e = self.entries.remove(key).expect("checked above");
            self.bytes -= e.bytes;
            self.stats.invalidations += 1;
            self.stats.misses += 1;
            self.trace_event("stale", &key.goal);
            return None;
        }
        if need_provenance
            && self
                .entries
                .get(key)
                .is_some_and(|e| e.provenance.is_none())
        {
            self.stats.misses += 1;
            self.trace_event("miss", &key.goal);
            return None;
        }
        self.clock += 1;
        self.stats.hits += 1;
        self.trace_event("hit", &key.goal);
        let clock = self.clock;
        let e = self.entries.get_mut(key).expect("checked above");
        e.last_used = clock;
        Some(CachedOutcome {
            answers: &e.answers,
            counters: e.counters,
            provenance: e.provenance.as_deref(),
        })
    }

    /// Inserts a complete outcome. Oversized outcomes (bigger than the
    /// whole budget) are not cached; otherwise LRU entries are evicted
    /// until the new entry fits.
    pub fn insert(
        &mut self,
        key: CacheKey,
        answers: Vec<Answer>,
        counters: Counters,
        support: Vec<(Pred, u64)>,
        provenance: Option<Vec<Witness>>,
    ) {
        let bytes = entry_bytes(&key, &answers)
            + provenance
                .as_deref()
                .map_or(0, |ws| ws.iter().map(witness_bytes).sum());
        if bytes > self.max_bytes {
            return;
        }
        if let Some(old) = self.entries.remove(&key) {
            self.bytes -= old.bytes;
        }
        while self.bytes + bytes > self.max_bytes {
            let Some(lru) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            let evicted = self.entries.remove(&lru).expect("lru key exists");
            self.bytes -= evicted.bytes;
            self.stats.evictions += 1;
            self.trace_event("evict", &lru.goal);
        }
        self.clock += 1;
        self.bytes += bytes;
        self.entries.insert(
            key,
            Entry {
                answers,
                counters,
                support,
                provenance,
                bytes,
                last_used: self.clock,
            },
        );
    }

    /// Drops every entry (the stats survive — they describe the session).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.bytes = 0;
    }

    /// Cumulative hit/miss/invalidation/eviction counts.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Estimated bytes currently held.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The byte budget.
    pub fn capacity(&self) -> u64 {
        self.max_bytes
    }

    /// Re-budgets the cache, evicting LRU entries if it now overflows.
    pub fn set_capacity(&mut self, max_bytes: u64) {
        self.max_bytes = max_bytes;
        while self.bytes > self.max_bytes {
            let Some(lru) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            let evicted = self.entries.remove(&lru).expect("lru key exists");
            self.bytes -= evicted.bytes;
            self.stats.evictions += 1;
            self.trace_event("evict", &lru.goal);
        }
    }

    fn trace_event(&self, event: &'static str, goal: &Atom) {
        let mut sp = chainsplit_trace::Span::enter_cat("cache", "cache");
        if sp.is_recording() {
            sp.set_attr("event", event);
            sp.set_attr("pred", goal.pred);
            sp.set_attr("entries", self.entries.len());
            sp.set_attr("bytes", self.bytes);
        }
    }
}

/// Deterministic byte estimate of one entry, in the same currency as the
/// governor's `max_bytes_est`: term nodes times a nominal node size, plus
/// fixed per-answer and per-binding overheads.
fn entry_bytes(key: &CacheKey, answers: &[Answer]) -> u64 {
    const NODE: u64 = 24;
    const BINDING: u64 = 16;
    const ANSWER: u64 = 32;
    let mut total = 64u64;
    for a in &key.constraints {
        total += a.args.iter().map(|t| t.size() as u64).sum::<u64>() * NODE;
    }
    total += key.goal.args.iter().map(|t| t.size() as u64).sum::<u64>() * NODE;
    for ans in answers {
        total += ANSWER;
        for (_, t) in &ans.bindings {
            total += BINDING + t.size() as u64 * NODE;
        }
    }
    total
}

/// Byte estimate of one cached witness, same currency as [`entry_bytes`].
fn witness_bytes(w: &Witness) -> u64 {
    const NODE: u64 = 24;
    let atom = |a: &Atom| 32 + a.args.iter().map(|t| t.size() as u64).sum::<u64>() * NODE;
    atom(&w.head)
        + atom(&w.rule.head)
        + w.rule.body.iter().map(&atom).sum::<u64>()
        + w.body.iter().map(&atom).sum::<u64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainsplit_logic::{parse_query, Term};

    fn key(goal: &str, epoch: u64) -> CacheKey {
        CacheKey {
            goal: parse_query(goal).unwrap(),
            constraints: Vec::new(),
            strategy: Strategy::Auto,
            program_epoch: epoch,
        }
    }

    fn one_answer(val: i64) -> Vec<Answer> {
        let goal = parse_query("p(X)").unwrap();
        vec![Answer {
            bindings: vec![(goal.vars()[0], Term::Int(val))],
        }]
    }

    #[test]
    fn hit_miss_and_epoch_invalidation() {
        let mut cache = AnswerCache::default();
        let mut epochs = HashMap::new();
        let p = Pred::new("e", 1);
        let k = key("p(X)", 0);
        assert!(cache.lookup(&k, &epochs, false).is_none());
        cache.insert(
            k.clone(),
            one_answer(1),
            Counters::default(),
            vec![(p, 0)],
            None,
        );
        assert!(cache.lookup(&k, &epochs, false).is_some());
        // A fact insert into the supporting predicate bumps its epoch.
        epochs.insert(p, 1);
        assert!(cache.lookup(&k, &epochs, false).is_none());
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 2);
        assert!(cache.is_empty());
    }

    #[test]
    fn unrelated_epoch_bump_preserves_entry() {
        let mut cache = AnswerCache::default();
        let mut epochs = HashMap::new();
        let k = key("p(X)", 0);
        cache.insert(
            k.clone(),
            one_answer(1),
            Counters::default(),
            vec![(Pred::new("e", 1), 0)],
            None,
        );
        epochs.insert(Pred::new("unrelated", 1), 7);
        assert!(cache.lookup(&k, &epochs, false).is_some());
    }

    #[test]
    fn program_epoch_changes_the_key() {
        let mut cache = AnswerCache::default();
        let epochs = HashMap::new();
        cache.insert(
            key("p(X)", 0),
            one_answer(1),
            Counters::default(),
            vec![],
            None,
        );
        assert!(cache.lookup(&key("p(X)", 1), &epochs, false).is_none());
        assert!(cache.lookup(&key("p(X)", 0), &epochs, false).is_some());
    }

    #[test]
    fn lru_eviction_under_byte_budget() {
        let mut cache = AnswerCache::default();
        let epochs = HashMap::new();
        let one = entry_bytes(&key("p0(X)", 0), &one_answer(0));
        // Room for two entries, not three.
        cache.set_capacity(one * 2 + one / 2);
        for i in 0..2 {
            cache.insert(
                key(&format!("p{i}(X)"), 0),
                one_answer(i),
                Counters::default(),
                vec![],
                None,
            );
        }
        // Touch p0 so p1 is the LRU victim.
        assert!(cache.lookup(&key("p0(X)", 0), &epochs, false).is_some());
        cache.insert(
            key("p2(X)", 0),
            one_answer(2),
            Counters::default(),
            vec![],
            None,
        );
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.lookup(&key("p0(X)", 0), &epochs, false).is_some());
        assert!(cache.lookup(&key("p1(X)", 0), &epochs, false).is_none());
        assert!(cache.lookup(&key("p2(X)", 0), &epochs, false).is_some());
    }

    #[test]
    fn oversized_outcome_is_not_cached() {
        let mut cache = AnswerCache::default();
        cache.set_capacity(8);
        cache.insert(
            key("p(X)", 0),
            one_answer(1),
            Counters::default(),
            vec![],
            None,
        );
        assert!(cache.is_empty());
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn shrinking_capacity_evicts() {
        let mut cache = AnswerCache::default();
        for i in 0..4 {
            cache.insert(
                key(&format!("p{i}(X)"), 0),
                one_answer(i),
                Counters::default(),
                vec![],
                None,
            );
        }
        assert_eq!(cache.len(), 4);
        cache.set_capacity(entry_bytes(&key("p0(X)", 0), &one_answer(0)));
        assert!(cache.len() <= 1, "{} entries left", cache.len());
        assert!(cache.bytes() <= cache.capacity());
    }
}
