//! The §2.1 quantitative analysis: deciding *where* a chain generating
//! path should be split for efficiency.
//!
//! The decision compares each linkage's **join expansion ratio** (expected
//! matching tuples per binding, [`chainsplit_relation::Stats::expansion`])
//! against two thresholds:
//!
//! - above the **chain-split threshold**: the linkage is *weak* — the
//!   binding is never propagated through it (Example 1.2's
//!   `same_country`);
//! - below the **chain-following threshold**: the linkage is *strong* —
//!   the binding always propagates;
//! - in between: a quantitative tie-break — propagate only if the
//!   expansion through the linkage does not exceed the growth the strong
//!   portion already exhibits (following then costs no more per level than
//!   the chain already does; otherwise splitting is predicted cheaper).

use crate::system::System;
use chainsplit_chain::ModeTable;
use chainsplit_logic::{adorn::term_bound, Adornment, Atom, Pred, Var};
use chainsplit_relation::Stats;
use std::collections::HashSet;

/// Thresholds for the efficiency-based chain-split decision.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Expansion ratio above which a linkage is always split away.
    pub split_threshold: f64,
    /// Expansion ratio below which a binding always follows the chain.
    pub follow_threshold: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            split_threshold: 16.0,
            follow_threshold: 2.0,
        }
    }
}

impl CostModel {
    /// The predicates of `query`'s compiled recursion whose linkage is too
    /// weak to propagate bindings through — the input to Algorithm 3.1's
    /// modified binding-propagation rule ([`chainsplit_engine::DelayPreds`]).
    ///
    /// Simulates sideways information passing from the query's bound head
    /// variables over the chain generating path(s), consulting the EDB
    /// statistics at each step.
    pub fn weak_linkages(&self, sys: &System, query: &Atom) -> HashSet<Pred> {
        let mut weak = HashSet::new();
        let Some(rec) = sys.compiled.get(&query.pred) else {
            return weak;
        };
        let stats = Stats::new(&sys.edb);
        let ad = Adornment(
            query
                .args
                .iter()
                .map(|t| {
                    if t.is_ground() {
                        chainsplit_logic::Ad::Bound
                    } else {
                        chainsplit_logic::Ad::Free
                    }
                })
                .collect(),
        );
        let mut bound: HashSet<Var> = HashSet::new();
        for j in ad.bound_positions() {
            for v in rec.recursive_rule.head.args[j].vars() {
                bound.insert(v);
            }
        }

        let path = rec.path_atoms();
        let mut remaining: Vec<&Atom> = path.iter().map(|(_, a)| *a).collect();
        let modes = &sys.modes;
        let mut strong_growth: f64 = 1.0;
        loop {
            // Next candidate: an atom with at least one bound argument.
            let pick = remaining.iter().position(|a| {
                a.args.iter().any(|t| term_bound(t, &bound))
                    && (!chainsplit_chain::is_builtin(a.pred)
                        || modes.is_finite(a.pred, &Adornment::of_atom(a, &bound)))
            });
            let Some(k) = pick else { break };
            let atom = remaining.remove(k);
            if chainsplit_chain::is_builtin(atom.pred) || sys.is_idb(atom.pred) {
                // Builtins expand 1:1; nested IDB linkages are governed by
                // finiteness, not statistics.
                for v in atom.vars() {
                    bound.insert(v);
                }
                continue;
            }
            let bound_cols: Vec<usize> = atom
                .args
                .iter()
                .enumerate()
                .filter(|(_, t)| term_bound(t, &bound))
                .map(|(i, _)| i)
                .collect();
            let expansion = stats.expansion(atom.pred, &bound_cols);
            let split = if expansion > self.split_threshold {
                true
            } else if expansion < self.follow_threshold {
                false
            } else {
                // Quantitative tie-break.
                expansion > strong_growth.max(self.follow_threshold)
            };
            if split {
                weak.insert(atom.pred);
                // Do not extend `bound`: the binding stops here.
            } else {
                strong_growth = strong_growth.max(expansion);
                for v in atom.vars() {
                    bound.insert(v);
                }
            }
        }
        weak
    }
}

/// Convenience: the weak-linkage set as a SIP policy for the magic-sets
/// transformation.
pub fn sip_policy(model: &CostModel, sys: &System, query: &Atom) -> chainsplit_engine::DelayPreds {
    chainsplit_engine::DelayPreds(model.weak_linkages(sys, query))
}

// Keep ModeTable in the public signature story (documented dependency).
#[allow(unused)]
fn _mode_table_is_used(_: &ModeTable) {}

#[cfg(test)]
mod tests {
    use super::*;
    use chainsplit_logic::{parse_program, parse_query};

    /// scsg over `people_per_country` people in each of 2 countries.
    fn scsg_system(people_per_country: usize) -> System {
        let mut src = String::from(
            "scsg(X, Y) :- sibling(X, Y).
             scsg(X, Y) :- parent(X, X1), same_country(X1, Y1), parent(Y, Y1), scsg(X1, Y1).\n",
        );
        for c in 0..2 {
            for i in 0..people_per_country {
                for j in 0..people_per_country {
                    src.push_str(&format!("same_country(p{c}_{i}, p{c}_{j}).\n"));
                }
                src.push_str(&format!("parent(k{c}_{i}, p{c}_{i}).\n"));
            }
            src.push_str(&format!(
                "sibling(p{c}_0, p{c}_1). sibling(p{c}_1, p{c}_0).\n"
            ));
        }
        System::build(&parse_program(&src).unwrap())
    }

    #[test]
    fn same_country_is_weak_when_countries_are_large() {
        // 40 compatriots each: expansion 40 >> split threshold.
        let sys = scsg_system(40);
        let q = parse_query("scsg(k0_0, Y)").unwrap();
        let weak = CostModel::default().weak_linkages(&sys, &q);
        assert!(weak.contains(&Pred::new("same_country", 2)));
        assert!(!weak.contains(&Pred::new("parent", 2)));
    }

    #[test]
    fn same_country_is_strong_when_countries_are_tiny() {
        // 1 compatriot each: expansion 1 < follow threshold.
        let sys = scsg_system(1);
        let q = parse_query("scsg(k0_0, Y)").unwrap();
        let weak = CostModel::default().weak_linkages(&sys, &q);
        assert!(weak.is_empty());
    }

    #[test]
    fn thresholds_are_tunable() {
        let sys = scsg_system(4); // expansion 4: between 2 and 16
        let q = parse_query("scsg(k0_0, Y)").unwrap();
        // Default: middle band, tie-break vs strong growth (parent is 1:1,
        // so growth stays 1 < 4): split.
        let weak = CostModel::default().weak_linkages(&sys, &q);
        assert!(weak.contains(&Pred::new("same_country", 2)));
        // Raising the follow threshold forces following.
        let follow_all = CostModel {
            split_threshold: 1000.0,
            follow_threshold: 100.0,
        };
        assert!(follow_all.weak_linkages(&sys, &q).is_empty());
        // Lowering the split threshold splits even the first 1:1 linkage —
        // the binding then stops at `parent` and nothing else is reached.
        let split_all = CostModel {
            split_threshold: 0.5,
            follow_threshold: 0.1,
        };
        let weak = split_all.weak_linkages(&sys, &q);
        assert!(weak.contains(&Pred::new("parent", 2)));
    }

    #[test]
    fn uncompiled_query_has_no_weak_linkages() {
        let sys = scsg_system(2);
        let q = parse_query("unknown(X)").unwrap();
        assert!(CostModel::default().weak_linkages(&sys, &q).is_empty());
    }
}
