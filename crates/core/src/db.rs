//! The public facade: a deductive database with chain-split evaluation.
//!
//! [`DeductiveDb`] is the LogicBase-shaped entry point: load programs and
//! facts, then query. The planner picks the evaluation method per query
//! (the [`Strategy::Auto`] policy), or the caller forces one — which is
//! how the benchmark harness compares methods on identical inputs.

use crate::cost::CostModel;
use crate::efficiency::{chain_split_magic, standard_magic};
use crate::partial::eval_partial;
use crate::solver::{SolveOptions, Solver};
use crate::system::System;
use chainsplit_engine::{
    dred, duration_ms, naive_eval, seminaive_eval, tabled_query, topdown_query, unify_filter,
    BottomUpOptions, Counters, EvalError, EvalMetrics, JoinPlanner, PhaseTimings, PlanStats,
    PlannerRef, RepairOutcome, RoundMetrics, TabledOptions, TopDownOptions,
};
use chainsplit_governor::{Budget, BudgetTrip, CancelToken, Governor};
use chainsplit_logic::{
    parse_program, parse_query, parse_rule, Atom, ParseError, Program, Subst, Term, Var,
};
use chainsplit_storage::{
    Op, Recovered, RecoveryReport, StorageError, Store, StoreStatus, WalRecord,
};
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Which evaluation method to run.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Strategy {
    /// The planner decides: chain-split for compiled recursions, goal-
    /// directed resolution otherwise.
    #[default]
    Auto,
    /// Prolog-style SLD resolution on the original rules.
    TopDown,
    /// Naive bottom-up fixpoint (reference semantics; function-free only).
    Naive,
    /// Semi-naive bottom-up fixpoint (function-free only).
    SemiNaive,
    /// Standard magic sets with full binding propagation \[1, 2\].
    Magic,
    /// Algorithm 3.1: chain-split magic sets (cost-model-driven SIP).
    ChainSplitMagic,
    /// Algorithm 3.2/3.3: the chain-split executor (with constraint
    /// pushing when constraints are present).
    ChainSplit,
    /// Tabled (memoized) evaluation — an SLG-lite baseline that also
    /// terminates on cyclic data.
    Tabled,
    /// Standard magic sets with supplementary predicates (prefix joins
    /// materialised once).
    SupplementaryMagic,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Strategy::Auto => "auto",
            Strategy::TopDown => "top-down",
            Strategy::Naive => "naive",
            Strategy::SemiNaive => "semi-naive",
            Strategy::Magic => "magic",
            Strategy::ChainSplitMagic => "chain-split magic",
            Strategy::ChainSplit => "chain-split",
            Strategy::Tabled => "tabled",
            Strategy::SupplementaryMagic => "supplementary magic",
        };
        f.write_str(s)
    }
}

/// One query answer: the query variables and their values.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Answer {
    pub bindings: Vec<(Var, Term)>,
}

impl fmt::Display for Answer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bindings.is_empty() {
            return write!(f, "true");
        }
        for (i, (v, t)) in self.bindings.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v} = {t}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Answer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Answers plus evaluation statistics.
pub struct QueryOutcome {
    pub answers: Vec<Answer>,
    pub counters: Counters,
    pub strategy: Strategy,
    /// Per-round (or per-chain-level) metrics; empty for strategies with
    /// no natural round structure (plain top-down, tabled).
    pub rounds: Vec<RoundMetrics>,
    /// Wall time per evaluation phase.
    pub phases: PhaseTimings,
    /// `Some` when a resource budget or cancellation stopped evaluation
    /// early. The answers then hold what was derived before the trip: a
    /// sound under-approximation of the full answer set (DESIGN.md §10).
    pub trip: Option<BudgetTrip>,
    /// `true` when the answers were replayed from the cross-query answer
    /// cache (DESIGN.md §11). The counters are then zero — a hit does no
    /// new probe/match/derive work.
    pub cached: bool,
}

impl QueryOutcome {
    /// `true` when the answer set may be incomplete because a budget
    /// tripped or the query was cancelled.
    pub fn is_partial(&self) -> bool {
        self.trip.is_some()
    }
}

/// What [`DeductiveDb::retract_fact`] did.
#[derive(Clone, Debug, Default)]
pub struct RetractOutcome {
    /// Whether any matching clause was removed. `false` means the
    /// retraction was a no-op: no epoch moved and cached answers keep
    /// hitting.
    pub removed: bool,
    /// `true` when the retraction was a rule-program change (an exit-rule
    /// fact of an intensional predicate, or a non-ground clause) and the
    /// compiled system was dropped for recompilation.
    pub recompiled: bool,
    /// The incremental DRed repair report, when a materialization was
    /// live and the repair ran to completion or tripped.
    pub repair: Option<RepairOutcome>,
    /// Recorded witnesses evicted because their proof closure touched the
    /// retracted fact (0 when provenance recording is off).
    pub witnesses_evicted: usize,
}

/// Errors surfaced by the facade.
#[derive(Debug)]
pub enum DbError {
    Parse(ParseError),
    Eval(EvalError),
    /// A durability failure: the WAL append, snapshot write, or recovery
    /// replay did not complete. When this carries a simulated crash
    /// ([`StorageError::is_crash`]) the handle must be treated as killed.
    Storage(StorageError),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(e) => write!(f, "{e}"),
            DbError::Eval(e) => write!(f, "{e}"),
            DbError::Storage(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DbError {
    /// The wrapped error, so callers can walk the chain (e.g. down to
    /// the `std::io::Error` under a [`StorageError::Io`]) instead of
    /// string-matching `Display` output.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Parse(e) => Some(e),
            DbError::Eval(e) => Some(e),
            DbError::Storage(e) => Some(e),
        }
    }
}

impl From<ParseError> for DbError {
    fn from(e: ParseError) -> DbError {
        DbError::Parse(e)
    }
}

impl From<EvalError> for DbError {
    fn from(e: EvalError) -> DbError {
        DbError::Eval(e)
    }
}

impl From<StorageError> for DbError {
    fn from(e: StorageError) -> DbError {
        DbError::Storage(e)
    }
}

/// A deductive database: EDB + IDB + ICs + the chain-split query evaluator.
///
/// ```
/// use chainsplit_core::DeductiveDb;
///
/// let mut db = DeductiveDb::new();
/// db.load(
///     "append([], L, L).
///      append([X | L1], L2, [X | L3]) :- append(L1, L2, L3).",
/// )
/// .unwrap();
/// // append^ffb needs chain-split evaluation; the planner applies it.
/// assert_eq!(db.query("append(U, V, [1, 2, 3])").unwrap().len(), 4);
/// assert!(db.exists("append(U, V, [1, 2, 3])").unwrap());
/// ```
pub struct DeductiveDb {
    source: Program,
    /// Integrity constraints: denial bodies that must stay unsatisfiable.
    constraints: Vec<Vec<Atom>>,
    system: Option<System>,
    /// Bumped by every rule-program change (`load` with rules, `load_rule`
    /// of a proper rule, an exit-rule fact). Plain EDB fact inserts do
    /// *not* bump it — they bump the mutated predicate's entry in
    /// `edb_epochs` instead, so the answer cache invalidates by support
    /// set rather than wholesale.
    program_epoch: u64,
    /// Per-predicate EDB mutation epochs (missing means 0: never mutated
    /// since the last recompile).
    edb_epochs: std::collections::HashMap<chainsplit_logic::Pred, u64>,
    /// The cross-query answer cache (DESIGN.md §11). Off by default.
    cache: crate::cache::AnswerCache,
    cache_enabled: bool,
    /// Evaluation budgets.
    pub solve_options: SolveOptions,
    pub bottom_up_options: BottomUpOptions,
    pub top_down_options: TopDownOptions,
    pub tabled_options: TabledOptions,
    /// Thresholds for the efficiency-based split decision.
    pub cost_model: CostModel,
    /// The resource governor shared by every evaluator this db runs:
    /// deadlines, round/tuple/byte budgets, and cooperative cancellation.
    governor: Governor,
    /// The cost-based join planner shared by every evaluator this db
    /// runs: one plan cache, invalidated per predicate on fact mutations
    /// and wholesale on recompiles (DESIGN.md §14). The same handle is
    /// installed in every options struct at construction, so options
    /// clones keep sharing it.
    planner: PlannerRef,
    /// The maintained IDB fixpoint plus support counts (DESIGN.md §13).
    /// `None` until [`materialize`](Self::materialize); dropped on any
    /// rule-program change or mid-repair budget trip.
    materialization: Option<dred::Materialization>,
    /// The durable store (DESIGN.md §15), attached by
    /// [`open`](Self::open). `None` for a purely in-memory db — the
    /// default, costing the mutation paths one branch.
    store: Option<Store>,
    /// Whether mutations append to the WAL (`:wal on|off`). Recovery
    /// replay clears it so recovered operations don't re-log.
    wal_enabled: bool,
    /// The report from the recovery that opened this db (`:wal status`).
    recovery: Option<RecoveryReport>,
}

impl Default for DeductiveDb {
    fn default() -> Self {
        Self::new()
    }
}

impl DeductiveDb {
    pub fn new() -> DeductiveDb {
        let planner = JoinPlanner::shared();
        DeductiveDb {
            source: Program::default(),
            constraints: Vec::new(),
            system: None,
            program_epoch: 0,
            edb_epochs: std::collections::HashMap::new(),
            cache: crate::cache::AnswerCache::default(),
            cache_enabled: false,
            solve_options: SolveOptions {
                planner: planner.clone(),
                ..SolveOptions::default()
            },
            bottom_up_options: BottomUpOptions {
                planner: planner.clone(),
                ..BottomUpOptions::default()
            },
            top_down_options: TopDownOptions::default(),
            tabled_options: TabledOptions {
                planner: planner.clone(),
                ..TabledOptions::default()
            },
            cost_model: CostModel::default(),
            governor: Governor::new(),
            planner,
            materialization: None,
            store: None,
            wal_enabled: false,
            recovery: None,
        }
    }

    // ---- durability (DESIGN.md §15) ----

    /// Opens (creating if needed) a durable database at `data_dir`:
    /// loads the newest valid snapshot, replays the WAL suffix through
    /// the normal mutation paths (a torn tail has already been detected
    /// by checksum and truncated — never replayed), restores the epoch
    /// vector so answer- and plan-cache invalidation behave exactly as
    /// before the crash, and leaves WAL logging enabled.
    pub fn open(data_dir: &Path) -> Result<DeductiveDb, DbError> {
        Self::open_with_budget(data_dir, Budget::default())
    }

    /// [`open`](Self::open) under a resource budget that also governs
    /// the recovery replay itself. A trip mid-replay surfaces as an
    /// error — a clean refusal to open, never a half-open database. The
    /// budget stays installed for subsequent queries.
    pub fn open_with_budget(data_dir: &Path, budget: Budget) -> Result<DeductiveDb, DbError> {
        let mut db = DeductiveDb::new();
        db.governor.set_budget(budget);
        db.governor.begin_query();
        let (store, recovered) = Store::open(data_dir, &db.governor)?;
        db.store = Some(store);
        db.replay(recovered)?;
        db.wal_enabled = true;
        Ok(db)
    }

    /// Applies a recovered snapshot and WAL suffix. Runs with WAL
    /// logging off (this *is* the log), through the same public mutation
    /// paths a live session uses, so epochs regenerate deterministically;
    /// each record's post-op stamps are then cross-checked.
    fn replay(&mut self, recovered: Recovered) -> Result<(), DbError> {
        debug_assert!(!self.wal_enabled, "replay must not re-log");
        let mut sp = chainsplit_trace::Span::enter_cat("wal-replay", "wal");
        if let Some(snap) = &recovered.snapshot {
            self.load(&snap.program)?;
            // The snapshot carries *absolute* epochs; loading bumped
            // relative ones, so overwrite wholesale.
            self.program_epoch = snap.program_epoch;
            self.edb_epochs.clear();
            for (key, epoch) in &snap.edb_epochs {
                self.edb_epochs.insert(parse_pred_key(key)?, *epoch);
            }
        }
        for rec in &recovered.records {
            self.governor
                .check("wal-replay")
                .map_err(StorageError::Budget)?;
            self.apply_record(rec)?;
        }
        sp.set_attr("records", recovered.records.len());
        self.recovery = Some(recovered.report);
        Ok(())
    }

    /// Replays one WAL record and validates its post-op epoch stamps.
    /// A stamp mismatch means the log does not describe this database —
    /// recovery refuses rather than continuing from a diverged state.
    fn apply_record(&mut self, rec: &WalRecord) -> Result<(), DbError> {
        match &rec.op {
            Op::AddFact(text) => self.add_fact(parse_query(text)?)?,
            Op::RetractFact(text) => {
                self.retract_fact(&parse_query(text)?)?;
            }
            Op::LoadRule(text) => self.load_rule(text)?,
            Op::LoadProgram(text) => self.load(text)?,
            Op::Recompile => {}
        }
        let corrupt = |detail: String| {
            DbError::Storage(StorageError::Corrupt {
                path: "<wal replay>".into(),
                detail,
            })
        };
        if self.program_epoch != rec.program_epoch {
            return Err(corrupt(format!(
                "record seq {}: program epoch diverged (log says {}, replay reached {})",
                rec.seq, rec.program_epoch, self.program_epoch
            )));
        }
        for (key, epoch) in &rec.edb_epochs {
            let got = self.edb_epoch(parse_pred_key(key)?);
            if got != *epoch {
                return Err(corrupt(format!(
                    "record seq {}: edb epoch of {key} diverged (log says {epoch}, replay reached {got})",
                    rec.seq
                )));
            }
        }
        Ok(())
    }

    /// Appends one operation to the WAL (before the mutation it
    /// describes touches memory). A no-op without an attached store or
    /// with logging off — the in-memory hot path costs one branch.
    fn wal_append(
        &mut self,
        op: Op,
        program_epoch: u64,
        edb_epochs: Vec<(String, u64)>,
    ) -> Result<(), DbError> {
        if !self.wal_enabled {
            return Ok(());
        }
        if let Some(store) = &mut self.store {
            store.append(op, program_epoch, edb_epochs, &self.governor)?;
        }
        Ok(())
    }

    /// The post-op EDB epoch stamps for ingesting the given facts: each
    /// predicate's current epoch plus its number of inserts.
    fn predict_fact_epochs(
        &self,
        preds: impl Iterator<Item = chainsplit_logic::Pred>,
    ) -> Vec<(String, u64)> {
        let mut bumps: Vec<(chainsplit_logic::Pred, u64)> = Vec::new();
        for pred in preds {
            match bumps.iter_mut().find(|(p, _)| *p == pred) {
                Some((_, n)) => *n += 1,
                None => bumps.push((pred, 1)),
            }
        }
        bumps
            .into_iter()
            .map(|(p, n)| (p.to_string(), self.edb_epoch(p) + n))
            .collect()
    }

    /// Writes a durable snapshot of the current program, EDB, and epoch
    /// vector (`:snapshot`), then prunes the WAL segments and older
    /// snapshots it covers. Returns the snapshot path, or `None` when no
    /// durable store is attached.
    pub fn snapshot(&mut self) -> Result<Option<PathBuf>, DbError> {
        let program = self.dump();
        let program_epoch = self.program_epoch;
        let mut epochs: Vec<(String, u64)> = self
            .edb_epochs
            .iter()
            .map(|(p, e)| (p.to_string(), *e))
            .collect();
        epochs.sort();
        let Some(store) = &mut self.store else {
            return Ok(None);
        };
        let path = store.write_snapshot(program, program_epoch, epochs, &self.governor)?;
        Ok(Some(path))
    }

    /// Turns WAL logging on or off (`:wal on|off`). Returns the
    /// effective state — `true` requires a store attached via
    /// [`open`](Self::open). Re-enabling after mutations ran unlogged
    /// writes a fresh baseline snapshot first, so the durable state
    /// catches up with memory instead of silently missing operations.
    pub fn set_wal(&mut self, on: bool) -> Result<bool, DbError> {
        if !on {
            self.wal_enabled = false;
            return Ok(false);
        }
        if self.store.is_none() {
            return Ok(false);
        }
        if !self.wal_enabled {
            self.wal_enabled = true;
            self.snapshot()?;
        }
        Ok(true)
    }

    /// Whether mutations currently append to the WAL.
    pub fn wal_enabled(&self) -> bool {
        self.wal_enabled
    }

    /// The durable store's current shape (`:wal status`).
    pub fn store_status(&self) -> Option<StoreStatus> {
        self.store.as_ref().map(|s| s.status())
    }

    /// The report from the recovery that opened this db, if any.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Turns cost-based join planning on or off for every evaluator this
    /// db runs (`:plan on|off`). Toggling clears the plan cache either
    /// way — cached orders never outlive the policy that chose them.
    pub fn set_plan_enabled(&self, on: bool) {
        self.planner.set_enabled(on);
    }

    /// Whether cost-based join planning is on.
    pub fn plan_enabled(&self) -> bool {
        self.planner.is_enabled()
    }

    /// Cumulative plan-cache hit/miss/replan/invalidation counts
    /// (`:plan stats`).
    pub fn plan_stats(&self) -> PlanStats {
        self.planner.stats()
    }

    /// The governor every query on this db runs under.
    pub fn governor(&self) -> &Governor {
        &self.governor
    }

    /// Sets (or clears, with `Budget::default()`) the resource budget
    /// applied to every subsequent query. The deadline in `budget.wall`
    /// is re-armed at each query start, not from this call.
    pub fn set_budget(&self, budget: Budget) {
        self.governor.set_budget(budget);
    }

    /// The currently configured budget.
    pub fn budget(&self) -> Budget {
        self.governor.budget()
    }

    /// A shareable token that cancels the currently running (and any
    /// future) query when triggered from another thread.
    pub fn cancel_token(&self) -> CancelToken {
        self.governor.cancel_token()
    }

    /// Sets the worker-thread count for every parallel evaluator (the
    /// semi-naive fixpoint family and the buffered chain-split up-sweep).
    /// `0` and `1` both mean sequential. Answers and work counters are
    /// identical for every value — only wall time changes (DESIGN.md §5).
    pub fn set_threads(&mut self, n: usize) {
        let n = n.max(1);
        self.solve_options.threads = n;
        self.bottom_up_options.threads = n;
    }

    /// The worker-thread count parallel evaluators will use.
    pub fn threads(&self) -> usize {
        self.bottom_up_options.threads
    }

    /// Loads a program fragment (facts and/or rules).
    ///
    /// A facts-only fragment (every clause a ground fact of a predicate
    /// with no proper rule) is ingested straight into the EDB: the
    /// compiled system — rectification, classification, chain
    /// compilation — survives untouched, and only the mutated predicates'
    /// EDB epochs move. Anything containing a rule recompiles.
    pub fn load(&mut self, src: &str) -> Result<(), DbError> {
        let p = parse_program(src)?;
        if p.rules
            .iter()
            .all(|r| r.is_fact() && r.head.is_ground() && !self.is_idb_pred(r.head.pred))
        {
            let stamps = self.predict_fact_epochs(p.rules.iter().map(|r| r.head.pred));
            self.wal_append(Op::LoadProgram(src.to_string()), self.program_epoch, stamps)?;
            for r in p.rules {
                self.ingest_fact(r.head);
            }
        } else {
            self.wal_append(
                Op::LoadProgram(src.to_string()),
                self.program_epoch + 1,
                Vec::new(),
            )?;
            self.source.rules.extend(p.rules);
            self.invalidate_program();
            self.wal_append(Op::Recompile, self.program_epoch, Vec::new())?;
        }
        Ok(())
    }

    /// Loads a single clause (fact inserts keep the compiled system, like
    /// [`load`](Self::load)).
    pub fn load_rule(&mut self, src: &str) -> Result<(), DbError> {
        let r = parse_rule(src)?;
        if r.is_fact() && r.head.is_ground() && !self.is_idb_pred(r.head.pred) {
            let stamps = self.predict_fact_epochs(std::iter::once(r.head.pred));
            self.wal_append(Op::LoadRule(src.to_string()), self.program_epoch, stamps)?;
            self.ingest_fact(r.head);
        } else {
            self.wal_append(
                Op::LoadRule(src.to_string()),
                self.program_epoch + 1,
                Vec::new(),
            )?;
            self.source.rules.push(r);
            self.invalidate_program();
            self.wal_append(Op::Recompile, self.program_epoch, Vec::new())?;
        }
        Ok(())
    }

    /// Adds a fact directly. A ground fact of an extensional predicate
    /// skips recompilation; a fact of an IDB predicate is a new exit rule
    /// and recompiles like any rule change. With a WAL attached the
    /// record is appended (and fsynced) *before* memory mutates — an
    /// error means nothing changed.
    pub fn add_fact(&mut self, fact: Atom) -> Result<(), DbError> {
        if fact.is_ground() && !self.is_idb_pred(fact.pred) {
            let stamps = self.predict_fact_epochs(std::iter::once(fact.pred));
            self.wal_append(Op::AddFact(fact.to_string()), self.program_epoch, stamps)?;
            self.ingest_fact(fact);
        } else {
            self.wal_append(
                Op::AddFact(fact.to_string()),
                self.program_epoch + 1,
                Vec::new(),
            )?;
            self.source.rules.push(chainsplit_logic::Rule::fact(fact));
            self.invalidate_program();
            self.wal_append(Op::Recompile, self.program_epoch, Vec::new())?;
        }
        Ok(())
    }

    /// Retracts a fact. The fast path — a ground fact of an extensional
    /// predicate — removes it from the EDB in place: the compiled system
    /// survives, only the predicate's EDB epoch moves (so the answer
    /// cache invalidates exactly the dependency-reachable entries), any
    /// recorded witnesses whose proofs touched the fact are evicted, and
    /// a maintained materialization is repaired incrementally via
    /// Delete-and-Rederive (DESIGN.md §13).
    ///
    /// Retracting an absent fact is a no-op: nothing moves, and cached
    /// answers keep hitting. A fact of an intensional predicate (an exit
    /// rule) or a non-ground "fact" is a rule-program change: the
    /// matching clauses are removed and the system recompiles.
    pub fn retract_fact(&mut self, fact: &Atom) -> Result<RetractOutcome, DbError> {
        let mut outcome = RetractOutcome::default();
        // Presence decides the epoch stamp, and the stamp must be logged
        // before the mutation — so check before touching anything. A
        // no-op retraction is logged too (replaying a no-op is a no-op),
        // which keeps the record stream a pure function of the op
        // sequence rather than of the state it happened to hit.
        let present = self
            .source
            .rules
            .iter()
            .any(|r| r.is_fact() && r.head == *fact);
        if !fact.is_ground() || self.is_idb_pred(fact.pred) {
            // Rule path: drop every syntactically matching fact clause.
            let stamp = if present {
                self.program_epoch + 1
            } else {
                self.program_epoch
            };
            self.wal_append(Op::RetractFact(fact.to_string()), stamp, Vec::new())?;
            if !present {
                return Ok(outcome);
            }
            self.source
                .rules
                .retain(|r| !(r.is_fact() && r.head == *fact));
            self.invalidate_program();
            self.wal_append(Op::Recompile, self.program_epoch, Vec::new())?;
            outcome.removed = true;
            outcome.recompiled = true;
            return Ok(outcome);
        }
        // EDB path. Retracting an absent fact must not bump the epoch
        // (cached answers stay valid and keep hitting).
        let bump = u64::from(present);
        let stamps = vec![(fact.pred.to_string(), self.edb_epoch(fact.pred) + bump)];
        self.wal_append(
            Op::RetractFact(fact.to_string()),
            self.program_epoch,
            stamps,
        )?;
        if !present {
            return Ok(outcome);
        }
        self.source
            .rules
            .retain(|r| !(r.is_fact() && r.head == *fact));
        outcome.removed = true;
        if let Some(sys) = &mut self.system {
            sys.edb.remove_fact(fact);
        }
        *self.edb_epochs.entry(fact.pred).or_insert(0) += 1;
        self.planner.bump_epoch(fact.pred);
        if chainsplit_provenance::is_enabled() {
            outcome.witnesses_evicted = chainsplit_provenance::evict_dependents(fact);
        }
        if self.materialization.is_some() {
            outcome.repair = self.repair_materialization(fact, dred::retract);
        }
        Ok(outcome)
    }

    /// Builds (or rebuilds) the maintained materialization: the full IDB
    /// fixpoint over the compiled rules plus exact support counts, kept
    /// incrementally consistent across [`add_fact`](Self::add_fact) and
    /// [`retract_fact`](Self::retract_fact) until the next rule-program
    /// change. Returns `false` when the program is not bottom-up
    /// evaluable (e.g. functional recursions) or a budget tripped the
    /// build — the db then simply stays unmaterialized.
    pub fn materialize(&mut self) -> Result<bool, DbError> {
        self.materialization = None;
        self.governor.begin_query();
        let opts = BottomUpOptions {
            governor: self.governor.clone(),
            ..self.bottom_up_options.clone()
        };
        let sys = self.system();
        let rules = sys.rectified.rules.clone();
        let edb = sys.edb.clone();
        match dred::materialize(&rules, &edb, &opts) {
            Ok(out) => {
                self.materialization = out.materialization;
                Ok(self.materialization.is_some())
            }
            Err(EvalError::NotEvaluable { .. }) | Err(EvalError::Unsupported { .. }) => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    /// Whether a maintained materialization is currently live.
    pub fn is_materialized(&self) -> bool {
        self.materialization.is_some()
    }

    /// Drops the maintained materialization (`:materialize off`). Queries
    /// are unaffected — the materialization is an acceleration, never the
    /// source of truth.
    pub fn dematerialize(&mut self) {
        self.materialization = None;
    }

    /// The maintained materialization, for inspection (`:materialize`).
    pub fn materialization(&self) -> Option<&dred::Materialization> {
        self.materialization.as_ref()
    }

    /// The canonical digest of the maintained IDB state — sorted
    /// `pred(tuple)#support` lines. The differential oracle compares this
    /// against a from-scratch rebuild after every mutation.
    pub fn materialization_digest(&self) -> Option<Vec<String>> {
        self.materialization.as_ref().map(|m| m.digest())
    }

    /// The EDB mutation epoch of one predicate (0: never mutated since
    /// the last recompile).
    pub fn edb_epoch(&self, pred: chainsplit_logic::Pred) -> u64 {
        self.edb_epochs.get(&pred).copied().unwrap_or(0)
    }

    /// Every predicate with a non-zero EDB mutation epoch (`:stats`).
    pub fn edb_epochs(&self) -> &std::collections::HashMap<chainsplit_logic::Pred, u64> {
        &self.edb_epochs
    }

    /// The program (rule-set) epoch. Together with
    /// [`Self::edb_epochs`] this is the cache-invalidation clock the
    /// recovery oracle compares bit-for-bit against an in-memory twin.
    pub fn program_epoch(&self) -> u64 {
        self.program_epoch
    }

    /// Is `pred` intensional under the current program? Mirrors
    /// [`Program::split_facts`]: any non-(ground-fact) clause with this
    /// head predicate makes it IDB, so a new fact for it would be an exit
    /// rule, not EDB content.
    fn is_idb_pred(&self, pred: chainsplit_logic::Pred) -> bool {
        match &self.system {
            Some(sys) => sys.is_idb(pred),
            None => self
                .source
                .rules
                .iter()
                .any(|r| r.head.pred == pred && !(r.is_fact() && r.head.is_ground())),
        }
    }

    /// EDB fact ingestion: append to the source (so `dump` and the
    /// source-driven strategies see it), patch the compiled EDB in place
    /// if a system exists, bump the predicate's EDB epoch, and repair the
    /// materialization incrementally when one is maintained.
    fn ingest_fact(&mut self, fact: Atom) {
        if let Some(sys) = &mut self.system {
            sys.edb.add_fact(&fact);
            if !sys.modes.is_edb(fact.pred) {
                sys.modes.add_edb(fact.pred);
            }
        }
        *self.edb_epochs.entry(fact.pred).or_insert(0) += 1;
        self.planner.bump_epoch(fact.pred);
        if self.materialization.is_some() {
            self.repair_materialization(&fact, dred::assert_fact);
        }
        self.source.rules.push(chainsplit_logic::Rule::fact(fact));
    }

    /// Runs one incremental DRed repair (insert or retract) against the
    /// maintained materialization. A budget trip or evaluation error
    /// leaves the live state inconsistent, so the materialization is
    /// dropped — always safe, it is a maintained acceleration, not truth.
    fn repair_materialization(
        &mut self,
        fact: &Atom,
        step: impl Fn(
            &mut dred::Materialization,
            &Atom,
            &BottomUpOptions,
        ) -> Result<RepairOutcome, EvalError>,
    ) -> Option<RepairOutcome> {
        self.governor.begin_query();
        let opts = BottomUpOptions {
            governor: self.governor.clone(),
            ..self.bottom_up_options.clone()
        };
        let m = self.materialization.as_mut()?;
        match step(m, fact, &opts) {
            Ok(outcome) => {
                if outcome.trip.is_some() {
                    self.materialization = None;
                }
                Some(outcome)
            }
            Err(_) => {
                self.materialization = None;
                None
            }
        }
    }

    /// A rule-program change: drop the compiled system and the maintained
    /// materialization, bump the program epoch (every cached answer's key
    /// goes unreachable) and purge the now-dead cache entries.
    fn invalidate_program(&mut self) {
        self.system = None;
        self.materialization = None;
        self.program_epoch += 1;
        self.edb_epochs.clear();
        self.cache.clear();
        // A recompile re-rectifies bodies and rebuilds the EDB, so every
        // cached plan (and every statistic) is for a dead program shape.
        self.planner.clear();
    }

    /// The compiled system (compiling on first use).
    pub fn system(&mut self) -> &System {
        if self.system.is_none() {
            let _sp = chainsplit_trace::span!("compile", stage = "system-build");
            self.system = Some(System::build(&self.source));
        }
        self.system.as_ref().unwrap()
    }

    /// Turns the cross-query answer cache on or off. Entries survive a
    /// toggle (epoch validation still applies); partial and failed
    /// outcomes are never cached, so answers and trips are bit-identical
    /// with the cache on or off.
    pub fn set_cache_enabled(&mut self, on: bool) {
        self.cache_enabled = on;
    }

    /// Whether the answer cache is consulted.
    pub fn cache_enabled(&self) -> bool {
        self.cache_enabled
    }

    /// Cumulative cache hit/miss/invalidation/eviction counts.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats()
    }

    /// Entries and estimated bytes currently cached.
    pub fn cache_usage(&self) -> (usize, u64) {
        (self.cache.len(), self.cache.bytes())
    }

    /// Drops every cached answer set (stats survive).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Re-budgets the cache in estimated bytes (LRU-evicting on shrink).
    pub fn set_cache_capacity(&mut self, max_bytes: u64) {
        self.cache.set_capacity(max_bytes);
    }

    /// The support set of a goal: the extensional predicates it can reach
    /// in the dependency graph (plus itself when extensional), each with
    /// its current EDB epoch. A cached entry stays valid exactly while
    /// these epochs hold still.
    fn support_epochs(
        sys: &System,
        edb_epochs: &std::collections::HashMap<chainsplit_logic::Pred, u64>,
        goal: chainsplit_logic::Pred,
    ) -> Vec<(chainsplit_logic::Pred, u64)> {
        let mut preds: Vec<chainsplit_logic::Pred> = sys
            .graph
            .reachable(goal)
            .into_iter()
            .filter(|&p| !sys.is_idb(p) && !chainsplit_chain::is_builtin(p))
            .collect();
        if !sys.is_idb(goal) && !chainsplit_chain::is_builtin(goal) && !preds.contains(&goal) {
            preds.push(goal);
        }
        preds
            .into_iter()
            .map(|p| (p, edb_epochs.get(&p).copied().unwrap_or(0)))
            .collect()
    }

    /// Parses a query of the form `p(args)` or `p(args), c1, c2, …` where
    /// the `ci` are builtin constraint atoms.
    fn parse_goal(&self, src: &str) -> Result<(Atom, Vec<Atom>), DbError> {
        let src = src.trim();
        let src = src.strip_prefix("?-").unwrap_or(src).trim();
        let src = src.strip_suffix('.').unwrap_or(src);
        // The goal is wrapped in a synthetic rule head; shift first-line
        // columns back so errors point into the user's own text.
        const WRAPPER: &str = "goal__ :- ";
        let rule = parse_rule(&format!("{WRAPPER}{src}.")).map_err(|mut e| {
            if e.line == 1 {
                e.col = e.col.saturating_sub(WRAPPER.len() as u32).max(1);
            }
            e
        })?;
        let mut atoms = rule.body.into_iter();
        let head = atoms.next().expect("non-empty goal");
        Ok((head, atoms.collect()))
    }

    /// Answers `query` with the automatic strategy.
    pub fn query(&mut self, query: &str) -> Result<Vec<Answer>, DbError> {
        Ok(self.query_with(query, Strategy::Auto)?.answers)
    }

    /// Answers `query` under an explicit strategy, reporting counters.
    pub fn query_with(&mut self, query: &str, strategy: Strategy) -> Result<QueryOutcome, DbError> {
        let (atom, constraints) = self.parse_goal(query)?;
        self.query_atom(&atom, &constraints, strategy)
    }

    /// Core entry point: answer one goal atom plus builtin constraints.
    pub fn query_atom(
        &mut self,
        atom: &Atom,
        constraints: &[Atom],
        strategy: Strategy,
    ) -> Result<QueryOutcome, DbError> {
        // Re-arm the deadline and clear any previous trip, then hand every
        // evaluator the same governor handle via its options.
        self.governor.begin_query();
        let gov = self.governor.clone();
        let solve_opts = SolveOptions {
            governor: gov.clone(),
            ..self.solve_options.clone()
        };
        let bu_opts = BottomUpOptions {
            governor: gov.clone(),
            ..self.bottom_up_options.clone()
        };
        let td_opts = TopDownOptions {
            governor: gov.clone(),
            ..self.top_down_options.clone()
        };
        let tab_opts = TabledOptions {
            governor: gov.clone(),
            ..self.tabled_options.clone()
        };
        let cost = self.cost_model;
        let mut query_span = chainsplit_trace::span!("query", pred = atom.pred);
        query_span.set_attr("strategy", strategy);
        if self.system.is_none() {
            let _sp = chainsplit_trace::span!("compile", stage = "system-build");
            self.system = Some(System::build(&self.source));
        }
        let cache_key = self.cache_enabled.then(|| crate::cache::CacheKey {
            goal: atom.clone(),
            constraints: constraints.to_vec(),
            strategy,
            program_epoch: self.program_epoch,
        });
        if let Some(key) = &cache_key {
            // With recording on, only entries that captured a lineage
            // snapshot can hit — and the hit replays that snapshot, so
            // cached answers stay explainable.
            let need_prov = chainsplit_provenance::is_enabled();
            if let Some(hit) = self.cache.lookup(key, &self.edb_epochs, need_prov) {
                if need_prov {
                    if let Some(snap) = hit.provenance {
                        gov.add_bytes(chainsplit_provenance::replay(snap));
                    }
                }
                return Ok(QueryOutcome {
                    answers: hit.answers.to_vec(),
                    counters: Counters::default(),
                    strategy,
                    rounds: Vec::new(),
                    phases: PhaseTimings::default(),
                    trip: None,
                    cached: true,
                });
            }
        }
        let sys = self.system.as_ref().expect("compiled above");
        // The source-driven strategies (tabled, top-down) borrow the
        // program in place — no per-query clone.
        let source = &self.source;
        let qvars = {
            let mut v = atom.vars();
            for c in constraints {
                for w in c.vars() {
                    if !v.contains(&w) {
                        v.push(w);
                    }
                }
            }
            v
        };
        let project = |sols: Vec<Subst>| -> Vec<Answer> {
            let mut out: Vec<Answer> = sols
                .into_iter()
                .map(|s| Answer {
                    bindings: s.project(&qvars),
                })
                .collect();
            // Dedup structurally on the binding tuples: terms share
            // structure via `Arc`, so the clone into the seen-set is
            // cheap — no per-answer string rendering.
            let mut seen = std::collections::HashSet::new();
            out.retain(|a| seen.insert(a.clone()));
            out
        };

        let outcome = match strategy {
            Strategy::Auto | Strategy::ChainSplit => {
                let mut solver = Solver::new(sys, solve_opts);
                let t0 = Instant::now();
                let sols = {
                    let _sp = chainsplit_trace::span!("fixpoint", strategy = strategy);
                    eval_partial(&mut solver, atom, constraints)?
                };
                let fixpoint_ms = duration_ms(t0.elapsed());
                let t1 = Instant::now();
                let answers = {
                    let _sp = chainsplit_trace::span!("answer", pred = atom.pred);
                    project(sols)
                };
                QueryOutcome {
                    answers,
                    counters: solver.counters,
                    strategy,
                    rounds: solver.rounds,
                    phases: PhaseTimings {
                        fixpoint_ms,
                        answer_ms: duration_ms(t1.elapsed()),
                        ..PhaseTimings::default()
                    },
                    trip: solver.trip,
                    cached: false,
                }
            }
            Strategy::Tabled => {
                let t0 = Instant::now();
                let (sols, counters, trip) = tabled_query(source, atom, tab_opts)?;
                let fixpoint_ms = duration_ms(t0.elapsed());
                let t1 = Instant::now();
                let _sp = chainsplit_trace::span!("answer", pred = atom.pred);
                let sols = filter_constraints(sols, constraints)?;
                let answers = project(sols);
                QueryOutcome {
                    answers,
                    counters,
                    strategy,
                    rounds: Vec::new(),
                    phases: PhaseTimings {
                        fixpoint_ms,
                        answer_ms: duration_ms(t1.elapsed()),
                        ..PhaseTimings::default()
                    },
                    trip,
                    cached: false,
                }
            }
            Strategy::TopDown => {
                let t0 = Instant::now();
                let (sols, counters, trip) = topdown_query(source, atom, td_opts)?;
                let fixpoint_ms = duration_ms(t0.elapsed());
                let t1 = Instant::now();
                let _sp = chainsplit_trace::span!("answer", pred = atom.pred);
                let sols = filter_constraints(sols, constraints)?;
                let answers = project(sols);
                QueryOutcome {
                    answers,
                    counters,
                    strategy,
                    rounds: Vec::new(),
                    phases: PhaseTimings {
                        fixpoint_ms,
                        answer_ms: duration_ms(t1.elapsed()),
                        ..PhaseTimings::default()
                    },
                    trip,
                    cached: false,
                }
            }
            Strategy::Naive | Strategy::SemiNaive => {
                // Restrict the fixpoint to the rules reachable from the
                // query predicate — evaluating unrelated definitions would
                // waste work and can even be impossible (functional
                // recursions elsewhere in the IDB).
                let mut relevant: Vec<chainsplit_logic::Pred> = sys.graph.reachable(atom.pred);
                relevant.push(atom.pred);
                let rules: Vec<chainsplit_logic::Rule> = sys
                    .rectified
                    .rules
                    .iter()
                    .filter(|r| relevant.contains(&r.head.pred))
                    .cloned()
                    .collect();
                let run = if strategy == Strategy::Naive {
                    naive_eval(&rules, &sys.edb, bu_opts)?
                } else {
                    seminaive_eval(&rules, &sys.edb, bu_opts)?
                };
                let t0 = Instant::now();
                let _sp = chainsplit_trace::span!("answer", pred = atom.pred);
                let rel = run.idb.relation(atom.pred);
                let sols = unify_filter(rel, atom);
                let sols = filter_constraints(sols, constraints)?;
                let answers = project(sols);
                let mut phases = run.phases;
                phases.answer_ms = duration_ms(t0.elapsed());
                QueryOutcome {
                    answers,
                    counters: run.counters,
                    strategy,
                    rounds: run.rounds,
                    phases,
                    trip: run.trip,
                    cached: false,
                }
            }
            Strategy::SupplementaryMagic => {
                let r = chainsplit_engine::supplementary_magic_eval(
                    &sys.rectified.rules,
                    &sys.edb,
                    atom,
                    &chainsplit_engine::FullSip,
                    bu_opts,
                )?;
                let sols = filter_constraints(r.answers, constraints)?;
                QueryOutcome {
                    answers: project(sols),
                    counters: r.counters,
                    strategy,
                    rounds: r.rounds,
                    phases: r.phases,
                    trip: r.trip,
                    cached: false,
                }
            }
            Strategy::Magic => {
                let r = standard_magic(sys, atom, bu_opts)?;
                let sols = filter_constraints(r.answers, constraints)?;
                QueryOutcome {
                    answers: project(sols),
                    counters: r.counters,
                    strategy,
                    rounds: r.rounds,
                    phases: r.phases,
                    trip: r.trip,
                    cached: false,
                }
            }
            Strategy::ChainSplitMagic => {
                let r = chain_split_magic(sys, atom, &cost, bu_opts)?;
                let sols = filter_constraints(r.answers, constraints)?;
                QueryOutcome {
                    answers: project(sols),
                    counters: r.counters,
                    strategy,
                    rounds: r.rounds,
                    phases: r.phases,
                    trip: r.trip,
                    cached: false,
                }
            }
        };
        // Only complete outcomes are cached: a hit must replay exactly
        // what a fresh evaluation would report, and partial answer sets
        // depend on the budget that tripped them.
        if let Some(key) = cache_key {
            if outcome.trip.is_none() {
                let sys = self.system.as_ref().expect("compiled above");
                let support = Self::support_epochs(sys, &self.edb_epochs, atom.pred);
                // The lineage snapshot is the transitive witness closure
                // of the answers — complete (it may include witnesses
                // interned before this query), so a later hit replays
                // everything `:why` needs.
                let provenance = chainsplit_provenance::is_enabled().then(|| {
                    let roots = ground_instances(atom, &outcome.answers);
                    chainsplit_provenance::closure_for(&roots)
                });
                self.cache.insert(
                    key,
                    outcome.answers.clone(),
                    outcome.counters,
                    support,
                    provenance,
                );
            }
        }
        Ok(outcome)
    }

    /// Adds an integrity constraint: a *denial* whose body must never be
    /// satisfiable (the ICs of the paper's EDB/IDB/IC trichotomy, §1).
    ///
    /// `body_src` is a conjunction, e.g. `"parent(X, X)"` (nobody is their
    /// own parent) or `"flight(F, A, DT, A, AT, C)"` (no self-loops).
    pub fn add_integrity_constraint(&mut self, body_src: &str) -> Result<(), DbError> {
        let (head, rest) = self.parse_goal(body_src)?;
        let mut body = vec![head];
        body.extend(rest);
        self.constraints.push(body);
        Ok(())
    }

    /// Checks every integrity constraint against the current state.
    /// Returns one human-readable witness per violated constraint.
    pub fn check_integrity(&mut self) -> Result<Vec<String>, DbError> {
        let solve_opts = self.solve_options.clone();
        let ics = self.constraints.clone();
        let sys = self.system();
        let mut violations = Vec::new();
        for body in &ics {
            let mut solver = Solver::new(sys, solve_opts.clone());
            let atoms: Vec<&Atom> = body.iter().collect();
            let mut sols = Vec::new();
            solver.solve_body_dynamic(&atoms, &Subst::new(), 0, &mut sols)?;
            if let Some(s) = sols.first() {
                let witness: Vec<String> =
                    body.iter().map(|a| s.resolve_atom(a).to_string()).collect();
                violations.push(format!(
                    "constraint violated: {} (witness: {})",
                    body.iter()
                        .map(|a| a.to_string())
                        .collect::<Vec<_>>()
                        .join(", "),
                    witness.join(", ")
                ));
            }
        }
        Ok(violations)
    }

    /// The program text as currently loaded (facts and rules), suitable
    /// for `load`-ing back — the CLI's `:save`.
    pub fn dump(&self) -> String {
        self.source.to_string()
    }

    /// Existence checking (§5): does `query` have at least one answer?
    /// Goal-directed search stops at the first success.
    pub fn exists(&mut self, query: &str) -> Result<bool, DbError> {
        let (atom, constraints) = self.parse_goal(query)?;
        let solve_opts = self.solve_options.clone();
        let sys = self.system();
        let mut solver = Solver::new(sys, solve_opts);
        if constraints.is_empty() {
            return Ok(solver
                .solve_first(&atom, &chainsplit_logic::Subst::new(), 0)?
                .is_some());
        }
        // With constraints the full (pushed) evaluation decides.
        let sols = eval_partial(&mut solver, &atom, &constraints)?;
        Ok(!sols.is_empty())
    }

    /// A human-readable compilation report for a predicate: class, chain
    /// form, and the split plan for a given query — the `EXPLAIN` of this
    /// engine.
    pub fn explain(&mut self, query: &str) -> Result<String, DbError> {
        use std::fmt::Write;
        let (atom, _) = self.parse_goal(query)?;
        let planner = self.planner.clone();
        let sys = self.system();
        let mut out = String::new();
        let class = sys.class_of(atom.pred);
        writeln!(out, "predicate: {}", atom.pred).unwrap();
        writeln!(out, "class: {class}").unwrap();
        if let Some(rec) = sys.compiled.get(&atom.pred) {
            writeln!(out, "chains: {}", rec.n_chains()).unwrap();
            for (i, c) in rec.chains.iter().enumerate() {
                writeln!(out, "  chain {i}: {c}").unwrap();
            }
            writeln!(out, "exit rules: {}", rec.exit_rules.len()).unwrap();
            let ad = crate::solver::runtime_adornment(&atom, &Subst::new());
            match chainsplit_chain::plan_split(rec, &ad, &sys.modes, &[]) {
                Ok(plan) => {
                    writeln!(out, "adornment: {}", plan.adornment).unwrap();
                    writeln!(
                        out,
                        "split: {}",
                        if plan.is_split() {
                            "yes (delayed portion present)"
                        } else {
                            "no (chain-following)"
                        }
                    )
                    .unwrap();
                    let show = |idxs: &[usize]| {
                        idxs.iter()
                            .map(|&i| rec.recursive_rule.body[i].to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    };
                    writeln!(out, "evaluated portion: {}", show(&plan.evaluated)).unwrap();
                    writeln!(out, "delayed portion: {}", show(&plan.delayed)).unwrap();
                    let buffered: Vec<String> =
                        plan.buffered.iter().map(|v| v.to_string()).collect();
                    writeln!(out, "buffered variables: [{}]", buffered.join(", ")).unwrap();
                }
                Err(e) => writeln!(out, "no split plan: {e}").unwrap(),
            }
        } else {
            writeln!(out, "not chain-compiled").unwrap();
        }
        // The cost-based join plan preview (DESIGN.md §14): plan each
        // rule defining this predicate against the current statistics,
        // without touching the plan cache, the seen set, or any counter.
        writeln!(
            out,
            "planner: {}",
            if planner.is_enabled() { "on" } else { "off" }
        )
        .unwrap();
        if planner.is_enabled() {
            writeln!(out, "join plans:").unwrap();
            let mut shown = 0usize;
            for rule in sys
                .rectified
                .rules
                .iter()
                .filter(|r| r.head.pred == atom.pred)
            {
                // Bind head variables to the query's ground arguments so
                // the plan sees the same groundness the executor would.
                let mut probe = Subst::new();
                let applicable =
                    rule.head.args.iter().zip(atom.args.iter()).all(|(ha, qa)| {
                        !qa.is_ground() || chainsplit_logic::unify(&mut probe, ha, qa)
                    });
                if !applicable {
                    continue;
                }
                let tagged: Vec<(&Atom, chainsplit_engine::AtomSource)> = rule
                    .body
                    .iter()
                    .map(|a| (a, chainsplit_engine::AtomSource::Auto))
                    .collect();
                let plan = planner.preview(&tagged, &probe, &|p| sys.edb.relation(p));
                let steps: Vec<String> = plan
                    .order
                    .iter()
                    .zip(plan.est_rows.iter())
                    .map(|(&j, est)| format!("{} (est {est:.1})", rule.body[j]))
                    .collect();
                if steps.is_empty() {
                    writeln!(out, "  rule {shown}: (no stored atoms)").unwrap();
                } else {
                    writeln!(out, "  rule {shown}: {}", steps.join(" -> ")).unwrap();
                }
                shown += 1;
            }
            if shown == 0 {
                writeln!(out, "  (no rules for this predicate)").unwrap();
            }
            let st = planner.stats();
            writeln!(
                out,
                "plan cache: {} hits, {} misses, {} replans",
                st.hits, st.misses, st.replans
            )
            .unwrap();
        }
        Ok(out)
    }

    /// `EXPLAIN ANALYZE`: run `query` under `strategy` and report the
    /// measured per-round metrics and phase timings, not just the plan.
    ///
    /// Strategies without a natural round structure (plain top-down,
    /// tabled) report a single summary round covering the whole run, so
    /// every strategy yields at least one round.
    pub fn explain_analyze(
        &mut self,
        query: &str,
        strategy: Strategy,
    ) -> Result<EvalMetrics, DbError> {
        let t0 = Instant::now();
        let freshly_compiled = self.system.is_none();
        self.system();
        let compile_ms = duration_ms(t0.elapsed());
        let outcome = self.query_with(query, strategy)?;
        let cached = outcome.cached;
        let mut phases = outcome.phases;
        if freshly_compiled {
            // Magic strategies also time their rule transform as compile
            // work; fold the system build into the same phase.
            phases.compile_ms += compile_ms;
        }
        let mut rounds = outcome.rounds;
        if rounds.is_empty() {
            rounds.push(RoundMetrics {
                round: 0,
                delta: outcome.counters.derived,
                counters: outcome.counters,
            });
        } else {
            // Work done outside the per-round loop (exit rules, top-level
            // resolution, answer filtering) is reported as a final
            // residual round, so round counters always sum to the totals.
            let mut acc = Counters::default();
            for r in &rounds {
                acc.add(&r.counters);
            }
            let residual = outcome.counters.since(&acc);
            if residual.probed > 0
                || residual.matched > 0
                || residual.derived > 0
                || residual.builtin_evals > 0
                || residual.magic_facts > 0
            {
                rounds.push(RoundMetrics {
                    round: rounds.len(),
                    delta: residual.derived,
                    counters: residual,
                });
            }
        }
        Ok(EvalMetrics {
            // An honest `:profile` on a hit: the zero counters are real
            // (no new work ran), and the strategy line says why.
            strategy: if cached {
                format!("{strategy} [cached]")
            } else {
                strategy.to_string()
            },
            answers: outcome.answers.len(),
            totals: outcome.counters,
            rounds,
            phases,
        })
    }

    /// *Why* does each answer of `query` hold? Runs the query with
    /// provenance recording on and builds one proof tree per ground
    /// answer instance — the `:why` of this engine. See
    /// [`explain_answer_with`](Self::explain_answer_with).
    pub fn explain_answer(&mut self, query: &str) -> Result<ProofReport, DbError> {
        self.explain_answer_with(query, Strategy::Auto)
    }

    /// [`explain_answer`](Self::explain_answer) under an explicit
    /// strategy — different strategies justify the same answers through
    /// differently shaped proofs (chain-split composes the recursive rule
    /// per level; semi-naive derives bottom-up), while the proof *leaves*
    /// agree.
    ///
    /// When provenance recording is off, a fresh recording session is
    /// opened (serialised via [`chainsplit_provenance::exclusive`]) and
    /// torn down afterwards; when the caller already records, their arena
    /// is used and left untouched. Proof trees are capped via the
    /// governor's byte budget
    /// ([`ProofLimits::from_byte_budget`](chainsplit_provenance::ProofLimits::from_byte_budget)).
    pub fn explain_answer_with(
        &mut self,
        query: &str,
        strategy: Strategy,
    ) -> Result<ProofReport, DbError> {
        let (atom, constraints) = self.parse_goal(query)?;
        let owned = !chainsplit_provenance::is_enabled();
        let _guard = owned.then(chainsplit_provenance::exclusive);
        if owned {
            chainsplit_provenance::clear();
            chainsplit_provenance::enable();
        }
        let result = (|| {
            let outcome = self.query_atom(&atom, &constraints, strategy)?;
            let limits = chainsplit_provenance::ProofLimits::from_byte_budget(
                self.governor.budget().max_bytes_est,
            );
            let sys = self.system.as_ref().expect("query compiled the system");
            let classify =
                |a: &Atom| {
                    if chainsplit_chain::is_builtin(a.pred) {
                        chainsplit_provenance::LeafKind::Builtin
                    } else if sys.edb.relation(a.pred).is_some_and(|r| {
                        r.contains(&chainsplit_relation::Tuple::new(a.args.clone()))
                    }) {
                        chainsplit_provenance::LeafKind::Fact
                    } else {
                        chainsplit_provenance::LeafKind::Unknown
                    }
                };
            let proofs = ground_instances(&atom, &outcome.answers)
                .iter()
                .map(|r| chainsplit_provenance::proof_tree(r, &limits, &classify))
                .collect();
            Ok(ProofReport {
                goal: atom.clone(),
                strategy: outcome.strategy,
                cached: outcome.cached,
                answers: outcome.answers,
                proofs,
            })
        })();
        if owned {
            chainsplit_provenance::disable();
            chainsplit_provenance::clear();
        }
        result
    }
}

/// Proof trees for one goal: what [`DeductiveDb::explain_answer`] returns.
pub struct ProofReport {
    /// The goal as parsed.
    pub goal: Atom,
    /// The strategy that evaluated it.
    pub strategy: Strategy,
    /// Whether the answers (and their lineage) replayed from the cache.
    pub cached: bool,
    /// The query's answers, as [`DeductiveDb::query`] would report them.
    pub answers: Vec<Answer>,
    /// One proof tree per ground answer instance, in answer order.
    pub proofs: Vec<chainsplit_provenance::ProofNode>,
}

impl ProofReport {
    /// Pretty trees, one per proof, separated by blank lines.
    pub fn render(&self) -> String {
        self.proofs
            .iter()
            .map(chainsplit_provenance::render)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// The schema-versioned `:why export` JSON document.
    pub fn export_json(&self) -> chainsplit_trace::json::Json {
        chainsplit_provenance::export_json(&self.goal.to_string(), &self.proofs)
    }
}

/// The ground instances of `goal` named by `answers`, deduplicated in
/// answer order. Answers leaving goal variables open denote non-ground
/// schemes and are skipped — no ground tuple to explain.
fn ground_instances(goal: &Atom, answers: &[Answer]) -> Vec<Atom> {
    let mut out: Vec<Atom> = Vec::new();
    for ans in answers {
        let mut s = Subst::new();
        let mut ok = true;
        for (v, t) in &ans.bindings {
            if !chainsplit_logic::unify(&mut s, &Term::Var(*v), t) {
                ok = false;
                break;
            }
        }
        if !ok {
            continue;
        }
        let inst = s.resolve_atom(goal);
        if inst.is_ground() && !out.contains(&inst) {
            out.push(inst);
        }
    }
    out
}

/// Parses a `name/arity` WAL epoch key back into a predicate. The key
/// was produced by `Pred`'s `Display`, which always ends in `/<arity>`.
fn parse_pred_key(key: &str) -> Result<chainsplit_logic::Pred, DbError> {
    let corrupt = || {
        DbError::Storage(StorageError::Corrupt {
            path: "<wal replay>".into(),
            detail: format!("bad predicate key {key:?}"),
        })
    };
    let (name, arity) = key.rsplit_once('/').ok_or_else(corrupt)?;
    let arity: u32 = arity.parse().map_err(|_| corrupt())?;
    Ok(chainsplit_logic::Pred::new(name, arity))
}

/// Filters substitutions by builtin constraints, threading bindings from
/// one constraint to the next (`length(L, N), N <= 3` binds `N` first).
fn filter_constraints(sols: Vec<Subst>, constraints: &[Atom]) -> Result<Vec<Subst>, EvalError> {
    if constraints.is_empty() {
        return Ok(sols);
    }
    let mut out = Vec::new();
    'next: for s in sols {
        let mut cur = s;
        for c in constraints {
            match chainsplit_engine::eval_builtin(c, &cur)? {
                Some(chainsplit_engine::BuiltinOutcome::Solutions(v)) => {
                    match v.into_iter().next() {
                        Some(s2) => cur = s2,
                        None => continue 'next,
                    }
                }
                Some(chainsplit_engine::BuiltinOutcome::NotEvaluable) => {
                    return Err(EvalError::NotEvaluable {
                        atom: c.to_string(),
                    })
                }
                None => {
                    return Err(EvalError::Unsupported {
                        reason: format!("constraint {c} is not a builtin"),
                    })
                }
            }
        }
        out.push(cur);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SG: &str = "parent(c1, p1). parent(c2, p1). parent(g1, c1). parent(g2, c2).
         sibling(c1, c2). sibling(c2, c1).
         sg(X, Y) :- sibling(X, Y).
         sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).";

    #[test]
    fn quickstart_flow() {
        let mut db = DeductiveDb::new();
        db.load(SG).unwrap();
        let answers = db.query("sg(g1, Y)").unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].to_string(), "Y = g2");
    }

    #[test]
    fn strategies_agree_on_sg() {
        let mut db = DeductiveDb::new();
        db.load(SG).unwrap();
        let mut reference: Option<Vec<String>> = None;
        for strat in [
            Strategy::Auto,
            Strategy::TopDown,
            Strategy::Naive,
            Strategy::SemiNaive,
            Strategy::Magic,
            Strategy::ChainSplitMagic,
        ] {
            let o = db.query_with("sg(g1, Y)", strat).unwrap();
            let mut v: Vec<String> = o.answers.iter().map(|a| a.to_string()).collect();
            v.sort();
            match &reference {
                None => reference = Some(v),
                Some(r) => assert_eq!(&v, r, "strategy {strat} disagrees"),
            }
        }
    }

    #[test]
    fn functional_queries_auto() {
        let mut db = DeductiveDb::new();
        db.load(
            "append([], L, L).
             append([X | L1], L2, [X | L3]) :- append(L1, L2, L3).",
        )
        .unwrap();
        let a = db.query("append(U, V, [1, 2, 3])").unwrap();
        assert_eq!(a.len(), 4);
        let a = db.query("append([1], [2], W)").unwrap();
        assert_eq!(a[0].to_string(), "W = [1, 2]");
    }

    #[test]
    fn constraint_queries() {
        let mut db = DeductiveDb::new();
        db.load(
            "n(1). n(5). n(9).
             pick(X) :- n(X).",
        )
        .unwrap();
        let a = db.query("pick(X), X > 2, X < 9").unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].to_string(), "X = 5");
    }

    #[test]
    fn incremental_loading() {
        let mut db = DeductiveDb::new();
        db.load("p(X) :- e(X).").unwrap();
        db.load_rule("e(1).").unwrap();
        assert_eq!(db.query("p(X)").unwrap().len(), 1);
        db.add_fact(chainsplit_logic::parse_query("e(2)").unwrap())
            .unwrap();
        assert_eq!(db.query("p(X)").unwrap().len(), 2);
    }

    #[test]
    fn explain_reports_split() {
        let mut db = DeductiveDb::new();
        db.load(
            "append([], L, L).
             append([X | L1], L2, [X | L3]) :- append(L1, L2, L3).",
        )
        .unwrap();
        let e = db.explain("append(U, V, [1, 2, 3])").unwrap();
        assert!(e.contains("class: linear"), "{e}");
        assert!(e.contains("split: yes"), "{e}");
        assert!(e.contains("buffered variables: [X]"), "{e}");
        let e = db.explain("append([1], [2], W)").unwrap();
        assert!(e.contains("adornment: bbf"), "{e}");
    }

    #[test]
    fn explain_analyze_reports_rounds_and_phases() {
        let mut db = DeductiveDb::new();
        db.load(SG).unwrap();
        let m = db
            .explain_analyze("sg(g1, Y)", Strategy::SemiNaive)
            .unwrap();
        assert_eq!(m.answers, 1);
        assert!(!m.rounds.is_empty());
        let delta_sum: usize = m.rounds.iter().map(|r| r.delta).sum();
        assert_eq!(delta_sum, m.delta_total());
        // Top-down has no natural rounds: a summary round is synthesized.
        let m = db.explain_analyze("sg(g1, Y)", Strategy::TopDown).unwrap();
        assert_eq!(m.rounds.len(), 1);
        assert_eq!(m.rounds[0].counters.probed, m.totals.probed);
        let text = m.to_string();
        assert!(text.contains("strategy top-down"), "{text}");
        assert!(text.contains("round"), "{text}");
    }

    #[test]
    fn parse_goal_forms() {
        let mut db = DeductiveDb::new();
        db.load("p(1).").unwrap();
        for q in ["p(X)", "?- p(X).", "p(X).", " p(X) "] {
            assert_eq!(db.query(q).unwrap().len(), 1, "{q}");
        }
        assert!(db.query("p(X), q(").is_err());
    }

    #[test]
    fn budget_trips_then_lifting_it_restores_full_answers() {
        let mut db = DeductiveDb::new();
        db.load(
            "edge(a, b). edge(b, c). edge(c, d). edge(d, e).
             path(X, Y) :- edge(X, Y).
             path(X, Y) :- edge(X, Z), path(Z, Y).",
        )
        .unwrap();
        let full = db.query_with("path(a, Y)", Strategy::SemiNaive).unwrap();
        assert!(full.trip.is_none());
        assert!(!full.is_partial());
        db.set_budget(Budget {
            max_rounds: Some(2),
            ..Budget::default()
        });
        let partial = db.query_with("path(a, Y)", Strategy::SemiNaive).unwrap();
        let trip = partial.trip.expect("rounds budget must trip");
        assert_eq!(trip.resource, chainsplit_governor::Resource::Rounds);
        assert!(partial.answers.len() < full.answers.len());
        // Crash consistency: lifting the budget on the *same* db restores
        // the complete answer set.
        db.set_budget(Budget::default());
        let again = db.query_with("path(a, Y)", Strategy::SemiNaive).unwrap();
        assert!(again.trip.is_none());
        let sort = |o: &QueryOutcome| {
            let mut v: Vec<String> = o.answers.iter().map(|a| a.to_string()).collect();
            v.sort();
            v
        };
        assert_eq!(sort(&again), sort(&full));
    }

    #[test]
    fn ground_query_answers_true() {
        let mut db = DeductiveDb::new();
        db.load("p(1).").unwrap();
        let a = db.query("p(1)").unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].to_string(), "true");
        assert!(db.query("p(2)").unwrap().is_empty());
    }
}

#[cfg(test)]
mod mutation_path_tests {
    use super::*;

    #[test]
    fn fact_inserts_keep_the_compiled_system() {
        let mut db = DeductiveDb::new();
        db.load("p(X) :- e(X). e(1).").unwrap();
        assert_eq!(db.query("p(X)").unwrap().len(), 1);
        let seq = db.system().build_seq;
        // Every fact-ingestion path: add_fact, load_rule of a ground
        // fact, load of a facts-only fragment.
        db.add_fact(chainsplit_logic::parse_query("e(2)").unwrap())
            .unwrap();
        db.load_rule("e(3).").unwrap();
        db.load("e(4). e(5).").unwrap();
        assert_eq!(
            db.system().build_seq,
            seq,
            "EDB fact inserts must not recompile"
        );
        assert_eq!(db.query("p(X)").unwrap().len(), 5);
        // A rule load is a program change: recompile.
        db.load_rule("q(X) :- e(X).").unwrap();
        assert_ne!(db.system().build_seq, seq);
        assert_eq!(db.query("q(X)").unwrap().len(), 5);
    }

    #[test]
    fn fact_insert_into_fresh_predicate_is_queryable() {
        let mut db = DeductiveDb::new();
        db.load("p(X) :- e(X). e(1).").unwrap();
        let seq = db.system().build_seq;
        db.add_fact(chainsplit_logic::parse_query("brand_new(7)").unwrap())
            .unwrap();
        assert_eq!(db.system().build_seq, seq);
        assert_eq!(db.query("brand_new(X)").unwrap().len(), 1);
        assert_eq!(db.query("brand_new(7)").unwrap().len(), 1);
    }

    #[test]
    fn idb_fact_is_an_exit_rule_and_recompiles() {
        let mut db = DeductiveDb::new();
        db.load("p(X) :- e(X). e(1).").unwrap();
        let seq = db.system().build_seq;
        // `p` is intensional: a ground `p` fact changes the rule program.
        db.add_fact(chainsplit_logic::parse_query("p(9)").unwrap())
            .unwrap();
        assert_ne!(db.system().build_seq, seq);
        assert_eq!(db.query("p(X)").unwrap().len(), 2);
    }

    #[test]
    fn non_ground_fact_goes_through_the_rule_path() {
        let mut db = DeductiveDb::new();
        db.load("e(1).").unwrap();
        let _ = db.system();
        db.load_rule("every(X).").unwrap();
        // Non-ground "facts" denote infinite relations: rule compiler's
        // problem, so the system must have been rebuilt.
        assert!(db.system().is_idb(chainsplit_logic::Pred::new("every", 1)));
    }

    #[test]
    fn fact_retracts_keep_the_compiled_system() {
        let mut db = DeductiveDb::new();
        db.load("p(X) :- e(X). e(1). e(2).").unwrap();
        assert_eq!(db.query("p(X)").unwrap().len(), 2);
        let seq = db.system().build_seq;
        let out = db
            .retract_fact(&chainsplit_logic::parse_query("e(2)").unwrap())
            .unwrap();
        assert!(out.removed);
        assert!(!out.recompiled);
        assert_eq!(
            db.system().build_seq,
            seq,
            "EDB fact retracts must not recompile"
        );
        assert_eq!(db.query("p(X)").unwrap().len(), 1);
        assert_eq!(db.edb_epoch(chainsplit_logic::Pred::new("e", 1)), 1);
        // Retracting an absent fact is a no-op: no epoch movement.
        let noop = db
            .retract_fact(&chainsplit_logic::parse_query("e(9)").unwrap())
            .unwrap();
        assert!(!noop.removed);
        assert_eq!(db.edb_epoch(chainsplit_logic::Pred::new("e", 1)), 1);
    }

    #[test]
    fn idb_exit_rule_retract_recompiles() {
        let mut db = DeductiveDb::new();
        db.load("p(X) :- e(X). e(1). p(9).").unwrap();
        assert_eq!(db.query("p(X)").unwrap().len(), 2);
        let seq = db.system().build_seq;
        // `p` is intensional: retracting its exit rule changes the program.
        let out = db
            .retract_fact(&chainsplit_logic::parse_query("p(9)").unwrap())
            .unwrap();
        assert!(out.removed);
        assert!(out.recompiled);
        assert_ne!(db.system().build_seq, seq);
        assert_eq!(db.query("p(X)").unwrap().len(), 1);
    }

    #[test]
    fn dump_drops_retracted_facts() {
        let mut db = DeductiveDb::new();
        db.load("p(X) :- e(X).").unwrap();
        db.add_fact(chainsplit_logic::parse_query("e(42)").unwrap())
            .unwrap();
        assert!(db.dump().contains("e(42)"));
        db.retract_fact(&chainsplit_logic::parse_query("e(42)").unwrap())
            .unwrap();
        assert!(!db.dump().contains("e(42)"));
        assert!(db.query("p(X)").unwrap().is_empty());
    }

    #[test]
    fn retract_evicts_recorded_witnesses() {
        let mut db = DeductiveDb::new();
        db.load(
            "edge(a, b). edge(b, c).
             path(X, Y) :- edge(X, Y).
             path(X, Y) :- edge(X, Z), path(Z, Y).",
        )
        .unwrap();
        let _g = chainsplit_provenance::exclusive();
        chainsplit_provenance::clear();
        chainsplit_provenance::enable();
        db.query_with("path(a, Y)", Strategy::SemiNaive).unwrap();
        let before = chainsplit_provenance::witness_count();
        let out = db
            .retract_fact(&chainsplit_logic::parse_query("edge(b, c)").unwrap())
            .unwrap();
        assert!(out.witnesses_evicted > 0, "{out:?}");
        assert!(chainsplit_provenance::witness_count() < before);
        chainsplit_provenance::disable();
        chainsplit_provenance::clear();
    }

    #[test]
    fn dump_still_contains_ingested_facts() {
        let mut db = DeductiveDb::new();
        db.load("p(X) :- e(X).").unwrap();
        let _ = db.system();
        db.add_fact(chainsplit_logic::parse_query("e(42)").unwrap())
            .unwrap();
        let text = db.dump();
        assert!(text.contains("e(42)"), "{text}");
        let mut db2 = DeductiveDb::new();
        db2.load(&text).unwrap();
        assert_eq!(db2.query("p(X)").unwrap().len(), 1);
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;

    fn sorted(answers: &[Answer]) -> Vec<String> {
        let mut v: Vec<String> = answers.iter().map(|a| a.to_string()).collect();
        v.sort();
        v
    }

    #[test]
    fn cache_is_off_by_default() {
        let mut db = DeductiveDb::new();
        db.load("e(1). p(X) :- e(X).").unwrap();
        assert!(!db.cache_enabled());
        db.query("p(X)").unwrap();
        db.query("p(X)").unwrap();
        assert_eq!(db.cache_stats().hits, 0);
        assert_eq!(db.cache_stats().misses, 0);
    }

    #[test]
    fn repeated_query_hits_with_zero_new_work() {
        let mut db = DeductiveDb::new();
        db.load(
            "edge(a, b). edge(b, c).
             path(X, Y) :- edge(X, Y).
             path(X, Y) :- edge(X, Z), path(Z, Y).",
        )
        .unwrap();
        db.set_cache_enabled(true);
        let cold = db.query_with("path(a, Y)", Strategy::SemiNaive).unwrap();
        assert!(!cold.cached);
        assert!(cold.counters.probed > 0);
        let warm = db.query_with("path(a, Y)", Strategy::SemiNaive).unwrap();
        assert!(warm.cached, "identical re-query must hit");
        assert_eq!(warm.counters.probed, 0, "a hit does no new probe work");
        assert_eq!(warm.counters.matched, 0);
        assert_eq!(warm.counters.derived, 0);
        assert_eq!(sorted(&warm.answers), sorted(&cold.answers));
        assert_eq!(db.cache_stats().hits, 1);
        assert_eq!(db.cache_stats().misses, 1);
    }

    #[test]
    fn different_strategy_or_goal_is_a_different_entry() {
        let mut db = DeductiveDb::new();
        db.load("edge(a, b). path(X, Y) :- edge(X, Y).").unwrap();
        db.set_cache_enabled(true);
        db.query_with("path(a, Y)", Strategy::SemiNaive).unwrap();
        let other = db.query_with("path(a, Y)", Strategy::Magic).unwrap();
        assert!(!other.cached, "strategy is part of the key");
        let other_goal = db.query_with("path(X, b)", Strategy::SemiNaive).unwrap();
        assert!(!other_goal.cached);
        assert_eq!(db.cache_usage().0, 3);
    }

    #[test]
    fn rule_load_misses_via_program_epoch() {
        let mut db = DeductiveDb::new();
        db.load("e(1). p(X) :- e(X).").unwrap();
        db.set_cache_enabled(true);
        db.query("p(X)").unwrap();
        assert!(db.query_with("p(X)", Strategy::Auto).unwrap().cached);
        db.load_rule("p(X) :- e2(X).").unwrap();
        let after = db.query_with("p(X)", Strategy::Auto).unwrap();
        assert!(!after.cached, "a rule load must invalidate");
        assert!(db.query_with("p(X)", Strategy::Auto).unwrap().cached);
    }

    #[test]
    fn fact_insert_invalidates_supporting_entries_only() {
        let mut db = DeductiveDb::new();
        db.load(
            "ea(1). eb(9).
             pa(X) :- ea(X).
             pb(X) :- eb(X).",
        )
        .unwrap();
        db.set_cache_enabled(true);
        db.query("pa(X)").unwrap();
        db.query("pb(X)").unwrap();
        // `ea` supports only `pa`: the `pb` entry must survive the insert.
        db.add_fact(chainsplit_logic::parse_query("ea(2)").unwrap())
            .unwrap();
        let pb = db.query_with("pb(X)", Strategy::Auto).unwrap();
        assert!(pb.cached, "unrelated insert must preserve the hit");
        let pa = db.query_with("pa(X)", Strategy::Auto).unwrap();
        assert!(!pa.cached, "supporting insert must invalidate");
        assert_eq!(pa.answers.len(), 2);
        assert_eq!(db.cache_stats().invalidations, 1);
        // An insert into a brand-new unrelated predicate preserves both.
        db.add_fact(chainsplit_logic::parse_query("elsewhere(0)").unwrap())
            .unwrap();
        assert!(db.query_with("pa(X)", Strategy::Auto).unwrap().cached);
        assert!(db.query_with("pb(X)", Strategy::Auto).unwrap().cached);
    }

    #[test]
    fn fact_retract_invalidates_supporting_entries_only() {
        let mut db = DeductiveDb::new();
        db.load(
            "ea(1). ea(2). eb(9).
             pa(X) :- ea(X).
             pb(X) :- eb(X).",
        )
        .unwrap();
        db.set_cache_enabled(true);
        db.query("pa(X)").unwrap();
        db.query("pb(X)").unwrap();
        // `ea` supports only `pa`: the `pb` entry must survive the retract.
        db.retract_fact(&chainsplit_logic::parse_query("ea(2)").unwrap())
            .unwrap();
        let pb = db.query_with("pb(X)", Strategy::Auto).unwrap();
        assert!(pb.cached, "unrelated retraction must preserve the hit");
        let pa = db.query_with("pa(X)", Strategy::Auto).unwrap();
        assert!(!pa.cached, "supporting retraction must invalidate");
        assert_eq!(pa.answers.len(), 1);
        assert_eq!(db.cache_stats().invalidations, 1);
    }

    #[test]
    fn noop_retract_preserves_cache_hits() {
        let mut db = DeductiveDb::new();
        db.load("ea(1). pa(X) :- ea(X).").unwrap();
        db.set_cache_enabled(true);
        db.query("pa(X)").unwrap();
        // The fact is absent: nothing moves, the entry stays valid.
        let noop = db
            .retract_fact(&chainsplit_logic::parse_query("ea(7)").unwrap())
            .unwrap();
        assert!(!noop.removed);
        assert!(db.query_with("pa(X)", Strategy::Auto).unwrap().cached);
        assert_eq!(db.cache_stats().invalidations, 0);
    }

    #[test]
    fn cached_why_after_retract_is_an_honest_miss() {
        let mut db = DeductiveDb::new();
        db.load(
            "edge(a, b). edge(b, c).
             path(X, Y) :- edge(X, Y).
             path(X, Y) :- edge(X, Z), path(Z, Y).",
        )
        .unwrap();
        db.set_cache_enabled(true);
        let cold = db.explain_answer("path(a, Y)").unwrap();
        assert!(!cold.cached);
        assert_eq!(cold.answers.len(), 2);
        let warm = db.explain_answer("path(a, Y)").unwrap();
        assert!(warm.cached, "identical :why must replay from the cache");
        db.retract_fact(&chainsplit_logic::parse_query("edge(b, c)").unwrap())
            .unwrap();
        let after = db.explain_answer("path(a, Y)").unwrap();
        assert!(!after.cached, "retraction must force a fresh evaluation");
        assert_eq!(after.answers.len(), 1);
        let rendered = after.render();
        assert!(
            !rendered.contains("edge(b, c)"),
            "no stale proof may cite the retracted fact: {rendered}"
        );
    }

    #[test]
    fn direct_edb_queries_invalidate_on_their_own_predicate() {
        let mut db = DeductiveDb::new();
        db.load("e(1). p(X) :- e(X).").unwrap();
        db.set_cache_enabled(true);
        assert_eq!(db.query("e(X)").unwrap().len(), 1);
        assert!(db.query_with("e(X)", Strategy::Auto).unwrap().cached);
        db.add_fact(chainsplit_logic::parse_query("e(2)").unwrap())
            .unwrap();
        let after = db.query_with("e(X)", Strategy::Auto).unwrap();
        assert!(!after.cached);
        assert_eq!(after.answers.len(), 2);
    }

    #[test]
    fn eviction_under_a_tight_byte_budget() {
        let mut db = DeductiveDb::new();
        db.load("e(1). e(2). p(X) :- e(X). q(X) :- e(X).").unwrap();
        db.set_cache_enabled(true);
        db.set_cache_capacity(400);
        db.query("p(X)").unwrap();
        db.query("q(X)").unwrap();
        assert!(
            db.cache_stats().evictions > 0 || db.cache_usage().0 < 2,
            "two entries must not both fit in 400 bytes: {:?} {:?}",
            db.cache_stats(),
            db.cache_usage()
        );
        // Answers stay correct throughout.
        assert_eq!(db.query("p(X)").unwrap().len(), 2);
        assert_eq!(db.query("q(X)").unwrap().len(), 2);
    }

    #[test]
    fn tripped_outcomes_are_not_cached() {
        let mut db = DeductiveDb::new();
        db.load(
            "edge(a, b). edge(b, c). edge(c, d). edge(d, e).
             path(X, Y) :- edge(X, Y).
             path(X, Y) :- edge(X, Z), path(Z, Y).",
        )
        .unwrap();
        db.set_cache_enabled(true);
        db.set_budget(Budget {
            max_rounds: Some(2),
            ..Budget::default()
        });
        let partial = db.query_with("path(a, Y)", Strategy::SemiNaive).unwrap();
        assert!(partial.trip.is_some());
        db.set_budget(Budget::default());
        let full = db.query_with("path(a, Y)", Strategy::SemiNaive).unwrap();
        assert!(
            !full.cached,
            "the partial outcome must not have been cached"
        );
        assert!(full.trip.is_none());
        assert_eq!(full.answers.len(), 4);
        assert!(
            db.query_with("path(a, Y)", Strategy::SemiNaive)
                .unwrap()
                .cached
        );
    }

    #[test]
    fn constraints_are_part_of_the_key() {
        let mut db = DeductiveDb::new();
        db.load("n(1). n(5). n(9). pick(X) :- n(X).").unwrap();
        db.set_cache_enabled(true);
        assert_eq!(db.query("pick(X), X > 2").unwrap().len(), 2);
        assert_eq!(db.query("pick(X), X > 6").unwrap().len(), 1);
        let a = db.query_with("pick(X), X > 2", Strategy::Auto).unwrap();
        assert!(a.cached);
        assert_eq!(a.answers.len(), 2);
    }

    #[test]
    fn clear_cache_drops_entries() {
        let mut db = DeductiveDb::new();
        db.load("e(1). p(X) :- e(X).").unwrap();
        db.set_cache_enabled(true);
        db.query("p(X)").unwrap();
        assert_eq!(db.cache_usage().0, 1);
        db.clear_cache();
        assert_eq!(db.cache_usage().0, 0);
        assert!(!db.query_with("p(X)", Strategy::Auto).unwrap().cached);
    }

    #[test]
    fn profile_marks_a_cached_run() {
        let mut db = DeductiveDb::new();
        db.load("e(1). p(X) :- e(X).").unwrap();
        db.set_cache_enabled(true);
        db.query_with("p(X)", Strategy::SemiNaive).unwrap();
        let m = db.explain_analyze("p(X)", Strategy::SemiNaive).unwrap();
        assert!(m.strategy.contains("[cached]"), "{}", m.strategy);
        assert_eq!(m.totals.probed, 0);
        assert_eq!(m.answers, 1);
    }
}

#[cfg(test)]
mod materialize_tests {
    use super::*;

    const TC: &str = "edge(a, b). edge(b, c). edge(c, a). edge(c, d).
         path(X, Y) :- edge(X, Y).
         path(X, Y) :- edge(X, Z), path(Z, Y).";

    fn fact(src: &str) -> Atom {
        chainsplit_logic::parse_query(src).unwrap()
    }

    #[test]
    fn materialize_then_retract_matches_a_rebuild() {
        let mut db = DeductiveDb::new();
        db.load(TC).unwrap();
        assert!(db.materialize().unwrap());
        let out = db.retract_fact(&fact("edge(c, a)")).unwrap();
        assert!(out.removed);
        let repair = out.repair.expect("materialized db must repair");
        assert!(repair.changed);
        assert!(repair.deleted > 0, "{repair:?}");
        assert!(db.is_materialized());
        // The repaired state is bit-identical to a from-scratch rebuild
        // over the post-retraction program.
        let mut fresh = DeductiveDb::new();
        fresh.load(&db.dump()).unwrap();
        assert!(fresh.materialize().unwrap());
        assert_eq!(db.materialization_digest(), fresh.materialization_digest());
        assert_eq!(db.query("path(a, Y)").unwrap().len(), 3);
    }

    #[test]
    fn materialize_then_insert_repairs_incrementally() {
        let mut db = DeductiveDb::new();
        db.load(TC).unwrap();
        assert!(db.materialize().unwrap());
        db.add_fact(fact("edge(d, e)")).unwrap();
        assert!(db.is_materialized(), "an insert repairs, not drops");
        assert_eq!(db.materialization().unwrap().repairs(), 1);
        let mut fresh = DeductiveDb::new();
        fresh.load(&db.dump()).unwrap();
        assert!(fresh.materialize().unwrap());
        assert_eq!(db.materialization_digest(), fresh.materialization_digest());
    }

    #[test]
    fn rule_changes_drop_the_materialization() {
        let mut db = DeductiveDb::new();
        db.load(TC).unwrap();
        assert!(db.materialize().unwrap());
        db.load_rule("reach(X) :- path(a, X).").unwrap();
        assert!(!db.is_materialized());
    }

    #[test]
    fn goal_directed_programs_decline_to_materialize() {
        let mut db = DeductiveDb::new();
        db.load(
            "append([], L, L).
             append([X | L1], L2, [X | L3]) :- append(L1, L2, L3).",
        )
        .unwrap();
        // Functional recursion: not bottom-up evaluable, no materialization
        // — and no error either, the db just stays unmaterialized.
        assert!(!db.materialize().unwrap());
        assert!(!db.is_materialized());
        assert_eq!(db.query("append(U, V, [1, 2, 3])").unwrap().len(), 4);
    }

    #[test]
    fn budget_trip_mid_repair_drops_the_materialization() {
        let mut db = DeductiveDb::new();
        db.load(TC).unwrap();
        assert!(db.materialize().unwrap());
        db.set_budget(Budget {
            max_rounds: Some(1),
            ..Budget::default()
        });
        let out = db.retract_fact(&fact("edge(a, b)")).unwrap();
        assert!(out.removed);
        assert!(
            !db.is_materialized(),
            "a tripped repair leaves no consistent state to keep: {out:?}"
        );
        // The db itself stays correct: queries recompute from the EDB.
        db.set_budget(Budget::default());
        assert_eq!(db.query("path(b, Y)").unwrap().len(), 3);
    }
}

#[cfg(test)]
mod tabled_and_exists_tests {
    use super::*;

    #[test]
    fn tabled_strategy_agrees() {
        let mut db = DeductiveDb::new();
        db.load(
            "path(X, Y) :- edge(X, Y).
             path(X, Y) :- edge(X, Z), path(Z, Y).
             edge(a, b). edge(b, c). edge(c, a).",
        )
        .unwrap();
        // Cyclic data: top-down diverges (depth budget), tabled terminates.
        let t = db.query_with("path(a, Y)", Strategy::Tabled).unwrap();
        let mut v: Vec<String> = t.answers.iter().map(|a| a.to_string()).collect();
        v.sort();
        assert_eq!(v, ["Y = a", "Y = b", "Y = c"]);
        // And agrees with semi-naive.
        let s = db.query_with("path(a, Y)", Strategy::SemiNaive).unwrap();
        assert_eq!(s.answers.len(), 3);
    }

    #[test]
    fn tabled_on_functional_program() {
        let mut db = DeductiveDb::new();
        db.load(
            "append([], L, L).
             append([X | L1], L2, [X | L3]) :- append(L1, L2, L3).",
        )
        .unwrap();
        let t = db
            .query_with("append(U, V, [1, 2, 3])", Strategy::Tabled)
            .unwrap();
        assert_eq!(t.answers.len(), 4);
    }

    #[test]
    fn exists_short_circuits() {
        let mut db = DeductiveDb::new();
        db.load(
            "path(X, Y) :- edge(X, Y).
             path(X, Y) :- edge(X, Z), path(Z, Y).",
        )
        .unwrap();
        for i in 0..200 {
            db.load_rule(&format!("edge(n{i}, n{}).", i + 1)).unwrap();
        }
        assert!(db.exists("path(n0, n200)").unwrap());
        assert!(!db.exists("path(n200, n0)").unwrap());
        // First-answer search touches far fewer tuples than the full query.
        let full = db.query_with("path(n0, Y)", Strategy::Auto).unwrap();
        assert_eq!(full.answers.len(), 200);
    }

    #[test]
    fn exists_with_constraints() {
        let mut db = DeductiveDb::new();
        db.load("n(3). n(9). pick(X) :- n(X).").unwrap();
        assert!(db.exists("pick(X), X > 5").unwrap());
        assert!(!db.exists("pick(X), X > 10").unwrap());
    }
}

#[cfg(test)]
mod integrity_tests {
    use super::*;

    #[test]
    fn constraints_detect_violations() {
        let mut db = DeductiveDb::new();
        db.load("parent(a, b). parent(c, c).").unwrap();
        db.add_integrity_constraint("parent(X, X)").unwrap();
        let v = db.check_integrity().unwrap();
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("parent(c, c)"), "{v:?}");
    }

    #[test]
    fn satisfied_constraints_are_quiet() {
        let mut db = DeductiveDb::new();
        db.load("parent(a, b). parent(b, c).").unwrap();
        db.add_integrity_constraint("parent(X, X)").unwrap();
        db.add_integrity_constraint("parent(X, Y), parent(Y, X)")
            .unwrap();
        assert!(db.check_integrity().unwrap().is_empty());
    }

    #[test]
    fn constraints_see_derived_facts() {
        let mut db = DeductiveDb::new();
        db.load(
            "edge(a, b). edge(b, a).
             path(X, Y) :- edge(X, Y).",
        )
        .unwrap();
        // Derived cycles count as violations too.
        db.add_integrity_constraint("path(X, Y), path(Y, X), X \\= Y")
            .unwrap();
        assert_eq!(db.check_integrity().unwrap().len(), 1);
    }

    #[test]
    fn dump_round_trips() {
        let mut db = DeductiveDb::new();
        db.load("p(1). q(X) :- p(X).").unwrap();
        let text = db.dump();
        let mut db2 = DeductiveDb::new();
        db2.load(&text).unwrap();
        assert_eq!(db2.query("q(X)").unwrap().len(), 1);
    }
}

/// Durability: WAL + snapshots + recovery (DESIGN.md §15).
#[cfg(test)]
mod durability_tests {
    use super::*;

    fn fact(src: &str) -> Atom {
        chainsplit_logic::parse_query(src).unwrap()
    }

    fn data_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "chainsplit-db-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn answers(db: &mut DeductiveDb, q: &str) -> Vec<String> {
        let mut v: Vec<String> = db.query(q).unwrap().iter().map(|a| a.to_string()).collect();
        v.sort();
        v
    }

    #[test]
    fn a_killed_session_recovers_from_the_wal() {
        let dir = data_dir("kill");
        let mut db = DeductiveDb::open(&dir).unwrap();
        db.load("path(X, Y) :- edge(X, Y).\npath(X, Y) :- edge(X, Z), path(Z, Y).")
            .unwrap();
        db.load("edge(a, b). edge(b, c).").unwrap();
        db.add_fact(fact("edge(c, d)")).unwrap();
        db.retract_fact(&fact("edge(b, c)")).unwrap();
        let want = answers(&mut db, "path(a, X)");
        let epoch = db.edb_epoch(chainsplit_logic::Pred::new("edge", 2));
        let program_epoch = db.program_epoch;
        // Kill: drop without snapshotting. Everything lives in the WAL.
        drop(db);
        let mut back = DeductiveDb::open(&dir).unwrap();
        assert_eq!(answers(&mut back, "path(a, X)"), want);
        assert_eq!(
            back.edb_epoch(chainsplit_logic::Pred::new("edge", 2)),
            epoch
        );
        assert_eq!(back.program_epoch, program_epoch);
        let report = back.recovery_report().unwrap().clone();
        assert_eq!(report.snapshot_seq, 0);
        assert!(report.replayed_records > 0);
        assert_eq!(report.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_snapshot_absorbs_the_wal_and_restores_absolute_epochs() {
        let dir = data_dir("snap");
        let mut db = DeductiveDb::open(&dir).unwrap();
        db.load("p(X) :- e(X).").unwrap();
        db.add_fact(fact("e(1)")).unwrap();
        db.add_fact(fact("e(2)")).unwrap();
        let path = db.snapshot().unwrap().expect("store attached");
        assert!(path.exists());
        // Mutations after the snapshot land in the WAL suffix.
        db.add_fact(fact("e(3)")).unwrap();
        let epoch = db.edb_epoch(chainsplit_logic::Pred::new("e", 1));
        drop(db);
        let mut back = DeductiveDb::open(&dir).unwrap();
        let report = back.recovery_report().unwrap().clone();
        assert!(report.snapshot_seq > 0, "the snapshot must be recovered");
        assert_eq!(report.replayed_records, 1, "only the suffix replays");
        assert_eq!(answers(&mut back, "p(X)"), ["X = 1", "X = 2", "X = 3"]);
        assert_eq!(
            back.edb_epoch(chainsplit_logic::Pred::new("e", 1)),
            epoch,
            "epochs are absolute, not restarted from the snapshot"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovered_epochs_keep_the_answer_cache_honest() {
        let dir = data_dir("cache");
        let mut db = DeductiveDb::open(&dir).unwrap();
        db.load("p(X) :- e(X).\ne(1).").unwrap();
        drop(db);
        let mut back = DeductiveDb::open(&dir).unwrap();
        back.set_cache_enabled(true);
        assert!(!back.query_with("p(X)", Strategy::Auto).unwrap().cached);
        assert!(back.query_with("p(X)", Strategy::Auto).unwrap().cached);
        // A recovered-then-mutated predicate must invalidate the entry.
        back.add_fact(fact("e(2)")).unwrap();
        let out = back.query_with("p(X)", Strategy::Auto).unwrap();
        assert!(!out.cached, "mutation after recovery must miss");
        assert_eq!(out.answers.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn noop_retractions_replay_as_noops() {
        let dir = data_dir("noop");
        let mut db = DeductiveDb::open(&dir).unwrap();
        db.load("e(1).").unwrap();
        let out = db.retract_fact(&fact("e(9)")).unwrap();
        assert!(!out.removed);
        let epoch = db.edb_epoch(chainsplit_logic::Pred::new("e", 1));
        drop(db);
        let mut back = DeductiveDb::open(&dir).unwrap();
        assert_eq!(back.edb_epoch(chainsplit_logic::Pred::new("e", 1)), epoch);
        assert_eq!(answers(&mut back, "e(X)"), ["X = 1"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_off_then_on_rebaselines_with_a_snapshot() {
        let dir = data_dir("toggle");
        let mut db = DeductiveDb::open(&dir).unwrap();
        db.load("e(1).").unwrap();
        assert!(db.wal_enabled());
        assert!(!db.set_wal(false).unwrap());
        // Unlogged mutations: durable state is now behind memory.
        db.add_fact(fact("e(2)")).unwrap();
        // Re-enabling snapshots the full in-memory state first.
        assert!(db.set_wal(true).unwrap());
        db.add_fact(fact("e(3)")).unwrap();
        drop(db);
        let mut back = DeductiveDb::open(&dir).unwrap();
        assert_eq!(answers(&mut back, "e(X)"), ["X = 1", "X = 2", "X = 3"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn an_in_memory_db_has_no_store() {
        let mut db = DeductiveDb::new();
        db.load("e(1).").unwrap();
        assert!(!db.wal_enabled());
        assert!(db.store_status().is_none());
        assert_eq!(db.snapshot().unwrap(), None);
        assert!(!db.set_wal(true).unwrap(), "no store to log to");
    }

    #[test]
    fn a_torn_wal_tail_is_truncated_on_recovery() {
        let dir = data_dir("torn");
        let mut db = DeductiveDb::open(&dir).unwrap();
        db.load("e(1). e(2).").unwrap();
        db.add_fact(fact("e(3)")).unwrap();
        drop(db);
        // Tear the last frame by chopping bytes off the newest segment.
        let mut segs: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("log"))
            .collect();
        segs.sort();
        let seg = segs.pop().unwrap();
        let len = std::fs::metadata(&seg).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);
        let mut back = DeductiveDb::open(&dir).unwrap();
        let report = back.recovery_report().unwrap().clone();
        assert!(report.truncated_bytes > 0, "the tear must be detected");
        // The torn record (e(3)) is gone — never replayed, never a panic.
        assert_eq!(answers(&mut back, "e(X)"), ["X = 1", "X = 2"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_under_a_tripped_budget_refuses_cleanly() {
        let dir = data_dir("budget");
        let mut db = DeductiveDb::open(&dir).unwrap();
        for i in 0..50 {
            db.add_fact(fact(&format!("e({i})"))).unwrap();
        }
        drop(db);
        let tight = Budget {
            max_bytes_est: Some(1),
            ..Budget::default()
        };
        // The replay itself drives the byte counter (WAL bytes charge
        // the governor), so a 1-byte budget must trip mid-recovery.
        match DeductiveDb::open_with_budget(&dir, tight) {
            Err(e) => {
                let msg = e.to_string();
                assert!(
                    msg.contains("budget") || msg.contains("bytes"),
                    "unexpected refusal: {msg}"
                );
            }
            Ok(_) => panic!("a tripped budget must refuse to open"),
        }
        // The same directory still opens unbudgeted.
        let mut back = DeductiveDb::open(&dir).unwrap();
        assert_eq!(answers(&mut back, "e(X)").len(), 50);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
