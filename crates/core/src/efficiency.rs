//! **Algorithm 3.1 — efficiency-based chain-split magic sets.**
//!
//! > *In the derivation of magic sets, the binding propagation rule \[1\] is
//! > modified as follows: if the join expansion ratio is above the
//! > chain-split threshold, the binding will not be propagated; if it is
//! > below the chain-following threshold, it will be; otherwise a detailed
//! > quantitative analysis decides. Based on the modified rules the magic
//! > sets are derived and semi-naive evaluation is performed.*
//!
//! Composition of the pieces built elsewhere: the [`crate::cost::CostModel`]
//! decides the weak linkages from EDB statistics, the resulting
//! [`chainsplit_engine::DelayPreds`] policy modifies the SIP inside the
//! standard magic transformation, and semi-naive evaluation finishes the
//! job.

use crate::cost::CostModel;
use crate::system::System;
use chainsplit_engine::{magic_eval, BottomUpOptions, DelayPreds, EvalError, FullSip, MagicResult};
use chainsplit_logic::Atom;

/// Runs the chain-split magic sets method for `query` against `sys`.
///
/// Returns the answers plus counters; `counters.magic_facts` is the total
/// magic-set cardinality the run materialised.
pub fn chain_split_magic(
    sys: &System,
    query: &Atom,
    model: &CostModel,
    opts: BottomUpOptions,
) -> Result<MagicResult, EvalError> {
    let weak = model.weak_linkages(sys, query);
    if weak.is_empty() {
        // No weak linkage: the modified rule degenerates to standard magic.
        return magic_eval(&sys.rectified.rules, &sys.edb, query, &FullSip, opts);
    }
    magic_eval(
        &sys.rectified.rules,
        &sys.edb,
        query,
        &DelayPreds(weak),
        opts,
    )
}

/// The standard magic-sets baseline on the same system (for benches).
pub fn standard_magic(
    sys: &System,
    query: &Atom,
    opts: BottomUpOptions,
) -> Result<MagicResult, EvalError> {
    magic_eval(&sys.rectified.rules, &sys.edb, query, &FullSip, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainsplit_logic::{parse_program, parse_query};

    fn scsg_system(people_per_country: usize, generations: usize) -> System {
        let mut src = String::from(
            "scsg(X, Y) :- sibling(X, Y).
             scsg(X, Y) :- parent(X, X1), same_country(X1, Y1), parent(Y, Y1), scsg(X1, Y1).\n",
        );
        for c in 0..2 {
            for i in 0..people_per_country {
                for j in 0..people_per_country {
                    src.push_str(&format!("same_country(g0_{c}_{i}, g0_{c}_{j}).\n"));
                }
            }
            // A chain of generations below generation 0.
            for g in 0..generations {
                for i in 0..people_per_country {
                    src.push_str(&format!("parent(g{}_{c}_{i}, g{g}_{c}_{i}).\n", g + 1));
                    for j in 0..people_per_country {
                        src.push_str(&format!(
                            "same_country(g{}_{c}_{i}, g{}_{c}_{j}).\n",
                            g + 1,
                            g + 1
                        ));
                    }
                }
            }
            src.push_str(&format!(
                "sibling(g0_{c}_0, g0_{c}_1). sibling(g0_{c}_1, g0_{c}_0).\n"
            ));
        }
        System::build(&parse_program(&src).unwrap())
    }

    #[test]
    fn same_answers_smaller_magic_sets() {
        let sys = scsg_system(8, 3);
        let q = parse_query("scsg(g3_0_0, Y)").unwrap();
        let model = CostModel::default();

        let std = standard_magic(&sys, &q, BottomUpOptions::default()).unwrap();
        let split = chain_split_magic(&sys, &q, &model, BottomUpOptions::default()).unwrap();

        let mut a: Vec<String> = std.answers.iter().map(|s| s.to_string()).collect();
        let mut b: Vec<String> = split.answers.iter().map(|s| s.to_string()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "chain-split magic must preserve answers");
        assert!(!a.is_empty());
        assert!(
            split.counters.magic_facts < std.counters.magic_facts,
            "split magic {} !< standard magic {}",
            split.counters.magic_facts,
            std.counters.magic_facts
        );
    }

    #[test]
    fn degenerates_to_standard_when_no_weak_linkage() {
        let sys = scsg_system(1, 2);
        let q = parse_query("scsg(g2_0_0, Y)").unwrap();
        let model = CostModel::default();
        let std = standard_magic(&sys, &q, BottomUpOptions::default()).unwrap();
        let split = chain_split_magic(&sys, &q, &model, BottomUpOptions::default()).unwrap();
        assert_eq!(std.answers.len(), split.answers.len());
        assert_eq!(std.counters.magic_facts, split.counters.magic_facts);
    }
}
