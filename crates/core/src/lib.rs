//! # chainsplit-core
//!
//! The paper's contribution — **chain-split evaluation** (Han, ICDE 1992) —
//! on top of the substrate crates:
//!
//! - [`system`]: the LogicBase-style compilation pipeline (rectify →
//!   classify → chain-compile → register finite-evaluability modes);
//! - [`solver`]: the goal-directed query evaluator that dispatches each
//!   goal to the right discipline;
//! - [`buffered`]: **Algorithm 3.2**, buffered chain-split evaluation (its
//!   buffer-free degenerate case is the counting method);
//! - [`partial`]: **Algorithm 3.3**, chain-split partial evaluation with
//!   constraint pushing over monotone accumulators;
//! - [`cost`] / [`efficiency`]: the §2.1 quantitative analysis and
//!   **Algorithm 3.1**, efficiency-based chain-split magic sets;
//! - [`db`]: the public [`DeductiveDb`] facade;
//! - [`cache`]: the epoch-invalidated cross-query answer cache.

#![forbid(unsafe_code)]

pub mod buffered;
pub mod cache;
pub mod cost;
pub mod db;
pub mod efficiency;
pub mod partial;
pub mod solver;
pub mod system;

pub use buffered::{eval_buffered, CountGuard, Pruner, SumGuard};
pub use cache::{AnswerCache, CacheKey, CacheStats};
pub use chainsplit_engine::{Counters, EvalMetrics, PhaseTimings, RepairOutcome, RoundMetrics};
pub use cost::CostModel;
pub use db::{Answer, DbError, DeductiveDb, ProofReport, QueryOutcome, RetractOutcome, Strategy};
pub use efficiency::chain_split_magic;
pub use partial::{eval_partial, push_constraints, PushedQuery};
pub use solver::{runtime_adornment, SolveOptions, Solver};
pub use system::System;
