//! **Algorithm 3.3 — chain-split partial evaluation with constraint
//! pushing.**
//!
//! For constraint-rich functional recursions (the paper's `travel`: find
//! itineraries with total fare below a budget), buffering everything and
//! filtering at the end wastes the work spent on hopeless partial routes.
//! Algorithm 3.3 instead *partially evaluates* the delayed portion during
//! the up sweep: monotone accumulated arguments (the running fare sum, the
//! itinerary length) are threaded through the chain, and termination /
//! pruning constraints are pushed into the iteration \[6\] — a derivation
//! whose partial sum already exceeds the budget is pruned on the spot.
//!
//! The analysis here recognises the telescoping-sum pattern in the delayed
//! portion (`plus(F1, F2, F)` with `F` a free head position and `F2` the
//! recursive call's value at the same position), verifies non-negativity
//! of every contribution against the EDB (upper-bound pruning on a sum is
//! only sound when the tail cannot decrease it), and hands the resulting
//! [`SumGuard`]s to the buffered executor. Constraints are *always*
//! re-checked on the final answers, pushed or not.

use crate::buffered::{eval_buffered, CountGuard, Pruner, SumGuard};
use crate::solver::{runtime_adornment, Solver};
use crate::system::System;
use chainsplit_chain::{plan_split, CompiledRecursion, SplitPlan};
use chainsplit_engine::{eval_builtin, BuiltinOutcome, EvalError};
use chainsplit_logic::{Atom, Pred, Rule, Subst, Term, Var};

/// The outcome of the constraint-pushing analysis.
#[derive(Debug)]
pub struct PushedQuery {
    /// Monotone-sum guards handed to the up sweep.
    pub guards: Vec<SumGuard>,
    /// Level-count guards from `length` constraints.
    pub count_guards: Vec<CountGuard>,
    /// Constraints successfully pushed (reporting only; they are also in
    /// `residual`).
    pub pushed: Vec<Atom>,
    /// Every constraint, re-checked on the final answers.
    pub residual: Vec<Atom>,
}

/// A normalised upper-bound constraint `var op limit`.
struct UpperBound {
    var: Var,
    limit: i64,
    strict: bool,
}

fn normalise(c: &Atom) -> Option<UpperBound> {
    if c.pred.arity != 2 {
        return None;
    }
    let (lhs, rhs) = (&c.args[0], &c.args[1]);
    match (c.pred.name.as_str(), lhs, rhs) {
        ("<", Term::Var(v), Term::Int(k)) => Some(UpperBound {
            var: *v,
            limit: *k,
            strict: true,
        }),
        ("<=", Term::Var(v), Term::Int(k)) => Some(UpperBound {
            var: *v,
            limit: *k,
            strict: false,
        }),
        (">", Term::Int(k), Term::Var(v)) => Some(UpperBound {
            var: *v,
            limit: *k,
            strict: true,
        }),
        (">=", Term::Int(k), Term::Var(v)) => Some(UpperBound {
            var: *v,
            limit: *k,
            strict: false,
        }),
        _ => None,
    }
}

/// Is `v` provably non-negative in `rule`? True when `v` is produced by an
/// EDB column whose minimum is ≥ 0, or equated to a non-negative constant.
fn var_nonneg_in_rule(sys: &System, rule: &Rule, v: Var) -> bool {
    for atom in &rule.body {
        if atom.pred.name.as_str() == "=" {
            match (&atom.args[0], &atom.args[1]) {
                (Term::Var(w), Term::Int(k)) | (Term::Int(k), Term::Var(w))
                    if *w == v && *k >= 0 =>
                {
                    return true;
                }
                _ => {}
            }
            continue;
        }
        if !sys.modes.is_edb(atom.pred) {
            continue;
        }
        let Some(rel) = sys.edb.relation(atom.pred) else {
            continue;
        };
        for (col, arg) in atom.args.iter().enumerate() {
            if *arg == Term::Var(v) && matches!(rel.min_int(col), Some(m) if m >= 0) {
                return true;
            }
        }
    }
    false
}

/// Finds the telescoping-sum accumulator for free head position `h`:
/// a delayed atom `plus(A, R, H)` (or `plus(R, A, H)`) with `H` the head
/// variable at `h`, `R` the recursive call's variable at `h`, and `A` an
/// up-bound addend. Returns the addend.
fn find_sum_accumulator(rec: &CompiledRecursion, plan: &SplitPlan, h: usize) -> Option<Var> {
    let hv = Term::Var(rec.head_var(h));
    let rv = match &rec.rec_atom().args[h] {
        Term::Var(v) => Term::Var(*v),
        _ => return None,
    };
    for &i in &plan.delayed {
        let atom = &rec.recursive_rule.body[i];
        if atom.pred != Pred::new("plus", 3) || atom.args[2] != hv {
            continue;
        }
        let addend = if atom.args[1] == rv {
            &atom.args[0]
        } else if atom.args[0] == rv {
            &atom.args[1]
        } else {
            continue;
        };
        if let Term::Var(a) = addend {
            if plan.up_bound.contains(a) {
                return Some(*a);
            }
        }
    }
    None
}

/// Does the delayed portion cons one element per level onto the list at
/// free head position `h`? (The `length(L)` monotonicity of §3.3.)
fn has_cons_accumulator(rec: &CompiledRecursion, plan: &SplitPlan, h: usize) -> bool {
    let hv = Term::Var(rec.head_var(h));
    let rv = match &rec.rec_atom().args[h] {
        Term::Var(v) => Term::Var(*v),
        _ => return false,
    };
    plan.delayed.iter().any(|&i| {
        let atom = &rec.recursive_rule.body[i];
        atom.pred == Pred::new("cons", 3) && atom.args[2] == hv && atom.args[1] == rv
    })
}

/// Runs the constraint-pushing analysis for `query` with `constraints`.
pub fn push_constraints(sys: &System, query: &Atom, constraints: &[Atom]) -> PushedQuery {
    let mut out = PushedQuery {
        guards: Vec::new(),
        count_guards: Vec::new(),
        pushed: Vec::new(),
        residual: constraints.to_vec(),
    };
    let Some(rec) = sys.compiled.get(&query.pred) else {
        return out;
    };
    if rec.n_chains() == 0 {
        return out;
    }
    let ad = runtime_adornment(query, &Subst::new());
    let Ok(plan) = plan_split(rec, &ad, &sys.modes, &[]) else {
        return out;
    };
    // Pass 1: length guards. `length(L, N)` with `L` a cons-accumulated
    // free head position plus an upper bound on `N` prunes by level.
    for c in constraints {
        if c.pred != Pred::new("length", 2) {
            continue;
        }
        let (Term::Var(lv), Term::Var(nv)) = (&c.args[0], &c.args[1]) else {
            continue;
        };
        let Some(h) = query.args.iter().position(|t| *t == Term::Var(*lv)) else {
            continue;
        };
        if ad.0[h].is_bound() || !has_cons_accumulator(rec, &plan, h) {
            continue;
        }
        for b in constraints {
            let Some(ub) = normalise(b) else { continue };
            if ub.var == *nv {
                out.count_guards.push(CountGuard {
                    limit: ub.limit,
                    strict: ub.strict,
                });
                out.pushed.push(c.clone());
            }
        }
    }

    // Pass 2: sum guards.
    for c in constraints {
        let Some(ub) = normalise(c) else { continue };
        // The constrained variable must sit alone at a free head position.
        let Some(h) = query.args.iter().position(|t| *t == Term::Var(ub.var)) else {
            continue;
        };
        if ad.0[h].is_bound() {
            continue;
        }
        let Some(addend) = find_sum_accumulator(rec, &plan, h) else {
            continue;
        };
        // Soundness: the addend and every exit's contribution at `h` must
        // be non-negative.
        if !var_nonneg_in_rule(sys, &rec.recursive_rule, addend) {
            continue;
        }
        let exits_ok = rec.exit_rules.iter().all(|er| match &er.head.args[h] {
            Term::Var(v) => var_nonneg_in_rule(sys, er, *v),
            Term::Int(k) => *k >= 0,
            _ => false,
        });
        if !exits_ok {
            continue;
        }
        out.guards.push(SumGuard {
            addend,
            limit: ub.limit,
            strict: ub.strict,
        });
        out.pushed.push(c.clone());
    }
    out
}

/// Evaluates `query` under `constraints` with Algorithm 3.3: pushed
/// constraints prune the up sweep; every constraint filters the answers.
pub fn eval_partial(
    solver: &mut Solver,
    query: &Atom,
    constraints: &[Atom],
) -> Result<Vec<Subst>, EvalError> {
    let pq = push_constraints(solver.sys, query, constraints);
    let mut raw = Vec::new();

    let plan_and_rec = solver.sys.compiled.get(&query.pred).and_then(|rec| {
        if rec.n_chains() == 0 {
            return None;
        }
        let ad = runtime_adornment(query, &Subst::new());
        plan_split(rec, &ad, &solver.sys.modes, &[])
            .ok()
            .map(|plan| (rec, plan))
    });

    match plan_and_rec {
        Some((rec, plan)) => {
            let pruner = Pruner {
                guards: pq.guards.clone(),
                count_guards: pq.count_guards.clone(),
            };
            eval_buffered(
                solver,
                rec,
                &plan,
                query,
                &Subst::new(),
                0,
                Some(&pruner),
                &mut raw,
            )?;
        }
        None => {
            // A governor budget trip keeps the answers proved so far (each
            // independently sound); the residual filter below still runs,
            // so partial answers respect every constraint.
            if let Err(e) = solver.solve_atom(query, &Subst::new(), 0, &mut raw) {
                match e.budget_trip() {
                    Some(t) => solver.trip = Some(t),
                    None => return Err(e),
                }
            }
        }
    }

    // Final filter: every constraint must hold on every answer. Bindings
    // thread from one constraint to the next (`length(L, N), N <= 3`
    // binds `N` first, then checks it).
    let mut answers = Vec::new();
    'next: for s in raw {
        let mut cur = s;
        for c in &pq.residual {
            match eval_builtin(c, &cur)? {
                Some(BuiltinOutcome::Solutions(sols)) => match sols.into_iter().next() {
                    Some(s2) => cur = s2,
                    None => continue 'next,
                },
                Some(BuiltinOutcome::NotEvaluable) => {
                    return Err(EvalError::NotEvaluable {
                        atom: cur.resolve_atom(c).to_string(),
                    })
                }
                None => {
                    return Err(EvalError::Unsupported {
                        reason: format!("constraint {c} is not a builtin"),
                    })
                }
            }
        }
        answers.push(cur);
    }
    Ok(answers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveOptions;
    use chainsplit_logic::{parse_program, parse_query};

    /// A small flight network: a line of airports with fares, plus a few
    /// cross connections.
    fn travel_src() -> String {
        let mut src = String::from(
            "travel(L, D, DT, A, AT, F) :- flight(Fno, D, DT, A, AT, F), cons(Fno, [], L).
             travel(L, D, DT, A, AT, F) :- flight(Fno, D, DT, A1, AT1, F1), AT1 <= DT1,
                 travel(L1, A1, DT1, A, AT, F2), plus(F1, F2, F), cons(Fno, L1, L).\n",
        );
        // Airports a0..a5 in a line; flight i departs a_i at 100*i+8,
        // arrives a_{i+1} at 100*i+9, fare 200.
        for i in 0..5 {
            src.push_str(&format!(
                "flight({i}, a{i}, {dt}, a{n}, {at}, 200).\n",
                dt = 100 * i + 8,
                at = 100 * i + 9,
                n = i + 1
            ));
        }
        // An express: a0 -> a2, early, fare 350.
        src.push_str("flight(90, a0, 8, a2, 9, 350).\n");
        src
    }

    fn constrained(query: &str, constraint: &str) -> Vec<String> {
        let sys = System::build(&parse_program(&travel_src()).unwrap());
        let q = parse_query(query).unwrap();
        let c = parse_query(constraint).unwrap();
        let mut solver = Solver::new(&sys, SolveOptions::default());
        let sols = eval_partial(&mut solver, &q, &[c]).unwrap();
        let mut v: Vec<String> = sols
            .iter()
            .map(|s| s.resolve_atom(&q).to_string())
            .collect();
        v.sort();
        v
    }

    #[test]
    fn fare_constraint_is_pushed() {
        let sys = System::build(&parse_program(&travel_src()).unwrap());
        let q = parse_query("travel(L, a0, DT, a3, AT, F)").unwrap();
        let c = parse_query("F <= 600").unwrap();
        let pq = push_constraints(&sys, &q, std::slice::from_ref(&c));
        assert_eq!(pq.guards.len(), 1, "the fare sum guard must be found");
        assert!(!pq.guards[0].strict);
        assert_eq!(pq.guards[0].limit, 600);
        assert_eq!(pq.pushed, vec![c]);
    }

    #[test]
    fn constrained_travel_answers() {
        // a0 -> a3 routes: 0,1,2 (fare 600) and 90,2 (fare 550).
        let v = constrained("travel(L, a0, DT, a3, AT, F)", "F <= 600");
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v
            .iter()
            .any(|a| a.contains("[0, 1, 2]") && a.contains("600")));
        assert!(v.iter().any(|a| a.contains("[90, 2]") && a.contains("550")));
        // Tighter budget: only the express route survives.
        let v = constrained("travel(L, a0, DT, a3, AT, F)", "F < 600");
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("[90, 2]"));
    }

    #[test]
    fn pruning_reduces_buffered_work() {
        let sys = System::build(&parse_program(&travel_src()).unwrap());
        let q = parse_query("travel(L, a0, DT, a5, AT, F)").unwrap();
        let c = parse_query("F <= 300").unwrap();

        let mut pruned = Solver::new(&sys, SolveOptions::default());
        let with_pruning = eval_partial(&mut pruned, &q, std::slice::from_ref(&c)).unwrap();
        assert!(with_pruning.is_empty(), "no route to a5 within 300");

        // Same query without pushing: evaluate fully, filter at the end.
        let mut unpruned = Solver::new(&sys, SolveOptions::default());
        let mut raw = Vec::new();
        unpruned.solve_atom(&q, &Subst::new(), 0, &mut raw).unwrap();
        assert!(
            pruned.counters.buffered_peak < unpruned.counters.buffered_peak,
            "pruned {} !< unpruned {}",
            pruned.counters.buffered_peak,
            unpruned.counters.buffered_peak
        );
    }

    #[test]
    fn negative_fares_disable_pushing() {
        let mut src = travel_src();
        src.push_str("flight(99, a0, 8, a1, 9, -50).\n"); // a rebate flight
        let sys = System::build(&parse_program(&src).unwrap());
        let q = parse_query("travel(L, a0, DT, a3, AT, F)").unwrap();
        let c = parse_query("F <= 600").unwrap();
        let pq = push_constraints(&sys, &q, &[c]);
        assert!(pq.guards.is_empty(), "negative column must block pushing");
        assert_eq!(pq.residual.len(), 1, "constraint still filters answers");
    }

    #[test]
    fn lower_bounds_are_not_pushed_but_still_filter() {
        let v = constrained("travel(L, a0, DT, a3, AT, F)", "F >= 600");
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("600"));
    }

    #[test]
    fn unrelated_constraint_shapes_are_ignored_by_pushing() {
        let sys = System::build(&parse_program(&travel_src()).unwrap());
        let q = parse_query("travel(L, a0, DT, a3, AT, F)").unwrap();
        let c = parse_query("DT < 100").unwrap(); // DT has no sum accumulator
        let pq = push_constraints(&sys, &q, &[c]);
        assert!(pq.guards.is_empty());
    }
}

#[cfg(test)]
mod length_pushing_tests {
    use super::*;
    use crate::solver::SolveOptions;
    use chainsplit_logic::{parse_program, parse_query};

    fn travel_line(n: usize) -> System {
        let mut src = String::from(
            "travel(L, D, DT, A, AT, F) :- flight(Fno, D, DT, A, AT, F), cons(Fno, [], L).
             travel(L, D, DT, A, AT, F) :- flight(Fno, D, DT, A1, AT1, F1),
                 travel(L1, A1, DT1, A, AT, F2), AT1 <= DT1, plus(F1, F2, F), cons(Fno, L1, L).\n",
        );
        for i in 0..n {
            src.push_str(&format!(
                "flight({i}, a{i}, {dt}, a{next}, {at}, 100).\n",
                dt = 100 * i + 50,
                at = 100 * i + 60,
                next = i + 1
            ));
        }
        // A long-haul shortcut: a0 -> a_n direct.
        src.push_str(&format!("flight(99, a0, 10, a{n}, 20, 900).\n"));
        System::build(&parse_program(&src).unwrap())
    }

    #[test]
    fn length_constraint_is_pushed_as_count_guard() {
        let sys = travel_line(6);
        let q = parse_query("travel(L, a0, DT, a6, AT, F)").unwrap();
        let c1 = parse_query("length(L, N)").unwrap();
        let c2 = parse_query("N <= 2").unwrap();
        let pq = push_constraints(&sys, &q, &[c1, c2]);
        assert_eq!(pq.count_guards.len(), 1);
        assert_eq!(pq.count_guards[0].limit, 2);
        assert!(!pq.count_guards[0].strict);
    }

    #[test]
    fn length_bounded_travel_prunes_and_answers_correctly() {
        let sys = travel_line(6);
        let q = parse_query("travel(L, a0, DT, a6, AT, F)").unwrap();
        let c1 = parse_query("length(L, N)").unwrap();
        let c2 = parse_query("N <= 2").unwrap();

        let mut pruned = Solver::new(&sys, SolveOptions::default());
        let short = eval_partial(&mut pruned, &q, &[c1.clone(), c2.clone()]).unwrap();
        // Only the direct flight fits in two hops.
        assert_eq!(short.len(), 1, "{short:?}");
        assert!(short[0].resolve_atom(&q).to_string().contains("[99]"));

        // Without the guard the full route (6 hops) also enumerates.
        let mut full = Solver::new(&sys, SolveOptions::default());
        let all = eval_partial(&mut full, &q, &[]).unwrap();
        assert_eq!(all.len(), 2);
        assert!(
            pruned.counters.buffered_peak < full.counters.buffered_peak,
            "length pushing must prune the up sweep: {} !< {}",
            pruned.counters.buffered_peak,
            full.counters.buffered_peak
        );
    }

    #[test]
    fn length_constraint_on_bound_position_is_not_pushed() {
        let sys = travel_line(3);
        // L bound: nothing to prune by level.
        let q = parse_query("travel([0, 1, 2], a0, DT, a3, AT, F)").unwrap();
        let c1 = parse_query("length([0, 1, 2], N)").unwrap();
        let c2 = parse_query("N <= 2").unwrap();
        let pq = push_constraints(&sys, &q, &[c1, c2]);
        assert!(pq.count_guards.is_empty());
    }
}
