//! The goal-directed solver: the query evaluator of the system.
//!
//! `solve_atom` dispatches each goal to the right discipline:
//!
//! - builtins run procedurally;
//! - EDB goals match their stored relation;
//! - IDB goals whose predicate compiled into chain form and whose runtime
//!   adornment admits a [`chainsplit_chain::SplitPlan`] run under the
//!   **buffered chain-split executor** (Algorithm 3.2, `crate::buffered`);
//! - everything else (nonrecursive definitions, nonlinear recursions like
//!   `qsort`, multiple-linear ones like `partition`) resolves goal-directed
//!   with *dynamically ordered* bodies: at each step the first finitely
//!   evaluable subgoal runs. This is §4.2's observation operationalised —
//!   the "delayed portion" of a nonlinear rule is simply whatever must wait
//!   for a recursive result, and the mode-driven order produces exactly the
//!   evaluation traces the paper walks through for `isort` and `qsort`.

use crate::buffered::eval_buffered;
use crate::system::System;
use chainsplit_chain::{plan_split, plan_split_costed};
use chainsplit_engine::{
    eval_builtin, match_relation, BuiltinOutcome, Counters, EvalError, JoinPlanner, PlannerRef,
    RoundMetrics,
};
use chainsplit_governor::{BudgetTrip, Governor};
use chainsplit_logic::{fresh, unify_atoms, Ad, Adornment, Atom, Subst};

/// Budgets for a solver run.
#[derive(Clone, Debug)]
pub struct SolveOptions {
    /// Maximum goal-resolution depth.
    pub max_depth: usize,
    /// Maximum total goal invocations.
    pub fuel: usize,
    /// Maximum chain levels per buffered evaluation (guards cyclic data,
    /// where plain counting does not terminate — see \[5\]).
    pub max_levels: usize,
    /// Worker threads for the buffered chain-split up-sweep (1 =
    /// sequential). Answers and work counters are identical for every
    /// value — see DESIGN.md §5.
    pub threads: usize,
    /// The resource governor, polled every 1024 goal invocations and at
    /// every buffered up-sweep level. Disarmed by default.
    pub governor: Governor,
    /// The cost-based join planner. When enabled, dynamic body ordering
    /// lifts selective EDB probes (by estimated expansion) ahead of IDB
    /// subgoals; IDB subgoals keep their evaluability-driven order —
    /// reordering them would change which adornments recursions are
    /// called under, which is exactly what the mode analysis guards.
    pub planner: PlannerRef,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            max_depth: 100_000,
            fuel: 100_000_000,
            max_levels: 100_000,
            threads: chainsplit_par::env_threads(),
            governor: Governor::new(),
            planner: JoinPlanner::shared(),
        }
    }
}

/// The goal-directed solver.
pub struct Solver<'a> {
    pub sys: &'a System,
    pub opts: SolveOptions,
    pub counters: Counters,
    /// Per-level breakdown of buffered chain-split runs: one entry per
    /// chain level swept, `delta` = nodes buffered at that level (the
    /// buffered-chain size). Goal-directed resolution adds no entries.
    pub rounds: Vec<RoundMetrics>,
    /// `Some` when a governor budget tripped: the answers returned are
    /// those proved before the drain point (a sound under-approximation).
    pub trip: Option<BudgetTrip>,
    pub(crate) fuel_left: usize,
}

/// The adornment of `atom` at run time: a position is bound iff its
/// argument is ground under the current substitution.
pub fn runtime_adornment(atom: &Atom, s: &Subst) -> Adornment {
    Adornment(
        atom.args
            .iter()
            .map(|t| if s.is_ground(t) { Ad::Bound } else { Ad::Free })
            .collect(),
    )
}

impl<'a> Solver<'a> {
    pub fn new(sys: &'a System, opts: SolveOptions) -> Solver<'a> {
        let fuel_left = opts.fuel;
        Solver {
            sys,
            opts,
            counters: Counters::default(),
            rounds: Vec::new(),
            trip: None,
            fuel_left,
        }
    }

    /// Chain-split planning, with the cost model injected when the join
    /// planner is on: each sweep's finitely-evaluable candidates are
    /// ranked by their estimated expansion against the stored extension
    /// (DESIGN.md §14). The split *structure* — evaluated/delayed sets,
    /// stable adornment, buffered variables — is identical either way,
    /// so answers do not depend on the planner switch.
    fn plan_chain(
        &self,
        rec: &chainsplit_chain::CompiledRecursion,
        ad: &Adornment,
    ) -> Result<chainsplit_chain::SplitPlan, chainsplit_chain::SplitError> {
        if !self.opts.planner.is_enabled() {
            return plan_split(rec, ad, &self.sys.modes, &[]);
        }
        let cost = |a: &Atom, bound: &std::collections::HashSet<chainsplit_logic::Var>| -> f64 {
            match self.sys.edb.relation(a.pred) {
                Some(rel) => {
                    let cols: Vec<usize> = a
                        .args
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| t.vars().iter().all(|v| bound.contains(v)))
                        .map(|(j, _)| j)
                        .collect();
                    self.opts.planner.expansion(a.pred, &cols, rel)
                }
                // Unknown predicate: empty extension, prunes instantly.
                None => 0.0,
            }
        };
        plan_split_costed(rec, ad, &self.sys.modes, &[], Some(&cost))
    }

    fn spend(&mut self) -> Result<(), EvalError> {
        if self.fuel_left == 0 {
            return Err(EvalError::FuelExceeded {
                limit: self.opts.fuel,
            });
        }
        self.fuel_left -= 1;
        // Strided governor poll — goal-directed resolution has no round
        // boundary, so this is its cooperative check point.
        if self.fuel_left & 0x3FF == 0 {
            self.opts.governor.check("resolve")?;
        }
        Ok(())
    }

    /// Solves one goal, extending `out` with every solution substitution.
    pub fn solve_atom(
        &mut self,
        atom: &Atom,
        s: &Subst,
        depth: usize,
        out: &mut Vec<Subst>,
    ) -> Result<(), EvalError> {
        self.spend()?;
        if depth > self.opts.max_depth {
            return Err(EvalError::DepthExceeded {
                limit: self.opts.max_depth,
            });
        }

        // Builtins.
        match eval_builtin(atom, s)? {
            Some(BuiltinOutcome::Solutions(sols)) => {
                self.counters.builtin_evals += 1;
                self.counters.probed += sols.len().max(1);
                self.counters.matched += sols.len();
                out.extend(sols);
                return Ok(());
            }
            Some(BuiltinOutcome::NotEvaluable) => {
                return Err(EvalError::NotEvaluable {
                    atom: s.resolve_atom(atom).to_string(),
                })
            }
            None => {}
        }

        // IDB.
        if self.sys.is_idb(atom.pred) {
            // Try the chain-split executor for compiled linear recursions.
            if let Some(rec) = self.sys.compiled.get(&atom.pred) {
                if rec.n_chains() >= 1 {
                    let ad = runtime_adornment(atom, s);
                    if let Ok(plan) = self.plan_chain(rec, &ad) {
                        return eval_buffered(self, rec, &plan, atom, s, depth, None, out);
                    }
                }
            }
            // Goal-directed resolution over the rectified rules.
            let rules: Vec<_> = self.sys.rules_of(atom.pred).into_iter().cloned().collect();
            for rule in rules {
                self.counters.probed += 1;
                let fr = rule.rename(fresh::rename_tag());
                let mut s2 = s.clone();
                if !unify_atoms(&mut s2, atom, &fr.head) {
                    continue;
                }
                self.counters.matched += 1;
                let body: Vec<&Atom> = fr.body.iter().collect();
                if chainsplit_provenance::is_enabled() {
                    // Detour through a local buffer so each solution can
                    // be witnessed against the canonical (unrenamed) rule.
                    let mut sols = Vec::new();
                    self.solve_body_dynamic(&body, &s2, depth + 1, &mut sols)?;
                    for sol in &sols {
                        let head = sol.resolve_atom(&fr.head);
                        let wbody: Vec<Atom> =
                            fr.body.iter().map(|a| sol.resolve_atom(a)).collect();
                        self.opts
                            .governor
                            .add_bytes(chainsplit_provenance::record(&head, &rule, &wbody));
                    }
                    out.extend(sols);
                } else {
                    self.solve_body_dynamic(&body, &s2, depth + 1, out)?;
                }
            }
            return Ok(());
        }

        // EDB (or an unknown predicate: empty extension).
        if let Some(rel) = self.sys.edb.relation(atom.pred) {
            match_relation(rel, atom, s, &mut self.counters, out);
        }
        Ok(())
    }

    /// Is `atom` finitely evaluable right now (under `s`)?
    fn ready(&self, atom: &Atom, s: &Subst) -> bool {
        if chainsplit_chain::is_builtin(atom.pred) {
            return !matches!(
                eval_builtin(atom, s),
                Ok(Some(BuiltinOutcome::NotEvaluable))
            );
        }
        if self.sys.is_idb(atom.pred) {
            return self
                .sys
                .modes
                .is_finite(atom.pred, &runtime_adornment(atom, s));
        }
        true // EDB / unknown: finite extension
    }

    /// Picks the next subgoal of a conjunction. Planner off: the first
    /// finitely evaluable atom in syntactic order. Planner on: the first
    /// ready builtin (filters prune at unit cost), then the cheapest EDB
    /// probe by estimated expansion — lifted over an IDB subgoal only
    /// when it probes at least one bound column (a blind scan ahead of a
    /// recursion would be a cross product). IDB subgoals are never
    /// lifted past one another: their evaluability-driven order decides
    /// which adornments recursions are called under, which is exactly
    /// what the mode analysis guards.
    fn pick_subgoal(&self, atoms: &[&Atom], s: &Subst) -> Option<usize> {
        let first = (0..atoms.len()).find(|&i| self.ready(atoms[i], s))?;
        if !self.opts.planner.is_enabled() {
            return Some(first);
        }
        if let Some(b) = (0..atoms.len())
            .find(|&i| chainsplit_chain::is_builtin(atoms[i].pred) && self.ready(atoms[i], s))
        {
            return Some(b);
        }
        let first_is_idb = self.sys.is_idb(atoms[first].pred);
        let best_edb = (0..atoms.len())
            .filter_map(|i| {
                let a = atoms[i];
                if chainsplit_chain::is_builtin(a.pred) || self.sys.is_idb(a.pred) {
                    return None;
                }
                let cols: Vec<usize> = a
                    .args
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| s.is_ground(t))
                    .map(|(j, _)| j)
                    .collect();
                let est = match self.sys.edb.relation(a.pred) {
                    Some(rel) => {
                        if first_is_idb && cols.is_empty() && !rel.is_empty() {
                            return None;
                        }
                        self.opts.planner.expansion(a.pred, &cols, rel)
                    }
                    // Unknown predicate: empty extension, prunes instantly.
                    None => 0.0,
                };
                Some((i, est))
            })
            .min_by(|x, y| x.1.total_cmp(&y.1).then(x.0.cmp(&y.0)));
        match best_edb {
            Some((i, _)) => Some(i),
            None => Some(first),
        }
    }

    /// Solves a conjunction with dynamic, evaluability-driven ordering.
    pub fn solve_body_dynamic(
        &mut self,
        atoms: &[&Atom],
        s: &Subst,
        depth: usize,
        out: &mut Vec<Subst>,
    ) -> Result<(), EvalError> {
        let Some(pick) = self.pick_subgoal(atoms, s) else {
            if atoms.is_empty() {
                self.counters.derived += 1;
                out.push(s.clone());
                return Ok(());
            }
            return Err(EvalError::NotEvaluable {
                atom: s.resolve_atom(atoms[0]).to_string(),
            });
        };
        let mut rest: Vec<&Atom> = atoms.to_vec();
        let picked = rest.remove(pick);
        let mut sols = Vec::new();
        self.solve_atom(picked, s, depth, &mut sols)?;
        for s2 in sols {
            self.solve_body_dynamic(&rest, &s2, depth, out)?;
        }
        Ok(())
    }

    /// Convenience: all solutions of `atom` from an empty substitution.
    ///
    /// A governor budget trip is *not* an error here: the answers proved
    /// before the trip are returned and [`Solver::trip`] records why the
    /// search stopped early.
    pub fn query(&mut self, atom: &Atom) -> Result<Vec<Subst>, EvalError> {
        let mut out = Vec::new();
        match self.solve_atom(atom, &Subst::new(), 0, &mut out) {
            Ok(()) => {}
            Err(e) => match e.budget_trip() {
                Some(t) => self.trip = Some(t),
                None => return Err(e),
            },
        }
        Ok(out)
    }

    /// Existence checking (§5): finds *one* solution of `atom`, stopping
    /// at the first success instead of materialising the full answer set.
    ///
    /// Goal-directed branches short-circuit genuinely; a subgoal that
    /// dispatches to the set-oriented chain-split executor still computes
    /// that subgoal's answer set (its sweeps are not lazy), so the saving
    /// is in the *enclosing* search.
    pub fn solve_first(
        &mut self,
        atom: &Atom,
        s: &Subst,
        depth: usize,
    ) -> Result<Option<Subst>, EvalError> {
        self.spend()?;
        if depth > self.opts.max_depth {
            return Err(EvalError::DepthExceeded {
                limit: self.opts.max_depth,
            });
        }
        match eval_builtin(atom, s)? {
            Some(BuiltinOutcome::Solutions(sols)) => {
                self.counters.builtin_evals += 1;
                return Ok(sols.into_iter().next());
            }
            Some(BuiltinOutcome::NotEvaluable) => {
                return Err(EvalError::NotEvaluable {
                    atom: s.resolve_atom(atom).to_string(),
                })
            }
            None => {}
        }
        if self.sys.is_idb(atom.pred) {
            if let Some(rec) = self.sys.compiled.get(&atom.pred) {
                if rec.n_chains() >= 1 {
                    let ad = runtime_adornment(atom, s);
                    if let Ok(plan) = self.plan_chain(rec, &ad) {
                        let mut out = Vec::new();
                        eval_buffered(self, rec, &plan, atom, s, depth, None, &mut out)?;
                        return Ok(out.into_iter().next());
                    }
                }
            }
            let rules: Vec<_> = self.sys.rules_of(atom.pred).into_iter().cloned().collect();
            for rule in rules {
                self.counters.probed += 1;
                let fr = rule.rename(fresh::rename_tag());
                let mut s2 = s.clone();
                if !unify_atoms(&mut s2, atom, &fr.head) {
                    continue;
                }
                self.counters.matched += 1;
                let body: Vec<&Atom> = fr.body.iter().collect();
                if let Some(sol) = self.solve_body_first(&body, &s2, depth + 1)? {
                    if chainsplit_provenance::is_enabled() {
                        let head = sol.resolve_atom(&fr.head);
                        let wbody: Vec<Atom> =
                            fr.body.iter().map(|a| sol.resolve_atom(a)).collect();
                        self.opts
                            .governor
                            .add_bytes(chainsplit_provenance::record(&head, &rule, &wbody));
                    }
                    return Ok(Some(sol));
                }
            }
            return Ok(None);
        }
        if let Some(rel) = self.sys.edb.relation(atom.pred) {
            let mut out = Vec::new();
            match_relation(rel, atom, s, &mut self.counters, &mut out);
            return Ok(out.into_iter().next());
        }
        Ok(None)
    }

    /// First solution of a conjunction (dynamic ordering, short-circuit).
    fn solve_body_first(
        &mut self,
        atoms: &[&Atom],
        s: &Subst,
        depth: usize,
    ) -> Result<Option<Subst>, EvalError> {
        if atoms.is_empty() {
            self.counters.derived += 1;
            return Ok(Some(s.clone()));
        }
        let Some(pick) = self.pick_subgoal(atoms, s) else {
            return Err(EvalError::NotEvaluable {
                atom: s.resolve_atom(atoms[0]).to_string(),
            });
        };
        let mut rest: Vec<&Atom> = atoms.to_vec();
        let picked = rest.remove(pick);
        // All candidate solutions of the picked atom, tried lazily against
        // the rest of the conjunction.
        let mut sols = Vec::new();
        self.solve_atom(picked, s, depth, &mut sols)?;
        for s2 in sols {
            if let Some(sol) = self.solve_body_first(&rest, &s2, depth)? {
                return Ok(Some(sol));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainsplit_logic::{parse_program, parse_query, Term, Var};

    fn answers(src: &str, query: &str, var: &str) -> Vec<String> {
        let sys = System::build(&parse_program(src).unwrap());
        let q = parse_query(query).unwrap();
        let mut solver = Solver::new(&sys, SolveOptions::default());
        let sols = solver.query(&q).unwrap();
        let mut v: Vec<String> = sols
            .iter()
            .map(|s| s.resolve(&Term::Var(Var::named(var))).to_string())
            .collect();
        v.sort();
        v.dedup();
        v
    }

    const SORTS: &str = "isort([X | Xs], Ys) :- isort(Xs, Zs), insert(X, Zs, Ys).
         isort([], []).
         insert(X, [], [X]).
         insert(X, [Y | Ys], [Y | Zs]) :- X > Y, insert(X, Ys, Zs).
         insert(X, [Y | Ys], [X, Y | Ys]) :- X <= Y.";

    #[test]
    fn isort_via_chain_split() {
        // The paper's §4.1 worked example: ?- isort([5,7,1], Ys).
        assert_eq!(answers(SORTS, "isort([5, 7, 1], Ys)", "Ys"), ["[1, 5, 7]"]);
    }

    #[test]
    fn insert_via_chain_split() {
        // §4.1: insert^bbf is evaluated by chain-split with Y buffered.
        assert_eq!(answers(SORTS, "insert(5, [1, 7], Ys)", "Ys"), ["[1, 5, 7]"]);
        assert_eq!(answers(SORTS, "insert(1, [], Ys)", "Ys"), ["[1]"]);
        assert_eq!(answers(SORTS, "insert(7, [1], Ys)", "Ys"), ["[1, 7]"]);
    }

    #[test]
    fn qsort_nonlinear() {
        let src = "qsort([X | Xs], Ys) :- partition(Xs, X, Ls, Bs),
                 qsort(Ls, SLs), qsort(Bs, SBs), append(SLs, [X | SBs], Ys).
             qsort([], []).
             partition([X | Xs], Y, [X | Ls], Bs) :- X <= Y, partition(Xs, Y, Ls, Bs).
             partition([X | Xs], Y, Ls, [X | Bs]) :- X > Y, partition(Xs, Y, Ls, Bs).
             partition([], Y, [], []).
             append([], L, L).
             append([X | L1], L2, [X | L3]) :- append(L1, L2, L3).";
        // The paper's §4.2 worked example: ?- qsort([4,9,5], Ys).
        assert_eq!(answers(src, "qsort([4, 9, 5], Ys)", "Ys"), ["[4, 5, 9]"]);
        assert_eq!(answers(src, "qsort([], Ys)", "Ys"), ["[]"]);
    }

    #[test]
    fn edb_and_nonrecursive() {
        let src = "parent(adam, cain). parent(adam, abel).
             gp(X, Z) :- parent(X, Y), parent(Y, Z).
             parent(cain, enoch).";
        assert_eq!(answers(src, "parent(adam, X)", "X"), ["abel", "cain"]);
        assert_eq!(answers(src, "gp(adam, Z)", "Z"), ["enoch"]);
    }

    #[test]
    fn sg_function_free() {
        let src = "parent(c1, p1). parent(c2, p1). parent(g1, c1). parent(g2, c2).
             sibling(c1, c2). sibling(c2, c1).
             sg(X, Y) :- sibling(X, Y).
             sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).";
        assert_eq!(answers(src, "sg(g1, Y)", "Y"), ["g2"]);
        assert_eq!(answers(src, "sg(c1, Y)", "Y"), ["c2"]);
    }

    #[test]
    fn unbound_functional_query_errors() {
        let sys = System::build(&parse_program(SORTS).unwrap());
        let q = parse_query("isort(Xs, Ys)").unwrap();
        let mut solver = Solver::new(&sys, SolveOptions::default());
        assert!(solver.query(&q).is_err());
    }

    #[test]
    fn fuel_budget_applies() {
        let src = "p(X) :- p(X).
             p(a).";
        let sys = System::build(&parse_program(src).unwrap());
        let q = parse_query("p(a)").unwrap();
        let mut solver = Solver::new(
            &sys,
            SolveOptions {
                max_depth: 50,
                fuel: 10_000,
                max_levels: 100,
                ..SolveOptions::default()
            },
        );
        assert!(solver.query(&q).is_err());
    }
}
