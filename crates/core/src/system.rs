//! The compiled system: everything the evaluators share.
//!
//! [`System::build`] runs the LogicBase-style compilation pipeline once per
//! program: split EDB facts from IDB rules, rectify, build the dependency
//! graph, classify and chain-compile every IDB predicate, and register the
//! finite-evaluability modes of IDB predicates by a greatest-fixpoint
//! analysis (assume every adornment admissible, repeatedly strike the ones
//! some rule cannot be ordered for, until stable — the coinductive reading
//! is correct because striking is monotone).

use chainsplit_chain::{
    classify, compile, greedy_closure, rectify_program, CompiledRecursion, DepGraph, ModeTable,
    RecursionClass,
};
use chainsplit_logic::{adorn::term_bound, Ad, Adornment, Atom, Pred, Program, Rule, Var};
use chainsplit_relation::Database;
use std::collections::{BTreeMap, HashSet};

/// A fully compiled deductive database program.
pub struct System {
    /// The IDB rules exactly as written (top-down baselines run on these:
    /// head unification does the structural decomposition).
    pub original_rules: Vec<Rule>,
    /// The rectified IDB rules (everything else runs on these).
    pub rectified: Program,
    /// The extensional database.
    pub edb: Database,
    /// Finite-evaluability modes: builtins, EDB, and registered IDB modes.
    pub modes: ModeTable,
    /// Dependency graph over the rectified rules.
    pub graph: DepGraph,
    /// Chain-compiled recursions (linear and nested linear predicates).
    pub compiled: BTreeMap<Pred, CompiledRecursion>,
    /// Recursion class of every IDB predicate.
    pub classes: BTreeMap<Pred, RecursionClass>,
    /// Process-wide build sequence number: two [`System`] values compare
    /// equal here iff they are the *same* compilation. Lets tests assert
    /// that EDB fact ingestion did not silently recompile the program.
    pub build_seq: u64,
}

static NEXT_BUILD_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

impl System {
    /// Compiles `program` (facts + rules) into a system.
    pub fn build(program: &Program) -> System {
        let (facts, rules) = program.split_facts();
        let edb = Database::from_facts(facts);
        Self::build_parts(rules, edb)
    }

    /// Compiles from pre-split parts.
    pub fn build_parts(rules: Vec<Rule>, edb: Database) -> System {
        let rules_prog = Program::new(rules.clone());
        let rectified = rectify_program(&rules_prog);
        let graph = DepGraph::build(&rectified);

        let mut modes = ModeTable::with_builtins();
        let idb: HashSet<Pred> = rectified.rules.iter().map(|r| r.head.pred).collect();
        let mut edb_list: Vec<Pred> = Vec::new();
        for p in edb.preds().chain(rectified.edb_preds()) {
            if !chainsplit_chain::is_builtin(p) && !idb.contains(&p) && !edb_list.contains(&p) {
                edb_list.push(p);
            }
        }
        for &p in &edb_list {
            modes.add_edb(p);
        }

        let mut classes = BTreeMap::new();
        let mut compiled = BTreeMap::new();
        for &p in &idb {
            let c = classify(&rectified, &graph, p);
            classes.insert(p, c.class);
            if matches!(
                c.class,
                RecursionClass::Linear | RecursionClass::NestedLinear
            ) {
                if let Ok(rec) = compile(&rectified, &graph, p) {
                    compiled.insert(p, rec);
                }
            }
        }

        register_idb_modes(&rectified, &idb, &edb_list, &mut modes);

        System {
            original_rules: rules,
            rectified,
            edb,
            modes,
            graph,
            compiled,
            classes,
            build_seq: NEXT_BUILD_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// The recursion class of `pred` (`NonRecursive` if unknown).
    pub fn class_of(&self, pred: Pred) -> RecursionClass {
        self.classes
            .get(&pred)
            .copied()
            .unwrap_or(RecursionClass::NonRecursive)
    }

    /// True iff `pred` is intensional.
    pub fn is_idb(&self, pred: Pred) -> bool {
        self.classes.contains_key(&pred)
    }

    /// The rectified rules defining `pred`.
    pub fn rules_of(&self, pred: Pred) -> Vec<&Rule> {
        self.rectified.rules_for(pred).collect()
    }
}

/// Enumerate adornments of a given arity (all 2^arity patterns; predicates
/// wider than this cap only get the all-bound and all-free patterns —
/// nothing in the paper's repertoire comes close to the cap).
fn adornments_of(arity: usize) -> Vec<Adornment> {
    const CAP: usize = 10;
    if arity > CAP {
        return vec![Adornment::all_bound(arity), Adornment::all_free(arity)];
    }
    (0..(1usize << arity))
        .map(|bits| {
            Adornment(
                (0..arity)
                    .map(|i| {
                        if bits & (1 << i) != 0 {
                            Ad::Bound
                        } else {
                            Ad::Free
                        }
                    })
                    .collect(),
            )
        })
        .collect()
}

/// Greatest-fixpoint registration of IDB modes.
///
/// `p^ad` is admissible iff *every* rule of `p` can be fully ordered by
/// finite evaluability — treating recursive calls as finite under the
/// currently-assumed modes — ending with all head variables bound.
fn register_idb_modes(
    rectified: &Program,
    idb: &HashSet<Pred>,
    edb_list: &[Pred],
    modes: &mut ModeTable,
) {
    // Assume everything.
    let mut assumed: Vec<(Pred, Adornment)> = Vec::new();
    for &p in idb {
        for ad in adornments_of(p.arity as usize) {
            modes.add_mode(p, ad.clone());
            assumed.push((p, ad));
        }
    }
    // Strike failures until stable.
    loop {
        let mut struck: Vec<(Pred, Adornment)> = Vec::new();
        for (p, ad) in &assumed {
            if !mode_admissible(rectified, *p, ad, modes) {
                struck.push((*p, ad.clone()));
            }
        }
        if struck.is_empty() {
            break;
        }
        // Rebuild the table without the struck modes (ModeTable has no
        // removal on purpose — striking rebuilds).
        let mut fresh = ModeTable::with_builtins();
        for &p in edb_list {
            fresh.add_edb(p);
        }
        assumed.retain(|e| !struck.contains(e));
        for (p, ad) in &assumed {
            fresh.add_mode(*p, ad.clone());
        }
        *modes = fresh;
    }
    let _ = idb;
}

/// Can every rule of `p` be ordered under `ad`?
fn mode_admissible(rectified: &Program, p: Pred, ad: &Adornment, modes: &ModeTable) -> bool {
    rectified.rules_for(p).all(|rule| {
        let mut bound: HashSet<Var> = HashSet::new();
        for (j, arg) in rule.head.args.iter().enumerate() {
            if ad.0[j].is_bound() {
                for v in arg.vars() {
                    bound.insert(v);
                }
            }
        }
        let atoms: Vec<(usize, &Atom)> = rule.body.iter().enumerate().collect();
        let order = greedy_closure(&atoms, &mut bound, modes, &[]);
        order.len() == rule.body.len() && rule.head.args.iter().all(|t| term_bound(t, &bound))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainsplit_logic::parse_program;

    fn sys(src: &str) -> System {
        System::build(&parse_program(src).unwrap())
    }

    const SORTS: &str = "isort([X | Xs], Ys) :- isort(Xs, Zs), insert(X, Zs, Ys).
         isort([], []).
         insert(X, [], [X]).
         insert(X, [Y | Ys], [Y | Zs]) :- X > Y, insert(X, Ys, Zs).
         insert(X, [Y | Ys], [X, Y | Ys]) :- X <= Y.
         append([], L, L).
         append([X | L1], L2, [X | L3]) :- append(L1, L2, L3).";

    #[test]
    fn isort_modes_registered() {
        let s = sys(SORTS);
        let isort = Pred::new("isort", 2);
        let insert = Pred::new("insert", 3);
        let append = Pred::new("append", 3);
        assert!(s.modes.is_finite(isort, &Adornment::parse("bf")));
        assert!(!s.modes.is_finite(isort, &Adornment::parse("ff")));
        assert!(s.modes.is_finite(insert, &Adornment::parse("bbf")));
        assert!(!s.modes.is_finite(insert, &Adornment::parse("bff")));
        assert!(s.modes.is_finite(append, &Adornment::parse("ffb")));
        assert!(s.modes.is_finite(append, &Adornment::parse("bbf")));
        assert!(!s.modes.is_finite(append, &Adornment::parse("fff")));
    }

    #[test]
    fn isort_fb_is_admissible_coinductively() {
        // ?- isort(Xs, [1, 2, 3]): the inputs are the 3! permutations — a
        // finite set. The coinductive mode analysis establishes this
        // through insert^ffb (un-inserting an element from a sorted list
        // is finite), a mode that is only self-consistently admissible:
        // exactly what the greatest fixpoint is for.
        let s = sys(SORTS);
        assert!(s
            .modes
            .is_finite(Pred::new("isort", 2), &Adornment::parse("fb")));
        assert!(s
            .modes
            .is_finite(Pred::new("insert", 3), &Adornment::parse("ffb")));
    }

    #[test]
    fn classes_and_compiled() {
        let s = sys(SORTS);
        assert_eq!(
            s.class_of(Pred::new("isort", 2)),
            RecursionClass::NestedLinear
        );
        assert_eq!(s.class_of(Pred::new("insert", 3)), RecursionClass::Linear);
        assert_eq!(s.class_of(Pred::new("append", 3)), RecursionClass::Linear);
        assert!(s.compiled.contains_key(&Pred::new("append", 3)));
        assert!(s.compiled.contains_key(&Pred::new("isort", 2)));
    }

    #[test]
    fn qsort_modes() {
        let s = sys("qsort([X | Xs], Ys) :- partition(Xs, X, Ls, Bs),
                 qsort(Ls, SLs), qsort(Bs, SBs), append(SLs, [X | SBs], Ys).
             qsort([], []).
             partition([X | Xs], Y, [X | Ls], Bs) :- X <= Y, partition(Xs, Y, Ls, Bs).
             partition([X | Xs], Y, Ls, [X | Bs]) :- X > Y, partition(Xs, Y, Ls, Bs).
             partition([], Y, [], []).
             append([], L, L).
             append([X | L1], L2, [X | L3]) :- append(L1, L2, L3).");
        assert!(s
            .modes
            .is_finite(Pred::new("qsort", 2), &Adornment::parse("bf")));
        assert!(!s
            .modes
            .is_finite(Pred::new("qsort", 2), &Adornment::parse("ff")));
        assert!(s
            .modes
            .is_finite(Pred::new("partition", 4), &Adornment::parse("bbff")));
        assert_eq!(s.class_of(Pred::new("qsort", 2)), RecursionClass::NonLinear);
    }

    #[test]
    fn function_free_idb_is_fully_admissible() {
        let s = sys("sg(X, Y) :- sibling(X, Y).
             sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).
             parent(a, b). sibling(b, b).");
        for ad in ["bf", "fb", "bb", "ff"] {
            assert!(
                s.modes.is_finite(Pred::new("sg", 2), &Adornment::parse(ad)),
                "sg^{ad}"
            );
        }
        assert!(s.modes.is_edb(Pred::new("parent", 2)));
        assert!(s.is_idb(Pred::new("sg", 2)));
        assert!(!s.is_idb(Pred::new("parent", 2)));
    }

    #[test]
    fn edb_from_body_without_facts() {
        // `parent` has no facts yet, but it is extensional by position.
        let s = sys("anc(X, Y) :- parent(X, Y).
             anc(X, Y) :- parent(X, Z), anc(Z, Y).");
        assert!(s.modes.is_edb(Pred::new("parent", 2)));
    }
}
