//! Procedural evaluation of builtin (evaluable) predicates.
//!
//! These are the functional predicates rectification introduces (`cons`,
//! arithmetic) plus comparisons and (dis)equality. Each is a *relation over
//! an infinite domain*: it cannot be stored, only evaluated — and only under
//! sufficient bindings (the modes of [`chainsplit_chain::modes`]). When
//! bindings are insufficient, evaluation reports [`BuiltinOutcome::NotEvaluable`]
//! rather than guessing; the planner's job is to order atoms so this never
//! happens at run time.

use crate::error::EvalError;
use chainsplit_logic::{unify, Atom, Subst, Term};
use std::sync::Arc;

/// Result of attempting one builtin under one substitution.
#[derive(Debug)]
pub enum BuiltinOutcome {
    /// The (0 or more, in practice 0 or 1) solutions.
    Solutions(Vec<Subst>),
    /// Not enough bindings to evaluate finitely here.
    NotEvaluable,
}

use BuiltinOutcome::{NotEvaluable, Solutions};

/// True iff the engine evaluates `atom` procedurally.
pub fn is_builtin_atom(atom: &Atom) -> bool {
    chainsplit_chain::is_builtin(atom.pred)
}

/// Evaluates a builtin atom under `s`.
///
/// Returns `Ok(None)` if `atom` is not a builtin at all; `Err` on type
/// errors (ill-typed *ground* arguments are program bugs worth surfacing,
/// not silent empty results — except for genuinely relational failures like
/// `cons(X, Y, [])`, which simply fail).
pub fn eval_builtin(atom: &Atom, s: &Subst) -> Result<Option<BuiltinOutcome>, EvalError> {
    if !is_builtin_atom(atom) {
        return Ok(None);
    }
    let name = atom.pred.name.as_str();
    let out = match name {
        "=" => eval_eq(atom, s),
        "\\=" => eval_neq(atom, s)?,
        "<" | "<=" | ">" | ">=" => eval_cmp(name, atom, s)?,
        "cons" => eval_cons(atom, s),
        "plus" => eval_arith(atom, s, i64::checked_add, i64::checked_sub)?,
        "minus" => eval_minus(atom, s)?,
        "times" => eval_times(atom, s)?,
        "div" | "mod" => eval_divmod(name, atom, s)?,
        "length" => eval_length(atom, s),
        "between" => eval_between(atom, s)?,
        "abs" => eval_abs(atom, s)?,
        other => unreachable!("builtin table out of sync: {other}"),
    };
    Ok(Some(out))
}

fn one(s: Subst) -> BuiltinOutcome {
    Solutions(vec![s])
}

fn zero() -> BuiltinOutcome {
    Solutions(vec![])
}

/// `=`: plain unification. Always evaluable — aliasing two free variables
/// is a legitimate (and finite) outcome.
fn eval_eq(atom: &Atom, s: &Subst) -> BuiltinOutcome {
    let mut s2 = s.clone();
    if unify(&mut s2, &atom.args[0], &atom.args[1]) {
        one(s2)
    } else {
        zero()
    }
}

/// `\=`: structural disequality of ground terms.
fn eval_neq(atom: &Atom, s: &Subst) -> Result<BuiltinOutcome, EvalError> {
    if !s.is_ground(&atom.args[0]) || !s.is_ground(&atom.args[1]) {
        return Ok(NotEvaluable);
    }
    let a = s.resolve(&atom.args[0]);
    let b = s.resolve(&atom.args[1]);
    Ok(if a != b { one(s.clone()) } else { zero() })
}

/// Comparisons over integers, or symbols lexicographically (mixing the two
/// is a type error).
fn eval_cmp(op: &str, atom: &Atom, s: &Subst) -> Result<BuiltinOutcome, EvalError> {
    if !s.is_ground(&atom.args[0]) || !s.is_ground(&atom.args[1]) {
        return Ok(NotEvaluable);
    }
    let a = s.resolve(&atom.args[0]);
    let b = s.resolve(&atom.args[1]);
    let ord = match (&a, &b) {
        (Term::Int(x), Term::Int(y)) => x.cmp(y),
        (Term::Sym(x), Term::Sym(y)) => x.as_str().cmp(y.as_str()),
        _ => {
            return Err(EvalError::TypeError {
                atom: s.resolve_atom(atom).to_string(),
            })
        }
    };
    let holds = match op {
        "<" => ord.is_lt(),
        "<=" => ord.is_le(),
        ">" => ord.is_gt(),
        ">=" => ord.is_ge(),
        _ => unreachable!(),
    };
    Ok(if holds { one(s.clone()) } else { zero() })
}

/// `cons(H, T, L)` ⇔ `L = [H|T]`.
///
/// Decomposes when `L` leads to a cons cell (or fails on `[]`/other);
/// constructs when `L` is a free variable. Construction does not require
/// `H`/`T` to be ground — top-down resolution legitimately builds open
/// lists — so the *finiteness* question is the planner's, not ours.
fn eval_cons(atom: &Atom, s: &Subst) -> BuiltinOutcome {
    let l = s.walk(&atom.args[2]).clone();
    match l {
        Term::Cons(h, t) => {
            let mut s2 = s.clone();
            if unify(&mut s2, &atom.args[0], &h) && unify(&mut s2, &atom.args[1], &t) {
                one(s2)
            } else {
                zero()
            }
        }
        Term::Var(_) => {
            let cell = Term::Cons(
                Arc::new(s.resolve(&atom.args[0])),
                Arc::new(s.resolve(&atom.args[1])),
            );
            let mut s2 = s.clone();
            if unify(&mut s2, &atom.args[2], &cell) {
                one(s2)
            } else {
                zero()
            }
        }
        // [] or a non-list constant is simply not a cons cell.
        _ => zero(),
    }
}

fn ground_int(s: &Subst, t: &Term, atom: &Atom) -> Result<Option<i64>, EvalError> {
    match s.walk(t) {
        Term::Int(i) => Ok(Some(*i)),
        Term::Var(_) => Ok(None),
        _ => Err(EvalError::TypeError {
            atom: s.resolve_atom(atom).to_string(),
        }),
    }
}

/// `plus(X, Y, Z)` ⇔ `Z = X + Y`, invertible in any single position.
fn eval_arith(
    atom: &Atom,
    s: &Subst,
    fwd: fn(i64, i64) -> Option<i64>,
    inv: fn(i64, i64) -> Option<i64>,
) -> Result<BuiltinOutcome, EvalError> {
    let x = ground_int(s, &atom.args[0], atom)?;
    let y = ground_int(s, &atom.args[1], atom)?;
    let z = ground_int(s, &atom.args[2], atom)?;
    let (pos, val) = match (x, y, z) {
        (Some(x), Some(y), _) => (2, fwd(x, y)),
        (Some(x), _, Some(z)) => (1, inv(z, x)),
        (_, Some(y), Some(z)) => (0, inv(z, y)),
        _ => return Ok(NotEvaluable),
    };
    let Some(val) = val else {
        return Err(EvalError::TypeError {
            atom: format!("integer overflow in {}", s.resolve_atom(atom)),
        });
    };
    let mut s2 = s.clone();
    Ok(if unify(&mut s2, &atom.args[pos], &Term::Int(val)) {
        one(s2)
    } else {
        zero()
    })
}

/// `minus(X, Y, Z)` ⇔ `Z = X - Y`.
fn eval_minus(atom: &Atom, s: &Subst) -> Result<BuiltinOutcome, EvalError> {
    let x = ground_int(s, &atom.args[0], atom)?;
    let y = ground_int(s, &atom.args[1], atom)?;
    let z = ground_int(s, &atom.args[2], atom)?;
    let (pos, val) = match (x, y, z) {
        (Some(x), Some(y), _) => (2, x.checked_sub(y)),
        (Some(x), _, Some(z)) => (1, x.checked_sub(z)),
        (_, Some(y), Some(z)) => (0, z.checked_add(y)),
        _ => return Ok(NotEvaluable),
    };
    let Some(val) = val else {
        return Err(EvalError::TypeError {
            atom: format!("integer overflow in {}", s.resolve_atom(atom)),
        });
    };
    let mut s2 = s.clone();
    Ok(if unify(&mut s2, &atom.args[pos], &Term::Int(val)) {
        one(s2)
    } else {
        zero()
    })
}

/// `times(X, Y, Z)` ⇔ `Z = X * Y`; inversion fails (empty) when the
/// division does not come out even, and is not evaluable for `0 * Y = 0`
/// (infinitely many `Y`).
fn eval_times(atom: &Atom, s: &Subst) -> Result<BuiltinOutcome, EvalError> {
    let x = ground_int(s, &atom.args[0], atom)?;
    let y = ground_int(s, &atom.args[1], atom)?;
    let z = ground_int(s, &atom.args[2], atom)?;
    let invert = |known: i64, prod: i64| -> Option<Option<i64>> {
        // Outer None: not evaluable. Inner None: no solution.
        if known == 0 {
            if prod == 0 {
                None
            } else {
                Some(None)
            }
        } else if prod % known == 0 {
            Some(Some(prod / known))
        } else {
            Some(None)
        }
    };
    let (pos, val) = match (x, y, z) {
        (Some(x), Some(y), _) => match x.checked_mul(y) {
            Some(v) => (2, Some(v)),
            None => {
                return Err(EvalError::TypeError {
                    atom: format!("integer overflow in {}", s.resolve_atom(atom)),
                })
            }
        },
        (Some(x), _, Some(z)) => match invert(x, z) {
            Some(v) => (1, v),
            None => return Ok(NotEvaluable),
        },
        (_, Some(y), Some(z)) => match invert(y, z) {
            Some(v) => (0, v),
            None => return Ok(NotEvaluable),
        },
        _ => return Ok(NotEvaluable),
    };
    let Some(val) = val else { return Ok(zero()) };
    let mut s2 = s.clone();
    Ok(if unify(&mut s2, &atom.args[pos], &Term::Int(val)) {
        one(s2)
    } else {
        zero()
    })
}

/// `div`/`mod`: forward direction only (truncating, like Rust).
fn eval_divmod(op: &str, atom: &Atom, s: &Subst) -> Result<BuiltinOutcome, EvalError> {
    let (Some(x), Some(y)) = (
        ground_int(s, &atom.args[0], atom)?,
        ground_int(s, &atom.args[1], atom)?,
    ) else {
        return Ok(NotEvaluable);
    };
    if y == 0 {
        return Err(EvalError::TypeError {
            atom: format!("division by zero in {}", s.resolve_atom(atom)),
        });
    }
    let val = if op == "div" { x / y } else { x % y };
    let mut s2 = s.clone();
    Ok(if unify(&mut s2, &atom.args[2], &Term::Int(val)) {
        one(s2)
    } else {
        zero()
    })
}

/// `between(L, H, X)`: enumerates the integers `L..=H` (or checks
/// membership when `X` is bound).
fn eval_between(atom: &Atom, s: &Subst) -> Result<BuiltinOutcome, EvalError> {
    let (Some(lo), Some(hi)) = (
        ground_int(s, &atom.args[0], atom)?,
        ground_int(s, &atom.args[1], atom)?,
    ) else {
        return Ok(NotEvaluable);
    };
    if let Some(x) = ground_int(s, &atom.args[2], atom)? {
        return Ok(if (lo..=hi).contains(&x) {
            one(s.clone())
        } else {
            zero()
        });
    }
    let mut sols = Vec::new();
    for x in lo..=hi {
        let mut s2 = s.clone();
        if unify(&mut s2, &atom.args[2], &Term::Int(x)) {
            sols.push(s2);
        }
    }
    Ok(Solutions(sols))
}

/// `abs(X, Y)`: `Y = |X|`, invertible (a bound `Y` yields `Y` and `-Y`).
fn eval_abs(atom: &Atom, s: &Subst) -> Result<BuiltinOutcome, EvalError> {
    let x = ground_int(s, &atom.args[0], atom)?;
    let y = ground_int(s, &atom.args[1], atom)?;
    match (x, y) {
        (Some(x), _) => {
            let Some(a) = x.checked_abs() else {
                return Err(EvalError::TypeError {
                    atom: format!("integer overflow in {}", s.resolve_atom(atom)),
                });
            };
            let mut s2 = s.clone();
            Ok(if unify(&mut s2, &atom.args[1], &Term::Int(a)) {
                one(s2)
            } else {
                zero()
            })
        }
        (None, Some(y)) if y < 0 => Ok(zero()),
        (None, Some(y)) => {
            let mut sols = Vec::new();
            for cand in [y, -y] {
                let mut s2 = s.clone();
                if unify(&mut s2, &atom.args[0], &Term::Int(cand)) {
                    sols.push(s2);
                }
            }
            sols.dedup_by(|a, b| a == b);
            if y == 0 {
                sols.truncate(1);
            }
            Ok(Solutions(sols))
        }
        _ => Ok(NotEvaluable),
    }
}

/// `length(L, N)`: list length, forward direction.
fn eval_length(atom: &Atom, s: &Subst) -> BuiltinOutcome {
    let l = s.resolve(&atom.args[0]);
    let Some(elems) = l.as_list() else {
        return NotEvaluable;
    };
    let mut s2 = s.clone();
    if unify(&mut s2, &atom.args[1], &Term::Int(elems.len() as i64)) {
        one(s2)
    } else {
        zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainsplit_logic::parse_query;

    fn run(src: &str) -> Result<Option<BuiltinOutcome>, EvalError> {
        eval_builtin(&parse_query(src).unwrap(), &Subst::new())
    }

    fn solutions(src: &str) -> Vec<Subst> {
        match run(src).unwrap().unwrap() {
            Solutions(v) => v,
            NotEvaluable => panic!("{src} not evaluable"),
        }
    }

    #[test]
    fn non_builtin_passes_through() {
        assert!(run("parent(a, X)").unwrap().is_none());
    }

    #[test]
    fn eq_unifies() {
        let sols = solutions("X = [1, 2]");
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].resolve(&Term::var("X")), Term::int_list([1, 2]));
        assert!(solutions("1 = 2").is_empty());
    }

    #[test]
    fn neq_needs_ground() {
        assert!(matches!(run("X \\= 2").unwrap().unwrap(), NotEvaluable));
        assert_eq!(solutions("1 \\= 2").len(), 1);
        assert!(solutions("a \\= a").is_empty());
    }

    #[test]
    fn comparisons() {
        assert_eq!(solutions("1 < 2").len(), 1);
        assert!(solutions("2 < 1").is_empty());
        assert_eq!(solutions("2 <= 2").len(), 1);
        assert_eq!(solutions("5 > -1").len(), 1);
        assert_eq!(solutions("abc >= abb").len(), 1); // lexicographic
        assert!(matches!(run("X < 2").unwrap().unwrap(), NotEvaluable));
        assert!(run("a < 2").is_err()); // mixed types
    }

    #[test]
    fn cons_decomposes() {
        let sols = solutions("cons(H, T, [5, 7, 1])");
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].resolve(&Term::var("H")), Term::Int(5));
        assert_eq!(sols[0].resolve(&Term::var("T")), Term::int_list([7, 1]));
    }

    #[test]
    fn cons_constructs() {
        let sols = solutions("cons(5, [7, 1], L)");
        assert_eq!(sols[0].resolve(&Term::var("L")), Term::int_list([5, 7, 1]));
    }

    #[test]
    fn cons_fails_on_nil_and_nonlist() {
        assert!(solutions("cons(H, T, [])").is_empty());
        assert!(solutions("cons(H, T, 42)").is_empty());
    }

    #[test]
    fn cons_checks() {
        assert_eq!(solutions("cons(1, [2], [1, 2])").len(), 1);
        assert!(solutions("cons(9, [2], [1, 2])").is_empty());
    }

    #[test]
    fn plus_all_directions() {
        let s = solutions("plus(2, 3, Z)");
        assert_eq!(s[0].resolve(&Term::var("Z")), Term::Int(5));
        let s = solutions("plus(2, Y, 5)");
        assert_eq!(s[0].resolve(&Term::var("Y")), Term::Int(3));
        let s = solutions("plus(X, 3, 5)");
        assert_eq!(s[0].resolve(&Term::var("X")), Term::Int(2));
        assert!(solutions("plus(2, 3, 6)").is_empty());
        assert!(matches!(
            run("plus(2, Y, Z)").unwrap().unwrap(),
            NotEvaluable
        ));
    }

    #[test]
    fn minus_all_directions() {
        assert_eq!(
            solutions("minus(7, 3, Z)")[0].resolve(&Term::var("Z")),
            Term::Int(4)
        );
        assert_eq!(
            solutions("minus(7, Y, 4)")[0].resolve(&Term::var("Y")),
            Term::Int(3)
        );
        assert_eq!(
            solutions("minus(X, 3, 4)")[0].resolve(&Term::var("X")),
            Term::Int(7)
        );
    }

    #[test]
    fn times_inversion() {
        assert_eq!(
            solutions("times(6, 7, Z)")[0].resolve(&Term::var("Z")),
            Term::Int(42)
        );
        assert_eq!(
            solutions("times(6, Y, 42)")[0].resolve(&Term::var("Y")),
            Term::Int(7)
        );
        assert!(solutions("times(6, Y, 43)").is_empty()); // uneven
        assert!(solutions("times(0, Y, 5)").is_empty()); // 0 * Y = 5
        assert!(matches!(
            run("times(0, Y, 0)").unwrap().unwrap(),
            NotEvaluable
        )); // infinitely many Y
    }

    #[test]
    fn div_mod_forward_only() {
        assert_eq!(
            solutions("div(7, 2, Z)")[0].resolve(&Term::var("Z")),
            Term::Int(3)
        );
        assert_eq!(
            solutions("mod(7, 2, Z)")[0].resolve(&Term::var("Z")),
            Term::Int(1)
        );
        assert!(run("div(7, 0, Z)").is_err());
        assert!(matches!(
            run("div(X, 2, 3)").unwrap().unwrap(),
            NotEvaluable
        ));
    }

    #[test]
    fn length_forward() {
        assert_eq!(
            solutions("length([4, 9, 5], N)")[0].resolve(&Term::var("N")),
            Term::Int(3)
        );
        assert_eq!(
            solutions("length([], N)")[0].resolve(&Term::var("N")),
            Term::Int(0)
        );
        assert!(matches!(
            run("length(L, 3)").unwrap().unwrap(),
            NotEvaluable
        ));
        assert!(solutions("length([1], 5)").is_empty());
    }

    #[test]
    fn overflow_is_a_type_error_not_a_panic() {
        assert!(run("plus(9223372036854775807, 1, Z)").is_err());
        assert!(run("times(9223372036854775807, 2, Z)").is_err());
    }
}

#[cfg(test)]
mod between_abs_tests {
    use super::*;
    use chainsplit_logic::{parse_query, Subst, Term};

    fn solutions(src: &str) -> Vec<Subst> {
        match eval_builtin(&parse_query(src).unwrap(), &Subst::new())
            .unwrap()
            .unwrap()
        {
            Solutions(v) => v,
            NotEvaluable => panic!("{src} not evaluable"),
        }
    }

    #[test]
    fn between_enumerates() {
        let sols = solutions("between(2, 5, X)");
        let xs: Vec<Term> = sols.iter().map(|s| s.resolve(&Term::var("X"))).collect();
        assert_eq!(xs, [Term::Int(2), Term::Int(3), Term::Int(4), Term::Int(5)]);
        assert!(solutions("between(5, 2, X)").is_empty());
    }

    #[test]
    fn between_checks() {
        assert_eq!(solutions("between(1, 9, 4)").len(), 1);
        assert!(solutions("between(1, 9, 10)").is_empty());
    }

    #[test]
    fn abs_forward_and_backward() {
        assert_eq!(
            solutions("abs(-7, Y)")[0].resolve(&Term::var("Y")),
            Term::Int(7)
        );
        let sols = solutions("abs(X, 7)");
        assert_eq!(sols.len(), 2);
        assert!(solutions("abs(X, -3)").is_empty());
        assert_eq!(solutions("abs(X, 0)").len(), 1);
        assert_eq!(solutions("abs(3, 3)").len(), 1);
        assert!(solutions("abs(3, 4)").is_empty());
    }
}
