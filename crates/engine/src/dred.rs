//! Incremental retraction: counting + Delete-and-Rederive (DRed).
//!
//! The bottom-up evaluators are query-at-a-time — nothing persists between
//! queries — so incremental *deletion* needs a state holder of its own. A
//! [`Materialization`] owns a `live` database (the EDB plus every derived
//! tuple at fixpoint) and, per derived predicate, a
//! [`SupportCounts`] map giving each
//! tuple its number of distinct rule instantiations. Retracting an EDB
//! fact then repairs `live` in place instead of recomputing the fixpoint:
//!
//! 1. **Over-delete.** Starting from Δ₀ = {the retracted tuple}, run the
//!    semi-naive loop *backwards*: each round enumerates exactly the rule
//!    instantiations destroyed by this round's deletions and decrements
//!    the support count of each affected head. A head tuple is deleted
//!    (joining the next delta) when its predicate is recursive — a
//!    positive count may be sustained by a derivation cycle, so counting
//!    cannot be trusted — or when its count reaches zero (the counting
//!    short-circuit, exact for non-recursive predicates).
//! 2. **Re-derive.** Over-deleted tuples that still have support from the
//!    surviving state are re-inserted, again to fixpoint: one targeted
//!    pass that seeds each candidate's rule bodies with the head-match
//!    substitution (indexed probes, not a full join), then semi-naive
//!    propagation of the re-insertions.
//! 3. **Recount.** Only when step 2 re-derived something: a decrement is
//!    wrong exactly when the lost instantiation's supporting tuple came
//!    back, so with nothing re-derived the counts are already exact.
//!    Otherwise, support counts for every predicate that lost a
//!    derivation are recomputed over the repaired state.
//!
//! The destroyed instantiations of step 1 are enumerated **exactly once**
//! by the classic delta split: for the delta occurrence at body position
//! `dpos`, positions `< dpos` read the *new* state (this round's delta
//! already removed) and positions `> dpos` read the *old* state (delta
//! still present), so an instantiation with several deleted tuples is
//! charged to its earliest delta position only. Insertion maintenance
//! ([`assert_fact`]) is the mirror image with the sides swapped.
//!
//! Every parallel phase reuses the frontier executor discipline of
//! `seminaive`: deltas are split into [`DELTA_PARTITIONS`] fixed hash
//! partitions by join-key columns, units run on the shared pool, and
//! results merge in unit order — so repair work counters are bit-identical
//! at any thread count. The governor is observed at round boundaries and
//! probe batches; on a budget trip the repair *drains*: the outcome
//! reports the trip and the caller must discard the materialization
//! (mid-repair state is not a consistent fixpoint).

use crate::error::{Counters, EvalError};
use crate::eval::{eval_body, eval_body_planned, AtomSource};
use crate::naive::BottomUpOptions;
use crate::plan::JoinPlanner;
use crate::seminaive::{join_key_cols, seminaive_eval, DELTA_PARTITIONS};
use chainsplit_governor::{BudgetTrip, Governor};
use chainsplit_logic::{unify_atoms, Atom, Pred, Rule, Subst};
use chainsplit_par::Pool;
use chainsplit_relation::{Database, FxHashSet, Relation, SupportCounts, Tuple};
use std::collections::{BTreeMap, BTreeSet};

/// Materialized fixpoint state that can absorb insertions and retractions
/// incrementally. Built by [`materialize`]; repaired by [`assert_fact`]
/// and [`retract`].
pub struct Materialization {
    rules: Vec<Rule>,
    /// Head predicates, sorted — the derived (IDB) part of `live`.
    idb_preds: Vec<Pred>,
    /// Predicates on a dependency cycle: counting is advisory for these.
    recursive: FxHashSet<Pred>,
    /// EDB ∪ IDB at fixpoint. EDB and IDB predicates are disjoint (the
    /// compiler's `split_facts` guarantees it), so one catalog holds both.
    live: Database,
    /// Per derived predicate: tuple → number of rule instantiations.
    support: BTreeMap<Pred, SupportCounts>,
    /// How many incremental repairs (asserts + retracts) this state has
    /// absorbed since it was built.
    repairs: u64,
}

impl Materialization {
    /// The live database: EDB plus all derived tuples.
    pub fn live(&self) -> &Database {
        &self.live
    }

    /// Sorted head predicates.
    pub fn idb_preds(&self) -> &[Pred] {
        &self.idb_preds
    }

    /// Total derived tuples currently live.
    pub fn idb_rows(&self) -> usize {
        self.idb_preds
            .iter()
            .filter_map(|&p| self.live.relation(p))
            .map(Relation::len)
            .sum()
    }

    /// Whether `p` sits on a rule dependency cycle.
    pub fn is_recursive(&self, p: Pred) -> bool {
        self.recursive.contains(&p)
    }

    /// The support count for a derived tuple (zero when not derived).
    pub fn support_of(&self, p: Pred, t: &Tuple) -> u64 {
        self.support.get(&p).map_or(0, |s| s.get(t))
    }

    /// Incremental repairs absorbed since the state was built.
    pub fn repairs(&self) -> u64 {
        self.repairs
    }

    /// A canonical, sorted fingerprint of the derived state: one
    /// `pred(tuple)#count` line per live derived tuple. Two
    /// materializations of the same program state — one repaired
    /// incrementally, one rebuilt from scratch — must digest identically;
    /// this is what the retract-consistency oracle compares.
    pub fn digest(&self) -> Vec<String> {
        let mut out = Vec::new();
        for &p in &self.idb_preds {
            if let Some(rel) = self.live.relation(p) {
                for t in rel.iter() {
                    let c = self.support.get(&p).map_or(0, |s| s.get(t));
                    out.push(format!("{p}{t}#{c}"));
                }
            }
        }
        out.sort();
        out
    }
}

/// The result of [`materialize`]: the state (when the build completed),
/// plus the work counters and any budget trip that drained it.
pub struct MaterializeOutcome {
    /// `None` when the build tripped a budget (partial fixpoints cannot be
    /// repaired incrementally) — the trip says why.
    pub materialization: Option<Materialization>,
    pub counters: Counters,
    pub trip: Option<BudgetTrip>,
}

/// What one incremental repair did.
#[derive(Clone, Debug, Default)]
pub struct RepairOutcome {
    /// Whether the mutation changed the EDB at all (`false`: retracting an
    /// absent fact / asserting a duplicate — both no-ops).
    pub changed: bool,
    /// Work counters across all repair phases; bit-identical at any
    /// thread count.
    pub counters: Counters,
    /// Parallel over-delete rounds (retract only).
    pub delete_rounds: usize,
    /// Re-derivation rounds: the full pass plus semi-naive propagation.
    pub rederive_rounds: usize,
    /// Derived tuples over-deleted (some may have been re-derived).
    pub deleted: usize,
    /// Over-deleted tuples found to still have support and re-inserted.
    pub rederived: usize,
    /// `Some` when a governor budget tripped mid-repair. The live state
    /// is then **not** a consistent fixpoint: the caller must drop the
    /// materialization (drain-to-partial, same contract as a tripped
    /// query materializing a partial IDB).
    pub trip: Option<BudgetTrip>,
}

/// Builds a [`Materialization`]: semi-naive fixpoint, then one exact
/// support-counting pass enumerating every rule instantiation over the
/// fixpoint. Programs the bottom-up engine cannot evaluate (non-range-
/// restricted heads, unbound builtins) surface the usual [`EvalError`].
pub fn materialize(
    rules: &[Rule],
    edb: &Database,
    opts: &BottomUpOptions,
) -> Result<MaterializeOutcome, EvalError> {
    let result = seminaive_eval(rules, edb, opts.clone())?;
    let mut counters = result.counters;
    if let Some(trip) = result.trip {
        return Ok(MaterializeOutcome {
            materialization: None,
            counters,
            trip: Some(trip),
        });
    }
    let mut live = edb.clone();
    live.merge(&result.idb);
    // Catalog every predicate any rule mentions, so repair rounds can
    // always borrow a (possibly empty) relation for a body atom.
    for rule in rules {
        live.relation_mut(rule.head.pred);
        for a in &rule.body {
            if !crate::builtins::is_builtin_atom(a) {
                live.relation_mut(a.pred);
            }
        }
    }
    let idb_preds: Vec<Pred> = {
        let mut v: Vec<Pred> = rules.iter().map(|r| r.head.pred).collect();
        v.sort();
        v.dedup();
        v
    };
    let mut support: BTreeMap<Pred, SupportCounts> = idb_preds
        .iter()
        .map(|&p| (p, SupportCounts::new()))
        .collect();
    let gov = &opts.governor;
    // The fixpoint's cached plans were estimated while the IDB relations
    // were still growing (or absent); the support pass joins over the
    // materialized state, so force replans against the final cardinalities.
    for &p in &idb_preds {
        opts.planner.bump_epoch(p);
    }
    for rule in rules {
        let tagged: Vec<(&Atom, AtomSource)> =
            rule.body.iter().map(|a| (a, AtomSource::Auto)).collect();
        let lookup = |p: Pred| live.relation(p);
        let sols = match eval_body_planned(
            &tagged,
            Subst::new(),
            &lookup,
            &mut counters,
            gov,
            &opts.planner,
        ) {
            Ok(sols) => sols,
            Err(e) => match e.budget_trip() {
                Some(trip) => {
                    return Ok(MaterializeOutcome {
                        materialization: None,
                        counters,
                        trip: Some(trip),
                    })
                }
                None => return Err(e),
            },
        };
        for s in sols {
            let head = s.resolve_atom(&rule.head);
            if !head.is_ground() {
                return Err(EvalError::NotEvaluable {
                    atom: head.to_string(),
                });
            }
            support
                .get_mut(&head.pred)
                .expect("head pred is cataloged")
                .inc(&Tuple::new(head.args));
        }
    }
    Ok(MaterializeOutcome {
        materialization: Some(Materialization {
            rules: rules.to_vec(),
            idb_preds,
            recursive: recursive_preds(rules),
            live,
            support,
            repairs: 0,
        }),
        counters,
        trip: None,
    })
}

/// Head predicates reachable from themselves through rule bodies.
fn recursive_preds(rules: &[Rule]) -> FxHashSet<Pred> {
    let heads: BTreeSet<Pred> = rules.iter().map(|r| r.head.pred).collect();
    let mut adj: BTreeMap<Pred, BTreeSet<Pred>> = BTreeMap::new();
    for r in rules {
        for a in &r.body {
            if heads.contains(&a.pred) {
                adj.entry(r.head.pred).or_default().insert(a.pred);
            }
        }
    }
    let mut out = FxHashSet::default();
    for &p in &heads {
        let mut stack: Vec<Pred> = adj.get(&p).into_iter().flatten().copied().collect();
        let mut seen: BTreeSet<Pred> = stack.iter().copied().collect();
        let mut found = seen.contains(&p);
        while let Some(q) = stack.pop() {
            if q == p {
                found = true;
                break;
            }
            for &succ in adj.get(&q).into_iter().flatten() {
                if seen.insert(succ) {
                    stack.push(succ);
                }
            }
        }
        if found {
            out.insert(p);
        }
    }
    out
}

/// Runs one parallel delta round: one unit per (rule, non-builtin delta
/// occurrence, non-empty hash partition), merged in unit order.
///
/// Side discipline (the exactly-once split): position `dpos` reads its
/// partition of the delta; of the remaining positions, one side reads the
/// state *without* the delta and the other the state *with* it. `overlay`
/// holds the with/without variant for the delta predicates (all other
/// predicates read `live` either way); `overlay_on_gt` says which side the
/// overlay serves — `true` for retraction (delta already removed from
/// `live`, so `> dpos` needs the overlay that still has it), `false` for
/// insertion (delta already in `live`, so `< dpos` needs the overlay
/// without it). Re-derivation passes an empty overlay: there both sides
/// deliberately read `live`, trading duplicate enumeration (harmless — the
/// candidate set dedups) for not cloning relations.
///
/// `head_filter` restricts units to rules whose head predicate has
/// pending candidates (re-derivation only).
///
/// Returns the derived/destroyed head tuples in unit order, or the budget
/// trip that drained the round (its partial yield is discarded).
#[allow(clippy::too_many_arguments)]
fn run_units(
    pool: &Pool,
    rules: &[Rule],
    delta: &BTreeMap<Pred, Relation>,
    live: &Database,
    overlay: &BTreeMap<Pred, Relation>,
    overlay_on_gt: bool,
    head_filter: Option<&BTreeMap<Pred, FxHashSet<Tuple>>>,
    gov: &Governor,
    planner: &JoinPlanner,
    counters: &mut Counters,
) -> Result<(UnitResults, Option<BudgetTrip>), EvalError> {
    let mut units: Vec<(usize, usize, Relation)> = Vec::new();
    for (ri, rule) in rules.iter().enumerate() {
        if let Some(filter) = head_filter {
            if filter
                .get(&rule.head.pred)
                .is_none_or(|pending| pending.is_empty())
            {
                continue;
            }
        }
        for (dpos, a) in rule.body.iter().enumerate() {
            if crate::builtins::is_builtin_atom(a) {
                continue;
            }
            let Some(d) = delta.get(&a.pred) else {
                continue;
            };
            if d.is_empty() {
                continue;
            }
            let cols = join_key_cols(rule, dpos);
            for part in d.partition_by_hash(DELTA_PARTITIONS, &cols) {
                if !part.is_empty() {
                    units.push((ri, dpos, part));
                }
            }
        }
    }
    let tasks: Vec<_> = units
        .iter()
        .map(|(ri, dpos, part)| {
            let rule = &rules[*ri];
            move || -> Result<(Vec<(Pred, Tuple)>, Counters), EvalError> {
                let mut c = Counters::default();
                let mut out: Vec<(Pred, Tuple)> = Vec::new();
                let mut tagged: Vec<(&Atom, AtomSource)> = Vec::new();
                tagged.push((&rule.body[*dpos], AtomSource::Fixed(part)));
                for (i, a) in rule.body.iter().enumerate() {
                    if i == *dpos {
                        continue;
                    }
                    if crate::builtins::is_builtin_atom(a) {
                        tagged.push((a, AtomSource::Auto));
                        continue;
                    }
                    let wants_overlay = if overlay_on_gt { i > *dpos } else { i < *dpos };
                    let rel = if wants_overlay {
                        overlay.get(&a.pred).or_else(|| live.relation(a.pred))
                    } else {
                        live.relation(a.pred)
                    };
                    match rel {
                        Some(r) => tagged.push((a, AtomSource::Fixed(r))),
                        // An uncataloged predicate has no tuples: the unit
                        // cannot match anything.
                        None => return Ok((out, c)),
                    }
                }
                let lookup = |p: Pred| live.relation(p);
                // Every stored atom is pinned `Fixed` above, so cached
                // plans adapt to repair-time mutations purely through the
                // 4× size bands — no epoch bookkeeping needed here.
                for s in eval_body_planned(&tagged, Subst::new(), &lookup, &mut c, gov, planner)? {
                    let head = s.resolve_atom(&rule.head);
                    if !head.is_ground() {
                        return Err(EvalError::NotEvaluable {
                            atom: head.to_string(),
                        });
                    }
                    out.push((head.pred, Tuple::new(head.args)));
                }
                Ok((out, c))
            }
        })
        .collect();
    let results = pool.run(tasks).map_err(EvalError::from)?;
    let mut heads: Vec<(Pred, Tuple)> = Vec::new();
    for r in results {
        match r {
            Ok((out, c)) => {
                counters.add(&c);
                heads.extend(out);
            }
            // A trip inside a unit drains the whole round; its partial
            // yield never reaches the caller.
            Err(e) => match e.budget_trip() {
                Some(trip) => return Ok((Vec::new(), Some(trip))),
                None => return Err(e),
            },
        }
    }
    Ok((heads, None))
}

/// Merged `(head predicate, head tuple)` results of one delta round, in
/// deterministic unit order.
type UnitResults = Vec<(Pred, Tuple)>;

/// The predicates whose overlay variant [`run_units`] will actually
/// dereference this round: non-builtin body atoms on the overlay side of
/// some delta occurrence (`after` the occurrence for retraction, `before`
/// it for insertion). Everything else reads `live` directly, so a lazy
/// shadow only needs syncing for these.
fn overlay_reads(
    rules: &[Rule],
    delta: &BTreeMap<Pred, Relation>,
    overlay_on_gt: bool,
) -> BTreeSet<Pred> {
    let mut read = BTreeSet::new();
    for rule in rules {
        for (dpos, a) in rule.body.iter().enumerate() {
            if crate::builtins::is_builtin_atom(a) {
                continue;
            }
            if delta.get(&a.pred).is_none_or(|d| d.is_empty()) {
                continue;
            }
            let side = if overlay_on_gt {
                &rule.body[dpos + 1..]
            } else {
                &rule.body[..dpos]
            };
            for b in side {
                if !crate::builtins::is_builtin_atom(b) {
                    read.insert(b.pred);
                }
            }
        }
    }
    read
}

fn singleton_delta(pred: Pred, t: Tuple) -> BTreeMap<Pred, Relation> {
    let mut rel = Relation::new(pred.arity as usize);
    rel.insert(t);
    BTreeMap::from([(pred, rel)])
}

/// Incrementally absorbs the insertion of a ground EDB fact: the mirror
/// of [`retract`]'s over-delete, with the delta split's sides swapped and
/// increments instead of decrements. New derivations propagate
/// semi-naively; support counts stay exact throughout (insertion never
/// needs a rederive or recount phase).
///
/// On a budget trip the outcome reports it and the materialization must
/// be discarded by the caller.
pub fn assert_fact(
    m: &mut Materialization,
    fact: &Atom,
    opts: &BottomUpOptions,
) -> Result<RepairOutcome, EvalError> {
    let mut outcome = RepairOutcome::default();
    if !m.live.add_fact(fact) {
        return Ok(outcome);
    }
    outcome.changed = true;
    m.repairs += 1;
    let gov = &opts.governor;
    let pool = Pool::new(opts.threads);
    let mut delta = singleton_delta(fact.pred, Tuple::new(fact.args.clone()));
    let mut derived_total = 0usize;
    // The "without the delta" overlay: delta tuples are already in `live`,
    // so positions < dpos read live minus delta. Cloning live for every
    // round made chain repairs accidentally quartic, so the overlay is a
    // lazy persistent shadow per predicate: cloned once, synced only in
    // rounds that actually probe it ([`overlay_reads`]), with processed
    // deltas queued in `pending` until then.
    let mut overlay: BTreeMap<Pred, Relation> = BTreeMap::new();
    let mut pending: BTreeMap<Pred, Vec<Tuple>> = BTreeMap::new();
    loop {
        if let Err(trip) = gov.on_round("dred-insert") {
            outcome.trip = Some(trip);
            return Ok(outcome);
        }
        outcome.counters.iterations += 1;
        outcome.rederive_rounds += 1;
        if outcome.rederive_rounds > opts.max_rounds {
            return Err(EvalError::FuelExceeded {
                limit: opts.max_rounds,
            });
        }
        for p in overlay_reads(&m.rules, &delta, false) {
            if let Some(o) = overlay.get_mut(&p) {
                // Flush the additions queued since the last sync: the
                // shadow is then live minus exactly the current delta.
                if let Some(ts) = pending.get_mut(&p) {
                    for t in ts.drain(..) {
                        o.insert(t);
                    }
                }
            } else {
                // First read: clone live (which includes the current
                // delta) and take the delta back out.
                let mut o = m
                    .live
                    .relation(p)
                    .cloned()
                    .unwrap_or_else(|| Relation::new(p.arity as usize));
                if let Some(d) = delta.get(&p) {
                    o.remove_all(d.iter());
                }
                overlay.insert(p, o);
            }
        }
        let (gained, trip) = run_units(
            &pool,
            &m.rules,
            &delta,
            &m.live,
            &overlay,
            false,
            None,
            gov,
            &opts.planner,
            &mut outcome.counters,
        )?;
        if let Some(trip) = trip {
            outcome.trip = Some(trip);
            return Ok(outcome);
        }
        let account = gov.active();
        let mut next: BTreeMap<Pred, Relation> = BTreeMap::new();
        for (pred, t) in gained {
            m.support
                .get_mut(&pred)
                .expect("derived heads are IDB")
                .inc(&t);
            let already = m.live.relation(pred).is_some_and(|r| r.contains(&t));
            if !already {
                if account {
                    gov.add_tuples(1);
                    gov.add_bytes(t.estimated_bytes() as u64);
                }
                m.live.relation_mut(pred).insert(t.clone());
                next.entry(pred)
                    .or_insert_with(|| Relation::new(pred.arity as usize))
                    .insert(t);
                outcome.counters.derived += 1;
                derived_total += 1;
                if derived_total > opts.max_facts {
                    return Err(EvalError::FuelExceeded {
                        limit: opts.max_facts,
                    });
                }
            }
        }
        // The processed delta is now plain live state: queue it so the
        // shadow regains it at its next sync.
        for (p, d) in &delta {
            if overlay.contains_key(p) {
                pending.entry(*p).or_default().extend(d.iter().cloned());
            }
        }
        if next.is_empty() {
            return Ok(outcome);
        }
        delta = next;
    }
}

/// The targeted phase-2 first pass: each over-deleted candidate seeds the
/// body join of its predicate's rules with the head-match substitution, so
/// derivability is decided by a few indexed probes. Candidates found
/// derivable move from `candidates` into `live` and `delta`. On a budget
/// trip, sets `outcome.trip` and returns.
fn rederive_targeted(
    m: &mut Materialization,
    candidates: &mut BTreeMap<Pred, FxHashSet<Tuple>>,
    delta: &mut BTreeMap<Pred, Relation>,
    outcome: &mut RepairOutcome,
    gov: &Governor,
    account: bool,
) -> Result<(), EvalError> {
    let preds: Vec<Pred> = candidates.keys().copied().collect();
    for p in preds {
        let mut todo: Vec<Tuple> = candidates[&p].iter().cloned().collect();
        todo.sort();
        for t in todo {
            let goal = Atom {
                pred: p,
                args: t.fields().to_vec(),
            };
            let mut supported = false;
            for rule in &m.rules {
                if rule.head.pred != p {
                    continue;
                }
                let mut seed = Subst::new();
                if !unify_atoms(&mut seed, &rule.head, &goal) {
                    continue;
                }
                let tagged: Vec<(&Atom, AtomSource)> =
                    rule.body.iter().map(|a| (a, AtomSource::Auto)).collect();
                let found = {
                    let lookup = |p: Pred| m.live.relation(p);
                    match eval_body(&tagged, seed, &lookup, &mut outcome.counters, gov) {
                        Ok(sols) => !sols.is_empty(),
                        Err(e) => match e.budget_trip() {
                            Some(trip) => {
                                outcome.trip = Some(trip);
                                return Ok(());
                            }
                            None => return Err(e),
                        },
                    }
                };
                if found {
                    supported = true;
                    break;
                }
            }
            if supported {
                if account {
                    gov.add_tuples(1);
                    gov.add_bytes(t.estimated_bytes() as u64);
                }
                candidates.get_mut(&p).expect("keyed above").remove(&t);
                m.live.relation_mut(p).insert(t.clone());
                delta
                    .entry(p)
                    .or_insert_with(|| Relation::new(p.arity as usize))
                    .insert(t);
                outcome.rederived += 1;
                outcome.counters.derived += 1;
            }
        }
    }
    Ok(())
}

/// The full phase-2 first pass: one join pass over every rule whose head
/// predicate has candidates, re-inserting each solution that matches one.
/// Preferable to [`rederive_targeted`] when most of the fixpoint was
/// over-deleted. On a budget trip, sets `outcome.trip` and returns.
fn rederive_full(
    m: &mut Materialization,
    candidates: &mut BTreeMap<Pred, FxHashSet<Tuple>>,
    delta: &mut BTreeMap<Pred, Relation>,
    outcome: &mut RepairOutcome,
    gov: &Governor,
    account: bool,
) -> Result<(), EvalError> {
    for rule in &m.rules {
        if candidates
            .get(&rule.head.pred)
            .is_none_or(|pending| pending.is_empty())
        {
            continue;
        }
        let tagged: Vec<(&Atom, AtomSource)> =
            rule.body.iter().map(|a| (a, AtomSource::Auto)).collect();
        let sols = {
            let lookup = |p: Pred| m.live.relation(p);
            match eval_body(&tagged, Subst::new(), &lookup, &mut outcome.counters, gov) {
                Ok(sols) => sols,
                Err(e) => match e.budget_trip() {
                    Some(trip) => {
                        outcome.trip = Some(trip);
                        return Ok(());
                    }
                    None => return Err(e),
                },
            }
        };
        for s in sols {
            let head = s.resolve_atom(&rule.head);
            if !head.is_ground() {
                return Err(EvalError::NotEvaluable {
                    atom: head.to_string(),
                });
            }
            let t = Tuple::new(head.args);
            if candidates
                .get_mut(&head.pred)
                .is_some_and(|pending| pending.remove(&t))
            {
                if account {
                    gov.add_tuples(1);
                    gov.add_bytes(t.estimated_bytes() as u64);
                }
                m.live.relation_mut(head.pred).insert(t.clone());
                delta
                    .entry(head.pred)
                    .or_insert_with(|| Relation::new(head.pred.arity as usize))
                    .insert(t);
                outcome.rederived += 1;
                outcome.counters.derived += 1;
            }
        }
    }
    Ok(())
}

/// Incrementally absorbs the retraction of a ground EDB fact:
/// over-delete, re-derive, recount (module docs). On a budget trip the
/// outcome reports it and the live state is **not** consistent — the
/// caller must discard the materialization.
pub fn retract(
    m: &mut Materialization,
    fact: &Atom,
    opts: &BottomUpOptions,
) -> Result<RepairOutcome, EvalError> {
    let mut outcome = RepairOutcome::default();
    if !m.live.remove_fact(fact) {
        return Ok(outcome);
    }
    outcome.changed = true;
    m.repairs += 1;
    let gov = &opts.governor;
    let pool = Pool::new(opts.threads);

    // Phase 1: over-delete. `deleted` accumulates every removed derived
    // tuple (the rederive candidates); `recount` every predicate that
    // lost at least one instantiation (their counts are recomputed at the
    // end — over-deletion may over-decrement).
    let mut delta = singleton_delta(fact.pred, Tuple::new(fact.args.clone()));
    let mut deleted: BTreeMap<Pred, FxHashSet<Tuple>> = BTreeMap::new();
    let mut recount: BTreeSet<Pred> = BTreeSet::new();
    // The "with the delta" overlay: delta tuples are already removed from
    // `live`, so positions > dpos read live plus delta. Cloning live for
    // every round made chain repairs accidentally quartic, so the overlay
    // is a lazy persistent shadow per predicate: cloned once, synced only
    // in rounds that actually probe it ([`overlay_reads`]), with processed
    // deltas queued in `pending` until then.
    let mut overlay: BTreeMap<Pred, Relation> = BTreeMap::new();
    let mut pending: BTreeMap<Pred, Vec<Tuple>> = BTreeMap::new();
    loop {
        if let Err(trip) = gov.on_round("dred-delete") {
            outcome.trip = Some(trip);
            return Ok(outcome);
        }
        outcome.counters.iterations += 1;
        outcome.delete_rounds += 1;
        if outcome.delete_rounds > opts.max_rounds {
            return Err(EvalError::FuelExceeded {
                limit: opts.max_rounds,
            });
        }
        for p in overlay_reads(&m.rules, &delta, true) {
            if let Some(o) = overlay.get_mut(&p) {
                // Flush the removals queued since the last sync: the
                // shadow is then live plus exactly the current delta.
                if let Some(ts) = pending.get_mut(&p) {
                    o.remove_all(ts.iter());
                    ts.clear();
                }
            } else {
                // First read: clone live (which already lacks the current
                // delta) and put the delta back in.
                let mut o = m
                    .live
                    .relation(p)
                    .cloned()
                    .unwrap_or_else(|| Relation::new(p.arity as usize));
                if let Some(d) = delta.get(&p) {
                    o.extend_from(d);
                }
                overlay.insert(p, o);
            }
        }
        let (lost, trip) = run_units(
            &pool,
            &m.rules,
            &delta,
            &m.live,
            &overlay,
            true,
            None,
            gov,
            &opts.planner,
            &mut outcome.counters,
        )?;
        if let Some(trip) = trip {
            outcome.trip = Some(trip);
            return Ok(outcome);
        }
        let mut next: BTreeMap<Pred, Relation> = BTreeMap::new();
        let mut kill: BTreeMap<Pred, FxHashSet<Tuple>> = BTreeMap::new();
        for (pred, t) in lost {
            recount.insert(pred);
            let remaining = m
                .support
                .get_mut(&pred)
                .expect("destroyed heads are IDB")
                .dec(&t);
            let in_live = m.live.relation(pred).is_some_and(|r| r.contains(&t));
            // Recursive predicates over-delete on any loss (a positive
            // count may rest on a cycle); non-recursive ones trust the
            // count — zero means no derivation is left, and a transient
            // zero caused by over-decrementing is healed by re-derivation.
            // The removal itself is deferred to one batch per predicate
            // (per-tuple removal re-scans rows and rebuilds indexes every
            // time — the `kill` dedup keeps later instantiations of the
            // same lost tuple from double-counting, as `in_live` did when
            // removal was immediate).
            if in_live
                && (m.recursive.contains(&pred) || remaining == 0)
                && kill.entry(pred).or_default().insert(t.clone())
            {
                next.entry(pred)
                    .or_insert_with(|| Relation::new(pred.arity as usize))
                    .insert(t.clone());
                deleted.entry(pred).or_default().insert(t);
                outcome.deleted += 1;
            }
        }
        for (p, ts) in &kill {
            m.live.relation_mut(*p).remove_all(ts.iter());
        }
        // The processed delta is gone from live for good: queue it so
        // the shadow drops it at its next sync.
        for (p, d) in &delta {
            if overlay.contains_key(p) {
                pending.entry(*p).or_default().extend(d.iter().cloned());
            }
        }
        if next.is_empty() {
            break;
        }
        delta = next;
    }

    // Phase 2: re-derive. Candidates still derivable from the surviving
    // state come back; each re-insertion may re-support further
    // candidates, propagated semi-naively.
    let mut candidates = deleted;
    if candidates.values().any(|s| !s.is_empty()) {
        if let Err(trip) = gov.on_round("dred-rederive") {
            outcome.trip = Some(trip);
            return Ok(outcome);
        }
        outcome.rederive_rounds += 1;
        let account = gov.active();
        let mut delta: BTreeMap<Pred, Relation> = BTreeMap::new();
        // Two first-pass shapes, picked by how much of the fixpoint was
        // over-deleted (a deterministic size test, so the choice — and
        // with it every counter — is identical at any thread count; the
        // rederived *set* is the same either way, it is the unique
        // fixpoint of "derivable from the surviving state"):
        //
        // * **Targeted** (small deltas): each candidate seeds the body
        //   join of its predicate's rules with the head-match
        //   substitution — the bound head variables turn the join into a
        //   few indexed probes, so the pass scales with the over-deletion,
        //   not with the database.
        // * **Full** (mass deletions): one join pass over every rule whose
        //   head has candidates — per-candidate probing would redo the
        //   same large join piecewise at a per-call overhead.
        let total: usize = candidates.values().map(FxHashSet::len).sum();
        if total <= m.idb_rows() / 4 {
            rederive_targeted(m, &mut candidates, &mut delta, &mut outcome, gov, account)?;
        } else {
            rederive_full(m, &mut candidates, &mut delta, &mut outcome, gov, account)?;
        }
        if outcome.trip.is_some() {
            return Ok(outcome);
        }
        // Propagate: a re-inserted tuple may re-support other candidates.
        while !delta.is_empty() {
            if let Err(trip) = gov.on_round("dred-rederive") {
                outcome.trip = Some(trip);
                return Ok(outcome);
            }
            outcome.counters.iterations += 1;
            outcome.rederive_rounds += 1;
            if outcome.rederive_rounds > opts.max_rounds {
                return Err(EvalError::FuelExceeded {
                    limit: opts.max_rounds,
                });
            }
            let overlay = BTreeMap::new();
            let (gained, trip) = run_units(
                &pool,
                &m.rules,
                &delta,
                &m.live,
                &overlay,
                false,
                Some(&candidates),
                gov,
                &opts.planner,
                &mut outcome.counters,
            )?;
            if let Some(trip) = trip {
                outcome.trip = Some(trip);
                return Ok(outcome);
            }
            let mut next: BTreeMap<Pred, Relation> = BTreeMap::new();
            for (pred, t) in gained {
                if candidates
                    .get_mut(&pred)
                    .is_some_and(|pending| pending.remove(&t))
                {
                    if account {
                        gov.add_tuples(1);
                        gov.add_bytes(t.estimated_bytes() as u64);
                    }
                    m.live.relation_mut(pred).insert(t.clone());
                    next.entry(pred)
                        .or_insert_with(|| Relation::new(pred.arity as usize))
                        .insert(t);
                    outcome.rederived += 1;
                    outcome.counters.derived += 1;
                }
            }
            delta = next;
        }
    }

    // Phase 3: recount. Needed only when an over-deleted tuple came back:
    // a decrement charged to a lost instantiation is wrong exactly when a
    // body tuple of that instantiation was later re-derived. When nothing
    // was re-derived, every enumerated instantiation is genuinely dead and
    // the delta split charged each exactly once, so the counts are already
    // exact (and `dec` drops zero entries, matching a from-scratch count).
    // Otherwise every predicate that lost an instantiation gets its counts
    // rebuilt over the repaired state (sequential — thread-count-
    // invariant).
    if outcome.rederived > 0 && !recount.is_empty() {
        if let Err(trip) = gov.on_round("dred-recount") {
            outcome.trip = Some(trip);
            return Ok(outcome);
        }
        for &p in &recount {
            m.support
                .get_mut(&p)
                .expect("recount preds are IDB")
                .clear();
        }
        for rule in &m.rules {
            if !recount.contains(&rule.head.pred) {
                continue;
            }
            let tagged: Vec<(&Atom, AtomSource)> =
                rule.body.iter().map(|a| (a, AtomSource::Auto)).collect();
            let sols = {
                let lookup = |p: Pred| m.live.relation(p);
                match eval_body(&tagged, Subst::new(), &lookup, &mut outcome.counters, gov) {
                    Ok(sols) => sols,
                    Err(e) => match e.budget_trip() {
                        Some(trip) => {
                            outcome.trip = Some(trip);
                            return Ok(outcome);
                        }
                        None => return Err(e),
                    },
                }
            };
            for s in sols {
                let head = s.resolve_atom(&rule.head);
                if !head.is_ground() {
                    return Err(EvalError::NotEvaluable {
                        atom: head.to_string(),
                    });
                }
                m.support
                    .get_mut(&head.pred)
                    .expect("recount preds are IDB")
                    .inc(&Tuple::new(head.args));
            }
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainsplit_logic::parse_program;

    fn setup(src: &str) -> (Vec<Rule>, Database) {
        let program = parse_program(src).unwrap();
        let (facts, rules) = program.split_facts();
        (rules, Database::from_facts(facts))
    }

    fn built(rules: &[Rule], edb: &Database) -> Materialization {
        materialize(rules, edb, &BottomUpOptions::default())
            .unwrap()
            .materialization
            .expect("untripped build")
    }

    fn atom(src: &str) -> Atom {
        let p = parse_program(&format!("{src}.")).unwrap();
        p.rules[0].head.clone()
    }

    const TC: &str = "edge(a, b). edge(b, c). edge(c, d). edge(d, b).
         path(X, Y) :- edge(X, Y).
         path(X, Y) :- edge(X, Z), path(Z, Y).";

    #[test]
    fn materialize_counts_are_exact() {
        let (rules, edb) = setup(
            "edge(a, b). edge(b, c). edge(a, c).
             path(X, Y) :- edge(X, Y).
             path(X, Y) :- edge(X, Z), path(Z, Y).",
        );
        let m = built(&rules, &edb);
        let path = Pred::new("path", 2);
        assert!(m.is_recursive(path));
        // path(a, c) has two derivations: edge(a, c) and edge(a, b)∘path(b, c).
        let t = Tuple::new(atom("path(a, c)").args);
        assert_eq!(m.support_of(path, &t), 2);
        // path(b, c) has one.
        let t = Tuple::new(atom("path(b, c)").args);
        assert_eq!(m.support_of(path, &t), 1);
    }

    #[test]
    fn retract_matches_rebuild_on_cyclic_tc() {
        let (rules, edb) = setup(TC);
        let mut m = built(&rules, &edb);
        // Deleting edge(d, b) breaks the cycle: a large over-delete with
        // genuine rederivations.
        let gone = atom("edge(d, b)");
        let out = retract(&mut m, &gone, &BottomUpOptions::default()).unwrap();
        assert!(out.changed);
        assert!(out.trip.is_none());
        assert!(out.deleted > 0);
        let mut edb2 = edb.clone();
        assert!(edb2.remove_fact(&gone));
        let fresh = built(&rules, &edb2);
        assert_eq!(m.digest(), fresh.digest());
    }

    #[test]
    fn retract_each_edge_matches_rebuild() {
        let (rules, edb) = setup(TC);
        for victim in ["edge(a, b)", "edge(b, c)", "edge(c, d)", "edge(d, b)"] {
            let gone = atom(victim);
            let mut m = built(&rules, &edb);
            retract(&mut m, &gone, &BottomUpOptions::default()).unwrap();
            let mut edb2 = edb.clone();
            assert!(edb2.remove_fact(&gone));
            let fresh = built(&rules, &edb2);
            assert_eq!(m.digest(), fresh.digest(), "retracting {victim}");
        }
    }

    #[test]
    fn retract_absent_fact_is_a_noop() {
        let (rules, edb) = setup(TC);
        let mut m = built(&rules, &edb);
        let before = m.digest();
        let out = retract(&mut m, &atom("edge(z, z)"), &BottomUpOptions::default()).unwrap();
        assert!(!out.changed);
        assert_eq!(out.deleted, 0);
        assert_eq!(m.digest(), before);
        assert_eq!(m.repairs(), 0);
    }

    #[test]
    fn counting_short_circuits_nonrecursive_views() {
        // q is a non-recursive view over a doubly-supported tuple: the
        // first retraction decrements 2 -> 1 and must delete nothing.
        let (rules, edb) = setup(
            "base(1). base(2).
             q(X) :- base(X).
             q(X) :- base(X), other(X).
             other(1).",
        );
        let mut m = built(&rules, &edb);
        let q = Pred::new("q", 1);
        assert!(!m.is_recursive(q));
        let one = Tuple::new(atom("q(1)").args);
        assert_eq!(m.support_of(q, &one), 2);
        let out = retract(&mut m, &atom("other(1)"), &BottomUpOptions::default()).unwrap();
        assert_eq!(out.deleted, 0, "count 2 -> 1 keeps the tuple");
        assert_eq!(out.rederive_rounds, 0, "no over-deletion, no rederive");
        assert_eq!(m.support_of(q, &one), 1);
        // The second retraction takes the count to zero and deletes.
        let out = retract(&mut m, &atom("base(1)"), &BottomUpOptions::default()).unwrap();
        assert_eq!(out.deleted, 1);
        assert!(!m.live().relation(q).unwrap().contains(&one));
    }

    #[test]
    fn assert_then_retract_roundtrips() {
        let (rules, edb) = setup(TC);
        let mut m = built(&rules, &edb);
        let before = m.digest();
        let extra = atom("edge(a, d)");
        let out = assert_fact(&mut m, &extra, &BottomUpOptions::default()).unwrap();
        assert!(out.changed);
        // Against a from-scratch build with the fact present.
        let mut edb2 = edb.clone();
        edb2.add_fact(&extra);
        assert_eq!(m.digest(), built(&rules, &edb2).digest());
        // Duplicate insert is a no-op.
        let dup = assert_fact(&mut m, &extra, &BottomUpOptions::default()).unwrap();
        assert!(!dup.changed);
        // Retracting it restores the original state exactly.
        retract(&mut m, &extra, &BottomUpOptions::default()).unwrap();
        assert_eq!(m.digest(), before);
    }

    #[test]
    fn repair_counters_are_thread_invariant() {
        let (rules, edb) = setup(TC);
        let gone = atom("edge(b, c)");
        let extra = atom("edge(c, a)");
        let mut reference: Option<(Counters, Counters, Vec<String>)> = None;
        for threads in [1usize, 2, 4] {
            let opts = BottomUpOptions {
                threads,
                ..BottomUpOptions::default()
            };
            let mut m = materialize(&rules, &edb, &opts)
                .unwrap()
                .materialization
                .unwrap();
            let a = assert_fact(&mut m, &extra, &opts).unwrap();
            let r = retract(&mut m, &gone, &opts).unwrap();
            let sample = (a.counters, r.counters, m.digest());
            match &reference {
                None => reference = Some(sample),
                Some(expect) => assert_eq!(expect, &sample, "threads={threads}"),
            }
        }
    }

    #[test]
    fn budget_trip_drains_the_repair() {
        let (rules, edb) = setup(TC);
        let opts = BottomUpOptions::default();
        let mut m = built(&rules, &edb);
        opts.governor.set_budget(chainsplit_governor::Budget {
            max_rounds: Some(1),
            ..Default::default()
        });
        opts.governor.begin_query();
        let out = retract(&mut m, &atom("edge(d, b)"), &opts).unwrap();
        let trip = out.trip.expect("rounds budget must trip the repair");
        assert_eq!(trip.resource, chainsplit_governor::Resource::Rounds);
        assert!(trip.phase.starts_with("dred-"));
    }

    #[test]
    fn nonrecursive_tuple_supported_by_recursive_pred_survives_via_rederive() {
        // reach(X) is a non-recursive view over recursive path: deleting
        // edge(a, b) over-deletes path tuples whose rederivation must
        // restore reach's support exactly.
        let (rules, edb) = setup(
            "edge(a, b). edge(b, c). edge(a, c). edge(c, d).
             path(X, Y) :- edge(X, Y).
             path(X, Y) :- edge(X, Z), path(Z, Y).
             reach(Y) :- path(a, Y).",
        );
        let gone = atom("edge(a, b)");
        let mut m = built(&rules, &edb);
        retract(&mut m, &gone, &BottomUpOptions::default()).unwrap();
        let mut edb2 = edb.clone();
        assert!(edb2.remove_fact(&gone));
        assert_eq!(m.digest(), built(&rules, &edb2).digest());
    }

    #[test]
    fn builtin_bodies_are_maintained() {
        let (rules, edb) = setup(
            "n(0). n(1). n(2).
             big(X) :- n(X), X > 0.
             sum(Z) :- n(X), n(Y), plus(X, Y, Z).",
        );
        let gone = atom("n(2)");
        let mut m = built(&rules, &edb);
        retract(&mut m, &gone, &BottomUpOptions::default()).unwrap();
        let mut edb2 = edb.clone();
        assert!(edb2.remove_fact(&gone));
        assert_eq!(m.digest(), built(&rules, &edb2).digest());
    }
}
