//! Evaluation errors and resource budgets.

use chainsplit_governor::BudgetTrip;
use std::fmt;

/// An evaluation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// A rule body could not be ordered so that every atom is evaluable —
    /// the query is not finitely evaluable by this method.
    NotEvaluable { atom: String },
    /// A builtin was applied to ill-typed ground arguments
    /// (e.g. `foo < 3`).
    TypeError { atom: String },
    /// Top-down resolution exceeded its depth budget.
    DepthExceeded { limit: usize },
    /// The evaluator exceeded its step budget (used by benchmarks to turn
    /// divergence into a reported DNF instead of a hang).
    FuelExceeded { limit: usize },
    /// The method does not apply to this program/query shape.
    Unsupported { reason: String },
    /// A frontier grown from one substitution lost groundness uniformity —
    /// the join-order planner's per-signature scoring would silently pick
    /// a wrong order, so evaluation refuses instead.
    NonUniformFrontier { atom: String },
    /// A [`chainsplit_governor::Governor`] budget was exhausted (or the
    /// query was cancelled, or a fault was injected). Carries the latched
    /// [`BudgetTrip`], which [`std::error::Error::source`] exposes as the
    /// root cause. Evaluators that can drain to a consistent boundary
    /// convert this into a partial result with the trip attached instead
    /// of returning it as an error; it surfaces as an `Err` only where
    /// partial answers would be unsound (e.g. inside a nested
    /// sub-evaluation).
    BudgetExceeded { trip: BudgetTrip },
    /// A parallel worker panicked mid-query. The panic poisons only that
    /// query — the pool and the enclosing `DeductiveDb` stay usable.
    /// `task` is the partition index, `message` the panic payload (kept so
    /// fuzz shrinking can bucket crashes).
    WorkerPanicked { task: usize, message: String },
}

impl From<chainsplit_par::PoolError> for EvalError {
    fn from(e: chainsplit_par::PoolError) -> EvalError {
        match e {
            chainsplit_par::PoolError::WorkerPanicked { task, message } => {
                EvalError::WorkerPanicked { task, message }
            }
        }
    }
}

impl From<BudgetTrip> for EvalError {
    fn from(trip: BudgetTrip) -> EvalError {
        EvalError::BudgetExceeded { trip }
    }
}

impl EvalError {
    /// The governor trip behind this error, if it is a `BudgetExceeded`.
    /// The drain points use this to tell graceful budget stops apart from
    /// genuine failures.
    pub fn budget_trip(&self) -> Option<BudgetTrip> {
        match *self {
            EvalError::BudgetExceeded { trip } => Some(trip),
            _ => None,
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::NotEvaluable { atom } => {
                write!(f, "atom `{atom}` is not finitely evaluable here")
            }
            EvalError::TypeError { atom } => write!(f, "type error evaluating `{atom}`"),
            EvalError::DepthExceeded { limit } => {
                write!(f, "resolution depth limit {limit} exceeded")
            }
            EvalError::FuelExceeded { limit } => write!(f, "step budget {limit} exceeded"),
            EvalError::Unsupported { reason } => write!(f, "unsupported: {reason}"),
            EvalError::NonUniformFrontier { atom } => {
                write!(
                    f,
                    "frontier over `{atom}` lost groundness uniformity; cannot plan a join order"
                )
            }
            EvalError::BudgetExceeded { trip } => write!(f, "budget exceeded: {trip}"),
            EvalError::WorkerPanicked { task, message } => {
                write!(f, "worker panicked evaluating partition {task}: {message}")
            }
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::BudgetExceeded { trip } => Some(trip),
            _ => None,
        }
    }
}

/// Work counters shared by all evaluators; benchmark tables report these
/// alongside wall-clock so the paper's ordinal claims can be checked on
/// machine-independent numbers.
///
/// `probed` / `matched` split what a single `considered` counter used to
/// conflate: `probed` counts every candidate *inspected* (rows walked past
/// by a scan included, so it reflects real work regardless of access
/// path), while `matched` counts only the candidates that unified. The
/// access-path trio (`index_hits` / `index_builds` / `scans`) records how
/// each [`Relation::select`](chainsplit_relation::Relation::select) found
/// its rows.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct Counters {
    /// Facts newly derived (tuples inserted into IDB relations, buffered
    /// nodes created, answers produced).
    pub derived: usize,
    /// Candidates inspected: stored rows looked at (including rows a scan
    /// walked past), rule heads tried, table answers probed, builtin
    /// solutions enumerated.
    pub probed: usize,
    /// Candidates that unified / passed their filter.
    pub matched: usize,
    /// Fixpoint rounds or chain levels processed.
    pub iterations: usize,
    /// Magic-set or supplementary tuples derived (magic-sets methods only).
    pub magic_facts: usize,
    /// Peak number of simultaneously buffered tuples (chain-split
    /// methods only).
    pub buffered_peak: usize,
    /// `select` calls answered by a pre-existing hash index.
    pub index_hits: usize,
    /// `select` calls that lazily built the index they then used.
    pub index_builds: usize,
    /// `select` calls that fell back to a row-by-row scan.
    pub scans: usize,
    /// Builtin (arithmetic / comparison / list) evaluations.
    pub builtin_evals: usize,
    /// Join-plan cache lookups served by a cached, still-valid plan.
    pub plan_hits: usize,
    /// First-ever plan computations for a (body, groundness signature).
    pub plan_misses: usize,
    /// Plan recomputations: a delta crossed a 4× size band, or a
    /// supporting predicate's EDB epoch moved.
    pub plan_replans: usize,
}

impl Counters {
    pub fn add(&mut self, other: &Counters) {
        self.derived += other.derived;
        self.probed += other.probed;
        self.matched += other.matched;
        self.iterations += other.iterations;
        self.magic_facts += other.magic_facts;
        self.buffered_peak = self.buffered_peak.max(other.buffered_peak);
        self.index_hits += other.index_hits;
        self.index_builds += other.index_builds;
        self.scans += other.scans;
        self.builtin_evals += other.builtin_evals;
        self.plan_hits += other.plan_hits;
        self.plan_misses += other.plan_misses;
        self.plan_replans += other.plan_replans;
    }

    /// The work done since `earlier` (a snapshot of `self` taken before a
    /// round). All monotone counters subtract; `buffered_peak` keeps the
    /// current value, since a max cannot be attributed to one round.
    pub fn since(&self, earlier: &Counters) -> Counters {
        Counters {
            derived: self.derived - earlier.derived,
            probed: self.probed - earlier.probed,
            matched: self.matched - earlier.matched,
            iterations: self.iterations - earlier.iterations,
            magic_facts: self.magic_facts - earlier.magic_facts,
            buffered_peak: self.buffered_peak,
            index_hits: self.index_hits - earlier.index_hits,
            index_builds: self.index_builds - earlier.index_builds,
            scans: self.scans - earlier.scans,
            builtin_evals: self.builtin_evals - earlier.builtin_evals,
            plan_hits: self.plan_hits - earlier.plan_hits,
            plan_misses: self.plan_misses - earlier.plan_misses,
            plan_replans: self.plan_replans - earlier.plan_replans,
        }
    }

    /// Record one [`AccessPath`](chainsplit_relation::AccessPath) taken by
    /// a `select` call.
    pub fn record_path(&mut self, path: chainsplit_relation::AccessPath) {
        use chainsplit_relation::AccessPath;
        match path {
            AccessPath::IndexHit => self.index_hits += 1,
            AccessPath::IndexBuild => self.index_builds += 1,
            AccessPath::KeyScan | AccessPath::FullScan => self.scans += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_takes_max_of_peaks() {
        let mut a = Counters {
            derived: 1,
            probed: 2,
            matched: 1,
            iterations: 3,
            magic_facts: 4,
            buffered_peak: 10,
            ..Counters::default()
        };
        let b = Counters {
            derived: 10,
            probed: 20,
            matched: 15,
            iterations: 30,
            magic_facts: 40,
            buffered_peak: 5,
            index_hits: 2,
            scans: 1,
            ..Counters::default()
        };
        a.add(&b);
        assert_eq!(a.derived, 11);
        assert_eq!(a.probed, 22);
        assert_eq!(a.matched, 16);
        assert_eq!(a.index_hits, 2);
        assert_eq!(a.scans, 1);
        assert_eq!(a.buffered_peak, 10);
    }

    #[test]
    fn counters_since_subtracts_monotone_fields() {
        let earlier = Counters {
            derived: 3,
            probed: 10,
            matched: 5,
            buffered_peak: 7,
            ..Counters::default()
        };
        let later = Counters {
            derived: 8,
            probed: 25,
            matched: 12,
            buffered_peak: 9,
            scans: 2,
            ..Counters::default()
        };
        let d = later.since(&earlier);
        assert_eq!(d.derived, 5);
        assert_eq!(d.probed, 15);
        assert_eq!(d.matched, 7);
        assert_eq!(d.scans, 2);
        // Peaks do not subtract.
        assert_eq!(d.buffered_peak, 9);
    }

    #[test]
    fn record_path_buckets_by_access_path() {
        use chainsplit_relation::AccessPath;
        let mut c = Counters::default();
        c.record_path(AccessPath::IndexHit);
        c.record_path(AccessPath::IndexBuild);
        c.record_path(AccessPath::KeyScan);
        c.record_path(AccessPath::FullScan);
        assert_eq!(c.index_hits, 1);
        assert_eq!(c.index_builds, 1);
        assert_eq!(c.scans, 2);
    }

    #[test]
    fn errors_display() {
        let e = EvalError::NotEvaluable {
            atom: "cons(X, Y, Z)".into(),
        };
        assert!(e.to_string().contains("cons"));
        assert!(EvalError::DepthExceeded { limit: 9 }
            .to_string()
            .contains('9'));
    }

    #[test]
    fn budget_exceeded_round_trips_through_budget_trip() {
        let trip = BudgetTrip {
            resource: chainsplit_governor::Resource::Wall,
            limit: 50,
            observed: 61,
            phase: "up-sweep",
        };
        let e = EvalError::from(trip);
        assert_eq!(e.budget_trip(), Some(trip));
        assert_eq!(e.to_string(), format!("budget exceeded: {trip}"));
        assert_eq!(EvalError::FuelExceeded { limit: 3 }.budget_trip(), None);
    }

    #[test]
    fn source_chains_to_the_trip() {
        use std::error::Error as _;
        let trip = BudgetTrip {
            resource: chainsplit_governor::Resource::Bytes,
            limit: 64,
            observed: 80,
            phase: "wal-append",
        };
        let e = EvalError::from(trip);
        let src = e.source().expect("BudgetExceeded chains to its trip");
        assert_eq!(src.to_string(), trip.to_string());
        assert!(EvalError::FuelExceeded { limit: 3 }.source().is_none());
    }
}
