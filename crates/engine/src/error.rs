//! Evaluation errors and resource budgets.

use std::fmt;

/// An evaluation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// A rule body could not be ordered so that every atom is evaluable —
    /// the query is not finitely evaluable by this method.
    NotEvaluable { atom: String },
    /// A builtin was applied to ill-typed ground arguments
    /// (e.g. `foo < 3`).
    TypeError { atom: String },
    /// Top-down resolution exceeded its depth budget.
    DepthExceeded { limit: usize },
    /// The evaluator exceeded its step budget (used by benchmarks to turn
    /// divergence into a reported DNF instead of a hang).
    FuelExceeded { limit: usize },
    /// The method does not apply to this program/query shape.
    Unsupported { reason: String },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::NotEvaluable { atom } => {
                write!(f, "atom `{atom}` is not finitely evaluable here")
            }
            EvalError::TypeError { atom } => write!(f, "type error evaluating `{atom}`"),
            EvalError::DepthExceeded { limit } => {
                write!(f, "resolution depth limit {limit} exceeded")
            }
            EvalError::FuelExceeded { limit } => write!(f, "step budget {limit} exceeded"),
            EvalError::Unsupported { reason } => write!(f, "unsupported: {reason}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Work counters shared by all evaluators; benchmark tables report these
/// alongside wall-clock so the paper's ordinal claims can be checked on
/// machine-independent numbers.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct Counters {
    /// Facts newly derived (tuples inserted into IDB relations, buffered
    /// nodes created, answers produced).
    pub derived: usize,
    /// Candidate derivations considered (join attempts / unifications).
    pub considered: usize,
    /// Fixpoint rounds or chain levels processed.
    pub iterations: usize,
    /// Magic-set tuples derived (magic-sets methods only).
    pub magic_facts: usize,
    /// Peak number of simultaneously buffered tuples (chain-split
    /// methods only).
    pub buffered_peak: usize,
}

impl Counters {
    pub fn add(&mut self, other: &Counters) {
        self.derived += other.derived;
        self.considered += other.considered;
        self.iterations += other.iterations;
        self.magic_facts += other.magic_facts;
        self.buffered_peak = self.buffered_peak.max(other.buffered_peak);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_takes_max_of_peaks() {
        let mut a = Counters {
            derived: 1,
            considered: 2,
            iterations: 3,
            magic_facts: 4,
            buffered_peak: 10,
        };
        let b = Counters {
            derived: 10,
            considered: 20,
            iterations: 30,
            magic_facts: 40,
            buffered_peak: 5,
        };
        a.add(&b);
        assert_eq!(a.derived, 11);
        assert_eq!(a.buffered_peak, 10);
    }

    #[test]
    fn errors_display() {
        let e = EvalError::NotEvaluable {
            atom: "cons(X, Y, Z)".into(),
        };
        assert!(e.to_string().contains("cons"));
        assert!(EvalError::DepthExceeded { limit: 9 }
            .to_string()
            .contains('9'));
    }
}
