//! Shared rule-body evaluation machinery.
//!
//! Every set-oriented evaluator (naive, semi-naive, magic, the chain-split
//! sweeps in `chainsplit-core`) reduces to the same step: given a rule body
//! and a set of input substitutions, join the body atoms — builtins
//! procedurally, stored predicates against their relations — producing the
//! output substitutions. Atom order is chosen *dynamically*: at each step
//! evaluable builtins run first (they only filter or compute), and the
//! stored atoms follow either the cost-based [`JoinPlanner`]'s cached
//! greedy min-estimated-output order (DESIGN.md §14, the default) or —
//! planner off — a syntactic score by ascending free-argument count, so
//! builtins wait for their inputs without any static analysis here (the
//! static story lives in `chainsplit-chain`; at run time we only need an
//! order to exist).

use crate::builtins::{eval_builtin, is_builtin_atom, BuiltinOutcome};
use crate::error::{Counters, EvalError};
use crate::plan::{JoinPlan, JoinPlanner};
use chainsplit_governor::Governor;
use chainsplit_logic::{unify, Atom, Pred, Subst, Term};
use chainsplit_relation::{FxHashMap, Relation};
use std::sync::Arc;

/// Test-only escape hatch back to the per-substitution executor.
///
/// The differential oracle re-runs every generated program through the
/// pre-frontier join loop and demands identical sorted answers; nothing
/// else should ever flip this. The flag is thread-local, so it only
/// affects evaluation on the calling thread — callers must pin
/// `threads = 1` (the pool's inline path) for it to cover a whole run.
#[doc(hidden)]
pub mod legacy {
    use std::cell::Cell;

    thread_local! {
        static PER_SUBSTITUTION: Cell<bool> = const { Cell::new(false) };
    }

    pub(crate) fn forced() -> bool {
        PER_SUBSTITUTION.with(Cell::get)
    }

    /// Runs `f` with the per-substitution executor forced on this thread.
    pub fn with_per_substitution<R>(f: impl FnOnce() -> R) -> R {
        struct Reset(bool);
        impl Drop for Reset {
            fn drop(&mut self) {
                PER_SUBSTITUTION.with(|c| c.set(self.0));
            }
        }
        let _reset = Reset(PER_SUBSTITUTION.with(|c| c.replace(true)));
        f()
    }
}

/// Extends `out` with every extension of `s` matching `atom` against `rel`.
///
/// Ground arguments become an index key (the relation decides whether an
/// index exists); remaining arguments unify tuple-by-tuple.
pub fn match_relation(
    rel: &Relation,
    atom: &Atom,
    s: &Subst,
    counters: &mut Counters,
    out: &mut Vec<Subst>,
) {
    // Columns whose argument is ground under `s` form the lookup key.
    let mut cols: Vec<usize> = Vec::new();
    let mut key: Vec<Term> = Vec::new();
    for (i, arg) in atom.args.iter().enumerate() {
        if s.is_ground(arg) {
            cols.push(i);
            key.push(s.resolve(arg));
        }
    }
    let mut sel = rel.select(&cols, &key);
    counters.record_path(sel.path());
    let mut select_span = chainsplit_trace::Span::enter_cat("select", "access");
    if select_span.is_recording() {
        use chainsplit_relation::AccessPath;
        select_span.set_attr("pred", atom.pred);
        select_span.set_attr(
            "path",
            match sel.path() {
                AccessPath::IndexHit => "index_hit",
                AccessPath::IndexBuild => "index_build",
                AccessPath::KeyScan => "key_scan",
                AccessPath::FullScan => "full_scan",
            },
        );
    }
    for tuple in sel.by_ref() {
        let mut s2 = s.clone();
        let ok = atom
            .args
            .iter()
            .zip(tuple.fields())
            .all(|(a, f)| unify(&mut s2, a, f));
        if ok {
            counters.matched += 1;
            out.push(s2);
        }
    }
    // Rows the scan walked past count too — that work is exactly what an
    // index saves, and the probed/matched gap is how EXPLAIN ANALYZE
    // shows it.
    counters.probed += sel.inspected();
}

/// Extends every substitution of a groundness-uniform `frontier` through
/// `atom` against `rel` — the frontier-at-a-time join step.
///
/// Where [`match_relation`] pays one `select` per substitution, this pays
/// one per *distinct* probe key: the frontier is projected onto the atom's
/// bound columns (computed once — uniformity makes `frontier[0]`
/// representative), each distinct key is probed once and its matches
/// cached, and every substitution then streams against its cached bucket.
/// Magic and chain-split frontiers repeat keys heavily, so the memo turns
/// O(|frontier|) physical lookups into O(|distinct keys|).
///
/// Counter semantics follow the physical work: `probed` and the
/// access-path counters advance once per distinct key (so `matched` may
/// exceed `probed` when substitutions share buckets), while `matched`
/// stays one per surviving (substitution, tuple) pair.
pub fn match_relation_frontier(
    rel: &Relation,
    atom: &Atom,
    frontier: &[Subst],
    counters: &mut Counters,
    out: &mut Vec<Subst>,
) {
    let Some(probe) = frontier.first() else {
        return;
    };
    // Bound columns under the (uniform) frontier; the rest unify per tuple.
    let mut cols: Vec<usize> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    for (i, arg) in atom.args.iter().enumerate() {
        if probe.is_ground(arg) {
            cols.push(i);
        } else {
            free.push(i);
        }
    }
    // Probe memo: distinct key -> the tuples it selected. Buckets live in
    // a side table and the memo maps keys to bucket ids, so a repeated key
    // pays exactly one hash lookup (the old `contains_key` + `insert` +
    // `memo[&key]` shape hashed three times per substitution and cloned
    // the key on every miss). Buckets hold borrowed tuples; draining the
    // selection inside the miss arm keeps the index read lock scoped to
    // the physical probe.
    let mut buckets: Vec<Vec<&chainsplit_relation::Tuple>> = Vec::new();
    let mut memo: FxHashMap<Vec<Term>, usize> = FxHashMap::default();
    let mut key_buf: Vec<Term> = Vec::with_capacity(cols.len());
    for s in frontier {
        key_buf.clear();
        for &c in &cols {
            key_buf.push(s.resolve(&atom.args[c]));
        }
        let bucket_id = match memo.get(&key_buf) {
            Some(&id) => id,
            None => {
                let mut sel = rel.select(&cols, &key_buf);
                counters.record_path(sel.path());
                let mut select_span = chainsplit_trace::Span::enter_cat("select", "access");
                if select_span.is_recording() {
                    use chainsplit_relation::AccessPath;
                    select_span.set_attr("pred", atom.pred);
                    select_span.set_attr(
                        "path",
                        match sel.path() {
                            AccessPath::IndexHit => "index_hit",
                            AccessPath::IndexBuild => "index_build",
                            AccessPath::KeyScan => "key_scan",
                            AccessPath::FullScan => "full_scan",
                        },
                    );
                }
                let bucket: Vec<_> = sel.by_ref().collect();
                counters.probed += sel.inspected();
                drop(sel);
                buckets.push(bucket);
                memo.insert(key_buf.clone(), buckets.len() - 1);
                buckets.len() - 1
            }
        };
        for &tuple in &buckets[bucket_id] {
            // `select` already guarantees equality on the bound columns,
            // and tuple fields are ground — only the free positions need
            // unification, against a copy-on-write fork of `s`.
            let mut s2 = s.clone();
            let ok = free
                .iter()
                .all(|&i| unify(&mut s2, &atom.args[i], &tuple.fields()[i]));
            if ok {
                counters.matched += 1;
                out.push(s2);
            }
        }
    }
}

/// Where a body atom finds its tuples.
#[derive(Clone, Copy)]
pub enum AtomSource<'a> {
    /// Builtins by procedure; stored predicates via `lookup`.
    Auto,
    /// Use exactly this relation (semi-naive delta occurrences).
    Fixed(&'a Relation),
}

/// Evaluates a rule body against `lookup`, starting from `init`.
///
/// `body` pairs each atom with its [`AtomSource`]. `lookup` resolves a
/// predicate to its current relation; `None` means an empty extension
/// (an IDB predicate with nothing derived yet).
///
/// Returns the substitutions satisfying the whole body. Errors if at some
/// point no remaining atom is evaluable (a builtin short of bindings) —
/// the caller shipped a body that is not finitely evaluable in any order.
pub fn eval_body<'a>(
    body: &[(&Atom, AtomSource<'a>)],
    init: Subst,
    lookup: &dyn Fn(Pred) -> Option<&'a Relation>,
    counters: &mut Counters,
    gov: &Governor,
) -> Result<Vec<Subst>, EvalError> {
    // A frontier grown from a single substitution stays
    // groundness-uniform (every atom binds the same variables in every
    // branch), so non-uniformity here is a bug worth asserting on.
    eval_frontier(body.to_vec(), vec![init], lookup, counters, gov, true, None)
}

/// [`eval_body`] with a [`JoinPlanner`]: stored atoms run in the planner's
/// cost-based order (syntactic order when the planner is disabled).
pub fn eval_body_planned<'a>(
    body: &[(&Atom, AtomSource<'a>)],
    init: Subst,
    lookup: &dyn Fn(Pred) -> Option<&'a Relation>,
    counters: &mut Counters,
    gov: &Governor,
    planner: &JoinPlanner,
) -> Result<Vec<Subst>, EvalError> {
    let planner = planner.is_enabled().then_some(planner);
    eval_frontier(
        body.to_vec(),
        vec![init],
        lookup,
        counters,
        gov,
        true,
        planner,
    )
}

/// Like [`eval_body_frontier`], but the caller asserts the frontier is
/// groundness-uniform (one join order serves every substitution). If it
/// is not, evaluation refuses with [`EvalError::NonUniformFrontier`]
/// rather than silently planning from an unrepresentative substitution —
/// the release-mode teeth behind what used to be a `debug_assert`.
pub fn eval_body_uniform<'a>(
    body: &[(&Atom, AtomSource<'a>)],
    frontier: Vec<Subst>,
    lookup: &dyn Fn(Pred) -> Option<&'a Relation>,
    counters: &mut Counters,
    gov: &Governor,
) -> Result<Vec<Subst>, EvalError> {
    eval_frontier(body.to_vec(), frontier, lookup, counters, gov, true, None)
}

/// [`eval_body_uniform`] with a [`JoinPlanner`].
pub fn eval_body_uniform_planned<'a>(
    body: &[(&Atom, AtomSource<'a>)],
    frontier: Vec<Subst>,
    lookup: &dyn Fn(Pred) -> Option<&'a Relation>,
    counters: &mut Counters,
    gov: &Governor,
    planner: &JoinPlanner,
) -> Result<Vec<Subst>, EvalError> {
    let planner = planner.is_enabled().then_some(planner);
    eval_frontier(
        body.to_vec(),
        frontier,
        lookup,
        counters,
        gov,
        true,
        planner,
    )
}

/// Like [`eval_body`], but starting from an arbitrary set of input
/// substitutions. Unlike a frontier grown internally from one `init`,
/// a caller-supplied frontier may mix groundness patterns; mixed groups
/// are evaluated separately (each group gets its own join order).
pub fn eval_body_frontier<'a>(
    body: &[(&Atom, AtomSource<'a>)],
    frontier: Vec<Subst>,
    lookup: &dyn Fn(Pred) -> Option<&'a Relation>,
    counters: &mut Counters,
    gov: &Governor,
) -> Result<Vec<Subst>, EvalError> {
    eval_frontier(body.to_vec(), frontier, lookup, counters, gov, false, None)
}

/// [`eval_body_frontier`] with a [`JoinPlanner`]. Mixed frontiers are
/// split into groundness-uniform groups first; each group is planned (and
/// cached) under its own signature.
pub fn eval_body_frontier_planned<'a>(
    body: &[(&Atom, AtomSource<'a>)],
    frontier: Vec<Subst>,
    lookup: &dyn Fn(Pred) -> Option<&'a Relation>,
    counters: &mut Counters,
    gov: &Governor,
    planner: &JoinPlanner,
) -> Result<Vec<Subst>, EvalError> {
    let planner = planner.is_enabled().then_some(planner);
    eval_frontier(
        body.to_vec(),
        frontier,
        lookup,
        counters,
        gov,
        false,
        planner,
    )
}

/// Per-atom bitmask of which arguments are ground under `s`, over the
/// remaining body atoms — the only property the join-order score reads.
/// Arguments beyond 64 fold onto bit 63 (conservative: patterns that
/// differ only there still compare equal, at worst skipping the split).
fn groundness_sig(remaining: &[(&Atom, AtomSource)], s: &Subst) -> Vec<u64> {
    remaining
        .iter()
        .map(|(a, _)| {
            let mut mask = 0u64;
            for (i, arg) in a.args.iter().enumerate() {
                if s.is_ground(arg) {
                    mask |= 1 << i.min(63);
                }
            }
            mask
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn eval_frontier<'a>(
    mut remaining: Vec<(&Atom, AtomSource<'a>)>,
    mut frontier: Vec<Subst>,
    lookup: &dyn Fn(Pred) -> Option<&'a Relation>,
    counters: &mut Counters,
    gov: &Governor,
    expect_uniform: bool,
    planner: Option<&JoinPlanner>,
) -> Result<Vec<Subst>, EvalError> {
    // Original body position of each entry still in `remaining` — the
    // cached plan's `order` speaks in these, and removals shift the rest.
    let mut orig: Vec<usize> = (0..remaining.len()).collect();
    // Lazily computed on the first iteration that survives the uniformity
    // check: (plan, how many of its stored steps have run).
    let mut plan: Option<(Arc<JoinPlan>, usize)> = None;
    while !remaining.is_empty() {
        if frontier.is_empty() {
            return Ok(vec![]);
        }
        // Cooperative governor checkpoint, once per probe batch (each
        // join step evaluates one atom over the whole frontier). Pure
        // reads: the work counters are untouched, so probed/matched stay
        // bit-identical whether or not a budget is armed.
        gov.check("probe-batch")?;
        // The atom score below probes only `frontier[0]`, which is sound
        // only while every frontier substitution shares one groundness
        // pattern. Verify that before trusting the probe; a mixed frontier
        // is split into uniform groups, each joined in its own order.
        if frontier.len() > 1 {
            let sig0 = groundness_sig(&remaining, &frontier[0]);
            if frontier[1..]
                .iter()
                .any(|s| groundness_sig(&remaining, s) != sig0)
            {
                // A frontier grown from one substitution must stay
                // uniform; losing uniformity means a unification bug
                // upstream, and an assert that vanishes in release would
                // let the planner silently pick a wrong join order. Fail
                // loudly in every profile instead.
                if expect_uniform {
                    return Err(EvalError::NonUniformFrontier {
                        atom: remaining
                            .iter()
                            .map(|(a, _)| a.to_string())
                            .collect::<Vec<_>>()
                            .join(", "),
                    });
                }
                let mut groups: Vec<(Vec<u64>, Vec<Subst>)> = Vec::new();
                for s in frontier {
                    let sig = groundness_sig(&remaining, &s);
                    match groups.iter_mut().find(|(g, _)| *g == sig) {
                        Some((_, members)) => members.push(s),
                        None => groups.push((sig, vec![s])),
                    }
                }
                let mut all = Vec::new();
                for (_, group) in groups {
                    all.extend(eval_frontier(
                        remaining.clone(),
                        group,
                        lookup,
                        counters,
                        gov,
                        false,
                        planner,
                    )?);
                }
                return Ok(all);
            }
        }
        // Pick the next atom under the frontier. Evaluable builtins always
        // go first (they only filter/compute). For the stored atoms, the
        // cost-based planner — when present — dictates the order from a
        // cached greedy min-estimated-output plan; otherwise the syntactic
        // score ranks them by ascending free-argument count. The
        // uniformity check above makes the first substitution
        // representative of the whole frontier.
        let probe = &frontier[0];
        if let Some(planner) = planner {
            if plan.is_none() {
                let sig = groundness_sig(&remaining, probe);
                let p = planner.plan(&remaining, &sig, probe, lookup, counters);
                planner.provision(&p, &remaining, lookup, counters);
                plan = Some((p, 0));
            }
        }
        // (position in `remaining`, did it come off the plan's order).
        let pick: Option<(usize, bool)> = if let Some((p, pos)) = &plan {
            let evaluable_builtin = remaining.iter().position(|(a, src)| {
                matches!(src, AtomSource::Auto)
                    && is_builtin_atom(a)
                    && !matches!(
                        eval_builtin(a, probe),
                        Ok(Some(BuiltinOutcome::NotEvaluable))
                    )
            });
            match evaluable_builtin {
                Some(k) => Some((k, false)),
                None => p
                    .order
                    .get(*pos)
                    .and_then(|&o| orig.iter().position(|&x| x == o))
                    .map(|k| (k, true)),
            }
        } else {
            let score = |a: &Atom, src: &AtomSource| -> Option<(u8, usize)> {
                match src {
                    AtomSource::Fixed(_) => {
                        let free = a.args.iter().filter(|t| !probe.is_ground(t)).count();
                        Some((1, free))
                    }
                    AtomSource::Auto => {
                        if is_builtin_atom(a) {
                            if matches!(
                                eval_builtin(a, probe),
                                Ok(Some(BuiltinOutcome::NotEvaluable))
                            ) {
                                None
                            } else {
                                Some((0, 0))
                            }
                        } else {
                            let free = a.args.iter().filter(|t| !probe.is_ground(t)).count();
                            Some((1, free))
                        }
                    }
                }
            };
            remaining
                .iter()
                .enumerate()
                .filter_map(|(i, (a, src))| score(a, src).map(|sc| (sc, i)))
                .min()
                .map(|(_, i)| (i, false))
        };
        let Some((k, from_plan)) = pick else {
            return Err(EvalError::NotEvaluable {
                atom: remaining[0].0.to_string(),
            });
        };
        let (atom, src) = remaining.remove(k);
        orig.remove(k);
        let mut next = Vec::new();
        let stored: Option<&Relation> = match src {
            AtomSource::Fixed(rel) => Some(rel),
            AtomSource::Auto if is_builtin_atom(atom) => {
                // Builtins are procedural and per-substitution by nature:
                // every frontier member evaluates (and counts) on its own.
                for s in &frontier {
                    match eval_builtin(atom, s)? {
                        Some(BuiltinOutcome::Solutions(sols)) => {
                            counters.builtin_evals += 1;
                            // At least one probe even when a filtering
                            // builtin rejects the substitution outright.
                            counters.probed += sols.len().max(1);
                            counters.matched += sols.len();
                            next.extend(sols);
                        }
                        Some(BuiltinOutcome::NotEvaluable) => {
                            return Err(EvalError::NotEvaluable {
                                atom: s.resolve_atom(atom).to_string(),
                            })
                        }
                        None => unreachable!("is_builtin_atom admitted {atom}"),
                    }
                }
                None
            }
            // No relation: empty extension, no matches.
            AtomSource::Auto => lookup(atom.pred),
        };
        if let Some(rel) = stored {
            if legacy::forced() {
                for s in &frontier {
                    match_relation(rel, atom, s, counters, &mut next);
                }
            } else {
                match_relation_frontier(rel, atom, &frontier, counters, &mut next);
            }
        }
        if from_plan {
            if let Some((p, pos)) = &mut plan {
                // Estimated vs. actual rows out of this planned step, for
                // the cat=plan trace lane.
                let mut step_span = chainsplit_trace::Span::enter_cat("plan-step", "plan");
                if step_span.is_recording() {
                    step_span.set_attr("pred", atom.pred);
                    step_span.set_attr("est", format!("{:.1}", p.est_rows[*pos]));
                    step_span.set_attr("actual", next.len());
                }
                *pos += 1;
            }
        }
        frontier = next;
    }
    Ok(frontier)
}

/// Unifies `query` against every tuple of `rel` (if any), returning the
/// matching substitutions — how bottom-up results answer a specific query.
pub fn unify_filter(rel: Option<&Relation>, query: &Atom) -> Vec<Subst> {
    let Some(rel) = rel else { return Vec::new() };
    let mut out = Vec::new();
    for t in rel.iter() {
        let mut s = Subst::new();
        let ok = query
            .args
            .iter()
            .zip(t.fields())
            .all(|(a, f)| unify(&mut s, a, f));
        if ok {
            out.push(s);
        }
    }
    out
}

/// Convenience wrapper: evaluate a plain body (all [`AtomSource::Auto`]).
pub fn eval_body_auto<'a>(
    body: &[Atom],
    init: Subst,
    lookup: &dyn Fn(Pred) -> Option<&'a Relation>,
    counters: &mut Counters,
    gov: &Governor,
) -> Result<Vec<Subst>, EvalError> {
    let tagged: Vec<(&Atom, AtomSource)> = body.iter().map(|a| (a, AtomSource::Auto)).collect();
    eval_body(&tagged, init, lookup, counters, gov)
}

/// [`eval_body_auto`] with a [`JoinPlanner`].
pub fn eval_body_auto_planned<'a>(
    body: &[Atom],
    init: Subst,
    lookup: &dyn Fn(Pred) -> Option<&'a Relation>,
    counters: &mut Counters,
    gov: &Governor,
    planner: &JoinPlanner,
) -> Result<Vec<Subst>, EvalError> {
    let tagged: Vec<(&Atom, AtomSource)> = body.iter().map(|a| (a, AtomSource::Auto)).collect();
    eval_body_planned(&tagged, init, lookup, counters, gov, planner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainsplit_logic::{parse_program, parse_query, Var};
    use chainsplit_relation::Database;

    fn family() -> Database {
        let (facts, _) = parse_program(
            "parent(adam, cain). parent(adam, abel).
             parent(eve, cain). parent(eve, abel).",
        )
        .unwrap()
        .split_facts();
        Database::from_facts(facts)
    }

    #[test]
    fn match_relation_with_constants() {
        let db = family();
        let rel = db
            .relation(chainsplit_logic::Pred::new("parent", 2))
            .unwrap();
        let atom = parse_query("parent(adam, X)").unwrap();
        let mut out = Vec::new();
        let mut c = Counters::default();
        match_relation(rel, &atom, &Subst::new(), &mut c, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn eval_body_joins_and_orders_builtins() {
        let db = family();
        // Body where the comparison appears first but must run last:
        // X \= Y, parent(P, X), parent(P, Y).
        let body = vec![
            parse_query("X \\= Y").unwrap(),
            parse_query("parent(P, X)").unwrap(),
            parse_query("parent(P, Y)").unwrap(),
        ];
        let mut c = Counters::default();
        let lookup = |p: chainsplit_logic::Pred| db.relation(p);
        let sols = eval_body_auto(&body, Subst::new(), &lookup, &mut c, &Governor::new()).unwrap();
        // adam and eve each have (cain, abel) and (abel, cain).
        assert_eq!(sols.len(), 4);
        assert!(c.probed > 0);
        assert!(c.matched > 0);
        assert!(c.builtin_evals > 0);
    }

    #[test]
    fn match_relation_scan_and_index_agree_on_logical_metrics() {
        // Satellite check: the same lookup through a key scan and through
        // a hash index must produce identical *logical* metrics (matched
        // tuples, solutions) — only the access-path counters and the
        // probed (rows-inspected) figure may differ.
        let db = family();
        let rel = db
            .relation(chainsplit_logic::Pred::new("parent", 2))
            .unwrap();
        let atom = parse_query("parent(adam, X)").unwrap();

        let mut scan_out = Vec::new();
        let mut scan_c = Counters::default();
        match_relation(rel, &atom, &Subst::new(), &mut scan_c, &mut scan_out);
        assert_eq!(scan_c.scans, 1, "4-row relation must use the scan path");

        let mut indexed = rel.clone();
        indexed.ensure_index(&[0]);
        let mut idx_out = Vec::new();
        let mut idx_c = Counters::default();
        match_relation(&indexed, &atom, &Subst::new(), &mut idx_c, &mut idx_out);
        assert_eq!(idx_c.index_hits, 1);
        assert_eq!(idx_c.scans, 0);

        // Logical metrics identical.
        assert_eq!(scan_out, idx_out);
        assert_eq!(scan_c.matched, idx_c.matched);
        // Physical work differs: the scan inspected all 4 rows, the index
        // only adam's 2.
        assert_eq!(scan_c.probed, 4);
        assert_eq!(idx_c.probed, 2);
    }

    #[test]
    fn mixed_frontier_falls_back_to_per_group_ordering() {
        // Regression for the frontier[0] scoring probe: a caller-supplied
        // frontier where X is ground in one substitution and free in the
        // other used to be scored entirely by the first substitution. With
        // X ground, `X < 3` looks evaluable and would be scheduled first —
        // wrongly, for the second substitution. The uniformity check must
        // split the frontier and evaluate each group in its own order.
        let db = family();
        let mut ground_x = Subst::new();
        ground_x.bind(Var::named("X"), Term::Int(1));
        let free_x = Subst::new();

        let lt = parse_query("X < 3").unwrap();
        let gen = parse_query("X = 2").unwrap();
        let body = vec![(&lt, AtomSource::Auto), (&gen, AtomSource::Auto)];
        let mut c = Counters::default();
        let lookup = |p: chainsplit_logic::Pred| db.relation(p);
        let sols = eval_body_frontier(
            &body,
            vec![ground_x, free_x],
            &lookup,
            &mut c,
            &Governor::new(),
        )
        .unwrap();
        // Group 1 (X = 1): 1 < 3 holds, but X = 2 then fails -> no solution.
        // Group 2 (X free): X = 2 binds first, 2 < 3 holds -> one solution.
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].resolve(&Term::Var(Var::named("X"))), Term::Int(2));
    }

    #[test]
    fn non_uniform_frontier_is_a_returned_error_not_a_debug_assert() {
        // A caller that promises uniformity but ships a mixed frontier
        // must get a clean `NonUniformFrontier` in every build profile
        // (this used to be a debug_assert, i.e. silent in release).
        let db = family();
        let mut ground_x = Subst::new();
        ground_x.bind(Var::named("X"), Term::Int(1));
        let free_x = Subst::new();

        let lt = parse_query("X < 3").unwrap();
        let gen = parse_query("X = 2").unwrap();
        let body = vec![(&lt, AtomSource::Auto), (&gen, AtomSource::Auto)];
        let mut c = Counters::default();
        let lookup = |p: chainsplit_logic::Pred| db.relation(p);
        let err = eval_body_uniform(
            &body,
            vec![ground_x.clone(), free_x],
            &lookup,
            &mut c,
            &Governor::new(),
        )
        .unwrap_err();
        assert!(matches!(err, EvalError::NonUniformFrontier { .. }));
        assert!(err.to_string().contains("uniformity"));

        // An actually-uniform frontier sails through the same seam.
        let mut ground_too = Subst::new();
        ground_too.bind(Var::named("X"), Term::Int(2));
        let sols = eval_body_uniform(
            &body,
            vec![ground_x, ground_too],
            &lookup,
            &mut c,
            &Governor::new(),
        )
        .unwrap();
        assert_eq!(sols.len(), 1); // only X = 2 survives `X = 2, X < 3`
    }

    #[test]
    fn eval_body_empty_relation_gives_no_solutions() {
        let db = family();
        let body = vec![parse_query("ancestor(X, Y)").unwrap()];
        let mut c = Counters::default();
        let lookup = |p: chainsplit_logic::Pred| db.relation(p);
        let sols = eval_body_auto(&body, Subst::new(), &lookup, &mut c, &Governor::new()).unwrap();
        assert!(sols.is_empty());
    }

    #[test]
    fn eval_body_unorderable_errors() {
        let db = Database::new();
        let body = vec![parse_query("X < Y").unwrap()];
        let mut c = Counters::default();
        let lookup = |p: chainsplit_logic::Pred| db.relation(p);
        let err =
            eval_body_auto(&body, Subst::new(), &lookup, &mut c, &Governor::new()).unwrap_err();
        assert!(matches!(err, EvalError::NotEvaluable { .. }));
    }

    #[test]
    fn eval_body_fixed_source_overrides() {
        let db = family();
        let mut delta = Relation::new(2);
        delta.insert(chainsplit_relation::Tuple::new(vec![
            Term::sym("adam"),
            Term::sym("cain"),
        ]));
        let atom = parse_query("parent(X, Y)").unwrap();
        let tagged = vec![(&atom, AtomSource::Fixed(&delta))];
        let mut c = Counters::default();
        let lookup = |p: chainsplit_logic::Pred| db.relation(p);
        let sols = eval_body(&tagged, Subst::new(), &lookup, &mut c, &Governor::new()).unwrap();
        assert_eq!(sols.len(), 1); // only the delta row, not all four
        assert_eq!(
            sols[0].resolve(&Term::Var(Var::named("Y"))),
            Term::sym("cain")
        );
    }

    #[test]
    fn frontier_executor_matches_legacy_and_memoizes_probes() {
        // Same frontier through both executors: identical solutions in
        // identical order, identical `matched`, but the frontier executor
        // pays one physical probe per *distinct* key (2 here) where the
        // legacy loop pays one per substitution (3).
        let db = family();
        let rel = db
            .relation(chainsplit_logic::Pred::new("parent", 2))
            .unwrap();
        let atom = parse_query("parent(P, X)").unwrap();
        let frontier: Vec<Subst> = [("adam", 1), ("eve", 2), ("adam", 3)]
            .iter()
            .map(|&(p, q)| {
                let mut s = Subst::new();
                s.bind(Var::named("P"), Term::sym(p));
                s.bind(Var::named("Q"), Term::Int(q));
                s
            })
            .collect();

        let mut new_out = Vec::new();
        let mut new_c = Counters::default();
        match_relation_frontier(rel, &atom, &frontier, &mut new_c, &mut new_out);

        let mut old_out = Vec::new();
        let mut old_c = Counters::default();
        for s in &frontier {
            match_relation(rel, &atom, s, &mut old_c, &mut old_out);
        }

        assert_eq!(new_out, old_out);
        assert_eq!(new_out.len(), 6); // 3 substitutions x 2 children each
        assert_eq!(new_c.matched, old_c.matched);
        // 4-row relation scans: 2 distinct keys x 4 rows vs 3 probes x 4.
        assert_eq!(new_c.probed, 8);
        assert_eq!(old_c.probed, 12);
        assert_eq!(new_c.scans, 2);
        assert_eq!(old_c.scans, 3);
    }

    #[test]
    fn legacy_seam_forces_per_substitution_joins() {
        // End-to-end: the same body evaluates to the same solutions under
        // the seam, while the probe counters reveal which executor ran.
        let db = family();
        let body = vec![
            parse_query("parent(P, X)").unwrap(),
            parse_query("parent(P, Y)").unwrap(),
        ];
        let lookup = |p: chainsplit_logic::Pred| db.relation(p);
        let mut new_c = Counters::default();
        let new_sols =
            eval_body_auto(&body, Subst::new(), &lookup, &mut new_c, &Governor::new()).unwrap();
        let (old_sols, old_c) = legacy::with_per_substitution(|| {
            let mut c = Counters::default();
            let sols =
                eval_body_auto(&body, Subst::new(), &lookup, &mut c, &Governor::new()).unwrap();
            (sols, c)
        });
        assert_eq!(new_sols, old_sols);
        assert_eq!(new_c.matched, old_c.matched);
        // Second atom: 4 substitutions but only 2 distinct P keys.
        assert!(
            new_c.probed < old_c.probed,
            "{} vs {}",
            new_c.probed,
            old_c.probed
        );
    }

    #[test]
    fn eval_body_with_initial_bindings() {
        let db = family();
        let mut init = Subst::new();
        init.bind(Var::named("P"), Term::sym("eve"));
        let body = vec![parse_query("parent(P, X)").unwrap()];
        let mut c = Counters::default();
        let lookup = |p: chainsplit_logic::Pred| db.relation(p);
        let sols = eval_body_auto(&body, init, &lookup, &mut c, &Governor::new()).unwrap();
        assert_eq!(sols.len(), 2);
    }

    #[test]
    fn cancelled_governor_stops_the_probe_batch() {
        let db = family();
        let body = vec![
            parse_query("parent(P, X)").unwrap(),
            parse_query("parent(P, Y)").unwrap(),
        ];
        let lookup = |p: chainsplit_logic::Pred| db.relation(p);
        let gov = Governor::new();
        gov.cancel_token().cancel();
        let mut c = Counters::default();
        let err = eval_body_auto(&body, Subst::new(), &lookup, &mut c, &gov).unwrap_err();
        let trip = err.budget_trip().expect("a cancellation trip");
        assert_eq!(trip.resource, chainsplit_governor::Resource::Cancelled);
        assert_eq!(trip.phase, "probe-batch");
        // The check is a pure read: no work was counted before the stop.
        assert_eq!(c, Counters::default());
    }
}
