//! Shared rule-body evaluation machinery.
//!
//! Every set-oriented evaluator (naive, semi-naive, magic, the chain-split
//! sweeps in `chainsplit-core`) reduces to the same step: given a rule body
//! and a set of input substitutions, join the body atoms — builtins
//! procedurally, stored predicates against their relations — producing the
//! output substitutions. Atom order is chosen *dynamically*: at each step
//! the first currently-evaluable atom runs, so builtins wait for their
//! inputs without any static analysis here (the static story lives in
//! `chainsplit-chain`; at run time we only need an order to exist).

use crate::builtins::{eval_builtin, is_builtin_atom, BuiltinOutcome};
use crate::error::{Counters, EvalError};
use chainsplit_logic::{unify, Atom, Pred, Subst, Term};
use chainsplit_relation::Relation;

/// Extends `out` with every extension of `s` matching `atom` against `rel`.
///
/// Ground arguments become an index key (the relation decides whether an
/// index exists); remaining arguments unify tuple-by-tuple.
pub fn match_relation(
    rel: &Relation,
    atom: &Atom,
    s: &Subst,
    counters: &mut Counters,
    out: &mut Vec<Subst>,
) {
    // Columns whose argument is ground under `s` form the lookup key.
    let mut cols: Vec<usize> = Vec::new();
    let mut key: Vec<Term> = Vec::new();
    for (i, arg) in atom.args.iter().enumerate() {
        if s.is_ground(arg) {
            cols.push(i);
            key.push(s.resolve(arg));
        }
    }
    for tuple in rel.select(&cols, &key) {
        counters.considered += 1;
        let mut s2 = s.clone();
        let ok = atom
            .args
            .iter()
            .zip(tuple.fields())
            .all(|(a, f)| unify(&mut s2, a, f));
        if ok {
            out.push(s2);
        }
    }
}

/// Where a body atom finds its tuples.
#[derive(Clone, Copy)]
pub enum AtomSource<'a> {
    /// Builtins by procedure; stored predicates via `lookup`.
    Auto,
    /// Use exactly this relation (semi-naive delta occurrences).
    Fixed(&'a Relation),
}

/// Evaluates a rule body against `lookup`, starting from `init`.
///
/// `body` pairs each atom with its [`AtomSource`]. `lookup` resolves a
/// predicate to its current relation; `None` means an empty extension
/// (an IDB predicate with nothing derived yet).
///
/// Returns the substitutions satisfying the whole body. Errors if at some
/// point no remaining atom is evaluable (a builtin short of bindings) —
/// the caller shipped a body that is not finitely evaluable in any order.
pub fn eval_body<'a>(
    body: &[(&Atom, AtomSource<'a>)],
    init: Subst,
    lookup: &dyn Fn(Pred) -> Option<&'a Relation>,
    counters: &mut Counters,
) -> Result<Vec<Subst>, EvalError> {
    let mut remaining: Vec<(&Atom, AtomSource)> = body.to_vec();
    let mut frontier = vec![init];
    while !remaining.is_empty() {
        if frontier.is_empty() {
            return Ok(vec![]);
        }
        // Pick the most useful evaluable atom under the frontier: evaluable
        // builtins first (they only filter/compute), then stored atoms by
        // descending bound-argument count — a selective indexed lookup must
        // run before an unconstrained scan, or joins go cross-product. All
        // frontier substitutions share the groundness pattern of the
        // variables bound so far (they came through the same atom prefix),
        // so probing with the first is representative.
        let probe = &frontier[0];
        let score = |a: &Atom, src: &AtomSource| -> Option<(u8, usize)> {
            match src {
                AtomSource::Fixed(_) => {
                    let free = a.args.iter().filter(|t| !probe.is_ground(t)).count();
                    Some((1, free))
                }
                AtomSource::Auto => {
                    if is_builtin_atom(a) {
                        if matches!(
                            eval_builtin(a, probe),
                            Ok(Some(BuiltinOutcome::NotEvaluable))
                        ) {
                            None
                        } else {
                            Some((0, 0))
                        }
                    } else {
                        let free = a.args.iter().filter(|t| !probe.is_ground(t)).count();
                        Some((1, free))
                    }
                }
            }
        };
        let pick = remaining
            .iter()
            .enumerate()
            .filter_map(|(i, (a, src))| score(a, src).map(|sc| (sc, i)))
            .min()
            .map(|(_, i)| i);
        let Some(k) = pick else {
            return Err(EvalError::NotEvaluable {
                atom: remaining[0].0.to_string(),
            });
        };
        let (atom, src) = remaining.remove(k);
        let mut next = Vec::new();
        for s in &frontier {
            match src {
                AtomSource::Fixed(rel) => match_relation(rel, atom, s, counters, &mut next),
                AtomSource::Auto => match eval_builtin(atom, s)? {
                    Some(BuiltinOutcome::Solutions(sols)) => {
                        counters.considered += sols.len();
                        next.extend(sols);
                    }
                    Some(BuiltinOutcome::NotEvaluable) => {
                        return Err(EvalError::NotEvaluable {
                            atom: s.resolve_atom(atom).to_string(),
                        })
                    }
                    None => {
                        if let Some(rel) = lookup(atom.pred) {
                            match_relation(rel, atom, s, counters, &mut next);
                        }
                        // No relation: empty extension, no matches.
                    }
                },
            }
        }
        frontier = next;
    }
    Ok(frontier)
}

/// Unifies `query` against every tuple of `rel` (if any), returning the
/// matching substitutions — how bottom-up results answer a specific query.
pub fn unify_filter(rel: Option<&Relation>, query: &Atom) -> Vec<Subst> {
    let Some(rel) = rel else { return Vec::new() };
    let mut out = Vec::new();
    for t in rel.iter() {
        let mut s = Subst::new();
        let ok = query
            .args
            .iter()
            .zip(t.fields())
            .all(|(a, f)| unify(&mut s, a, f));
        if ok {
            out.push(s);
        }
    }
    out
}

/// Convenience wrapper: evaluate a plain body (all [`AtomSource::Auto`]).
pub fn eval_body_auto<'a>(
    body: &[Atom],
    init: Subst,
    lookup: &dyn Fn(Pred) -> Option<&'a Relation>,
    counters: &mut Counters,
) -> Result<Vec<Subst>, EvalError> {
    let tagged: Vec<(&Atom, AtomSource)> = body.iter().map(|a| (a, AtomSource::Auto)).collect();
    eval_body(&tagged, init, lookup, counters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainsplit_logic::{parse_program, parse_query, Var};
    use chainsplit_relation::Database;

    fn family() -> Database {
        let (facts, _) = parse_program(
            "parent(adam, cain). parent(adam, abel).
             parent(eve, cain). parent(eve, abel).",
        )
        .unwrap()
        .split_facts();
        Database::from_facts(facts)
    }

    #[test]
    fn match_relation_with_constants() {
        let db = family();
        let rel = db
            .relation(chainsplit_logic::Pred::new("parent", 2))
            .unwrap();
        let atom = parse_query("parent(adam, X)").unwrap();
        let mut out = Vec::new();
        let mut c = Counters::default();
        match_relation(rel, &atom, &Subst::new(), &mut c, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn eval_body_joins_and_orders_builtins() {
        let db = family();
        // Body where the comparison appears first but must run last:
        // X \= Y, parent(P, X), parent(P, Y).
        let body = vec![
            parse_query("X \\= Y").unwrap(),
            parse_query("parent(P, X)").unwrap(),
            parse_query("parent(P, Y)").unwrap(),
        ];
        let mut c = Counters::default();
        let lookup = |p: chainsplit_logic::Pred| db.relation(p);
        let sols = eval_body_auto(&body, Subst::new(), &lookup, &mut c).unwrap();
        // adam and eve each have (cain, abel) and (abel, cain).
        assert_eq!(sols.len(), 4);
        assert!(c.considered > 0);
    }

    #[test]
    fn eval_body_empty_relation_gives_no_solutions() {
        let db = family();
        let body = vec![parse_query("ancestor(X, Y)").unwrap()];
        let mut c = Counters::default();
        let lookup = |p: chainsplit_logic::Pred| db.relation(p);
        let sols = eval_body_auto(&body, Subst::new(), &lookup, &mut c).unwrap();
        assert!(sols.is_empty());
    }

    #[test]
    fn eval_body_unorderable_errors() {
        let db = Database::new();
        let body = vec![parse_query("X < Y").unwrap()];
        let mut c = Counters::default();
        let lookup = |p: chainsplit_logic::Pred| db.relation(p);
        let err = eval_body_auto(&body, Subst::new(), &lookup, &mut c).unwrap_err();
        assert!(matches!(err, EvalError::NotEvaluable { .. }));
    }

    #[test]
    fn eval_body_fixed_source_overrides() {
        let db = family();
        let mut delta = Relation::new(2);
        delta.insert(chainsplit_relation::Tuple::new(vec![
            Term::sym("adam"),
            Term::sym("cain"),
        ]));
        let atom = parse_query("parent(X, Y)").unwrap();
        let tagged = vec![(&atom, AtomSource::Fixed(&delta))];
        let mut c = Counters::default();
        let lookup = |p: chainsplit_logic::Pred| db.relation(p);
        let sols = eval_body(&tagged, Subst::new(), &lookup, &mut c).unwrap();
        assert_eq!(sols.len(), 1); // only the delta row, not all four
        assert_eq!(
            sols[0].resolve(&Term::Var(Var::named("Y"))),
            Term::sym("cain")
        );
    }

    #[test]
    fn eval_body_with_initial_bindings() {
        let db = family();
        let mut init = Subst::new();
        init.bind(Var::named("P"), Term::sym("eve"));
        let body = vec![parse_query("parent(P, X)").unwrap()];
        let mut c = Counters::default();
        let lookup = |p: chainsplit_logic::Pred| db.relation(p);
        let sols = eval_body_auto(&body, init, &lookup, &mut c).unwrap();
        assert_eq!(sols.len(), 2);
    }
}
