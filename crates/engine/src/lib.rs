//! # chainsplit-engine
//!
//! The baseline evaluators of the chain-split deductive database, and the
//! machinery they share:
//!
//! - [`builtins`]: procedural evaluation of the evaluable predicates
//!   (`cons`, `=`, comparisons, arithmetic, `length`) under partial
//!   bindings;
//! - [`eval`]: relation matching and dynamic rule-body join evaluation;
//! - [`naive`] / [`seminaive`]: bottom-up fixpoint evaluation;
//! - [`magic`]: the magic-sets transformation, parameterised by a
//!   [`magic::SipStrategy`] — `FullSip` is the classical baseline \[1, 2\];
//!   `DelayPreds` is the modified binding-propagation rule that
//!   `chainsplit-core` drives from the cost model (Algorithm 3.1);
//! - [`topdown`]: Prolog-style SLD resolution with depth/fuel budgets.
//!
//! The counting method is not here: it is the buffer-free degenerate case
//! of Algorithm 3.2's two-sweep executor, in `chainsplit-core::buffered`.

#![forbid(unsafe_code)]

pub mod builtins;
pub mod dred;
pub mod error;
pub mod eval;
pub mod magic;
pub mod metrics;
pub mod naive;
pub mod plan;
pub mod seminaive;
pub mod supplementary;
pub mod tabled;
pub mod topdown;

pub use builtins::{eval_builtin, is_builtin_atom, BuiltinOutcome};
pub use chainsplit_governor::{Budget, BudgetTrip, CancelToken, Governor, Resource};
pub use dred::{Materialization, MaterializeOutcome, RepairOutcome};
pub use error::{Counters, EvalError};
pub use eval::{
    eval_body, eval_body_auto, eval_body_auto_planned, eval_body_frontier,
    eval_body_frontier_planned, eval_body_planned, eval_body_uniform, eval_body_uniform_planned,
    match_relation, match_relation_frontier, unify_filter, AtomSource,
};
pub use magic::{
    magic_eval, magic_transform, DelayPreds, FullSip, MagicProgram, MagicResult, SipStrategy,
};
pub use metrics::{duration_ms, EvalMetrics, PhaseTimings, RoundMetrics};
pub use naive::{naive_eval, BottomUpOptions, BottomUpResult};
pub use plan::{size_band, JoinPlan, JoinPlanner, PlanStats, PlannedProbe, PlannerRef};
pub use seminaive::seminaive_eval;
pub use supplementary::{supplementary_magic_eval, supplementary_magic_transform};
pub use tabled::{tabled_query, Tabled, TabledOptions};
pub use topdown::{topdown_query, TopDown, TopDownOptions};
