//! The magic-sets transformation (standard baseline, policy-parameterised).
//!
//! Generalized predicate-level magic sets \[1, 2\]: adorn the program from
//! the query, add a magic filter to every rule, and derive magic rules that
//! push query bindings sideways. The *sideways information passing* (SIP)
//! order is delegated to a [`SipStrategy`]:
//!
//! - [`FullSip`] is the classical "blind binding passing": every body atom
//!   propagates bindings as soon as it can — on `scsg` this merges all the
//!   non-recursive predicates into one path and derives cross-product-sized
//!   magic sets (the failure mode of the paper's Example 1.2);
//! - [`DelayPreds`] refuses to propagate bindings through the listed
//!   predicates, pushing them *behind* the recursive call — this is the
//!   modified binding-propagation rule of **Algorithm 3.1** (the
//!   chain-split magic sets method); `chainsplit-core` instantiates it from
//!   the join-expansion-ratio cost model.
//!
//! The rewritten program is evaluated semi-naively; magic-predicate
//! cardinalities are reported in `Counters::magic_facts`.

use crate::error::{Counters, EvalError};
use crate::metrics::{duration_ms, PhaseTimings, RoundMetrics};
use crate::seminaive::{seminaive_eval, BottomUpOptions};
use chainsplit_chain::ModeTable;
use chainsplit_logic::{
    adorn::term_bound, unify_atoms, Adornment, Atom, Pred, Rule, Subst, Sym, Term, Var,
};
use chainsplit_relation::Database;
use std::collections::{HashSet, VecDeque};
use std::time::Instant;

/// Decides which body atoms may propagate bindings in the SIP.
pub trait SipStrategy {
    /// May `atom` receive bindings early and pass its variables on?
    fn propagate(&self, atom: &Atom) -> bool;
}

/// The classical strategy: everything propagates.
pub struct FullSip;

impl SipStrategy for FullSip {
    fn propagate(&self, _atom: &Atom) -> bool {
        true
    }
}

/// Algorithm 3.1's modified rule: bindings never cross the listed
/// predicates (the weak linkages); those atoms sort after the recursive
/// call and take no part in magic-set derivation.
pub struct DelayPreds(pub HashSet<Pred>);

impl SipStrategy for DelayPreds {
    fn propagate(&self, atom: &Atom) -> bool {
        !self.0.contains(&atom.pred)
    }
}

/// The rewritten program.
pub struct MagicProgram {
    pub rules: Vec<Rule>,
    /// The adorned predicate holding the query's answers.
    pub answer_pred: Pred,
    /// All magic predicates (for cardinality accounting).
    pub magic_preds: Vec<Pred>,
}

fn adorned_name(p: Pred, ad: &Adornment) -> Sym {
    Sym::new(&format!("{}@{}", p.name, ad))
}

fn magic_name(p: Pred, ad: &Adornment) -> Sym {
    Sym::new(&format!("m@{}@{}", p.name, ad))
}

fn magic_atom(atom: &Atom, ad: &Adornment) -> Atom {
    let args: Vec<Term> = ad
        .bound_positions()
        .into_iter()
        .map(|j| atom.args[j].clone())
        .collect();
    Atom {
        pred: Pred {
            name: magic_name(atom.pred, ad),
            arity: args.len() as u32,
        },
        args,
    }
}

fn adorned_atom(atom: &Atom, ad: &Adornment) -> Atom {
    Atom {
        pred: Pred {
            name: adorned_name(atom.pred, ad),
            arity: atom.pred.arity,
        },
        args: atom.args.clone(),
    }
}

/// SIP ordering: repeatedly pick the most useful evaluable atom.
///
/// Priority among atoms the strategy lets propagate: evaluable builtins,
/// then stored atoms with at least one bound argument (EDB before IDB),
/// then free EDB scans, then free IDB atoms. Atoms the strategy delays come
/// last, in body order, after everything that propagates.
fn sip_order(
    body: &[Atom],
    bound: &mut HashSet<Var>,
    idb: &HashSet<Pred>,
    sip: &dyn SipStrategy,
    modes: &ModeTable,
) -> Vec<usize> {
    let mut order = Vec::new();
    let mut remaining: Vec<usize> = (0..body.len()).collect();
    while !remaining.is_empty() {
        let rank = |i: usize| -> u8 {
            let a = &body[i];
            let delayed = !sip.propagate(a);
            let builtin = chainsplit_chain::is_builtin(a.pred);
            let ad = Adornment::of_atom(a, bound);
            if delayed {
                return 9;
            }
            if builtin {
                return if modes.is_finite(a.pred, &ad) { 0 } else { 8 };
            }
            let has_bound = ad.n_bound() > 0;
            let is_idb = idb.contains(&a.pred);
            match (has_bound, is_idb) {
                (true, false) => 1,
                (true, true) => 2,
                (false, false) => 3,
                (false, true) => 4,
            }
        };
        let best = remaining
            .iter()
            .enumerate()
            .min_by_key(|&(_, &i)| (rank(i), i))
            .map(|(pos, _)| pos)
            .unwrap();
        let i = remaining.remove(best);
        order.push(i);
        for v in body[i].vars() {
            bound.insert(v);
        }
    }
    order
}

/// Rewrites `rules` for `query` under `sip`.
pub fn magic_transform(
    rules: &[Rule],
    query: &Atom,
    sip: &dyn SipStrategy,
) -> Result<MagicProgram, EvalError> {
    let idb: HashSet<Pred> = rules.iter().map(|r| r.head.pred).collect();
    if !idb.contains(&query.pred) {
        return Err(EvalError::Unsupported {
            reason: format!("query predicate {} has no rules", query.pred),
        });
    }
    let modes = ModeTable::with_builtins();

    let ad0 = Adornment(
        query
            .args
            .iter()
            .map(|t| {
                if t.is_ground() {
                    chainsplit_logic::Ad::Bound
                } else {
                    chainsplit_logic::Ad::Free
                }
            })
            .collect(),
    );

    let mut out_rules: Vec<Rule> = Vec::new();
    let mut magic_preds: Vec<Pred> = Vec::new();
    let mut seen: HashSet<(Pred, Adornment)> = HashSet::new();
    let mut queue: VecDeque<(Pred, Adornment)> = VecDeque::new();
    queue.push_back((query.pred, ad0.clone()));
    seen.insert((query.pred, ad0.clone()));

    while let Some((p, ad)) = queue.pop_front() {
        let m_head_template = |head: &Atom| magic_atom(head, &ad);
        for rule in rules.iter().filter(|r| r.head.pred == p) {
            let mut bound: HashSet<Var> = HashSet::new();
            for j in ad.bound_positions() {
                for v in rule.head.args[j].vars() {
                    bound.insert(v);
                }
            }
            let magic_head = m_head_template(&rule.head);
            if !magic_preds.contains(&magic_head.pred) {
                magic_preds.push(magic_head.pred);
            }

            // Order the body; emit magic rules at each IDB occurrence.
            let mut ordered: Vec<Atom> = Vec::new();
            let mut bound_now = bound.clone();
            let order = sip_order(&rule.body, &mut HashSet::clone(&bound), &idb, sip, &modes);
            for &i in &order {
                let atom = &rule.body[i];
                if idb.contains(&atom.pred) {
                    let ad_q = Adornment::of_atom(atom, &bound_now);
                    // Magic rule: m@q^adq(bound args) <- m@p^ad(head bound), prefix.
                    let mq = magic_atom(atom, &ad_q);
                    if !magic_preds.contains(&mq.pred) {
                        magic_preds.push(mq.pred);
                    }
                    let mut mbody = vec![magic_head.clone()];
                    mbody.extend(ordered.iter().cloned());
                    out_rules.push(Rule::new(mq, mbody));
                    if seen.insert((atom.pred, ad_q.clone())) {
                        queue.push_back((atom.pred, ad_q.clone()));
                    }
                    ordered.push(adorned_atom(atom, &ad_q));
                } else {
                    ordered.push(atom.clone());
                }
                for v in atom.vars() {
                    bound_now.insert(v);
                }
            }

            // Guarded adorned rule.
            let mut new_body = vec![magic_head.clone()];
            new_body.extend(ordered);
            out_rules.push(Rule::new(adorned_atom(&rule.head, &ad), new_body));
        }
    }

    // Magic seed: a fact rule.
    let seed = magic_atom(query, &ad0);
    debug_assert!(seed.is_ground());
    out_rules.push(Rule::fact(seed));

    Ok(MagicProgram {
        rules: out_rules,
        answer_pred: Pred {
            name: adorned_name(query.pred, &ad0),
            arity: query.pred.arity,
        },
        magic_preds,
    })
}

/// Result of a magic-sets evaluation.
pub struct MagicResult {
    /// Answer substitutions over the query's variables.
    pub answers: Vec<Subst>,
    pub counters: Counters,
    /// Per-round breakdown of the semi-naive run over the rewritten
    /// program (round 0 fires the magic seed and base rules).
    pub rounds: Vec<RoundMetrics>,
    /// Transform (compile), seed, fixpoint and answer-extraction timings.
    pub phases: PhaseTimings,
    /// `Some` when a governor budget tripped during the semi-naive run:
    /// `answers` holds only what was derivable from the drained partial
    /// fixpoint (a sound under-approximation).
    pub trip: Option<chainsplit_governor::BudgetTrip>,
}

/// Transforms, evaluates semi-naively, and extracts the query's answers.
pub fn magic_eval(
    rules: &[Rule],
    edb: &Database,
    query: &Atom,
    sip: &dyn SipStrategy,
    opts: BottomUpOptions,
) -> Result<MagicResult, EvalError> {
    let compile_start = Instant::now();
    let mp = {
        let _sp = chainsplit_trace::span!("compile", stage = "magic-transform");
        magic_transform(rules, query, sip)?
    };
    let compile_ms = duration_ms(compile_start.elapsed());
    let run = seminaive_eval(&mp.rules, edb, opts)?;
    let mut counters = run.counters;
    counters.magic_facts = mp
        .magic_preds
        .iter()
        .map(|&p| run.idb.relation(p).map_or(0, |r| r.len()))
        .sum();

    let answer_start = Instant::now();
    let _answer_span = chainsplit_trace::span!("answer", pred = query.pred);
    let mut answers = Vec::new();
    if let Some(rel) = run.idb.relation(mp.answer_pred) {
        for t in rel.iter() {
            let cand = Atom {
                pred: query.pred,
                args: t.fields().to_vec(),
            };
            let mut s = Subst::new();
            if unify_atoms(&mut s, query, &cand) {
                answers.push(s);
            }
        }
    }
    Ok(MagicResult {
        answers,
        counters,
        rounds: run.rounds,
        phases: PhaseTimings {
            compile_ms,
            answer_ms: duration_ms(answer_start.elapsed()),
            ..run.phases
        },
        trip: run.trip,
    })
}

/// Checks a rule body mentions only variables bound by `bound` plus its own
/// — diagnostic helper for tests.
#[doc(hidden)]
pub fn rule_is_safe(rule: &Rule) -> bool {
    let mut bound: HashSet<Var> = HashSet::new();
    for a in &rule.body {
        for v in a.vars() {
            bound.insert(v);
        }
    }
    rule.head.args.iter().all(|t| term_bound(t, &bound))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::{naive_eval, BottomUpOptions};
    use chainsplit_logic::{parse_program, parse_query};

    const SG: &str = "sg(X, Y) :- sibling(X, Y).
         sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).";

    fn family_facts() -> &'static str {
        "parent(c1, p1). parent(c2, p1). parent(g1, c1). parent(g2, c2).
         parent(h1, g1). parent(h2, g2). parent(x1, p2).
         sibling(c1, c2). sibling(c2, c1). sibling(p1, p2). sibling(p2, p1)."
    }

    fn run_magic(program: &str, facts: &str, query: &str) -> MagicResult {
        let p = parse_program(&format!("{program}\n{facts}")).unwrap();
        let (f, rules) = p.split_facts();
        let edb = Database::from_facts(f);
        let q = parse_query(query).unwrap();
        magic_eval(&rules, &edb, &q, &FullSip, BottomUpOptions::default()).unwrap()
    }

    fn run_naive_filtered(program: &str, facts: &str, query: &str) -> usize {
        let p = parse_program(&format!("{program}\n{facts}")).unwrap();
        let (f, rules) = p.split_facts();
        let edb = Database::from_facts(f);
        let q = parse_query(query).unwrap();
        let r = naive_eval(&rules, &edb, BottomUpOptions::default()).unwrap();
        let rel = r.idb.relation(q.pred).unwrap();
        rel.iter()
            .filter(|t| {
                let cand = Atom {
                    pred: q.pred,
                    args: t.fields().to_vec(),
                };
                let mut s = Subst::new();
                unify_atoms(&mut s, &q, &cand)
            })
            .count()
    }

    #[test]
    fn magic_matches_naive_on_sg() {
        for query in ["sg(h1, Y)", "sg(g1, Y)", "sg(c1, Y)", "sg(nobody, Y)"] {
            let m = run_magic(SG, family_facts(), query);
            let n = run_naive_filtered(SG, family_facts(), query);
            assert_eq!(m.answers.len(), n, "query {query}");
        }
    }

    #[test]
    fn magic_restricts_computation() {
        // Magic should derive fewer sg facts than the full fixpoint.
        let p = parse_program(&format!("{SG}\n{}", family_facts())).unwrap();
        let (f, rules) = p.split_facts();
        let edb = Database::from_facts(f);
        let q = parse_query("sg(h1, Y)").unwrap();
        let m = magic_eval(&rules, &edb, &q, &FullSip, BottomUpOptions::default()).unwrap();
        let full = naive_eval(&rules, &edb, BottomUpOptions::default()).unwrap();
        let full_sg = full.idb.relation(Pred::new("sg", 2)).unwrap().len();
        // h1's relevant slice is strictly smaller than all 8 sg facts.
        assert!(m.counters.derived < full.counters.derived);
        assert!(full_sg >= 6);
        assert!(m.counters.magic_facts > 0);
    }

    #[test]
    fn magic_on_tc_with_constant() {
        let m = run_magic(
            "path(X, Y) :- edge(X, Y).
             path(X, Y) :- edge(X, Z), path(Z, Y).",
            "edge(a, b). edge(b, c). edge(c, d). edge(z, a).",
            "path(a, Y)",
        );
        assert_eq!(m.answers.len(), 3); // b c d
    }

    #[test]
    fn fully_free_query_degenerates_to_full_eval() {
        let m = run_magic(
            "path(X, Y) :- edge(X, Y).
             path(X, Y) :- edge(X, Z), path(Z, Y).",
            "edge(a, b). edge(b, c).",
            "path(X, Y)",
        );
        assert_eq!(m.answers.len(), 3);
    }

    #[test]
    fn bound_bound_query() {
        let m = run_magic(SG, family_facts(), "sg(g1, g2)");
        assert_eq!(m.answers.len(), 1);
        let m = run_magic(SG, family_facts(), "sg(g1, h2)");
        assert_eq!(m.answers.len(), 0);
    }

    #[test]
    fn delay_preds_policy_changes_magic_sets() {
        // scsg with a same_country weak linkage.
        let scsg = "scsg(X, Y) :- sibling(X, Y).
             scsg(X, Y) :- parent(X, X1), same_country(X1, Y1), parent(Y, Y1), scsg(X1, Y1).";
        // 2 countries x 3 people; parents/siblings inside countries.
        let mut facts = String::new();
        for c in 0..2 {
            for i in 0..3 {
                for j in 0..3 {
                    facts.push_str(&format!("same_country(p{c}_{i}, p{c}_{j}).\n"));
                }
            }
            facts.push_str(&format!(
                "parent(k{c}_0, p{c}_0). parent(k{c}_1, p{c}_1).
                 sibling(p{c}_0, p{c}_1). sibling(p{c}_1, p{c}_0).
                 sibling(k{c}_0, k{c}_1). sibling(k{c}_1, k{c}_0).\n"
            ));
        }
        let p = parse_program(&format!("{scsg}\n{facts}")).unwrap();
        let (f, rules) = p.split_facts();
        let edb = Database::from_facts(f);
        let q = parse_query("scsg(k0_0, Y)").unwrap();

        let full = magic_eval(&rules, &edb, &q, &FullSip, BottomUpOptions::default()).unwrap();
        let mut delay = HashSet::new();
        delay.insert(Pred::new("same_country", 2));
        let split = magic_eval(
            &rules,
            &edb,
            &q,
            &DelayPreds(delay),
            BottomUpOptions::default(),
        )
        .unwrap();

        // Same answers…
        let mut a: Vec<String> = full.answers.iter().map(|s| s.to_string()).collect();
        let mut b: Vec<String> = split.answers.iter().map(|s| s.to_string()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // …but the chain-split SIP derives smaller magic sets: the full SIP
        // pushes the binding through same_country (fanning out to all
        // compatriots), the split SIP keeps magic on the X side only.
        assert!(
            split.counters.magic_facts < full.counters.magic_facts,
            "split {} !< full {}",
            split.counters.magic_facts,
            full.counters.magic_facts
        );
    }

    #[test]
    fn unknown_query_pred_errors() {
        let p = parse_program(SG).unwrap();
        let (_, rules) = p.split_facts();
        let edb = Database::new();
        let q = parse_query("nosuch(X)").unwrap();
        let err = magic_eval(&rules, &edb, &q, &FullSip, BottomUpOptions::default());
        assert!(err.is_err());
    }
}
