//! Structured `EXPLAIN ANALYZE` output.
//!
//! Every evaluator already maintains [`Counters`]; this module adds the
//! *shape* around them: per-round snapshots ([`RoundMetrics`]), wall time
//! per evaluation phase ([`PhaseTimings`]), and the assembled report
//! ([`EvalMetrics`]) that `DeductiveDb::explain_analyze` and the shell's
//! `:profile` command render.
//!
//! A "round" is whatever unit of saturation the strategy has: a
//! semi-naive fixpoint round (delta = tuples newly derived that round),
//! a buffered chain-split level (delta = nodes buffered at that level),
//! or — for goal-directed strategies with no natural rounds — a single
//! summary entry covering the whole evaluation.

use crate::error::Counters;
use std::fmt;
use std::time::Duration;

/// One fixpoint round (or chain level) of an evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundMetrics {
    /// Round number, starting at 0 (the seeding round for bottom-up
    /// methods, which fires the base rules and any magic seed fact).
    pub round: usize,
    /// Size of the delta this round produced: tuples newly derived, or
    /// nodes buffered at this chain level.
    pub delta: usize,
    /// Work done within this round only (`buffered_peak` is the running
    /// peak, not a per-round figure).
    pub counters: Counters,
}

/// Wall time spent in each evaluation phase, in milliseconds.
///
/// Deliberately not `PartialEq`: the fields are measured `f64` durations,
/// and equality on those invites misuse — compare the counters instead.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    /// Program compilation: rectify / classify / chain-compile, plus any
    /// magic or supplementary rewrite. Zero when a cached compilation was
    /// reused.
    pub compile_ms: f64,
    /// Seeding: base-rule firing and magic seed-fact installation.
    pub seed_ms: f64,
    /// The fixpoint loop (or goal-directed search) itself.
    pub fixpoint_ms: f64,
    /// Answer extraction and constraint filtering.
    pub answer_ms: f64,
}

impl PhaseTimings {
    pub fn total_ms(&self) -> f64 {
        self.compile_ms + self.seed_ms + self.fixpoint_ms + self.answer_ms
    }
}

/// Milliseconds for a [`Duration`], with sub-millisecond resolution.
pub fn duration_ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// The full `EXPLAIN ANALYZE` report for one query under one strategy.
#[derive(Clone, Debug, Default)]
pub struct EvalMetrics {
    /// Display name of the strategy that ran.
    pub strategy: String,
    /// Number of answers returned.
    pub answers: usize,
    /// Work summed over the whole evaluation.
    pub totals: Counters,
    /// Per-round breakdown; never empty — strategies without natural
    /// rounds report a single summary round.
    pub rounds: Vec<RoundMetrics>,
    /// Wall time per phase.
    pub phases: PhaseTimings,
}

impl EvalMetrics {
    /// Sum of per-round delta sizes. For saturating (bottom-up) methods
    /// this equals the number of tuples in the final materialized
    /// relations, since every tuple enters the delta exactly once.
    pub fn delta_total(&self) -> usize {
        self.rounds.iter().map(|r| r.delta).sum()
    }
}

impl fmt::Display for EvalMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "strategy {}: {} answers in {:.3} ms",
            self.strategy,
            self.answers,
            self.phases.total_ms()
        )?;
        writeln!(
            f,
            "  phases: compile {:.3} ms | seed {:.3} ms | fixpoint {:.3} ms | answers {:.3} ms",
            self.phases.compile_ms,
            self.phases.seed_ms,
            self.phases.fixpoint_ms,
            self.phases.answer_ms
        )?;
        let t = &self.totals;
        writeln!(
            f,
            "  totals: derived {} | probed {} | matched {} | rounds {} | magic {} | buffered peak {}",
            t.derived, t.probed, t.matched, t.iterations, t.magic_facts, t.buffered_peak
        )?;
        writeln!(
            f,
            "  access: index hits {} | index builds {} | scans {} | builtin evals {}",
            t.index_hits, t.index_builds, t.scans, t.builtin_evals
        )?;
        writeln!(
            f,
            "  plans: hits {} | misses {} | replans {}",
            t.plan_hits, t.plan_misses, t.plan_replans
        )?;
        writeln!(
            f,
            "  {:>5} {:>8} {:>8} {:>8} {:>8} {:>6} {:>6} {:>6}",
            "round", "delta", "derived", "probed", "matched", "idx", "scan", "magic"
        )?;
        for r in &self.rounds {
            let c = &r.counters;
            writeln!(
                f,
                "  {:>5} {:>8} {:>8} {:>8} {:>8} {:>6} {:>6} {:>6}",
                r.round,
                r.delta,
                c.derived,
                c.probed,
                c.matched,
                c.index_hits + c.index_builds,
                c.scans,
                c.magic_facts
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_total_sums_rounds() {
        let m = EvalMetrics {
            strategy: "semi-naive".into(),
            answers: 2,
            rounds: vec![
                RoundMetrics {
                    round: 0,
                    delta: 4,
                    ..RoundMetrics::default()
                },
                RoundMetrics {
                    round: 1,
                    delta: 3,
                    ..RoundMetrics::default()
                },
            ],
            ..EvalMetrics::default()
        };
        assert_eq!(m.delta_total(), 7);
    }

    #[test]
    fn display_renders_phases_rounds_and_access_paths() {
        let m = EvalMetrics {
            strategy: "magic".into(),
            answers: 1,
            totals: Counters {
                derived: 5,
                probed: 9,
                matched: 6,
                index_hits: 2,
                scans: 1,
                ..Counters::default()
            },
            rounds: vec![RoundMetrics {
                round: 0,
                delta: 5,
                counters: Counters {
                    derived: 5,
                    ..Counters::default()
                },
            }],
            phases: PhaseTimings {
                compile_ms: 0.5,
                seed_ms: 0.1,
                fixpoint_ms: 1.0,
                answer_ms: 0.2,
            },
        };
        let s = m.to_string();
        assert!(s.contains("strategy magic"));
        assert!(s.contains("compile 0.500 ms"));
        assert!(s.contains("index hits 2"));
        assert!(s.contains("plans: hits 0 | misses 0 | replans 0"));
        assert!(s.contains("round"));
        // One header line plus one round line.
        assert_eq!(s.lines().count(), 7);
    }

    #[test]
    fn phase_total_is_sum() {
        let p = PhaseTimings {
            compile_ms: 1.0,
            seed_ms: 2.0,
            fixpoint_ms: 3.0,
            answer_ms: 4.0,
        };
        assert!((p.total_ms() - 10.0).abs() < 1e-9);
    }
}
