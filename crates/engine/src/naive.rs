//! Naive bottom-up evaluation.
//!
//! The reference semantics: apply every rule to everything derived so far,
//! round after round, until fixpoint. Exponentially redundant compared to
//! semi-naive but unbeatable as a test oracle for function-free programs.

use crate::error::{Counters, EvalError};
use crate::eval::eval_body_auto_planned;
use crate::metrics::{duration_ms, PhaseTimings, RoundMetrics};
use crate::plan::{JoinPlanner, PlannerRef};
use chainsplit_governor::{BudgetTrip, Governor};
use chainsplit_logic::{Pred, Rule, Subst};
use chainsplit_relation::{Database, Tuple};
use std::time::Instant;

/// Budget options for the bottom-up evaluators.
#[derive(Clone, Debug)]
pub struct BottomUpOptions {
    /// Abort with `FuelExceeded` after this many fixpoint rounds. A
    /// hard safety net (not gracefully drained); for per-query limits
    /// with partial results, set a `Budget` on the governor instead.
    pub max_rounds: usize,
    /// Abort with `FuelExceeded` once this many facts have been derived.
    pub max_facts: usize,
    /// Worker threads for the semi-naive fixpoint (1 = sequential; the
    /// naive oracle always runs sequentially). Answers and work counters
    /// are identical for every value — see DESIGN.md §5.
    pub threads: usize,
    /// The resource governor checked at round boundaries and probe
    /// batches. Disarmed by default (no budget, nothing to observe).
    pub governor: Governor,
    /// The cost-based join planner (plan cache + statistics). Enabled by
    /// default; swap in [`JoinPlanner::disabled()`] for the syntactic
    /// body order. Shared (`Arc`) so a `DeductiveDb` can reuse one plan
    /// cache across queries and invalidate it on fact updates.
    pub planner: PlannerRef,
}

impl Default for BottomUpOptions {
    fn default() -> Self {
        BottomUpOptions {
            max_rounds: chainsplit_governor::DEFAULT_MAX_ROUNDS,
            max_facts: 50_000_000,
            threads: chainsplit_par::env_threads(),
            governor: Governor::new(),
            planner: JoinPlanner::shared(),
        }
    }
}

/// The result of a bottom-up run: all derived IDB relations plus counters,
/// a per-round breakdown, and phase timings.
#[derive(Debug)]
pub struct BottomUpResult {
    pub idb: Database,
    pub counters: Counters,
    /// One entry per fixpoint round; `delta` is the number of tuples that
    /// round added, so the deltas sum to `idb.total_rows()`.
    pub rounds: Vec<RoundMetrics>,
    /// Seed / fixpoint wall time (compile and answer phases belong to the
    /// callers that have them).
    pub phases: PhaseTimings,
    /// `Some` when a governor budget tripped: the run drained at the last
    /// consistent boundary and `idb` is a sound *under*-approximation of
    /// the fixpoint (everything present is derivable; the fixpoint was
    /// not reached).
    pub trip: Option<BudgetTrip>,
}

/// Runs naive evaluation of `rules` over `edb` to fixpoint.
///
/// Errors with `NotEvaluable` if some rule instance produces a non-ground
/// head (the program is not range-restricted under evaluation — e.g. a
/// functional recursion whose exit rule denotes an infinite relation, which
/// is exactly the case §2.2 sends to chain-split evaluation).
pub fn naive_eval(
    rules: &[Rule],
    edb: &Database,
    opts: BottomUpOptions,
) -> Result<BottomUpResult, EvalError> {
    let mut idb = Database::new();
    let mut counters = Counters::default();
    let mut rounds: Vec<RoundMetrics> = Vec::new();
    let _fixpoint_span = chainsplit_trace::span!("fixpoint", strategy = "naive");
    let fixpoint_start = Instant::now();
    let gov = &opts.governor;
    let mut trip: Option<BudgetTrip> = None;
    'fixpoint: loop {
        let mut round_span =
            chainsplit_trace::Span::enter_cat(format!("round {}", rounds.len()), "round");
        round_span.set_attr("round", rounds.len());
        // The round boundary is the drain point: everything inserted so
        // far is derivable, so on a trip we stop *here* and return the
        // partial IDB with the trip attached instead of erroring.
        if let Err(t) = gov.on_round("naive-round") {
            trip = Some(t);
            break 'fixpoint;
        }
        let round_base = counters;
        counters.iterations += 1;
        if counters.iterations > opts.max_rounds {
            return Err(EvalError::FuelExceeded {
                limit: opts.max_rounds,
            });
        }
        let mut new_facts: Vec<(Pred, Tuple)> = Vec::new();
        for rule in rules {
            let lookup = |p: Pred| idb.relation(p).or_else(|| edb.relation(p));
            let sols = match eval_body_auto_planned(
                &rule.body,
                Subst::new(),
                &lookup,
                &mut counters,
                gov,
                &opts.planner,
            ) {
                Ok(sols) => sols,
                // A mid-round budget trip drains too: the IDB holds only
                // complete earlier rounds (this round's derivations are
                // still in `new_facts`/unstarted), which is consistent.
                Err(e) => match e.budget_trip() {
                    Some(t) => {
                        trip = Some(t);
                        break 'fixpoint;
                    }
                    None => return Err(e),
                },
            };
            for s in sols {
                let head = s.resolve_atom(&rule.head);
                if !head.is_ground() {
                    return Err(EvalError::NotEvaluable {
                        atom: head.to_string(),
                    });
                }
                if chainsplit_provenance::is_enabled() {
                    let body: Vec<_> = rule.body.iter().map(|a| s.resolve_atom(a)).collect();
                    gov.add_bytes(chainsplit_provenance::record(&head, rule, &body));
                }
                new_facts.push((head.pred, Tuple::new(head.args)));
            }
        }
        let mut inserted = 0usize;
        let mut grown: Vec<Pred> = Vec::new();
        let account = gov.active();
        for (pred, t) in new_facts {
            // Size up front (only when a budget is armed) so the tuple
            // can move into the relation without a clone on the hot path.
            let bytes = if account {
                t.estimated_bytes() as u64
            } else {
                0
            };
            if idb.relation_mut(pred).insert(t) {
                counters.derived += 1;
                inserted += 1;
                if !grown.contains(&pred) {
                    grown.push(pred);
                }
                if account {
                    gov.add_tuples(1);
                    gov.add_bytes(bytes);
                }
                if counters.derived > opts.max_facts {
                    return Err(EvalError::FuelExceeded {
                        limit: opts.max_facts,
                    });
                }
            }
        }
        // IDB relations the round grew feed next round's joins through
        // `Auto` lookups: stale plans must re-estimate against them.
        for pred in grown {
            opts.planner.bump_epoch(pred);
        }
        rounds.push(RoundMetrics {
            round: rounds.len(),
            delta: inserted,
            counters: counters.since(&round_base),
        });
        round_span.set_attr("delta", inserted);
        if inserted == 0 {
            break 'fixpoint;
        }
    }
    Ok(BottomUpResult {
        idb,
        counters,
        rounds,
        phases: PhaseTimings {
            fixpoint_ms: duration_ms(fixpoint_start.elapsed()),
            ..PhaseTimings::default()
        },
        trip,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainsplit_logic::parse_program;

    fn run(src: &str) -> BottomUpResult {
        let program = parse_program(src).unwrap();
        let (facts, rules) = program.split_facts();
        let edb = Database::from_facts(facts);
        naive_eval(&rules, &edb, BottomUpOptions::default()).unwrap()
    }

    #[test]
    fn transitive_closure() {
        let r = run("edge(a, b). edge(b, c). edge(c, d).
             path(X, Y) :- edge(X, Y).
             path(X, Y) :- edge(X, Z), path(Z, Y).");
        let path = r.idb.relation(Pred::new("path", 2)).unwrap();
        assert_eq!(path.len(), 6); // ab ac ad bc bd cd
        assert_eq!(r.counters.derived, 6);
    }

    #[test]
    fn same_generation() {
        let r = run(
            "parent(c1, p1). parent(c2, p1). parent(g1, c1). parent(g2, c2).
             sibling(c1, c2). sibling(c2, c1).
             sg(X, Y) :- sibling(X, Y).
             sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).",
        );
        let sg = r.idb.relation(Pred::new("sg", 2)).unwrap();
        // siblings c1-c2 both ways, grandchildren g1-g2 both ways.
        assert_eq!(sg.len(), 4);
    }

    #[test]
    fn builtins_in_rules() {
        let r = run("n(1). n(2). n(3).
             big(X) :- n(X), X > 1.
             sum(X, Y, Z) :- n(X), n(Y), plus(X, Y, Z).");
        assert_eq!(r.idb.relation(Pred::new("big", 1)).unwrap().len(), 2);
        assert_eq!(r.idb.relation(Pred::new("sum", 3)).unwrap().len(), 9);
    }

    #[test]
    fn cyclic_data_terminates() {
        let r = run("edge(a, b). edge(b, a).
             path(X, Y) :- edge(X, Y).
             path(X, Y) :- edge(X, Z), path(Z, Y).");
        let path = r.idb.relation(Pred::new("path", 2)).unwrap();
        assert_eq!(path.len(), 4); // aa ab ba bb
    }

    #[test]
    fn non_ground_head_is_rejected() {
        let program = parse_program(
            "append([], L, L).
             append([X | L1], L2, [X | L3]) :- append(L1, L2, L3).",
        )
        .unwrap();
        let (facts, rules) = program.split_facts();
        let edb = Database::from_facts(facts);
        let err = naive_eval(&rules, &edb, BottomUpOptions::default()).unwrap_err();
        assert!(matches!(err, EvalError::NotEvaluable { .. }));
    }

    #[test]
    fn round_budget_enforced() {
        let program = parse_program(
            "n(0).
             n(Y) :- n(X), plus(X, 1, Y).",
        )
        .unwrap();
        let (facts, rules) = program.split_facts();
        let edb = Database::from_facts(facts);
        let err = naive_eval(
            &rules,
            &edb,
            BottomUpOptions {
                max_rounds: 50,
                max_facts: 1_000_000,
                ..BottomUpOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, EvalError::FuelExceeded { .. }));
    }

    #[test]
    fn empty_rules_empty_result() {
        let r = run("edge(a, b).");
        assert_eq!(r.idb.total_rows(), 0);
        assert_eq!(r.trip, None);
    }

    #[test]
    fn governor_rounds_budget_drains_to_partial_result() {
        let program = parse_program(
            "n(0).
             n(Y) :- n(X), plus(X, 1, Y).",
        )
        .unwrap();
        let (facts, rules) = program.split_facts();
        let edb = Database::from_facts(facts);
        let opts = BottomUpOptions::default();
        opts.governor.set_budget(chainsplit_governor::Budget {
            max_rounds: Some(10),
            ..Default::default()
        });
        opts.governor.begin_query();
        // Unlike the hard `max_rounds` fuel error, the governor budget
        // returns Ok: a partial IDB, partial round metrics, and the trip.
        let r = naive_eval(&rules, &edb, opts).unwrap();
        let trip = r.trip.expect("rounds budget must trip");
        assert_eq!(trip.resource, chainsplit_governor::Resource::Rounds);
        assert_eq!(trip.phase, "naive-round");
        assert_eq!(r.rounds.len(), 10);
        // 10 completed rounds of the counter program derived n(1)..n(10)
        // — a consistent under-approximation, not discarded work.
        assert_eq!(r.idb.relation(Pred::new("n", 1)).unwrap().len(), 10);
    }
}
