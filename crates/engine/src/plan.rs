//! Cost-based join planning for the frontier executor.
//!
//! The paper's §2.1 premise is that join order must be chosen
//! *quantitatively*: the join expansion ratio `|p| / distinct_I(p)` — not
//! syntax — decides how far a binding is worth following. The compile-time
//! chain-split decision already runs on those numbers; this module brings
//! them into the runtime hot loop. Instead of the syntactic
//! `(builtin-first, fewest-free-args)` score, a [`JoinPlanner`] orders the
//! *stored* atoms of a rule body greedily by minimum estimated output:
//!
//! ```text
//!     est_rows_out(atom) = est_rows_in × expansion(pred, bound cols)
//!     expansion(p, B)    = |p| / distinct_B(p)     (|p| when B = ∅)
//! ```
//!
//! Builtins stay dynamically scheduled at first evaluability — they only
//! filter or compute, so running one as soon as its inputs are bound is
//! always right and needs no statistics.
//!
//! ## Plan cache
//!
//! Planning runs once per `(body, groundness signature, delta bands)`
//! instead of once per join step per round. The key reuses the executor's
//! `groundness_sig`; [`AtomSource::Fixed`] occurrences (semi-naive deltas)
//! contribute a logarithmic *size band* (4× wide), so a plan is reused
//! while a delta stays in its band and recomputed — a **replan** — when
//! growth crosses a band boundary. Entries snapshot the EDB epoch of every
//! statistic they read; [`JoinPlanner::bump_epoch`] (wired to fact
//! ingest/retract upstream) makes stale entries replan on next touch.
//!
//! Determinism: all planning runs under one mutex, and a `Fixed` relation
//! is estimated from its band's representative size rather than its exact
//! length, so concurrent workers holding different delta partitions of the
//! same band compute byte-identical plans and the hit/miss/replan totals
//! per round are schedule-independent (first computation of a body+sig is
//! the miss; every later computation is a replan).
//!
//! ## Ahead-of-time index provisioning
//!
//! A cached plan lists every `(atom, bound columns)` access path it will
//! probe. Applying the plan calls
//! [`Relation::provision_index`](chainsplit_relation::Relation::provision_index)
//! on each before the join starts, so `IndexBuild` lands at plan
//! application instead of mid-join; racing workers still report exactly
//! one build per (relation, column set).

use crate::builtins::is_builtin_atom;
use crate::error::Counters;
use crate::eval::AtomSource;
use chainsplit_logic::{Atom, Pred, Subst, Term, Var};
use chainsplit_relation::{FxHashMap, FxHashSet, Relation};
use parking_lot::Mutex;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared handle to a [`JoinPlanner`] — cheap to clone into options
/// structs, the way the governor travels.
pub type PlannerRef = Arc<JoinPlanner>;

/// Size band of a relation under 4× widening: band 0 is reserved for the
/// empty relation; band `b ≥ 1` covers `[4^(b-1), 4^b)`.
pub fn size_band(len: usize) -> u8 {
    if len == 0 {
        return 0;
    }
    let mut band = 1u8;
    let mut ceil = 4usize;
    while len >= ceil {
        band += 1;
        ceil = ceil.saturating_mul(4);
    }
    band
}

/// The representative size planning uses for a banded (delta) relation —
/// the band's lower edge, a pure function of the band so concurrent
/// planners agree.
fn band_representative(band: u8) -> f64 {
    if band == 0 {
        0.0
    } else {
        4f64.powi(band as i32 - 1)
    }
}

/// One probe the plan will perform: which body atom, and the columns bound
/// at that point of the join (the access path to provision).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlannedProbe {
    /// Index into the body slice handed to the executor.
    pub atom: usize,
    /// Sorted bound column positions (empty = full scan, nothing to
    /// provision).
    pub cols: Vec<usize>,
}

/// A cached join order over the stored atoms of one body.
#[derive(Clone, Debug)]
pub struct JoinPlan {
    /// Stored-atom positions in execution order (builtins excluded; the
    /// executor interleaves them at first evaluability).
    pub order: Vec<usize>,
    /// Access paths the plan probes, parallel to `order`.
    pub probes: Vec<PlannedProbe>,
    /// Estimated frontier size *after* each step of `order` (starting from
    /// an input frontier of 1), for `:explain` and the plan trace span.
    pub est_rows: Vec<f64>,
    /// EDB epochs of every predicate whose statistics the plan read.
    support: Vec<(Pred, u64)>,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct PlanKey {
    body_fp: u64,
    sig_fp: u64,
    bands_fp: u64,
}

/// Cumulative planner telemetry, surfaced by the CLI's `:plan stats`.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct PlanStats {
    /// Lookups served by a cached, still-valid plan.
    pub hits: u64,
    /// First-ever plan computations for a (body, signature).
    pub misses: u64,
    /// Recomputations: a delta crossed a 4× band, or an EDB epoch moved.
    pub replans: u64,
    /// Epoch bumps received (fact inserts/retracts upstream).
    pub invalidations: u64,
}

#[derive(Default)]
struct PlannerInner {
    plans: FxHashMap<PlanKey, Arc<JoinPlan>>,
    /// (body, sig) pairs ever planned — distinguishes a miss (first
    /// computation) from a replan (band move / stale epochs).
    seen: FxHashSet<(u64, u64)>,
    /// Memoized `(pred, cols) -> (epoch, distinct)`: planning is O(1)
    /// after first touch, re-scanned only after an epoch bump.
    distinct_memo: FxHashMap<(Pred, Vec<usize>), (u64, usize)>,
    epochs: FxHashMap<Pred, u64>,
    stats: PlanStats,
}

/// The cost-based join planner: statistics-driven ordering behind a
/// per-(body, adornment, delta-band) plan cache. See the module docs.
#[derive(Default)]
pub struct JoinPlanner {
    enabled: AtomicBool,
    inner: Mutex<PlannerInner>,
}

impl std::fmt::Debug for JoinPlanner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinPlanner")
            .field("enabled", &self.is_enabled())
            .field("stats", &self.stats())
            .finish()
    }
}

impl JoinPlanner {
    /// A planner with cost-based ordering switched on.
    pub fn new() -> JoinPlanner {
        JoinPlanner {
            enabled: AtomicBool::new(true),
            inner: Mutex::new(PlannerInner::default()),
        }
    }

    /// A planner that leaves the executor on its syntactic order (used by
    /// `:plan off`, the differential oracle's planner-off leg, and as the
    /// comparison baseline in the `joins` bench).
    pub fn disabled() -> JoinPlanner {
        JoinPlanner {
            enabled: AtomicBool::new(false),
            inner: Mutex::new(PlannerInner::default()),
        }
    }

    /// A fresh shared handle, enabled.
    pub fn shared() -> PlannerRef {
        Arc::new(JoinPlanner::new())
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Toggles cost-based ordering. Turning the planner off (or back on)
    /// also clears the cache: cached orders must never outlive the policy
    /// that produced them.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        inner.plans.clear();
        inner.seen.clear();
        inner.distinct_memo.clear();
    }

    /// Cumulative hit/miss/replan counts.
    pub fn stats(&self) -> PlanStats {
        self.inner.lock().stats
    }

    /// Records that `pred`'s stored extension changed (fact ingest or
    /// retract). Cached plans whose statistics read `pred` replan on next
    /// touch; the memoized distinct counts for `pred` refresh likewise.
    pub fn bump_epoch(&self, pred: Pred) {
        let mut inner = self.inner.lock();
        *inner.epochs.entry(pred).or_insert(0) += 1;
        inner.stats.invalidations += 1;
    }

    /// Drops every cached plan and statistic (program recompiled).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.plans.clear();
        inner.seen.clear();
        inner.distinct_memo.clear();
        inner.epochs.clear();
    }

    /// Returns the join order for `body` under the frontier signature
    /// `sig`, planning (and caching) it if needed. `probe` must be a
    /// representative substitution of a groundness-uniform frontier.
    ///
    /// Counter discipline: exactly one of `plan_hits` / `plan_misses` /
    /// `plan_replans` advances per call, and because planning holds the
    /// cache lock end-to-end, per-round totals are identical under any
    /// worker schedule.
    pub fn plan<'a>(
        &self,
        body: &[(&Atom, AtomSource<'a>)],
        sig: &[u64],
        probe: &Subst,
        lookup: &dyn Fn(Pred) -> Option<&'a Relation>,
        counters: &mut Counters,
    ) -> Arc<JoinPlan> {
        let body_fp = fingerprint_body(body);
        let sig_fp = fingerprint_u64s(sig.iter().copied());
        let bands_fp = fingerprint_u64s(body.iter().map(|(_, src)| match src {
            AtomSource::Fixed(rel) => size_band(rel.len()) as u64,
            AtomSource::Auto => u64::MAX,
        }));
        let key = PlanKey {
            body_fp,
            sig_fp,
            bands_fp,
        };

        let mut inner = self.inner.lock();
        if let Some(plan) = inner.plans.get(&key) {
            let valid = plan
                .support
                .iter()
                .all(|&(p, e)| inner.epochs.get(&p).copied().unwrap_or(0) == e);
            if valid {
                let plan = Arc::clone(plan);
                inner.stats.hits += 1;
                counters.plan_hits += 1;
                return plan;
            }
        }
        // Compute (miss or replan) while still holding the lock, so a
        // racing worker blocks and then hits instead of double-counting.
        let mut plan_span = chainsplit_trace::Span::enter_cat("plan", "plan");
        let plan = Arc::new(compute_plan(body, probe, lookup, &mut inner));
        if plan_span.is_recording() {
            plan_span.set_attr(
                "order",
                plan.order
                    .iter()
                    .map(|&i| body[i].0.pred.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
            );
            plan_span.set_attr(
                "est_rows",
                plan.est_rows
                    .iter()
                    .map(|e| format!("{e:.1}"))
                    .collect::<Vec<_>>()
                    .join(","),
            );
        }
        let first = inner.seen.insert((body_fp, sig_fp));
        if first {
            inner.stats.misses += 1;
            counters.plan_misses += 1;
        } else {
            inner.stats.replans += 1;
            counters.plan_replans += 1;
        }
        inner.plans.insert(key, Arc::clone(&plan));
        plan
    }

    /// Plans `body` without touching the cache, the `seen` set, or any
    /// counter — the `:explain` preview. Returns exactly the plan
    /// [`JoinPlanner::plan`] would compute on a miss for this body and
    /// probe, against current statistics.
    pub fn preview<'a>(
        &self,
        body: &[(&Atom, AtomSource<'a>)],
        probe: &Subst,
        lookup: &dyn Fn(Pred) -> Option<&'a Relation>,
    ) -> JoinPlan {
        let mut inner = self.inner.lock();
        compute_plan(body, probe, lookup, &mut inner)
    }

    /// Estimated expansion of probing `pred`'s stored extension `rel` on
    /// bound columns `cols`: `|rel| / distinct(cols)`, through the
    /// epoch-tagged memo. The goal-directed evaluators use this to rank
    /// individual subgoals without building a full body plan.
    pub fn expansion(&self, pred: Pred, cols: &[usize], rel: &Relation) -> f64 {
        let n = rel.len();
        if n == 0 {
            return 0.0;
        }
        if cols.is_empty() {
            return n as f64;
        }
        let mut inner = self.inner.lock();
        let d = memo_distinct(&mut inner, pred, cols, rel);
        n as f64 / d.max(1) as f64
    }

    /// Provisions every access path `plan` will probe (ahead-of-time index
    /// builds), resolving each atom to its relation the same way the
    /// executor will. Builds count into `counters.index_builds`; under
    /// races exactly one worker counts each build.
    pub fn provision<'a>(
        &self,
        plan: &JoinPlan,
        body: &[(&Atom, AtomSource<'a>)],
        lookup: &dyn Fn(Pred) -> Option<&'a Relation>,
        counters: &mut Counters,
    ) {
        for probe in &plan.probes {
            let (atom, src) = &body[probe.atom];
            let rel = match src {
                AtomSource::Fixed(rel) => Some(*rel),
                AtomSource::Auto => lookup(atom.pred),
            };
            if let Some(rel) = rel {
                if rel.provision_index(&probe.cols) {
                    counters.index_builds += 1;
                }
            }
        }
    }
}

/// Hashes the body shape: each atom plus whether it reads a fixed (delta)
/// relation. Two bodies with equal fingerprints plan identically.
fn fingerprint_body(body: &[(&Atom, AtomSource)]) -> u64 {
    let mut h = chainsplit_relation::hash::FxHasher::default();
    for (atom, src) in body {
        atom.hash(&mut h);
        matches!(src, AtomSource::Fixed(_)).hash(&mut h);
    }
    h.finish()
}

fn fingerprint_u64s(vals: impl Iterator<Item = u64>) -> u64 {
    let mut h = chainsplit_relation::hash::FxHasher::default();
    for v in vals {
        v.hash(&mut h);
    }
    h.finish()
}

/// Distinct count of `pred` on `cols` through the epoch-tagged memo.
fn memo_distinct(inner: &mut PlannerInner, pred: Pred, cols: &[usize], rel: &Relation) -> usize {
    let epoch = inner.epochs.get(&pred).copied().unwrap_or(0);
    if let Some(&(e, n)) = inner.distinct_memo.get(&(pred, cols.to_vec())) {
        if e == epoch {
            return n;
        }
    }
    let n = rel.distinct(cols);
    inner
        .distinct_memo
        .insert((pred, cols.to_vec()), (epoch, n));
    n
}

/// Greedy minimum-estimated-output ordering of the stored atoms.
fn compute_plan<'a>(
    body: &[(&Atom, AtomSource<'a>)],
    probe: &Subst,
    lookup: &dyn Fn(Pred) -> Option<&'a Relation>,
    inner: &mut PlannerInner,
) -> JoinPlan {
    // Variables already ground come from the probe; variables bound by
    // atoms scheduled so far accumulate in `extra`.
    let mut extra: FxHashSet<Var> = FxHashSet::default();
    let ground_under = |arg: &Term, extra: &FxHashSet<Var>| -> bool {
        arg.vars()
            .into_iter()
            .all(|v| extra.contains(&v) || probe.is_ground(&Term::Var(v)))
    };
    let bound_cols = |atom: &Atom, extra: &FxHashSet<Var>| -> Vec<usize> {
        atom.args
            .iter()
            .enumerate()
            .filter(|(_, arg)| ground_under(arg, extra))
            .map(|(i, _)| i)
            .collect()
    };

    let mut remaining: Vec<usize> = body
        .iter()
        .enumerate()
        .filter(|(_, (a, src))| matches!(src, AtomSource::Fixed(_)) || !is_builtin_atom(a))
        .map(|(i, _)| i)
        .collect();
    let mut support: FxHashMap<Pred, u64> = FxHashMap::default();
    let mut order = Vec::with_capacity(remaining.len());
    let mut probes = Vec::with_capacity(remaining.len());
    let mut est_rows = Vec::with_capacity(remaining.len());
    let mut est = 1.0f64;

    while !remaining.is_empty() {
        let mut best: Option<(f64, usize, usize, Vec<usize>)> = None;
        for (pos, &i) in remaining.iter().enumerate() {
            let (atom, src) = &body[i];
            let cols = bound_cols(atom, &extra);
            let expansion = match src {
                AtomSource::Fixed(rel) => {
                    // Banded: concurrent planners must agree whatever delta
                    // partition they hold, so the exact length never enters
                    // the estimate — only its band's representative. With
                    // key columns bound a delta behaves nearly key-unique.
                    let rep = band_representative(size_band(rel.len()));
                    if cols.is_empty() {
                        rep
                    } else {
                        1.0f64.min(rep)
                    }
                }
                AtomSource::Auto => {
                    // Record the support epoch even for an absent/empty
                    // relation: a plan estimated against "nothing derived
                    // yet" must still replan once the predicate grows.
                    let epoch = inner.epochs.get(&atom.pred).copied().unwrap_or(0);
                    support.entry(atom.pred).or_insert(epoch);
                    match lookup(atom.pred) {
                        None => 0.0,
                        Some(rel) => {
                            let n = rel.len();
                            if n == 0 {
                                0.0
                            } else if cols.is_empty() {
                                n as f64
                            } else {
                                n as f64 / memo_distinct(inner, atom.pred, &cols, rel) as f64
                            }
                        }
                    }
                }
            };
            let out = est * expansion;
            let better = match &best {
                None => true,
                Some((b_out, _, b_i, _)) => {
                    matches!(out.total_cmp(b_out), std::cmp::Ordering::Less)
                        || (out.total_cmp(b_out) == std::cmp::Ordering::Equal && i < *b_i)
                }
            };
            if better {
                best = Some((out, pos, i, cols));
            }
        }
        let (out, pos, i, cols) = best.expect("non-empty remaining has a best");
        remaining.remove(pos);
        for v in body[i].0.vars() {
            extra.insert(v);
        }
        order.push(i);
        probes.push(PlannedProbe { atom: i, cols });
        // The frontier never estimates below one row while non-empty
        // inputs remain: a join can filter, but `est` feeding the *next*
        // choice as exactly 0 would make every later pick a tie.
        est = out.max(f64::MIN_POSITIVE);
        est_rows.push(out);
    }

    let mut support: Vec<(Pred, u64)> = support.into_iter().collect();
    support.sort_by_key(|&(p, _)| (p.name, p.arity));
    JoinPlan {
        order,
        probes,
        est_rows,
        support,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainsplit_logic::parse_query;
    use chainsplit_relation::{Database, Tuple};

    fn db_with(pred: &str, rows: &[(i64, i64)]) -> Database {
        let mut db = Database::new();
        for &(a, b) in rows {
            db.add_fact(&Atom::new(pred, vec![Term::Int(a), Term::Int(b)]));
        }
        db
    }

    #[test]
    fn size_bands_widen_by_4x() {
        assert_eq!(size_band(0), 0);
        assert_eq!(size_band(1), 1);
        assert_eq!(size_band(3), 1);
        assert_eq!(size_band(4), 2);
        assert_eq!(size_band(15), 2);
        assert_eq!(size_band(16), 3);
        assert_eq!(size_band(64), 4);
    }

    #[test]
    fn plans_selective_atom_first() {
        // big(X, Y) has 100 rows; tiny(Y, Z) has 2. With nothing bound the
        // syntactic score ties on free-arg count and takes body order
        // (big first — a 100-row frontier); the cost-based order starts
        // from tiny and probes big through its bound column.
        let mut db = Database::new();
        for i in 0..100 {
            db.add_fact(&Atom::new("big", vec![Term::Int(i), Term::Int(i % 10)]));
        }
        db.add_fact(&Atom::new("tiny", vec![Term::Int(1), Term::Int(2)]));
        db.add_fact(&Atom::new("tiny", vec![Term::Int(3), Term::Int(4)]));

        let big = parse_query("big(X, Y)").unwrap();
        let tiny = parse_query("tiny(Y, Z)").unwrap();
        let body = vec![(&big, AtomSource::Auto), (&tiny, AtomSource::Auto)];
        let planner = JoinPlanner::new();
        let mut c = Counters::default();
        let lookup = |p: Pred| db.relation(p);
        let plan = planner.plan(&body, &[0, 0], &Subst::new(), &lookup, &mut c);
        assert_eq!(plan.order, vec![1, 0], "tiny first, then big via Y");
        assert_eq!(plan.probes[0].cols, Vec::<usize>::new());
        assert_eq!(plan.probes[1].cols, vec![1], "big probed on its bound Y");
        assert_eq!(c.plan_misses, 1);
        // Estimated rows: 2 out of tiny, then 2 × (100 / distinct_Y(big)).
        assert_eq!(plan.est_rows[0], 2.0);
        assert_eq!(plan.est_rows[1], 2.0 * (100.0 / 10.0));
    }

    #[test]
    fn cache_hits_and_epoch_replans() {
        let db = db_with("e", &[(1, 2), (2, 3)]);
        let e = parse_query("e(X, Y)").unwrap();
        let body = vec![(&e, AtomSource::Auto)];
        let planner = JoinPlanner::new();
        let lookup = |p: Pred| db.relation(p);

        let mut c = Counters::default();
        planner.plan(&body, &[0], &Subst::new(), &lookup, &mut c);
        planner.plan(&body, &[0], &Subst::new(), &lookup, &mut c);
        assert_eq!((c.plan_misses, c.plan_hits, c.plan_replans), (1, 1, 0));

        // An epoch bump on a supporting predicate forces a replan…
        planner.bump_epoch(Pred::new("e", 2));
        planner.plan(&body, &[0], &Subst::new(), &lookup, &mut c);
        assert_eq!((c.plan_misses, c.plan_hits, c.plan_replans), (1, 1, 1));
        // …and an unrelated predicate's bump does not.
        planner.bump_epoch(Pred::new("other", 2));
        planner.plan(&body, &[0], &Subst::new(), &lookup, &mut c);
        assert_eq!((c.plan_misses, c.plan_hits, c.plan_replans), (1, 2, 1));

        let s = planner.stats();
        assert_eq!((s.misses, s.hits, s.replans, s.invalidations), (1, 2, 1, 2));
    }

    #[test]
    fn delta_band_crossing_replans() {
        let db = Database::new();
        let lookup = |p: Pred| db.relation(p);
        let d = parse_query("d(X, Y)").unwrap();
        let planner = JoinPlanner::new();
        let mut c = Counters::default();

        let mut delta = Relation::new(2);
        delta.insert(Tuple::new(vec![Term::Int(1), Term::Int(2)]));
        let body = vec![(&d, AtomSource::Fixed(&delta))];
        planner.plan(&body, &[0], &Subst::new(), &lookup, &mut c);

        // Same band (1..=3 rows): cache hit.
        let mut delta2 = delta.clone();
        delta2.insert(Tuple::new(vec![Term::Int(2), Term::Int(3)]));
        let body2 = vec![(&d, AtomSource::Fixed(&delta2))];
        planner.plan(&body2, &[0], &Subst::new(), &lookup, &mut c);
        assert_eq!((c.plan_misses, c.plan_hits, c.plan_replans), (1, 1, 0));

        // Crossing into band 2 (≥ 4 rows): replan, not a fresh miss.
        let mut delta3 = delta2.clone();
        for i in 10..20 {
            delta3.insert(Tuple::new(vec![Term::Int(i), Term::Int(i)]));
        }
        let body3 = vec![(&d, AtomSource::Fixed(&delta3))];
        planner.plan(&body3, &[0], &Subst::new(), &lookup, &mut c);
        assert_eq!((c.plan_misses, c.plan_hits, c.plan_replans), (1, 1, 1));
    }

    #[test]
    fn provision_builds_planned_paths_ahead_of_time() {
        use chainsplit_relation::LAZY_INDEX_THRESHOLD;
        let mut db = Database::new();
        for i in 0..(LAZY_INDEX_THRESHOLD as i64 + 8) {
            db.add_fact(&Atom::new("big", vec![Term::Int(i), Term::Int(i % 4)]));
        }
        db.add_fact(&Atom::new("tiny", vec![Term::Int(1), Term::Int(2)]));

        let big = parse_query("big(X, Y)").unwrap();
        let tiny = parse_query("tiny(Y, Z)").unwrap();
        let body = vec![(&big, AtomSource::Auto), (&tiny, AtomSource::Auto)];
        let planner = JoinPlanner::new();
        let mut c = Counters::default();
        let lookup = |p: Pred| db.relation(p);
        let plan = planner.plan(&body, &[0, 0], &Subst::new(), &lookup, &mut c);
        planner.provision(&plan, &body, &lookup, &mut c);
        assert_eq!(c.index_builds, 1, "big's [1] path built at plan time");
        let big_rel = db.relation(Pred::new("big", 2)).unwrap();
        assert!(big_rel.has_index(&[1]));
        // Re-applying the plan builds nothing new.
        planner.provision(&plan, &body, &lookup, &mut c);
        assert_eq!(c.index_builds, 1);
    }

    #[test]
    fn disabling_clears_the_cache() {
        let db = db_with("e", &[(1, 2)]);
        let e = parse_query("e(X, Y)").unwrap();
        let body = vec![(&e, AtomSource::Auto)];
        let planner = JoinPlanner::new();
        let lookup = |p: Pred| db.relation(p);
        let mut c = Counters::default();
        planner.plan(&body, &[0], &Subst::new(), &lookup, &mut c);
        planner.set_enabled(false);
        assert!(!planner.is_enabled());
        planner.set_enabled(true);
        planner.plan(&body, &[0], &Subst::new(), &lookup, &mut c);
        assert_eq!(c.plan_misses, 2, "toggling dropped the cached plan");
    }
}
