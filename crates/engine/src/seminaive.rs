//! Semi-naive bottom-up evaluation.
//!
//! The workhorse fixpoint engine \[1\]: each round, every rule re-fires only
//! against tuples derived in the previous round. For a rule with several
//! IDB body atoms we generate one *delta variant* per IDB occurrence (that
//! occurrence reads the delta, the others read the full relation), the
//! standard differentiation of the immediate-consequence operator.
//!
//! Both the magic-sets methods and the chain-split magic method of
//! Algorithm 3.1 finish with exactly this evaluation on their rewritten
//! programs.

use crate::error::{Counters, EvalError};
use crate::eval::{eval_body_planned, AtomSource};
use crate::metrics::{duration_ms, PhaseTimings, RoundMetrics};
use chainsplit_governor::BudgetTrip;
use chainsplit_logic::{Pred, Rule, Subst};
use chainsplit_par::Pool;
use chainsplit_relation::{Database, DeltaRelation, Relation, Tuple};
use std::collections::BTreeMap;
use std::time::Instant;

pub use crate::naive::{BottomUpOptions, BottomUpResult};

/// How many hash partitions each round's delta is split into. Fixed —
/// independent of the thread count — so that partition membership, and
/// therefore every per-partition work counter, is identical whether the
/// partitions run on one thread or eight. See DESIGN.md §5.
pub const DELTA_PARTITIONS: usize = 8;

/// Columns of the delta occurrence `body[dpos]` whose variables join with
/// the rest of the rule (other body atoms or the head). Tuples are
/// partitioned by hashing these columns; an empty result means "hash the
/// whole tuple", which is still a valid (if join-oblivious) partition.
pub(crate) fn join_key_cols(rule: &Rule, dpos: usize) -> Vec<usize> {
    let mut other_vars = rule.head.vars();
    for (i, a) in rule.body.iter().enumerate() {
        if i != dpos {
            other_vars.extend(a.vars());
        }
    }
    rule.body[dpos]
        .args
        .iter()
        .enumerate()
        .filter(|(_, t)| t.vars().iter().any(|v| other_vars.contains(v)))
        .map(|(i, _)| i)
        .collect()
}

/// One schedulable piece of a fixpoint round: a delta variant of a rule
/// restricted to one hash partition of the delta relation.
struct Unit<'a> {
    rule: &'a Rule,
    dpos: usize,
    part: Relation,
}

/// What one parallel unit yields: its derived tuples, its counters, and
/// the witnesses it buffered (flushed on the merge thread in unit order).
type UnitYield = (
    Vec<(Pred, Tuple)>,
    Counters,
    Vec<chainsplit_provenance::Pending>,
);

/// Runs semi-naive evaluation of `rules` over `edb` to fixpoint.
pub fn seminaive_eval(
    rules: &[Rule],
    edb: &Database,
    opts: BottomUpOptions,
) -> Result<BottomUpResult, EvalError> {
    let mut counters = Counters::default();
    let idb_preds: Vec<Pred> = {
        let mut v: Vec<Pred> = rules.iter().map(|r| r.head.pred).collect();
        v.sort();
        v.dedup();
        v
    };
    let mut deltas: BTreeMap<Pred, DeltaRelation> = idb_preds
        .iter()
        .map(|&p| (p, DeltaRelation::new(p.arity as usize)))
        .collect();

    // Round zero: rules with no IDB body atom fire once (they can never
    // fire from a delta).
    let is_idb = |p: Pred| deltas.contains_key(&p);
    let base_rules: Vec<&Rule> = rules
        .iter()
        .filter(|r| !r.body.iter().any(|a| is_idb(a.pred)))
        .collect();
    let rec_rules: Vec<&Rule> = rules
        .iter()
        .filter(|r| r.body.iter().any(|a| is_idb(a.pred)))
        .collect();

    let mut rounds: Vec<RoundMetrics> = Vec::new();
    let mut phases = PhaseTimings::default();
    let gov = &opts.governor;
    let mut trip: Option<BudgetTrip> = None;

    {
        let mut seed_span = chainsplit_trace::span!("seed");
        let seed_start = Instant::now();
        let round_base = counters;
        let mut seed: Vec<(Pred, Tuple)> = Vec::new();
        'seed: for rule in &base_rules {
            let lookup = |p: Pred| edb.relation(p);
            let tagged: Vec<(&chainsplit_logic::Atom, AtomSource)> =
                rule.body.iter().map(|a| (a, AtomSource::Auto)).collect();
            let sols = match eval_body_planned(
                &tagged,
                Subst::new(),
                &lookup,
                &mut counters,
                gov,
                &opts.planner,
            ) {
                Ok(sols) => sols,
                // A budget trip during seeding drains to the cleanest
                // state of all: discard the half-built seed round and
                // return an empty (trivially consistent) IDB.
                Err(e) => match e.budget_trip() {
                    Some(t) => {
                        seed.clear();
                        trip = Some(t);
                        break 'seed;
                    }
                    None => return Err(e),
                },
            };
            for s in sols {
                let head = s.resolve_atom(&rule.head);
                if !head.is_ground() {
                    return Err(EvalError::NotEvaluable {
                        atom: head.to_string(),
                    });
                }
                if chainsplit_provenance::is_enabled() {
                    let body: Vec<_> = rule.body.iter().map(|a| s.resolve_atom(a)).collect();
                    gov.add_bytes(chainsplit_provenance::record(&head, rule, &body));
                }
                seed.push((head.pred, Tuple::new(head.args)));
            }
        }
        let mut seeded = 0usize;
        let account = gov.active();
        for (pred, t) in seed {
            let bytes = if account {
                t.estimated_bytes() as u64
            } else {
                0
            };
            if deltas.get_mut(&pred).unwrap().seed(t) {
                counters.derived += 1;
                seeded += 1;
                if account {
                    gov.add_tuples(1);
                    gov.add_bytes(bytes);
                }
            }
        }
        // Round 0 is the seeding round: base rules, and for rewritten
        // magic programs the magic seed fact.
        rounds.push(RoundMetrics {
            round: 0,
            delta: seeded,
            counters: counters.since(&round_base),
        });
        seed_span.set_attr("delta", seeded);
        phases.seed_ms = duration_ms(seed_start.elapsed());
    }

    let pool = Pool::new(opts.threads);
    let _fixpoint_span = chainsplit_trace::span!("fixpoint", strategy = "semi-naive");
    let fixpoint_start = Instant::now();
    'fixpoint: while trip.is_none() {
        let mut round_span =
            chainsplit_trace::Span::enter_cat(format!("round {}", rounds.len()), "round");
        round_span.set_attr("round", rounds.len());
        // Round boundary = drain point: every delta has been advanced, so
        // on a trip the materialized state below is a consistent
        // under-approximation of the fixpoint.
        if let Err(t) = gov.on_round("seminaive-round") {
            trip = Some(t);
            break 'fixpoint;
        }
        let round_base = counters;
        counters.iterations += 1;
        if counters.iterations > opts.max_rounds {
            return Err(EvalError::FuelExceeded {
                limit: opts.max_rounds,
            });
        }

        // One unit per (rule, IDB occurrence, non-empty delta partition):
        // that occurrence reads its partition of the delta, every other
        // atom reads the full state. The partitioning is by hash of the
        // join-key columns and into a fixed number of partitions, so the
        // unit list — and every counter each unit accrues — is the same
        // for every thread count.
        let mut units: Vec<Unit<'_>> = Vec::new();
        for rule in &rec_rules {
            let idb_positions: Vec<usize> = rule
                .body
                .iter()
                .enumerate()
                .filter(|(_, a)| deltas.contains_key(&a.pred))
                .map(|(i, _)| i)
                .collect();
            for &dpos in &idb_positions {
                let delta_rel = deltas[&rule.body[dpos].pred].delta();
                if delta_rel.is_empty() {
                    continue;
                }
                let cols = join_key_cols(rule, dpos);
                for part in delta_rel.partition_by_hash(DELTA_PARTITIONS, &cols) {
                    if part.is_empty() {
                        continue;
                    }
                    units.push(Unit { rule, dpos, part });
                }
            }
        }

        let round_id = round_span.id();
        let deltas_ref = &deltas;
        let planner = &opts.planner;
        let tasks: Vec<_> = units
            .iter()
            .enumerate()
            .map(|(wi, u)| {
                move || -> Result<UnitYield, EvalError> {
                    let mut worker_span = chainsplit_trace::Span::enter_cat_under(
                        format!("worker {wi}"),
                        "worker",
                        round_id,
                    );
                    worker_span.set_attr("pred", u.rule.head.pred);
                    worker_span.set_attr("tuples", u.part.len());
                    // Witnesses are buffered per unit and flushed on the
                    // merge thread in unit order, so first-witness-wins is
                    // thread-count-invariant (DESIGN.md §12).
                    let prov = chainsplit_provenance::is_enabled();
                    if prov {
                        chainsplit_provenance::begin_buffer();
                    }
                    let inner = || -> Result<(Vec<(Pred, Tuple)>, Counters), EvalError> {
                        let mut c = Counters::default();
                        let mut out: Vec<(Pred, Tuple)> = Vec::new();
                        let mut tagged: Vec<(&chainsplit_logic::Atom, AtomSource)> = Vec::new();
                        // The delta occurrence leads: it is the novelty the
                        // round is about, and leading with it seeds bindings.
                        tagged.push((&u.rule.body[u.dpos], AtomSource::Fixed(&u.part)));
                        for (i, a) in u.rule.body.iter().enumerate() {
                            if i == u.dpos {
                                continue;
                            }
                            match deltas_ref.get(&a.pred) {
                                Some(d) => tagged.push((a, AtomSource::Fixed(d.all()))),
                                None => tagged.push((a, AtomSource::Auto)),
                            }
                        }
                        let lookup = |p: Pred| edb.relation(p);
                        // Workers observe the shared governor at every probe
                        // batch, so cross-thread cancellation and deadlines
                        // reach into a round in flight.
                        for s in
                            eval_body_planned(&tagged, Subst::new(), &lookup, &mut c, gov, planner)?
                        {
                            let head = s.resolve_atom(&u.rule.head);
                            if !head.is_ground() {
                                return Err(EvalError::NotEvaluable {
                                    atom: head.to_string(),
                                });
                            }
                            if prov {
                                let body: Vec<_> =
                                    u.rule.body.iter().map(|a| s.resolve_atom(a)).collect();
                                chainsplit_provenance::record(&head, u.rule, &body);
                            }
                            out.push((head.pred, Tuple::new(head.args)));
                        }
                        Ok((out, c))
                    };
                    let result = inner();
                    // Always uninstall the buffer: pool threads (and the
                    // participating caller) are reused, and a leaked buffer
                    // would swallow later direct recordings.
                    let wbuf = if prov {
                        chainsplit_provenance::take_buffer()
                    } else {
                        Vec::new()
                    };
                    result.map(|(out, c)| (out, c, wbuf))
                }
            })
            .collect();
        let results = pool.run(tasks).map_err(EvalError::from)?;

        // Merge in unit order: counters sum fieldwise and derived tuples
        // concatenate, so the result is independent of which worker ran
        // which unit when.
        let mut derived: Vec<(Pred, Tuple)> = Vec::new();
        for r in results {
            match r {
                Ok((out, c, wbuf)) => {
                    counters.add(&c);
                    gov.add_bytes(chainsplit_provenance::flush(wbuf));
                    derived.extend(out);
                }
                // A budget trip inside a unit drains the whole round:
                // its partial derivations are discarded (they never reach
                // `pending`), leaving the last advanced state consistent.
                Err(e) => match e.budget_trip() {
                    Some(t) => {
                        trip = Some(t);
                        break 'fixpoint;
                    }
                    None => return Err(e),
                },
            }
        }

        let mut inserted = 0usize;
        let account = gov.active();
        for (pred, t) in derived {
            let bytes = if account {
                t.estimated_bytes() as u64
            } else {
                0
            };
            if deltas.get_mut(&pred).unwrap().derive(t) {
                counters.derived += 1;
                inserted += 1;
                if account {
                    gov.add_tuples(1);
                    gov.add_bytes(bytes);
                }
                if counters.derived > opts.max_facts {
                    return Err(EvalError::FuelExceeded {
                        limit: opts.max_facts,
                    });
                }
            }
        }
        rounds.push(RoundMetrics {
            round: rounds.len(),
            delta: inserted,
            counters: counters.since(&round_base),
        });
        round_span.set_attr("delta", inserted);
        let advanced: usize = deltas.values_mut().map(DeltaRelation::advance).sum();
        if advanced == 0 {
            break 'fixpoint;
        }
    }
    phases.fixpoint_ms = duration_ms(fixpoint_start.elapsed());

    // `DeltaRelation::all()` excludes un-advanced pending tuples, so this
    // materialization is consistent on both the fixpoint and drain paths.
    let mut idb = Database::new();
    for (pred, d) in &deltas {
        let rel = idb.relation_mut(*pred);
        for t in d.all().iter() {
            rel.insert(t.clone());
        }
    }
    Ok(BottomUpResult {
        idb,
        counters,
        rounds,
        phases,
        trip,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_eval;
    use chainsplit_logic::parse_program;

    fn both(src: &str) -> (BottomUpResult, BottomUpResult) {
        let program = parse_program(src).unwrap();
        let (facts, rules) = program.split_facts();
        let edb = Database::from_facts(facts);
        let n = naive_eval(&rules, &edb, BottomUpOptions::default()).unwrap();
        let s = seminaive_eval(&rules, &edb, BottomUpOptions::default()).unwrap();
        (n, s)
    }

    fn assert_same_idb(a: &Database, b: &Database) {
        let preds: Vec<Pred> = a.preds().chain(b.preds()).collect();
        for p in preds {
            let la = a.relation(p).map_or(0, |r| r.len());
            let lb = b.relation(p).map_or(0, |r| r.len());
            assert_eq!(la, lb, "cardinality mismatch for {p}");
            if let (Some(ra), Some(rb)) = (a.relation(p), b.relation(p)) {
                for t in ra.iter() {
                    assert!(rb.contains(t), "{p}: {t} missing");
                }
            }
        }
    }

    #[test]
    fn agrees_with_naive_on_tc() {
        let (n, s) = both(
            "edge(a, b). edge(b, c). edge(c, d). edge(d, b).
             path(X, Y) :- edge(X, Y).
             path(X, Y) :- edge(X, Z), path(Z, Y).",
        );
        assert_same_idb(&n.idb, &s.idb);
        // Semi-naive must inspect fewer join candidates than naive.
        assert!(s.counters.probed < n.counters.probed);
        assert!(s.counters.matched < n.counters.matched);
    }

    #[test]
    fn round_deltas_sum_to_final_relation_size() {
        // Each tuple enters the delta exactly once, so the per-round delta
        // sizes must sum to the final materialized size — for both the
        // `path` and `sg` workloads the observability layer reports on.
        let (_, path) = both(
            "edge(a, b). edge(b, c). edge(c, d). edge(d, b).
             path(X, Y) :- edge(X, Y).
             path(X, Y) :- edge(X, Z), path(Z, Y).",
        );
        let delta_sum: usize = path.rounds.iter().map(|r| r.delta).sum();
        assert_eq!(delta_sum, path.idb.total_rows());
        assert!(path.rounds.len() >= 2, "path needs several rounds");

        let (_, sg) = both(
            "parent(c1, p1). parent(c2, p1). parent(g1, c1). parent(g2, c2).
             parent(h1, g1). parent(h2, g2).
             sibling(c1, c2). sibling(c2, c1).
             sg(X, Y) :- sibling(X, Y).
             sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).",
        );
        let delta_sum: usize = sg.rounds.iter().map(|r| r.delta).sum();
        assert_eq!(delta_sum, sg.idb.total_rows());
        // Per-round counters sum back to the totals (modulo the peak).
        let mut acc = Counters::default();
        for r in &sg.rounds {
            acc.add(&r.counters);
        }
        assert_eq!(acc.derived, sg.counters.derived);
        assert_eq!(acc.probed, sg.counters.probed);
        assert_eq!(acc.matched, sg.counters.matched);
    }

    #[test]
    fn agrees_with_naive_on_sg() {
        let (n, s) = both(
            "parent(c1, p1). parent(c2, p1). parent(g1, c1). parent(g2, c2).
             parent(h1, g1). parent(h2, g2).
             sibling(c1, c2). sibling(c2, c1).
             sg(X, Y) :- sibling(X, Y).
             sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).",
        );
        assert_same_idb(&n.idb, &s.idb);
        let sg = s.idb.relation(Pred::new("sg", 2)).unwrap();
        assert_eq!(sg.len(), 6);
    }

    #[test]
    fn multiple_idb_atoms_in_body() {
        // Nonlinear TC: both occurrences need delta variants.
        let (n, s) = both(
            "edge(a, b). edge(b, c). edge(c, d). edge(d, e).
             t(X, Y) :- edge(X, Y).
             t(X, Y) :- t(X, Z), t(Z, Y).",
        );
        assert_same_idb(&n.idb, &s.idb);
        assert_eq!(s.idb.relation(Pred::new("t", 2)).unwrap().len(), 10);
    }

    #[test]
    fn stratified_dependencies() {
        let (n, s) = both(
            "edge(a, b). edge(b, c).
             path(X, Y) :- edge(X, Y).
             path(X, Y) :- edge(X, Z), path(Z, Y).
             reach2(X) :- path(a, X).",
        );
        assert_same_idb(&n.idb, &s.idb);
        assert_eq!(s.idb.relation(Pred::new("reach2", 1)).unwrap().len(), 2);
    }

    #[test]
    fn fuel_budget() {
        let program = parse_program(
            "n(0).
             n(Y) :- n(X), plus(X, 1, Y).",
        )
        .unwrap();
        let (facts, rules) = program.split_facts();
        let edb = Database::from_facts(facts);
        let err = seminaive_eval(
            &rules,
            &edb,
            BottomUpOptions {
                max_rounds: 1_000_000,
                max_facts: 100,
                ..BottomUpOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, EvalError::FuelExceeded { .. }));
    }

    #[test]
    fn governor_rounds_budget_drains_at_round_boundary() {
        let program = parse_program(
            "n(0).
             n(Y) :- n(X), plus(X, 1, Y).",
        )
        .unwrap();
        let (facts, rules) = program.split_facts();
        let edb = Database::from_facts(facts);
        let opts = BottomUpOptions::default();
        opts.governor.set_budget(chainsplit_governor::Budget {
            max_rounds: Some(10),
            ..Default::default()
        });
        opts.governor.begin_query();
        let r = seminaive_eval(&rules, &edb, opts).unwrap();
        let trip = r.trip.expect("rounds budget must trip");
        assert_eq!(trip.resource, chainsplit_governor::Resource::Rounds);
        assert_eq!(trip.phase, "seminaive-round");
        // Seed round + 10 completed fixpoint rounds, all advanced: the
        // partial IDB holds n(0)..n(10) — a consistent under-approximation.
        assert_eq!(r.rounds.len(), 11);
        assert_eq!(r.idb.relation(Pred::new("n", 1)).unwrap().len(), 11);
    }

    #[test]
    fn governor_tuple_budget_drains_mid_fixpoint() {
        // A fast-growing closure: the tuple budget trips while rounds are
        // still producing, and the partial IDB is a subset of the fixpoint.
        let src = "edge(a, b). edge(b, c). edge(c, d). edge(d, e). edge(e, a).
             t(X, Y) :- edge(X, Y).
             t(X, Y) :- t(X, Z), t(Z, Y).";
        let program = parse_program(src).unwrap();
        let (facts, rules) = program.split_facts();
        let edb = Database::from_facts(facts);
        let full = seminaive_eval(&rules, &edb, BottomUpOptions::default()).unwrap();
        let opts = BottomUpOptions::default();
        opts.governor.set_budget(chainsplit_governor::Budget {
            max_tuples: Some(8),
            ..Default::default()
        });
        opts.governor.begin_query();
        let r = seminaive_eval(&rules, &edb, opts).unwrap();
        let trip = r.trip.expect("tuple budget must trip");
        assert_eq!(trip.resource, chainsplit_governor::Resource::Tuples);
        let full_t = full.idb.relation(Pred::new("t", 2)).unwrap();
        let part_t = r.idb.relation(Pred::new("t", 2)).unwrap();
        assert!(part_t.len() < full_t.len());
        for t in part_t.iter() {
            assert!(full_t.contains(t), "partial result must under-approximate");
        }
    }

    #[test]
    fn no_idb_rules_at_all() {
        let program = parse_program("q(X) :- base(X), X > 1. base(1). base(2).").unwrap();
        let (facts, rules) = program.split_facts();
        let edb = Database::from_facts(facts);
        let s = seminaive_eval(&rules, &edb, BottomUpOptions::default()).unwrap();
        assert_eq!(s.idb.relation(Pred::new("q", 1)).unwrap().len(), 1);
    }
}
