//! Supplementary magic sets.
//!
//! The generalized *supplementary* variant of the magic-sets transformation
//! \[1, 21\]: instead of re-joining a rule's body prefix once for the rule
//! itself and once per magic rule, each prefix is materialised exactly once
//! as a `sup_{rule,i}` predicate:
//!
//! ```text
//! sup_0(head-bound vars)        <- m_p(head-bound vars)
//! sup_i(needed vars)            <- sup_{i-1}(…), b_i
//! m_q(bound args of b_{i+1})    <- sup_i(…)          (b_{i+1} intensional)
//! p^a(head)                     <- sup_n(…)
//! ```
//!
//! Each supplementary keeps only the variables still needed downstream
//! (by later atoms or the head), which is the transformation's second
//! saving. SIP order and binding policy are shared with the plain
//! transformation ([`crate::magic::SipStrategy`]), so Algorithm 3.1's
//! chain-split policy composes with supplementaries for free.

use crate::error::EvalError;
use crate::magic::{MagicProgram, SipStrategy};
use crate::metrics::{duration_ms, PhaseTimings};
use crate::seminaive::{seminaive_eval, BottomUpOptions};
use chainsplit_chain::ModeTable;
use chainsplit_logic::{Adornment, Atom, Pred, Rule, Subst, Sym, Term, Var};
use chainsplit_relation::Database;
use std::collections::{HashSet, VecDeque};
use std::time::Instant;

use crate::magic::MagicResult;

fn adorned_name(p: Pred, ad: &Adornment) -> Sym {
    Sym::new(&format!("{}@{}", p.name, ad))
}

fn magic_name(p: Pred, ad: &Adornment) -> Sym {
    Sym::new(&format!("m@{}@{}", p.name, ad))
}

fn magic_atom(atom: &Atom, ad: &Adornment) -> Atom {
    let args: Vec<Term> = ad
        .bound_positions()
        .into_iter()
        .map(|j| atom.args[j].clone())
        .collect();
    Atom {
        pred: Pred {
            name: magic_name(atom.pred, ad),
            arity: args.len() as u32,
        },
        args,
    }
}

fn adorned_atom(atom: &Atom, ad: &Adornment) -> Atom {
    Atom {
        pred: Pred {
            name: adorned_name(atom.pred, ad),
            arity: atom.pred.arity,
        },
        args: atom.args.clone(),
    }
}

/// SIP ordering shared with the plain transformation (duplicated here in
/// simplified form: propagating atoms by usefulness, delayed atoms last).
fn sip_order(
    body: &[Atom],
    head_bound: &HashSet<Var>,
    idb: &HashSet<Pred>,
    sip: &dyn SipStrategy,
    modes: &ModeTable,
) -> Vec<usize> {
    let mut bound = head_bound.clone();
    let mut order = Vec::new();
    let mut remaining: Vec<usize> = (0..body.len()).collect();
    while !remaining.is_empty() {
        let rank = |i: usize| -> u8 {
            let a = &body[i];
            if !sip.propagate(a) {
                return 9;
            }
            if chainsplit_chain::is_builtin(a.pred) {
                let ad = Adornment::of_atom(a, &bound);
                return if modes.is_finite(a.pred, &ad) { 0 } else { 8 };
            }
            let has_bound = Adornment::of_atom(a, &bound).n_bound() > 0;
            match (has_bound, idb.contains(&a.pred)) {
                (true, false) => 1,
                (true, true) => 2,
                (false, false) => 3,
                (false, true) => 4,
            }
        };
        let best = remaining
            .iter()
            .enumerate()
            .min_by_key(|&(_, &i)| (rank(i), i))
            .map(|(pos, _)| pos)
            .unwrap();
        let i = remaining.remove(best);
        order.push(i);
        for v in body[i].vars() {
            bound.insert(v);
        }
    }
    order
}

/// Rewrites `rules` for `query` with supplementary predicates.
pub fn supplementary_magic_transform(
    rules: &[Rule],
    query: &Atom,
    sip: &dyn SipStrategy,
) -> Result<MagicProgram, EvalError> {
    let idb: HashSet<Pred> = rules.iter().map(|r| r.head.pred).collect();
    if !idb.contains(&query.pred) {
        return Err(EvalError::Unsupported {
            reason: format!("query predicate {} has no rules", query.pred),
        });
    }
    let modes = ModeTable::with_builtins();
    let ad0 = Adornment(
        query
            .args
            .iter()
            .map(|t| {
                if t.is_ground() {
                    chainsplit_logic::Ad::Bound
                } else {
                    chainsplit_logic::Ad::Free
                }
            })
            .collect(),
    );

    let mut out_rules: Vec<Rule> = Vec::new();
    let mut magic_preds: Vec<Pred> = Vec::new();
    let mut seen: HashSet<(Pred, Adornment)> = HashSet::new();
    let mut queue: VecDeque<(Pred, Adornment)> = VecDeque::new();
    queue.push_back((query.pred, ad0.clone()));
    seen.insert((query.pred, ad0.clone()));
    let mut rule_counter = 0usize;

    while let Some((p, ad)) = queue.pop_front() {
        for rule in rules.iter().filter(|r| r.head.pred == p) {
            rule_counter += 1;
            let head_bound: HashSet<Var> = ad
                .bound_positions()
                .into_iter()
                .flat_map(|j| rule.head.args[j].vars())
                .collect();
            let magic_head = magic_atom(&rule.head, &ad);
            if !magic_preds.contains(&magic_head.pred) {
                magic_preds.push(magic_head.pred);
            }

            let order = sip_order(&rule.body, &head_bound, &idb, sip, &modes);
            // Variables needed after position k (exclusive): by later atoms
            // or by the head.
            let head_vars: HashSet<Var> = rule.head.vars().into_iter().collect();
            let mut needed_after: Vec<HashSet<Var>> = vec![HashSet::new(); order.len() + 1];
            needed_after[order.len()] = head_vars.clone();
            for k in (0..order.len()).rev() {
                let mut n = needed_after[k + 1].clone();
                for v in rule.body[order[k]].vars() {
                    n.insert(v);
                }
                needed_after[k] = n;
            }

            // sup_0 carries the bound head variables.
            let mut sup_vars: Vec<Var> = {
                let mut v: Vec<Var> = head_bound.iter().copied().collect();
                v.sort_by_key(|v| (v.name.as_str(), v.rename));
                v
            };
            let sup_pred = |k: usize, arity: usize| Pred {
                name: Sym::new(&format!("sup@{rule_counter}@{k}")),
                arity: arity as u32,
            };
            let sup_atom = |k: usize, vars: &[Var]| Atom {
                pred: sup_pred(k, vars.len()),
                args: vars.iter().map(|&v| Term::Var(v)).collect(),
            };
            out_rules.push(Rule::new(sup_atom(0, &sup_vars), vec![magic_head.clone()]));

            let mut bound_now = head_bound.clone();
            for (k, &bi) in order.iter().enumerate() {
                let atom = &rule.body[bi];
                let body_atom = if idb.contains(&atom.pred) {
                    let ad_q = Adornment::of_atom(atom, &bound_now);
                    let mq = magic_atom(atom, &ad_q);
                    if !magic_preds.contains(&mq.pred) {
                        magic_preds.push(mq.pred);
                    }
                    // Magic rule from the supplementary alone.
                    out_rules.push(Rule::new(mq, vec![sup_atom(k, &sup_vars)]));
                    if seen.insert((atom.pred, ad_q.clone())) {
                        queue.push_back((atom.pred, ad_q.clone()));
                    }
                    adorned_atom(atom, &ad_q)
                } else {
                    atom.clone()
                };
                for v in atom.vars() {
                    bound_now.insert(v);
                }
                // Next supplementary: bound vars still needed downstream.
                let mut next_vars: Vec<Var> = bound_now
                    .iter()
                    .copied()
                    .filter(|v| needed_after[k + 1].contains(v))
                    .collect();
                next_vars.sort_by_key(|v| (v.name.as_str(), v.rename));
                out_rules.push(Rule::new(
                    sup_atom(k + 1, &next_vars),
                    vec![sup_atom(k, &sup_vars), body_atom],
                ));
                sup_vars = next_vars;
            }

            // Final: the adorned head from the last supplementary.
            out_rules.push(Rule::new(
                adorned_atom(&rule.head, &ad),
                vec![sup_atom(order.len(), &sup_vars)],
            ));
        }
    }

    let seed = magic_atom(query, &ad0);
    out_rules.push(Rule::fact(seed));

    Ok(MagicProgram {
        rules: out_rules,
        answer_pred: Pred {
            name: adorned_name(query.pred, &ad0),
            arity: query.pred.arity,
        },
        magic_preds,
    })
}

/// Transform + semi-naive evaluation + answer extraction.
pub fn supplementary_magic_eval(
    rules: &[Rule],
    edb: &Database,
    query: &Atom,
    sip: &dyn SipStrategy,
    opts: BottomUpOptions,
) -> Result<MagicResult, EvalError> {
    let compile_start = Instant::now();
    let mp = {
        let _sp = chainsplit_trace::span!("compile", stage = "supplementary-transform");
        supplementary_magic_transform(rules, query, sip)?
    };
    let compile_ms = duration_ms(compile_start.elapsed());
    let run = seminaive_eval(&mp.rules, edb, opts)?;
    let mut counters = run.counters;
    counters.magic_facts = mp
        .magic_preds
        .iter()
        .map(|&p| run.idb.relation(p).map_or(0, |r| r.len()))
        .sum();
    let answer_start = Instant::now();
    let _answer_span = chainsplit_trace::span!("answer", pred = query.pred);
    let mut answers = Vec::new();
    if let Some(rel) = run.idb.relation(mp.answer_pred) {
        for t in rel.iter() {
            let cand = Atom {
                pred: query.pred,
                args: t.fields().to_vec(),
            };
            let mut s = Subst::new();
            if chainsplit_logic::unify_atoms(&mut s, query, &cand) {
                answers.push(s);
            }
        }
    }
    Ok(MagicResult {
        answers,
        counters,
        rounds: run.rounds,
        phases: PhaseTimings {
            compile_ms,
            answer_ms: duration_ms(answer_start.elapsed()),
            ..run.phases
        },
        trip: run.trip,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::magic::{magic_eval, FullSip};
    use chainsplit_logic::{parse_program, parse_query};

    fn setup(src: &str) -> (Vec<Rule>, Database) {
        let p = parse_program(src).unwrap();
        let (facts, rules) = p.split_facts();
        (rules, Database::from_facts(facts))
    }

    const SG: &str = "sg(X, Y) :- sibling(X, Y).
         sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).
         parent(c1, p1). parent(c2, p1). parent(g1, c1). parent(g2, c2).
         parent(h1, g1). parent(h2, g2).
         sibling(c1, c2). sibling(c2, c1).";

    #[test]
    fn agrees_with_plain_magic() {
        let (rules, edb) = setup(SG);
        for query in ["sg(h1, Y)", "sg(g1, Y)", "sg(h1, h2)", "sg(X, Y)"] {
            let q = parse_query(query).unwrap();
            let plain = magic_eval(&rules, &edb, &q, &FullSip, BottomUpOptions::default()).unwrap();
            let supp =
                supplementary_magic_eval(&rules, &edb, &q, &FullSip, BottomUpOptions::default())
                    .unwrap();
            let mut a: Vec<String> = plain.answers.iter().map(|s| s.to_string()).collect();
            let mut b: Vec<String> = supp.answers.iter().map(|s| s.to_string()).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "query {query}");
        }
    }

    #[test]
    fn prefix_not_recomputed() {
        // A rule with an expensive shared prefix: the supplementary variant
        // should consider fewer join candidates than plain magic, which
        // evaluates the prefix twice (once in the magic rule, once in the
        // guarded rule).
        let (rules, edb) = setup(
            "reach(X, Y) :- edge(X, W1), mid(W1, W2), step(W2, Z), reach(Z, Y).
             reach(X, Y) :- final(X, Y).
             edge(a, b1). edge(a, b2). edge(a, b3). edge(a, b4).
             mid(b1, c1). mid(b2, c2). mid(b3, c3). mid(b4, c4).
             step(c1, a). step(c2, a).
             final(a, done).",
        );
        let q = parse_query("reach(a, Y)").unwrap();
        // Compare under the syntactic body order: the claim is about the
        // transformation factoring the prefix, not about join planning
        // (which can independently shrink the plain leg's probe count).
        let opts = || crate::naive::BottomUpOptions {
            planner: std::sync::Arc::new(crate::plan::JoinPlanner::disabled()),
            ..Default::default()
        };
        let plain = magic_eval(&rules, &edb, &q, &FullSip, opts()).unwrap();
        let supp = supplementary_magic_eval(&rules, &edb, &q, &FullSip, opts()).unwrap();
        assert_eq!(plain.answers.len(), supp.answers.len());
        assert!(
            supp.counters.probed < plain.counters.probed,
            "supplementary {} !< plain {}",
            supp.counters.probed,
            plain.counters.probed
        );
    }

    #[test]
    fn builtins_in_bodies() {
        let (rules, edb) = setup(
            "big(X, Y) :- n(X, Y), Y > 10.
             n(a, 5). n(b, 15). n(c, 20).",
        );
        let q = parse_query("big(b, Y)").unwrap();
        let r = supplementary_magic_eval(&rules, &edb, &q, &FullSip, BottomUpOptions::default())
            .unwrap();
        assert_eq!(r.answers.len(), 1);
    }

    #[test]
    fn chain_split_policy_composes() {
        use crate::magic::DelayPreds;
        let (rules, edb) = setup(
            "scsg(X, Y) :- sibling(X, Y).
             scsg(X, Y) :- parent(X, X1), same_country(X1, Y1), parent(Y, Y1), scsg(X1, Y1).
             parent(k0, p0). parent(k1, p1).
             same_country(p0, p0). same_country(p0, p1).
             same_country(p1, p0). same_country(p1, p1).
             sibling(p0, p1). sibling(p1, p0).",
        );
        let q = parse_query("scsg(k0, Y)").unwrap();
        let mut delay = HashSet::new();
        delay.insert(Pred::new("same_country", 2));
        let r = supplementary_magic_eval(
            &rules,
            &edb,
            &q,
            &DelayPreds(delay),
            BottomUpOptions::default(),
        )
        .unwrap();
        assert_eq!(r.answers.len(), 1); // k1
    }
}
