//! Tabled (memoized) evaluation — an SLG-lite baseline.
//!
//! Query-directed evaluation with memo tables, in the style the deductive
//! database systems contemporary to the paper (CORAL \[16\], EKS-V1 \[23\],
//! XSB's SLG) used: every IDB call pattern gets a *table*; rule bodies
//! answer IDB subgoals **only from tables**, registering new call patterns
//! as they appear; the whole table space is re-evaluated Jacobi-style until
//! no table grows. This terminates on cyclic data where plain SLD loops,
//! and — because subgoal order inside a body is chosen dynamically by
//! evaluability, like the chain-split solver — it also evaluates the
//! functional recursions (`append^ffb`, `isort`) finitely.
//!
//! Operationally this is the fixpoint characterisation of magic sets: the
//! registered call patterns *are* the magic sets, computed on demand.

use crate::builtins::{eval_builtin, BuiltinOutcome};
use crate::error::{Counters, EvalError};
use crate::eval::match_relation;
use crate::plan::{JoinPlanner, PlannerRef};
use chainsplit_governor::{BudgetTrip, Governor};
use chainsplit_logic::{fresh, unify, unify_atoms, Atom, Pred, Program, Rule, Subst, Term, Var};
use chainsplit_relation::{term_estimated_bytes, Database, FxHashSet};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// Budgets for tabled evaluation.
#[derive(Clone, Debug)]
pub struct TabledOptions {
    /// Abort after this many whole-table-space sweeps (a hard error, not
    /// a graceful drain; use a governor `Budget` for the latter).
    pub max_sweeps: usize,
    /// Abort once this many answers exist across all tables.
    pub max_answers: usize,
    /// The resource governor checked at sweep boundaries and between
    /// rule evaluations. Disarmed by default.
    pub governor: Governor,
    /// The cost-based join planner. When enabled, subgoal picking inside
    /// a body prefers ready builtins, then the stored or tabled subgoal
    /// with the smallest estimated expansion — safe here because tables
    /// bound every IDB extension, so any order terminates. Disabled, the
    /// pick is the first evaluable subgoal in syntactic order.
    pub planner: PlannerRef,
}

impl Default for TabledOptions {
    fn default() -> Self {
        TabledOptions {
            max_sweeps: chainsplit_governor::DEFAULT_MAX_ROUNDS,
            max_answers: 50_000_000,
            governor: Governor::new(),
            planner: JoinPlanner::shared(),
        }
    }
}

/// A call pattern: predicate + canonically renamed argument terms.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
struct CallKey {
    pred: Pred,
    args: Vec<Term>,
}

/// Renames the variables of `terms` to canonical `_t0, _t1, …` in
/// first-occurrence order, so alpha-equivalent call patterns share a table.
fn canonicalize(terms: &[Term]) -> Vec<Term> {
    let mut map: HashMap<Var, Var> = HashMap::new();
    fn walk(t: &Term, map: &mut HashMap<Var, Var>) -> Term {
        match t {
            Term::Var(v) => {
                // Distinct canonical *names* (not rename tags): renaming a
                // term apart overwrites the tag, which must never merge
                // two canonical variables.
                let n = map.len();
                Term::Var(
                    *map.entry(*v)
                        .or_insert_with(|| Var::named(&format!("_t{n}"))),
                )
            }
            Term::Int(_) | Term::Sym(_) | Term::Nil => t.clone(),
            Term::Cons(h, tl) => Term::Cons(Arc::new(walk(h, map)), Arc::new(walk(tl, map))),
            Term::Comp(f, args) => Term::Comp(*f, args.iter().map(|a| walk(a, map)).collect()),
        }
    }
    terms.iter().map(|t| walk(t, &mut map)).collect()
}

struct Table {
    /// Answer argument tuples (canonically renamed; may contain variables),
    /// in derivation order behind a hash set for O(1) duplicate rejection.
    answers: Vec<Vec<Term>>,
    seen: FxHashSet<Vec<Term>>,
}

/// The tabled engine.
pub struct Tabled<'a> {
    rules_by_pred: HashMap<Pred, Vec<&'a Rule>>,
    db: &'a Database,
    opts: TabledOptions,
    tables: BTreeMap<CallKey, Table>,
    /// Subgoal tables each call pattern reads (for semi-naive sweeps).
    deps: HashMap<CallKey, HashSet<CallKey>>,
    /// Tables that gained answers or appeared during the current sweep.
    dirty: HashSet<CallKey>,
    /// The call pattern whose rules are being evaluated (dependency edges
    /// attach to it).
    current: Option<CallKey>,
    total_answers: usize,
    pub counters: Counters,
    /// `Some` when a governor budget tripped: the tables hold a sound
    /// under-approximation (every stored answer is derivable) and
    /// [`Tabled::solve`] returned whatever the query's table held at the
    /// drain point.
    pub trip: Option<BudgetTrip>,
}

impl<'a> Tabled<'a> {
    pub fn new(rules: &'a [Rule], db: &'a Database, opts: TabledOptions) -> Tabled<'a> {
        let mut rules_by_pred: HashMap<Pred, Vec<&Rule>> = HashMap::new();
        for r in rules {
            rules_by_pred.entry(r.head.pred).or_default().push(r);
        }
        Tabled {
            rules_by_pred,
            db,
            opts,
            tables: BTreeMap::new(),
            deps: HashMap::new(),
            dirty: HashSet::new(),
            current: None,
            total_answers: 0,
            counters: Counters::default(),
            trip: None,
        }
    }

    fn is_idb(&self, p: Pred) -> bool {
        self.rules_by_pred.contains_key(&p)
    }

    /// Registers a call pattern, returning its key.
    fn register(&mut self, pred: Pred, args: Vec<Term>) -> CallKey {
        let key = CallKey {
            pred,
            args: canonicalize(&args),
        };
        if !self.tables.contains_key(&key) {
            self.tables.insert(
                key.clone(),
                Table {
                    answers: Vec::new(),
                    seen: FxHashSet::default(),
                },
            );
            // A fresh table counts as dirty: it must be evaluated at least
            // once, and readers must re-run after it fills.
            self.dirty.insert(key.clone());
        }
        key
    }

    /// Answers an IDB subgoal from its table (registering it first).
    fn table_lookup(&mut self, goal: &Atom, s: &Subst, out: &mut Vec<Subst>) {
        let resolved: Vec<Term> = goal.args.iter().map(|t| s.resolve(t)).collect();
        let key = self.register(goal.pred, resolved);
        if let Some(cur) = self.current.clone() {
            self.deps.entry(cur).or_default().insert(key.clone());
        }
        // Clone the answers (cheap: Arc-shared) to release the borrow.
        let answers: Vec<Vec<Term>> = self.tables[&key].answers.clone();
        for ans in answers {
            self.counters.probed += 1;
            let tag = fresh::rename_tag();
            let mut s2 = s.clone();
            let ok = goal
                .args
                .iter()
                .zip(ans.iter())
                .all(|(g, a)| unify(&mut s2, g, &a.rename(tag)));
            if ok {
                self.counters.matched += 1;
                out.push(s2);
            }
        }
    }

    /// Is `atom` evaluable right now? Builtins are probed; stored and
    /// tabled predicates always are (tables bound the extension).
    fn ready(&self, atom: &Atom, s: &Subst) -> bool {
        if chainsplit_chain::is_builtin(atom.pred) {
            return !matches!(
                eval_builtin(atom, s),
                Ok(Some(BuiltinOutcome::NotEvaluable))
            );
        }
        true
    }

    /// Estimated rows a stored or tabled subgoal yields under `s`: EDB
    /// atoms via the planner's expansion statistic on their bound columns,
    /// tabled subgoals via their table's current answer count (an
    /// unregistered pattern estimates 0 — a fresh table yields nothing
    /// until the next sweep, and registering it early seeds the demand).
    fn estimate(&self, atom: &Atom, s: &Subst) -> f64 {
        if self.is_idb(atom.pred) {
            let resolved: Vec<Term> = atom.args.iter().map(|t| s.resolve(t)).collect();
            let key = CallKey {
                pred: atom.pred,
                args: canonicalize(&resolved),
            };
            return self
                .tables
                .get(&key)
                .map_or(0.0, |t| t.answers.len() as f64);
        }
        match self.db.relation(atom.pred) {
            None => 0.0,
            Some(rel) => {
                let cols: Vec<usize> = atom
                    .args
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| s.is_ground(t))
                    .map(|(i, _)| i)
                    .collect();
                self.opts.planner.expansion(atom.pred, &cols, rel)
            }
        }
    }

    /// Solves a body with dynamic ordering, IDB subgoals from tables only.
    fn solve_body(
        &mut self,
        atoms: &[&Atom],
        s: &Subst,
        out: &mut Vec<Subst>,
    ) -> Result<(), EvalError> {
        if atoms.is_empty() {
            out.push(s.clone());
            return Ok(());
        }
        // Planner on: ready builtins first (filters prune at unit cost),
        // then the cheaper of the best EDB atom (by estimated expansion)
        // and the *first* tabled subgoal. Tabled subgoals never reorder
        // among themselves: lifting a later IDB call ahead registers a
        // less-constrained call pattern whose rules may hit unevaluable
        // builtins (e.g. `insert` before `isort` grounds its list) —
        // pulling only EDB atoms forward binds strictly more, which is
        // always safe. Planner off: the first evaluable subgoal in
        // syntactic order.
        let pick = if self.opts.planner.is_enabled() {
            (0..atoms.len())
                .find(|&i| chainsplit_chain::is_builtin(atoms[i].pred) && self.ready(atoms[i], s))
                .or_else(|| {
                    let first_idb = (0..atoms.len()).find(|&i| {
                        !chainsplit_chain::is_builtin(atoms[i].pred) && self.is_idb(atoms[i].pred)
                    });
                    let best_edb = (0..atoms.len())
                        .filter(|&i| {
                            !chainsplit_chain::is_builtin(atoms[i].pred)
                                && !self.is_idb(atoms[i].pred)
                        })
                        .min_by(|&a, &b| {
                            self.estimate(atoms[a], s)
                                .total_cmp(&self.estimate(atoms[b], s))
                                .then(a.cmp(&b))
                        });
                    match (best_edb, first_idb) {
                        (Some(e), Some(i)) => {
                            if self.estimate(atoms[e], s) <= self.estimate(atoms[i], s) {
                                Some(e)
                            } else {
                                Some(i)
                            }
                        }
                        (Some(e), None) => Some(e),
                        (None, i) => i,
                    }
                })
        } else {
            (0..atoms.len()).find(|&i| self.ready(atoms[i], s))
        };
        let Some(pick) = pick else {
            return Err(EvalError::NotEvaluable {
                atom: s.resolve_atom(atoms[0]).to_string(),
            });
        };
        let mut rest: Vec<&Atom> = atoms.to_vec();
        let picked = rest.remove(pick);
        let mut sols = Vec::new();
        match eval_builtin(picked, s)? {
            Some(BuiltinOutcome::Solutions(v)) => {
                self.counters.builtin_evals += 1;
                self.counters.probed += v.len().max(1);
                self.counters.matched += v.len();
                sols.extend(v);
            }
            Some(BuiltinOutcome::NotEvaluable) => {
                return Err(EvalError::NotEvaluable {
                    atom: s.resolve_atom(picked).to_string(),
                })
            }
            None => {
                if self.is_idb(picked.pred) {
                    self.table_lookup(picked, s, &mut sols);
                } else if let Some(rel) = self.db.relation(picked.pred) {
                    match_relation(rel, picked, s, &mut self.counters, &mut sols);
                }
            }
        }
        for s2 in sols {
            self.solve_body(&rest, &s2, out)?;
        }
        Ok(())
    }

    /// One sweep: re-evaluate the tables whose inputs changed.
    ///
    /// Semi-naive at table granularity: a call pattern re-runs only when
    /// one of the tables it reads (or itself, for direct recursion) was
    /// dirty after the previous sweep.
    fn sweep(&mut self, previous_dirty: &HashSet<CallKey>) -> Result<(), EvalError> {
        let keys: Vec<CallKey> = self
            .tables
            .keys()
            .filter(|k| {
                previous_dirty.contains(*k)
                    || self
                        .deps
                        .get(*k)
                        .is_some_and(|ds| ds.iter().any(|d| previous_dirty.contains(d)))
            })
            .cloned()
            .collect();
        for key in keys {
            self.current = Some(key.clone());
            let rules: Vec<Rule> = self
                .rules_by_pred
                .get(&key.pred)
                .map(|rs| rs.iter().map(|r| (*r).clone()).collect())
                .unwrap_or_default();
            for rule in rules {
                // Tables are monotone, so any (table, rule) boundary is a
                // drain point: everything stored so far is derivable.
                if let Err(t) = self.opts.governor.check("tabled-sweep") {
                    self.trip = Some(t);
                    self.current = None;
                    return Ok(());
                }
                self.counters.probed += 1;
                let fr = rule.rename(fresh::rename_tag());
                let mut s = Subst::new();
                let call = Atom {
                    pred: key.pred,
                    args: key.args.clone(),
                };
                // Rename the call pattern apart from the rule.
                let call = call.rename(fresh::rename_tag());
                if !unify_atoms(&mut s, &call, &fr.head) {
                    continue;
                }
                self.counters.matched += 1;
                let body: Vec<&Atom> = fr.body.iter().collect();
                let mut sols = Vec::new();
                self.solve_body(&body, &s, &mut sols)?;
                let account = self.opts.governor.active();
                for sol in sols {
                    let tuple: Vec<Term> = call.args.iter().map(|a| sol.resolve(a)).collect();
                    if chainsplit_provenance::is_enabled() {
                        // Witness the ground instances only (`record`
                        // skips non-ground answer schemes): the resolved
                        // call instance is the derived tuple, justified by
                        // the canonical rule's resolved body.
                        let head = Atom {
                            pred: key.pred,
                            args: tuple.clone(),
                        };
                        let wbody: Vec<Atom> =
                            fr.body.iter().map(|a| sol.resolve_atom(a)).collect();
                        let bytes = chainsplit_provenance::record(&head, &rule, &wbody);
                        self.opts.governor.add_bytes(bytes);
                    }
                    let tuple = canonicalize(&tuple);
                    let bytes = if account {
                        tuple.iter().map(term_estimated_bytes).sum::<usize>() as u64
                    } else {
                        0
                    };
                    let table = self.tables.get_mut(&key).expect("registered");
                    if table.seen.insert(tuple.clone()) {
                        table.answers.push(tuple);
                        self.total_answers += 1;
                        self.counters.derived += 1;
                        self.dirty.insert(key.clone());
                        if account {
                            self.opts.governor.add_tuples(1);
                            self.opts.governor.add_bytes(bytes);
                        }
                        if self.total_answers > self.opts.max_answers {
                            return Err(EvalError::FuelExceeded {
                                limit: self.opts.max_answers,
                            });
                        }
                    }
                }
            }
        }
        self.current = None;
        Ok(())
    }

    /// Evaluates `query` to fixpoint and returns its answers.
    pub fn solve(&mut self, query: &Atom) -> Result<Vec<Subst>, EvalError> {
        if !self.is_idb(query.pred) {
            // EDB or builtin query: answer directly.
            let mut out = Vec::new();
            match eval_builtin(query, &Subst::new())? {
                Some(BuiltinOutcome::Solutions(v)) => out.extend(v),
                Some(BuiltinOutcome::NotEvaluable) => {
                    return Err(EvalError::NotEvaluable {
                        atom: query.to_string(),
                    })
                }
                None => {
                    if let Some(rel) = self.db.relation(query.pred) {
                        match_relation(rel, query, &Subst::new(), &mut self.counters, &mut out);
                    }
                }
            }
            return Ok(out);
        }
        let args: Vec<Term> = query.args.clone();
        self.register(query.pred, args);
        loop {
            // Sweep boundary = drain point: on a trip the query's table
            // already holds every answer from completed sweeps, and the
            // lookup below returns that partial set.
            if let Err(t) = self.opts.governor.on_round("tabled-sweep") {
                self.trip = Some(t);
                break;
            }
            self.counters.iterations += 1;
            if self.counters.iterations > self.opts.max_sweeps {
                return Err(EvalError::FuelExceeded {
                    limit: self.opts.max_sweeps,
                });
            }
            let previous_dirty = std::mem::take(&mut self.dirty);
            self.sweep(&previous_dirty)?;
            if self.trip.is_some() || self.dirty.is_empty() {
                break;
            }
        }
        let mut out = Vec::new();
        self.table_lookup(query, &Subst::new(), &mut out);
        Ok(out)
    }

    /// Number of registered call patterns (the operational magic sets).
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }
}

/// Convenience: run one query tabled over a parsed program. The third
/// element is `Some` when a governor budget tripped (answers are then the
/// partial set the tables held at the drain point).
pub fn tabled_query(
    program: &Program,
    query: &Atom,
    opts: TabledOptions,
) -> Result<(Vec<Subst>, Counters, Option<BudgetTrip>), EvalError> {
    let (facts, rules) = program.split_facts();
    let db = Database::from_facts(facts);
    let mut t = Tabled::new(&rules, &db, opts);
    let answers = {
        let _sp = chainsplit_trace::span!("fixpoint", strategy = "tabled", pred = query.pred);
        t.solve(query)?
    };
    let mut counters = t.counters;
    counters.magic_facts = t.table_count();
    Ok((answers, counters, t.trip))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainsplit_logic::{parse_program, parse_query};

    fn run(src: &str, query: &str) -> Vec<String> {
        let p = parse_program(src).unwrap();
        let q = parse_query(query).unwrap();
        let (sols, _, _) = tabled_query(&p, &q, TabledOptions::default()).unwrap();
        let mut v: Vec<String> = sols
            .iter()
            .map(|s| s.resolve_atom(&q).to_string())
            .collect();
        v.sort();
        v.dedup();
        v
    }

    #[test]
    fn terminates_on_cyclic_data() {
        // Plain SLD diverges here; tabling terminates.
        let v = run(
            "path(X, Y) :- edge(X, Y).
             path(X, Y) :- edge(X, Z), path(Z, Y).
             edge(a, b). edge(b, a). edge(b, c).",
            "path(a, Y)",
        );
        assert_eq!(v.len(), 3); // a, b, c
    }

    #[test]
    fn terminates_on_left_recursion() {
        let v = run(
            "t(X, Y) :- t(X, Z), edge(Z, Y).
             t(X, Y) :- edge(X, Y).
             edge(a, b). edge(b, c).",
            "t(a, Y)",
        );
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn sg_agrees() {
        let v = run(
            "sg(X, Y) :- sibling(X, Y).
             sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).
             parent(c1, p1). parent(c2, p1). parent(g1, c1). parent(g2, c2).
             sibling(c1, c2). sibling(c2, c1).",
            "sg(g1, Y)",
        );
        assert_eq!(v, ["sg(g1, g2)"]);
    }

    #[test]
    fn functional_recursions_evaluate() {
        // Dynamic subgoal ordering + per-pattern tables handle append^ffb.
        let v = run(
            "append([], L, L).
             append([X | L1], L2, [X | L3]) :- append(L1, L2, L3).",
            "append(U, V, [1, 2])",
        );
        assert_eq!(v.len(), 3);
        let v = run(
            "isort([X | Xs], Ys) :- isort(Xs, Zs), insert(X, Zs, Ys).
             isort([], []).
             insert(X, [], [X]).
             insert(X, [Y | Ys], [Y | Zs]) :- X > Y, insert(X, Ys, Zs).
             insert(X, [Y | Ys], [X, Y | Ys]) :- X <= Y.",
            "isort([5, 7, 1], Ys)",
        );
        assert_eq!(v, ["isort([5, 7, 1], [1, 5, 7])"]);
    }

    #[test]
    fn non_ground_answers_are_shared() {
        // The exit table of append stores one non-ground answer scheme.
        let p = parse_program(
            "append([], L, L).
             append([X | L1], L2, [X | L3]) :- append(L1, L2, L3).",
        )
        .unwrap();
        let q = parse_query("append([], [7], W)").unwrap();
        let (sols, counters, trip) = tabled_query(&p, &q, TabledOptions::default()).unwrap();
        assert_eq!(sols.len(), 1);
        assert!(counters.magic_facts >= 1); // at least the query's table
        assert_eq!(trip, None);
    }

    #[test]
    fn edb_query_answers_directly() {
        let v = run("p(X) :- e(X). e(1). e(2).", "e(X)");
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn empty_program_no_answers() {
        let v = run("p(0).", "q(X)");
        assert!(v.is_empty());
    }

    #[test]
    fn sweep_budget_enforced() {
        let p = parse_program(
            "n(0).
             n(Y) :- n(X), plus(X, 1, Y).",
        )
        .unwrap();
        let q = parse_query("n(X)").unwrap();
        let err = tabled_query(
            &p,
            &q,
            TabledOptions {
                max_sweeps: 20,
                max_answers: 1_000_000,
                ..TabledOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, EvalError::FuelExceeded { .. }));
    }

    #[test]
    fn governor_sweep_budget_drains_to_partial_answers() {
        let p = parse_program(
            "n(0).
             n(Y) :- n(X), plus(X, 1, Y).",
        )
        .unwrap();
        let q = parse_query("n(X)").unwrap();
        let opts = TabledOptions::default();
        opts.governor.set_budget(chainsplit_governor::Budget {
            max_rounds: Some(10),
            ..Default::default()
        });
        opts.governor.begin_query();
        let (sols, _, trip) = tabled_query(&p, &q, opts).unwrap();
        let trip = trip.expect("sweep budget must trip");
        assert_eq!(trip.resource, chainsplit_governor::Resource::Rounds);
        assert_eq!(trip.phase, "tabled-sweep");
        // Completed sweeps each add one n answer: a non-empty partial set.
        assert!(!sols.is_empty());
        assert!(sols.len() <= 11);
    }

    #[test]
    fn canonicalization_merges_variants() {
        let a = canonicalize(&[Term::var("A"), Term::var("B"), Term::var("A")]);
        let b = canonicalize(&[Term::var("X"), Term::var("Y"), Term::var("X")]);
        assert_eq!(a, b);
        let c = canonicalize(&[Term::var("X"), Term::var("X"), Term::var("Y")]);
        assert_ne!(a, c);
    }
}
