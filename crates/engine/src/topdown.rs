//! Top-down SLD resolution — the Prolog/LDL-style baseline.
//!
//! Depth-first, left-to-right, all-solutions resolution over the *original*
//! (unrectified) program: head unification does the term decomposition that
//! rectification turns into `cons` atoms. This is the evaluation model the
//! paper's functional examples (`isort`, `qsort`) are usually run under,
//! and the baseline the chain-split benches compare against.
//!
//! Budgets: `max_depth` bounds the resolution depth, `fuel` the total
//! number of resolution steps — a diverging query (e.g. a left-recursive
//! rule) reports an error instead of hanging.

use crate::builtins::{eval_builtin, BuiltinOutcome};
use crate::error::{Counters, EvalError};
use crate::eval::match_relation;
use chainsplit_governor::{BudgetTrip, Governor};
use chainsplit_logic::{fresh, unify_atoms, Atom, Pred, Program, Rule, Subst};
use chainsplit_relation::Database;
use std::collections::HashMap;

/// Budgets for top-down resolution.
#[derive(Clone, Debug)]
pub struct TopDownOptions {
    pub max_depth: usize,
    pub fuel: usize,
    /// The resource governor, polled every 1024 resolution steps (SLD has
    /// no round boundary, so the stride is the cooperative check point).
    pub governor: Governor,
}

impl Default for TopDownOptions {
    fn default() -> Self {
        TopDownOptions {
            max_depth: 100_000,
            fuel: 50_000_000,
            governor: Governor::new(),
        }
    }
}

/// A top-down resolution engine over a fixed program and EDB.
pub struct TopDown<'a> {
    rules_by_pred: HashMap<Pred, Vec<&'a Rule>>,
    db: &'a Database,
    opts: TopDownOptions,
    fuel_left: usize,
    pub counters: Counters,
    /// `Some` when a governor budget tripped: [`TopDown::solve`] then
    /// returned the answers found before the trip (each one independently
    /// proved, so the set is a sound under-approximation).
    pub trip: Option<BudgetTrip>,
}

impl<'a> TopDown<'a> {
    /// Builds the engine from the IDB `rules` (original, unrectified form)
    /// and the EDB.
    pub fn new(rules: &'a [Rule], db: &'a Database, opts: TopDownOptions) -> TopDown<'a> {
        let mut rules_by_pred: HashMap<Pred, Vec<&Rule>> = HashMap::new();
        for r in rules {
            rules_by_pred.entry(r.head.pred).or_default().push(r);
        }
        let fuel_left = opts.fuel;
        TopDown {
            rules_by_pred,
            db,
            opts,
            fuel_left,
            counters: Counters::default(),
            trip: None,
        }
    }

    /// All solutions of `goal` from an empty binding.
    pub fn solve(&mut self, goal: &Atom) -> Result<Vec<Subst>, EvalError> {
        self.fuel_left = self.opts.fuel;
        self.trip = None;
        let mut out = Vec::new();
        match self.solve_goal(goal, &Subst::new(), 0, &mut out) {
            Ok(()) => {}
            // Depth-first search has no round boundary, but every answer
            // already pushed was independently proved: keep them, record
            // the trip, and stop searching.
            Err(e) => match e.budget_trip() {
                Some(t) => self.trip = Some(t),
                None => return Err(e),
            },
        }
        Ok(out)
    }

    fn spend(&mut self) -> Result<(), EvalError> {
        if self.fuel_left == 0 {
            return Err(EvalError::FuelExceeded {
                limit: self.opts.fuel,
            });
        }
        self.fuel_left -= 1;
        // Strided governor poll: cheap enough to sit on the hot path,
        // frequent enough that deadlines land within microseconds.
        if self.fuel_left & 0x3FF == 0 {
            self.opts.governor.check("sld-resolve")?;
        }
        Ok(())
    }

    fn solve_goal(
        &mut self,
        goal: &Atom,
        s: &Subst,
        depth: usize,
        out: &mut Vec<Subst>,
    ) -> Result<(), EvalError> {
        self.spend()?;
        if depth > self.opts.max_depth {
            return Err(EvalError::DepthExceeded {
                limit: self.opts.max_depth,
            });
        }
        // Builtins.
        match eval_builtin(goal, s)? {
            Some(BuiltinOutcome::Solutions(sols)) => {
                self.counters.builtin_evals += 1;
                self.counters.probed += sols.len().max(1);
                self.counters.matched += sols.len();
                out.extend(sols);
                return Ok(());
            }
            Some(BuiltinOutcome::NotEvaluable) => {
                return Err(EvalError::NotEvaluable {
                    atom: s.resolve_atom(goal).to_string(),
                })
            }
            None => {}
        }
        // IDB: resolve against each rule, renamed apart.
        if let Some(rules) = self.rules_by_pred.get(&goal.pred) {
            let rules: Vec<&Rule> = rules.clone();
            for rule in rules {
                self.counters.probed += 1;
                let fresh_rule = rule.rename(fresh::rename_tag());
                let mut s2 = s.clone();
                if !unify_atoms(&mut s2, goal, &fresh_rule.head) {
                    continue;
                }
                self.counters.matched += 1;
                if chainsplit_provenance::is_enabled() {
                    // Detour the rule's solutions through a buffer so each
                    // can witness the (canonical) rule it instantiated.
                    // `solve_body`'s counters are output-independent, so
                    // the provenance-off path is bit-identical.
                    let mut sols = Vec::new();
                    self.solve_body(&fresh_rule.body, &s2, depth + 1, &mut sols)?;
                    for sol in &sols {
                        let head = sol.resolve_atom(&fresh_rule.head);
                        let body: Vec<Atom> = fresh_rule
                            .body
                            .iter()
                            .map(|a| sol.resolve_atom(a))
                            .collect();
                        let bytes = chainsplit_provenance::record(&head, rule, &body);
                        self.opts.governor.add_bytes(bytes);
                    }
                    out.extend(sols);
                } else {
                    self.solve_body(&fresh_rule.body, &s2, depth + 1, out)?;
                }
            }
            return Ok(());
        }
        // EDB.
        if let Some(rel) = self.db.relation(goal.pred) {
            let before = out.len();
            match_relation(rel, goal, s, &mut self.counters, out);
            self.counters.derived += out.len() - before;
        }
        Ok(())
    }

    fn solve_body(
        &mut self,
        body: &[Atom],
        s: &Subst,
        depth: usize,
        out: &mut Vec<Subst>,
    ) -> Result<(), EvalError> {
        match body.split_first() {
            None => {
                self.counters.derived += 1;
                if self.opts.governor.active() {
                    self.opts.governor.add_tuples(1);
                }
                out.push(s.clone());
                Ok(())
            }
            Some((first, rest)) => {
                let mut firsts = Vec::new();
                self.solve_goal(first, s, depth, &mut firsts)?;
                for s2 in firsts {
                    self.solve_body(rest, &s2, depth, out)?;
                }
                Ok(())
            }
        }
    }
}

/// Convenience: run one query top-down. The third element is `Some` when a
/// governor budget tripped (answers are then the partial set proved before
/// the trip).
pub fn topdown_query(
    program: &Program,
    query: &Atom,
    opts: TopDownOptions,
) -> Result<(Vec<Subst>, Counters, Option<BudgetTrip>), EvalError> {
    let (facts, rules) = program.split_facts();
    let db = Database::from_facts(facts);
    let mut td = TopDown::new(&rules, &db, opts);
    let answers = {
        let _sp = chainsplit_trace::span!("fixpoint", strategy = "top-down", pred = query.pred);
        td.solve(query)?
    };
    Ok((answers, td.counters, td.trip))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainsplit_logic::{parse_program, parse_query, Term, Var};

    fn run(src: &str, query: &str) -> Vec<Subst> {
        let p = parse_program(src).unwrap();
        let q = parse_query(query).unwrap();
        topdown_query(&p, &q, TopDownOptions::default()).unwrap().0
    }

    fn y_values(sols: &[Subst], var: &str) -> Vec<String> {
        let mut v: Vec<String> = sols
            .iter()
            .map(|s| s.resolve(&Term::Var(Var::named(var))).to_string())
            .collect();
        v.sort();
        v
    }

    const APPEND: &str = "append([], L, L).
        append([X | L1], L2, [X | L3]) :- append(L1, L2, L3).";

    #[test]
    fn append_forward() {
        let sols = run(APPEND, "append([1, 2], [3], Ys)");
        assert_eq!(y_values(&sols, "Ys"), ["[1, 2, 3]"]);
    }

    #[test]
    fn append_backward_enumerates_splits() {
        let sols = run(APPEND, "append(U, V, [1, 2, 3])");
        assert_eq!(sols.len(), 4);
    }

    #[test]
    fn isort_sorts() {
        let src = "isort([X | Xs], Ys) :- isort(Xs, Zs), insert(X, Zs, Ys).
             isort([], []).
             insert(X, [], [X]).
             insert(X, [Y | Ys], [Y | Zs]) :- X > Y, insert(X, Ys, Zs).
             insert(X, [Y | Ys], [X, Y | Ys]) :- X <= Y.";
        let sols = run(src, "isort([5, 7, 1], Ys)");
        assert_eq!(y_values(&sols, "Ys"), ["[1, 5, 7]"]);
    }

    #[test]
    fn qsort_sorts() {
        let src = "qsort([X | Xs], Ys) :- partition(Xs, X, Ls, Bs),
                       qsort(Ls, SLs), qsort(Bs, SBs), append(SLs, [X | SBs], Ys).
             qsort([], []).
             partition([X | Xs], Y, [X | Ls], Bs) :- X <= Y, partition(Xs, Y, Ls, Bs).
             partition([X | Xs], Y, Ls, [X | Bs]) :- X > Y, partition(Xs, Y, Ls, Bs).
             partition([], Y, [], []).
             append([], L, L).
             append([X | L1], L2, [X | L3]) :- append(L1, L2, L3).";
        let sols = run(src, "qsort([4, 9, 5], Ys)");
        assert_eq!(y_values(&sols, "Ys"), ["[4, 5, 9]"]);
    }

    #[test]
    fn edb_goals_resolve() {
        let sols = run(
            "parent(adam, cain). parent(adam, abel).
             gp(X, Z) :- parent(X, Y), parent(Y, Z).",
            "parent(adam, X)",
        );
        assert_eq!(sols.len(), 2);
    }

    #[test]
    fn depth_budget_stops_left_recursion() {
        let src = "p(X) :- p(X).
             p(a).";
        let p = parse_program(src).unwrap();
        let q = parse_query("p(a)").unwrap();
        let err = topdown_query(
            &p,
            &q,
            TopDownOptions {
                max_depth: 100,
                fuel: 1_000_000,
                ..TopDownOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, EvalError::DepthExceeded { .. }));
    }

    #[test]
    fn fuel_budget_stops_wide_search() {
        let src = "b(1). b(2). b(3). b(4). b(5).
             w(A, B, C, D, E, F, G, H) :- b(A), b(B), b(C), b(D), b(E), b(F), b(G), b(H).";
        let p = parse_program(src).unwrap();
        let q = parse_query("w(A, B, C, D, E, F, G, H)").unwrap();
        let err = topdown_query(
            &p,
            &q,
            TopDownOptions {
                max_depth: 100_000,
                fuel: 1000,
                ..TopDownOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, EvalError::FuelExceeded { .. }));
    }

    #[test]
    fn cancellation_keeps_answers_proved_so_far() {
        let src = "b(1). b(2). b(3). b(4). b(5).
             w(A, B, C, D, E, F, G, H) :- b(A), b(B), b(C), b(D), b(E), b(F), b(G), b(H).";
        let p = parse_program(src).unwrap();
        let q = parse_query("w(A, B, C, D, E, F, G, H)").unwrap();
        let opts = TopDownOptions::default();
        opts.governor.begin_query();
        opts.governor.cancel_token().cancel();
        let (sols, _, trip) = topdown_query(&p, &q, opts).unwrap();
        let trip = trip.expect("cancellation must trip");
        assert_eq!(trip.resource, chainsplit_governor::Resource::Cancelled);
        assert_eq!(trip.phase, "sld-resolve");
        // The strided poll fires within 1024 steps: far fewer than the
        // 390625 total answers of the full search.
        assert!(sols.len() < 390_625);
    }

    #[test]
    fn unbound_builtin_is_instantiation_error() {
        let src = "p(X, Y) :- X < Y.";
        let p = parse_program(src).unwrap();
        let q = parse_query("p(X, Y)").unwrap();
        let err = topdown_query(&p, &q, TopDownOptions::default()).unwrap_err();
        assert!(matches!(err, EvalError::NotEvaluable { .. }));
    }

    #[test]
    fn no_rules_no_facts_means_failure_not_error() {
        let sols = run("p(a).", "q(X)");
        assert!(sols.is_empty());
    }
}
