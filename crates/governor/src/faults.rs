//! Deterministic fault injection (feature `fault-inject` only).
//!
//! Every [`Governor::check`](crate::Governor::check) is an *injection
//! point*: when a [`FaultPlan`] is armed, each point draws from a seeded
//! SplitMix64 stream and, with probability `rate_ppm / 1e6`, fires a
//! fault — a probe-time error (surfacing as
//! `EvalError::BudgetExceeded { resource: Fault, .. }`), a forced
//! cancellation, synthetic latency, or (when `plan.panic` is set) a
//! panic, exercising the pool's worker-panic containment.
//!
//! The decision for point *n* depends only on `(seed, n)`, so a
//! single-threaded replay of the same plan fires the same faults at the
//! same points. Multi-threaded runs interleave points
//! nondeterministically — which is fine for the crash-consistency
//! invariant, which only asserts that *after* faults are disarmed the
//! same query re-runs to the correct, bit-identical answer.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::Duration;

/// A seeded fault plan. Probability is per injection point, in parts per
/// million.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    pub seed: u64,
    pub rate_ppm: u32,
    /// Sleep applied by a `Latency` fault.
    pub latency: Duration,
    /// Include `Panic` in the fault mix (off for fuzzing, on for the
    /// worker-panic containment tests).
    pub panic: bool,
}

impl FaultPlan {
    /// A plan firing errors/cancellations/latency (no panics).
    pub fn new(seed: u64, rate_ppm: u32) -> FaultPlan {
        FaultPlan {
            seed,
            rate_ppm,
            latency: Duration::from_micros(50),
            panic: false,
        }
    }
}

/// The kind of fault a point fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Surfaced as a trip with [`Resource::Fault`](crate::Resource::Fault).
    Error,
    /// Forces the governor's cancellation flag.
    Cancel,
    /// Sleeps for the plan's latency.
    Latency,
    /// Panics at the check site (only when `plan.panic` is set).
    Panic,
}

/// A fired fault with its injection point index.
#[derive(Clone, Copy, Debug)]
pub struct FaultHit {
    pub fault: Fault,
    pub point: u64,
    pub latency: Duration,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static POINT: AtomicU64 = AtomicU64::new(0);
static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);

fn plan_slot() -> std::sync::MutexGuard<'static, Option<FaultPlan>> {
    PLAN.lock().unwrap_or_else(|e| e.into_inner())
}

/// Arms `plan` process-wide and resets the injection-point counter.
pub fn arm(plan: FaultPlan) {
    *plan_slot() = Some(plan);
    POINT.store(0, Relaxed);
    ARMED.store(true, Relaxed);
}

/// Disarms fault injection. Subsequent checks inject nothing.
pub fn disarm() {
    ARMED.store(false, Relaxed);
    *plan_slot() = None;
}

/// Whether a plan is currently armed.
pub fn is_armed() -> bool {
    ARMED.load(Relaxed)
}

/// The number of injection points visited since the last [`arm`].
pub fn points_visited() -> u64 {
    POINT.load(Relaxed)
}

/// SplitMix64: the same generator the fuzz workloads use, so fault
/// streams are reproducible from a printed seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws the decision for the next injection point. `None` when disarmed
/// or the point rolls under the rate.
pub(crate) fn poll() -> Option<FaultHit> {
    if !ARMED.load(Relaxed) {
        return None;
    }
    let plan = (*plan_slot())?;
    let point = POINT.fetch_add(1, Relaxed);
    let h = splitmix64(plan.seed ^ point.wrapping_mul(0xD129_0D3B_53B0_8B1D));
    if (h % 1_000_000) as u32 >= plan.rate_ppm {
        return None;
    }
    let kinds: u64 = if plan.panic { 4 } else { 3 };
    let fault = match (h >> 32) % kinds {
        0 => Fault::Error,
        1 => Fault::Cancel,
        2 => Fault::Latency,
        _ => Fault::Panic,
    };
    Some(FaultHit {
        fault,
        point,
        latency: plan.latency,
    })
}

/// A filesystem failure the storage layer simulates at one persistence
/// point (a WAL frame write, an fsync, a segment rotation, a snapshot
/// write/fsync/rename). Every kind models a *crash*: the storage call
/// reports the process as killed after (or instead of) leaving the
/// described damage on disk, and recovery must cope with what remains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsFault {
    /// Only a prefix of the bytes reached the file (a torn page).
    TornWrite,
    /// All but the final byte reached the file.
    ShortWrite,
    /// The bytes landed but the trailing checksum is flipped.
    CorruptChecksum,
    /// The temp file was written and fsynced but never renamed into place.
    CrashBeforeRename,
    /// The rename completed; the crash hit immediately after.
    CrashAfterRename,
    /// The same record was appended twice (a replayed buffer).
    DuplicateRecord,
}

impl FsFault {
    /// All kinds, in the order the crash oracle indexes them.
    pub const ALL: [FsFault; 6] = [
        FsFault::TornWrite,
        FsFault::ShortWrite,
        FsFault::CorruptChecksum,
        FsFault::CrashBeforeRename,
        FsFault::CrashAfterRename,
        FsFault::DuplicateRecord,
    ];
}

/// A targeted filesystem fault: fire `fault` at exactly the `point`-th
/// persistence point after arming (0-based), once.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FsFaultPlan {
    pub point: u64,
    pub fault: FsFault,
}

static FS_ARMED: AtomicBool = AtomicBool::new(false);
static FS_POINT: AtomicU64 = AtomicU64::new(0);
static FS_PLAN: Mutex<Option<FsFaultPlan>> = Mutex::new(None);

fn fs_plan_slot() -> std::sync::MutexGuard<'static, Option<FsFaultPlan>> {
    FS_PLAN.lock().unwrap_or_else(|e| e.into_inner())
}

/// Arms `plan` process-wide and resets the persistence-point counter.
/// A plan with `point: u64::MAX` never fires — useful for counting the
/// points a session visits via [`fs_points_visited`].
pub fn arm_fs(plan: FsFaultPlan) {
    *fs_plan_slot() = Some(plan);
    FS_POINT.store(0, Relaxed);
    FS_ARMED.store(true, Relaxed);
}

/// Disarms filesystem fault injection.
pub fn disarm_fs() {
    FS_ARMED.store(false, Relaxed);
    *fs_plan_slot() = None;
}

/// Whether a filesystem fault plan is currently armed.
pub fn fs_is_armed() -> bool {
    FS_ARMED.load(Relaxed)
}

/// The number of persistence points visited since the last [`arm_fs`].
pub fn fs_points_visited() -> u64 {
    FS_POINT.load(Relaxed)
}

/// Draws the decision for the next persistence point: `Some(fault)`
/// exactly when this is the armed plan's target point. Storage code
/// calls this once per persistence point (append, fsync, rotate,
/// snapshot write/fsync/rename); the counter advances deterministically
/// because every such point runs on the mutating caller's thread.
pub fn poll_fs() -> Option<FsFault> {
    if !FS_ARMED.load(Relaxed) {
        return None;
    }
    let plan = (*fs_plan_slot())?;
    let point = FS_POINT.fetch_add(1, Relaxed);
    (point == plan.point).then_some(plan.fault)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The plan is process-global, so tests that arm it serialize here.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn test_guard() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disarmed_polls_are_none() {
        let _guard = test_guard();
        disarm();
        assert!(poll().is_none());
        assert!(!is_armed());
    }

    #[test]
    fn fault_stream_is_deterministic_in_point_order() {
        let _guard = test_guard();
        arm(FaultPlan::new(42, 100_000));
        let first: Vec<Option<Fault>> = (0..256).map(|_| poll().map(|h| h.fault)).collect();
        let fired = first.iter().flatten().count();
        assert!(fired > 0, "a 10% rate must fire within 256 points");
        assert!(fired < 256);
        // Re-arming the same plan replays the identical stream.
        arm(FaultPlan::new(42, 100_000));
        let second: Vec<Option<Fault>> = (0..256).map(|_| poll().map(|h| h.fault)).collect();
        assert_eq!(first, second);
        disarm();
    }

    #[test]
    fn zero_rate_never_fires_and_panic_needs_opt_in() {
        let _guard = test_guard();
        arm(FaultPlan::new(7, 0));
        assert!((0..1000).all(|_| poll().is_none()));
        arm(FaultPlan::new(7, 1_000_000));
        // Full rate, panics off: every point fires, none are panics.
        for _ in 0..512 {
            let hit = poll().expect("rate 1.0 always fires");
            assert_ne!(hit.fault, Fault::Panic);
        }
        disarm();
    }

    #[test]
    fn fs_fault_fires_exactly_at_the_target_point() {
        let _guard = test_guard();
        arm_fs(FsFaultPlan {
            point: 3,
            fault: FsFault::TornWrite,
        });
        let fired: Vec<Option<FsFault>> = (0..8).map(|_| poll_fs()).collect();
        assert_eq!(fired.iter().flatten().count(), 1);
        assert_eq!(fired[3], Some(FsFault::TornWrite));
        assert_eq!(fs_points_visited(), 8);
        disarm_fs();
        assert!(!fs_is_armed());
        assert!(poll_fs().is_none());
    }

    #[test]
    fn fs_counting_plan_never_fires() {
        let _guard = test_guard();
        arm_fs(FsFaultPlan {
            point: u64::MAX,
            fault: FsFault::ShortWrite,
        });
        assert!((0..100).all(|_| poll_fs().is_none()));
        assert_eq!(fs_points_visited(), 100);
        disarm_fs();
    }
}
