//! # chainsplit-governor
//!
//! The cooperative resource governor of the chain-split deductive
//! database: one cheap, shareable handle that every evaluator checks at
//! its natural batch boundaries (fixpoint rounds, probe batches, buffered
//! up-sweep levels, SLD resolution strides).
//!
//! A [`Governor`] carries a unified [`Budget`] — wall-clock deadline,
//! round / tuple / estimated-byte ceilings — plus a [`CancelToken`] that
//! any thread may fire. Exhaustion never panics and never tears state
//! down mid-batch: a check returns a structured [`BudgetTrip`] and the
//! evaluators *drain* to the last consistent boundary, returning the
//! answers and `RoundMetrics` derived so far, marked incomplete.
//!
//! Cost model: when no budget is set and no cancellation is pending, a
//! check is a relaxed atomic load of the global interrupt flag plus one
//! relaxed load of the governor's `armed` flag — no clock reads, no
//! locking, no allocation. The governor never touches the evaluators'
//! work counters, so `probed`/`matched`/`derived` stay bit-identical
//! whether or not a governor is attached (the determinism contract of
//! DESIGN.md §5 is preserved).
//!
//! The first trip is latched (first-wins) and emitted as a `cat=governor`
//! trace span so budget trips are visible in Perfetto exports.
//!
//! With the `fault-inject` feature, the `faults` module adds a deterministic
//! fault-injection seam: every governor check is also a seeded injection
//! point that can surface probe-time errors, forced cancellations,
//! synthetic latency, or (opt-in) panics.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

#[cfg(feature = "fault-inject")]
pub mod faults;

/// The one documented default round / sweep ceiling shared by every
/// bottom-up strategy and the tabled evaluator. A safety net against
/// unbounded recursion, far above any workload's real round count; use a
/// [`Budget`] for per-query limits.
pub const DEFAULT_MAX_ROUNDS: usize = 1_000_000;

/// Acquires `m`, ignoring poisoning: the governor's shared state stays
/// meaningful even if a holder panicked.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Which budgeted resource a trip exhausted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Resource {
    /// The wall-clock deadline passed (`limit`/`observed` in ms).
    Wall,
    /// The fixpoint round / sweep ceiling was hit.
    Rounds,
    /// The derived-tuple ceiling was hit.
    Tuples,
    /// The estimated-bytes ceiling was hit.
    Bytes,
    /// A [`CancelToken`] fired (or Ctrl-C was pressed).
    Cancelled,
    /// A deterministic injected fault (`fault-inject` builds only;
    /// `observed` is the injection point index).
    Fault,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Resource::Wall => "wall-clock",
            Resource::Rounds => "rounds",
            Resource::Tuples => "tuples",
            Resource::Bytes => "bytes",
            Resource::Cancelled => "cancelled",
            Resource::Fault => "injected-fault",
        })
    }
}

/// A unified per-query resource budget. `None` everywhere (the default)
/// means unlimited: the governor disarms and checks cost two relaxed
/// loads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock deadline, armed at [`Governor::begin_query`].
    pub wall: Option<Duration>,
    /// Ceiling on fixpoint rounds / tabled sweeps / up-sweep levels.
    pub max_rounds: Option<u64>,
    /// Ceiling on tuples derived (inserted facts, buffered nodes).
    pub max_tuples: Option<u64>,
    /// Ceiling on the estimated bytes of derived tuples.
    pub max_bytes_est: Option<u64>,
}

impl Budget {
    /// Whether every limit is unset.
    pub fn is_unlimited(&self) -> bool {
        self.wall.is_none()
            && self.max_rounds.is_none()
            && self.max_tuples.is_none()
            && self.max_bytes_est.is_none()
    }

    /// A budget with only a wall-clock deadline.
    pub fn with_wall_ms(ms: u64) -> Budget {
        Budget {
            wall: Some(Duration::from_millis(ms)),
            ..Budget::default()
        }
    }
}

/// A latched budget exhaustion: which resource, the configured limit, the
/// observed value at the check, and the evaluator phase that noticed.
/// Wall values are in milliseconds, bytes in bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetTrip {
    pub resource: Resource,
    pub limit: u64,
    pub observed: u64,
    pub phase: &'static str,
}

impl fmt::Display for BudgetTrip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.resource {
            Resource::Wall => write!(
                f,
                "wall-clock deadline of {} ms exceeded ({} ms observed) at {}",
                self.limit, self.observed, self.phase
            ),
            Resource::Cancelled => write!(f, "query cancelled at {}", self.phase),
            Resource::Fault => write!(
                f,
                "injected fault at {} (injection point {})",
                self.phase, self.observed
            ),
            r => write!(
                f,
                "{} budget of {} exceeded ({} observed) at {}",
                r, self.limit, self.observed, self.phase
            ),
        }
    }
}

// A trip is the root cause in the `EvalError` → `DbError` chain, so it
// terminates `source()` walks itself.
impl std::error::Error for BudgetTrip {}

/// Process-wide interrupt flag: the only thing a SIGINT handler touches.
static INTERRUPT: AtomicBool = AtomicBool::new(false);

/// Requests cancellation of whatever query is currently observing a
/// governor, from a signal handler or any thread. Async-signal-safe: a
/// single relaxed atomic store.
pub fn interrupt() {
    INTERRUPT.store(true, Relaxed);
}

/// Whether an interrupt is pending (set but not yet consumed by a check).
pub fn interrupt_pending() -> bool {
    INTERRUPT.load(Relaxed)
}

/// Clears a pending interrupt, e.g. before starting a fresh query so a
/// stale Ctrl-C cannot cancel it.
pub fn clear_interrupt() {
    INTERRUPT.store(false, Relaxed);
}

#[derive(Debug)]
struct GovInner {
    /// Fast-path flag: any limit set, or a cancellation pending. One
    /// relaxed load decides whether a check does any further work.
    armed: AtomicBool,
    cancelled: AtomicBool,
    /// Set once the first trip latched; later checks return it verbatim.
    tripped: AtomicBool,
    /// Configured wall budget in µs; `u64::MAX` = none.
    wall_us: AtomicU64,
    /// Deadline in µs since `epoch`; `u64::MAX` = none. Re-armed from
    /// `wall_us` at every `begin_query`.
    deadline_us: AtomicU64,
    /// µs since `epoch` when the deadline was armed (for `observed`).
    armed_at_us: AtomicU64,
    lim_rounds: AtomicU64,
    lim_tuples: AtomicU64,
    lim_bytes: AtomicU64,
    rounds: AtomicU64,
    tuples: AtomicU64,
    bytes: AtomicU64,
    trip: Mutex<Option<BudgetTrip>>,
    epoch: Instant,
}

/// The shareable governor handle. Cloning is an `Arc` clone; every clone
/// observes the same budget, accounting, cancellation, and trip latch.
#[derive(Clone, Debug)]
pub struct Governor {
    inner: Arc<GovInner>,
}

impl Default for Governor {
    fn default() -> Self {
        Governor::new()
    }
}

/// A handle that cancels the query its governor is attached to, from any
/// thread. Cancellation is cooperative: the running evaluator notices at
/// its next check and drains gracefully.
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<GovInner>,
}

impl CancelToken {
    /// Requests cancellation. Idempotent.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Relaxed);
        self.inner.armed.store(true, Relaxed);
    }
}

const NONE: u64 = u64::MAX;

fn opt(limit: u64) -> Option<u64> {
    (limit != NONE).then_some(limit)
}

impl Governor {
    /// A fresh, disarmed governor (unlimited budget).
    pub fn new() -> Governor {
        Governor {
            inner: Arc::new(GovInner {
                armed: AtomicBool::new(false),
                cancelled: AtomicBool::new(false),
                tripped: AtomicBool::new(false),
                wall_us: AtomicU64::new(NONE),
                deadline_us: AtomicU64::new(NONE),
                armed_at_us: AtomicU64::new(0),
                lim_rounds: AtomicU64::new(NONE),
                lim_tuples: AtomicU64::new(NONE),
                lim_bytes: AtomicU64::new(NONE),
                rounds: AtomicU64::new(0),
                tuples: AtomicU64::new(0),
                bytes: AtomicU64::new(0),
                trip: Mutex::new(None),
                epoch: Instant::now(),
            }),
        }
    }

    /// Installs `budget` and (re)arms the deadline from now. Limits apply
    /// to the counters accumulated since the last [`Governor::begin_query`].
    pub fn set_budget(&self, budget: Budget) {
        let i = &self.inner;
        let now = self.now_us();
        i.wall_us
            .store(budget.wall.map_or(NONE, |d| d.as_micros() as u64), Relaxed);
        i.lim_rounds
            .store(budget.max_rounds.unwrap_or(NONE), Relaxed);
        i.lim_tuples
            .store(budget.max_tuples.unwrap_or(NONE), Relaxed);
        i.lim_bytes
            .store(budget.max_bytes_est.unwrap_or(NONE), Relaxed);
        i.armed_at_us.store(now, Relaxed);
        i.deadline_us.store(
            budget
                .wall
                .map_or(NONE, |d| now.saturating_add(d.as_micros() as u64)),
            Relaxed,
        );
        i.armed
            .store(!budget.is_unlimited() || i.cancelled.load(Relaxed), Relaxed);
    }

    /// The currently installed budget.
    pub fn budget(&self) -> Budget {
        let i = &self.inner;
        Budget {
            wall: opt(i.wall_us.load(Relaxed)).map(Duration::from_micros),
            max_rounds: opt(i.lim_rounds.load(Relaxed)),
            max_tuples: opt(i.lim_tuples.load(Relaxed)),
            max_bytes_est: opt(i.lim_bytes.load(Relaxed)),
        }
    }

    /// Resets per-query state — accounting, the trip latch, pending
    /// cancellation — and re-arms the wall deadline from now. Called at
    /// the top of every query.
    pub fn begin_query(&self) {
        let i = &self.inner;
        i.rounds.store(0, Relaxed);
        i.tuples.store(0, Relaxed);
        i.bytes.store(0, Relaxed);
        i.tripped.store(false, Relaxed);
        *lock(&i.trip) = None;
        i.cancelled.store(false, Relaxed);
        let now = self.now_us();
        i.armed_at_us.store(now, Relaxed);
        let wall = i.wall_us.load(Relaxed);
        i.deadline_us.store(
            if wall == NONE {
                NONE
            } else {
                now.saturating_add(wall)
            },
            Relaxed,
        );
        i.armed.store(!self.budget().is_unlimited(), Relaxed);
    }

    /// A token that cancels this governor's query from another thread.
    pub fn cancel_token(&self) -> CancelToken {
        CancelToken {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Whether any limit is set or a cancellation is pending — i.e.
    /// whether accounting calls will do real work. Callers may use this
    /// to skip byte-size estimation entirely when disarmed.
    pub fn active(&self) -> bool {
        self.inner.armed.load(Relaxed)
    }

    /// The first trip latched since the last `begin_query`, if any.
    pub fn trip(&self) -> Option<BudgetTrip> {
        if self.inner.tripped.load(Relaxed) {
            *lock(&self.inner.trip)
        } else {
            None
        }
    }

    /// Records `n` derived tuples against the tuple budget.
    pub fn add_tuples(&self, n: u64) {
        if self.active() {
            self.inner.tuples.fetch_add(n, Relaxed);
        }
    }

    /// Records `n` estimated bytes against the byte budget.
    pub fn add_bytes(&self, n: u64) {
        if self.active() {
            self.inner.bytes.fetch_add(n, Relaxed);
        }
    }

    /// Marks a round / sweep / level boundary and checks the budget.
    pub fn on_round(&self, phase: &'static str) -> Result<(), BudgetTrip> {
        if self.active() {
            self.inner.rounds.fetch_add(1, Relaxed);
        }
        self.check(phase)
    }

    /// The cooperative check. Returns the latched [`BudgetTrip`] once any
    /// limit is exhausted, a cancellation fired, or (in `fault-inject`
    /// builds) a fault triggered; `Ok(())` otherwise.
    pub fn check(&self, phase: &'static str) -> Result<(), BudgetTrip> {
        #[cfg(feature = "fault-inject")]
        self.poll_faults(phase)?;
        // A pending process-wide interrupt is folded into this governor's
        // cancellation flag (and consumed) so all workers sharing the
        // handle observe it, then cleared so it cancels exactly one query.
        if INTERRUPT.load(Relaxed) && INTERRUPT.swap(false, Relaxed) {
            self.inner.cancelled.store(true, Relaxed);
            self.inner.armed.store(true, Relaxed);
        }
        if !self.inner.armed.load(Relaxed) {
            return Ok(());
        }
        self.check_armed(phase)
    }

    #[cold]
    fn check_armed(&self, phase: &'static str) -> Result<(), BudgetTrip> {
        let i = &self.inner;
        if i.tripped.load(Relaxed) {
            if let Some(first) = *lock(&i.trip) {
                return Err(first);
            }
        }
        if i.cancelled.load(Relaxed) {
            return Err(self.latch(BudgetTrip {
                resource: Resource::Cancelled,
                limit: 0,
                observed: 0,
                phase,
            }));
        }
        let deadline = i.deadline_us.load(Relaxed);
        if deadline != NONE {
            let now = self.now_us();
            if now >= deadline {
                return Err(self.latch(BudgetTrip {
                    resource: Resource::Wall,
                    limit: i.wall_us.load(Relaxed) / 1_000,
                    observed: now.saturating_sub(i.armed_at_us.load(Relaxed)) / 1_000,
                    phase,
                }));
            }
        }
        for (resource, lim, used) in [
            (Resource::Rounds, &i.lim_rounds, &i.rounds),
            (Resource::Tuples, &i.lim_tuples, &i.tuples),
            (Resource::Bytes, &i.lim_bytes, &i.bytes),
        ] {
            let limit = lim.load(Relaxed);
            if limit != NONE {
                let observed = used.load(Relaxed);
                if observed > limit {
                    return Err(self.latch(BudgetTrip {
                        resource,
                        limit,
                        observed,
                        phase,
                    }));
                }
            }
        }
        Ok(())
    }

    /// Latches `trip` first-wins and emits the `cat=governor` trace event
    /// on the winning latch. Returns the latched (possibly earlier) trip.
    fn latch(&self, trip: BudgetTrip) -> BudgetTrip {
        let mut slot = lock(&self.inner.trip);
        if let Some(first) = *slot {
            return first;
        }
        *slot = Some(trip);
        self.inner.tripped.store(true, Relaxed);
        drop(slot);
        let mut span = chainsplit_trace::Span::enter_cat("budget-trip", "governor");
        if span.is_recording() {
            span.set_attr("resource", trip.resource);
            span.set_attr("limit", trip.limit);
            span.set_attr("observed", trip.observed);
            span.set_attr("phase", trip.phase);
        }
        trip
    }

    fn now_us(&self) -> u64 {
        self.inner.epoch.elapsed().as_micros() as u64
    }

    #[cfg(feature = "fault-inject")]
    fn poll_faults(&self, phase: &'static str) -> Result<(), BudgetTrip> {
        if let Some(hit) = faults::poll() {
            match hit.fault {
                faults::Fault::Latency => std::thread::sleep(hit.latency),
                faults::Fault::Cancel => {
                    self.inner.cancelled.store(true, Relaxed);
                    self.inner.armed.store(true, Relaxed);
                }
                faults::Fault::Panic => {
                    panic!(
                        "injected panic at {} (injection point {})",
                        phase, hit.point
                    )
                }
                faults::Fault::Error => {
                    return Err(self.latch(BudgetTrip {
                        resource: Resource::Fault,
                        limit: 0,
                        observed: hit.point,
                        phase,
                    }));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn disarmed_checks_are_free_and_ok() {
        let g = Governor::new();
        assert!(!g.active());
        assert!(g.check("x").is_ok());
        assert!(g.on_round("x").is_ok());
        g.add_tuples(10);
        g.add_bytes(10);
        assert!(g.check("x").is_ok());
        assert_eq!(g.trip(), None);
    }

    #[test]
    fn rounds_budget_trips_and_latches_first() {
        let g = Governor::new();
        g.set_budget(Budget {
            max_rounds: Some(2),
            ..Budget::default()
        });
        g.begin_query();
        assert!(g.on_round("r").is_ok());
        assert!(g.on_round("r").is_ok());
        let trip = g.on_round("first-over").unwrap_err();
        assert_eq!(trip.resource, Resource::Rounds);
        assert_eq!(trip.limit, 2);
        assert_eq!(trip.observed, 3);
        assert_eq!(trip.phase, "first-over");
        // Latched: a later check reports the first trip, not a new one.
        let again = g.on_round("later").unwrap_err();
        assert_eq!(again, trip);
        assert_eq!(g.trip(), Some(trip));
        // A new query clears the latch.
        g.begin_query();
        assert_eq!(g.trip(), None);
        assert!(g.on_round("r").is_ok());
    }

    #[test]
    fn tuple_and_byte_budgets_trip() {
        let g = Governor::new();
        g.set_budget(Budget {
            max_tuples: Some(5),
            max_bytes_est: Some(1000),
            ..Budget::default()
        });
        g.begin_query();
        g.add_tuples(5);
        assert!(g.check("p").is_ok(), "at the limit is not over it");
        g.add_tuples(1);
        let trip = g.check("p").unwrap_err();
        assert_eq!(trip.resource, Resource::Tuples);
        assert_eq!((trip.limit, trip.observed), (5, 6));
    }

    #[test]
    fn wall_deadline_trips() {
        let g = Governor::new();
        g.set_budget(Budget {
            wall: Some(Duration::from_millis(5)),
            ..Budget::default()
        });
        g.begin_query();
        assert!(g.check("before").is_ok());
        thread::sleep(Duration::from_millis(10));
        let trip = g.check("after").unwrap_err();
        assert_eq!(trip.resource, Resource::Wall);
        assert_eq!(trip.limit, 5);
        assert!(trip.observed >= 5, "observed {} ms", trip.observed);
    }

    #[test]
    fn deadline_rearms_per_query() {
        let g = Governor::new();
        g.set_budget(Budget::with_wall_ms(20));
        g.begin_query();
        thread::sleep(Duration::from_millis(30));
        assert!(g.check("old").is_err());
        g.begin_query();
        assert!(g.check("new").is_ok(), "begin_query re-arms the deadline");
    }

    #[test]
    fn cancel_token_works_without_budget_and_across_threads() {
        let g = Governor::new();
        let token = g.cancel_token();
        assert!(g.check("before").is_ok());
        thread::spawn(move || token.cancel()).join().unwrap();
        let trip = g.check("after").unwrap_err();
        assert_eq!(trip.resource, Resource::Cancelled);
        assert_eq!(trip.phase, "after");
        // begin_query clears a consumed cancellation.
        g.begin_query();
        assert!(g.check("next").is_ok());
    }

    #[test]
    fn global_interrupt_cancels_one_query_and_self_clears() {
        let g = Governor::new();
        interrupt();
        assert!(interrupt_pending());
        let trip = g.check("sigint").unwrap_err();
        assert_eq!(trip.resource, Resource::Cancelled);
        assert!(!interrupt_pending(), "interrupt is consumed by the check");
        // Consumed into this governor: a fresh governor is unaffected.
        let other = Governor::new();
        assert!(other.check("other").is_ok());
        clear_interrupt();
    }

    #[test]
    fn budget_round_trips() {
        let g = Governor::new();
        let b = Budget {
            wall: Some(Duration::from_millis(250)),
            max_rounds: Some(7),
            max_tuples: Some(1_000),
            max_bytes_est: Some(1 << 20),
        };
        g.set_budget(b);
        assert_eq!(g.budget(), b);
        g.set_budget(Budget::default());
        assert!(g.budget().is_unlimited());
        assert!(!g.active());
    }

    #[test]
    fn trip_display_is_structured() {
        let wall = BudgetTrip {
            resource: Resource::Wall,
            limit: 50,
            observed: 53,
            phase: "up-sweep",
        };
        assert_eq!(
            wall.to_string(),
            "wall-clock deadline of 50 ms exceeded (53 ms observed) at up-sweep"
        );
        let tuples = BudgetTrip {
            resource: Resource::Tuples,
            limit: 10,
            observed: 11,
            phase: "seminaive-round",
        };
        assert_eq!(
            tuples.to_string(),
            "tuples budget of 10 exceeded (11 observed) at seminaive-round"
        );
    }
}
