//! Adornments: bound/free annotations on predicate arguments.
//!
//! Following the magic-sets notation of \[2, 21\] (and §2.2 of the paper), a
//! superscript string of `b`s and `f`s marks which arguments of a predicate
//! carry (finite) bindings at evaluation time. Adornments drive both the
//! magic-sets transformation and the finite-evaluability analysis that
//! decides where a chain generating path must be split.

use crate::atom::{Atom, Pred};
use crate::term::{Term, Var};
use std::collections::HashSet;
use std::fmt;

/// One argument position's binding status.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Ad {
    Bound,
    Free,
}

impl Ad {
    pub fn is_bound(self) -> bool {
        self == Ad::Bound
    }
}

/// A full adornment string, e.g. `bf` for `sg^bf`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Adornment(pub Vec<Ad>);

impl Adornment {
    /// Parses `"bf"`-style strings. Panics on characters other than `b`/`f`
    /// — adornment literals are programmer-written.
    pub fn parse(s: &str) -> Adornment {
        Adornment(
            s.chars()
                .map(|c| match c {
                    'b' => Ad::Bound,
                    'f' => Ad::Free,
                    other => panic!("invalid adornment character `{other}`"),
                })
                .collect(),
        )
    }

    /// The all-free adornment of the given arity.
    pub fn all_free(arity: usize) -> Adornment {
        Adornment(vec![Ad::Free; arity])
    }

    /// The all-bound adornment of the given arity.
    pub fn all_bound(arity: usize) -> Adornment {
        Adornment(vec![Ad::Bound; arity])
    }

    /// Computes the adornment of `atom` given the set of bound variables:
    /// an argument is bound iff every variable in it is bound (a ground
    /// argument is always bound).
    pub fn of_atom(atom: &Atom, bound: &HashSet<Var>) -> Adornment {
        Adornment(
            atom.args
                .iter()
                .map(|t| {
                    if term_bound(t, bound) {
                        Ad::Bound
                    } else {
                        Ad::Free
                    }
                })
                .collect(),
        )
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn bound_positions(&self) -> Vec<usize> {
        self.0
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.is_bound().then_some(i))
            .collect()
    }

    pub fn free_positions(&self) -> Vec<usize> {
        self.0
            .iter()
            .enumerate()
            .filter_map(|(i, a)| (!a.is_bound()).then_some(i))
            .collect()
    }

    pub fn n_bound(&self) -> usize {
        self.0.iter().filter(|a| a.is_bound()).count()
    }

    /// True iff every position bound in `other` is also bound here — i.e.
    /// this adornment provides at least the bindings of `other`.
    pub fn subsumes(&self, other: &Adornment) -> bool {
        self.0.len() == other.0.len()
            && self
                .0
                .iter()
                .zip(&other.0)
                .all(|(a, b)| a.is_bound() || !b.is_bound())
    }
}

/// True iff every variable of `t` is in `bound` (ground terms qualify).
pub fn term_bound(t: &Term, bound: &HashSet<Var>) -> bool {
    match t {
        Term::Var(v) => bound.contains(v),
        Term::Int(_) | Term::Sym(_) | Term::Nil => true,
        Term::Cons(h, tl) => term_bound(h, bound) && term_bound(tl, bound),
        Term::Comp(_, args) => args.iter().all(|a| term_bound(a, bound)),
    }
}

impl fmt::Display for Adornment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for a in &self.0 {
            write!(f, "{}", if a.is_bound() { 'b' } else { 'f' })?;
        }
        Ok(())
    }
}

impl fmt::Debug for Adornment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// A predicate together with an adornment — the unit the magic-sets
/// transformation and the evaluability analysis work over.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct AdornedPred {
    pub pred: Pred,
    // Adornments are short; to keep this type `Copy` we pack them into a
    // bitset (bit i set = position i bound). Arity is bounded by `Pred`.
    bits: u64,
}

impl AdornedPred {
    pub fn new(pred: Pred, ad: &Adornment) -> AdornedPred {
        assert_eq!(pred.arity as usize, ad.len(), "adornment/arity mismatch");
        assert!(pred.arity <= 64, "arity > 64 unsupported");
        let mut bits = 0u64;
        for (i, a) in ad.0.iter().enumerate() {
            if a.is_bound() {
                bits |= 1 << i;
            }
        }
        AdornedPred { pred, bits }
    }

    pub fn adornment(&self) -> Adornment {
        Adornment(
            (0..self.pred.arity as usize)
                .map(|i| {
                    if self.bits & (1 << i) != 0 {
                        Ad::Bound
                    } else {
                        Ad::Free
                    }
                })
                .collect(),
        )
    }
}

impl fmt::Display for AdornedPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}^{}", self.pred.name, self.adornment())
    }
}

impl fmt::Debug for AdornedPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let a = Adornment::parse("bfb");
        assert_eq!(a.to_string(), "bfb");
        assert_eq!(a.bound_positions(), vec![0, 2]);
        assert_eq!(a.free_positions(), vec![1]);
        assert_eq!(a.n_bound(), 2);
    }

    #[test]
    fn of_atom_uses_bound_vars_and_groundness() {
        let atom = Atom::new(
            "travel",
            vec![Term::var("L"), Term::sym("vancouver"), Term::var("F")],
        );
        let mut bound = HashSet::new();
        bound.insert(Var::named("F"));
        let ad = Adornment::of_atom(&atom, &bound);
        assert_eq!(ad.to_string(), "fbb");
    }

    #[test]
    fn partially_bound_structured_arg_is_free() {
        // [X | Xs] with only X bound is not a bound argument.
        let atom = Atom::new(
            "isort",
            vec![Term::Cons(Term::var("X").into(), Term::var("Xs").into())],
        );
        let mut bound = HashSet::new();
        bound.insert(Var::named("X"));
        assert_eq!(Adornment::of_atom(&atom, &bound).to_string(), "f");
        bound.insert(Var::named("Xs"));
        assert_eq!(Adornment::of_atom(&atom, &bound).to_string(), "b");
    }

    #[test]
    fn subsumption() {
        let bb = Adornment::parse("bb");
        let bf = Adornment::parse("bf");
        let ff = Adornment::parse("ff");
        assert!(bb.subsumes(&bf));
        assert!(bb.subsumes(&ff));
        assert!(bf.subsumes(&ff));
        assert!(!bf.subsumes(&bb));
        assert!(!ff.subsumes(&bf));
        assert!(bf.subsumes(&bf));
    }

    #[test]
    fn adorned_pred_round_trip() {
        let p = Pred::new("sg", 2);
        let ap = AdornedPred::new(p, &Adornment::parse("bf"));
        assert_eq!(ap.adornment(), Adornment::parse("bf"));
        assert_eq!(ap.to_string(), "sg^bf");
        assert_ne!(
            AdornedPred::new(p, &Adornment::parse("bf")),
            AdornedPred::new(p, &Adornment::parse("fb"))
        );
    }

    #[test]
    fn all_free_all_bound() {
        assert_eq!(Adornment::all_free(3).to_string(), "fff");
        assert_eq!(Adornment::all_bound(2).to_string(), "bb");
    }
}
