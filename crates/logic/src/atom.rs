//! Predicates and atoms.

use crate::symbol::Sym;
use crate::term::{dedup_preserving_order, Term, Var};
use std::fmt;

/// A predicate symbol: name plus arity. `p/2` and `p/3` are distinct.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pred {
    pub name: Sym,
    pub arity: u32,
}

impl Pred {
    pub fn new(name: &str, arity: u32) -> Pred {
        Pred {
            name: Sym::new(name),
            arity,
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.arity)
    }
}

impl fmt::Debug for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// An atom `p(t1, …, tk)`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    pub pred: Pred,
    pub args: Vec<Term>,
}

impl Atom {
    /// Builds an atom, deriving the predicate's arity from the argument count.
    pub fn new(name: &str, args: Vec<Term>) -> Atom {
        Atom {
            pred: Pred::new(name, args.len() as u32),
            args,
        }
    }

    /// The variables of the atom, deduplicated, in first-occurrence order.
    pub fn vars(&self) -> Vec<Var> {
        let mut all = Vec::new();
        for a in &self.args {
            a.collect_vars(&mut all);
        }
        dedup_preserving_order(all)
    }

    /// True iff every argument is ground.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(Term::is_ground)
    }

    /// True iff every argument is a variable or an atomic constant
    /// (i.e. the atom is function-free).
    pub fn is_flat(&self) -> bool {
        self.args.iter().all(Term::is_atomic)
    }

    /// Renames every variable in the atom with the given rename tag.
    pub fn rename(&self, tag: u32) -> Atom {
        Atom {
            pred: self.pred,
            args: self.args.iter().map(|t| t.rename(tag)).collect(),
        }
    }
}

/// Comparison predicates that print infix (and are parsed infix).
pub const COMPARISON_OPS: [&str; 6] = ["=", "\\=", "<", "<=", ">", ">="];

impl Atom {
    /// True iff this atom is one of the infix comparison builtins.
    pub fn is_comparison(&self) -> bool {
        self.pred.arity == 2 && COMPARISON_OPS.contains(&self.pred.name.as_str())
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_comparison() {
            return write!(f, "{} {} {}", self.args[0], self.pred.name, self.args[1]);
        }
        if self.args.is_empty() {
            return write!(f, "{}", self.pred.name);
        }
        write!(f, "{}(", self.pred.name)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pred_identity_includes_arity() {
        assert_ne!(Pred::new("p", 2), Pred::new("p", 3));
        assert_eq!(Pred::new("p", 2), Pred::new("p", 2));
    }

    #[test]
    fn atom_vars_in_order() {
        let a = Atom::new(
            "sg",
            vec![
                Term::var("Y"),
                Term::comp("f", vec![Term::var("X"), Term::var("Y")]),
            ],
        );
        assert_eq!(a.vars(), vec![Var::named("Y"), Var::named("X")]);
    }

    #[test]
    fn flatness() {
        assert!(Atom::new("p", vec![Term::var("X"), Term::Int(1)]).is_flat());
        assert!(!Atom::new("p", vec![Term::int_list([1])]).is_flat());
    }

    #[test]
    fn zero_arity_display() {
        assert_eq!(Atom::new("halt", vec![]).to_string(), "halt");
    }

    #[test]
    fn display_atom() {
        let a = Atom::new("parent", vec![Term::sym("adam"), Term::var("X")]);
        assert_eq!(a.to_string(), "parent(adam, X)");
    }
}
