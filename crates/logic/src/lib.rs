//! # chainsplit-logic
//!
//! The Horn-clause language underlying the chain-split deductive database:
//! interned symbols, terms with function symbols and first-class lists,
//! atoms, rules and programs, a Prolog-style parser, substitutions,
//! unification, and b/f adornments.
//!
//! This is the substrate every other crate builds on; it corresponds to the
//! "Datalog with function symbols" preliminaries of Han's chain-split paper
//! (ICDE 1992, §1).
//!
//! ```
//! use chainsplit_logic::{parse_program, parse_query};
//!
//! let program = parse_program(
//!     "append([], L, L).
//!      append([X | L1], L2, [X | L3]) :- append(L1, L2, L3).",
//! )
//! .unwrap();
//! assert_eq!(program.rules.len(), 2);
//!
//! let query = parse_query("?- append(U, V, [1, 2, 3]).").unwrap();
//! assert_eq!(query.pred.name.as_str(), "append");
//! ```

#![forbid(unsafe_code)]

pub mod adorn;
pub mod atom;
pub mod parser;
pub mod rule;
pub mod subst;
pub mod symbol;
pub mod term;
pub mod unify;

pub use adorn::{Ad, AdornedPred, Adornment};
pub use atom::{Atom, Pred, COMPARISON_OPS};
pub use parser::{parse_program, parse_query, parse_rule, parse_term, ParseError};
pub use rule::{Program, Rule};
pub use subst::Subst;
pub use symbol::Sym;
pub use term::{Term, Var};
pub use unify::{mgu, unify, unify_atoms};

/// A process-global source of fresh rename tags for renaming rules apart.
pub mod fresh {
    use std::sync::atomic::{AtomicU32, Ordering};

    static COUNTER: AtomicU32 = AtomicU32::new(1);

    /// Returns a rename tag never returned before in this process.
    pub fn rename_tag() -> u32 {
        COUNTER.fetch_add(1, Ordering::Relaxed)
    }
}
