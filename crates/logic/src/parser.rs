//! A Prolog-style parser for the paper's programs.
//!
//! Supported syntax:
//!
//! - clauses `head.` and `head :- a1, …, ak.`;
//! - queries `?- atom.` (the `?-` and trailing `.` are optional in
//!   [`parse_query`]);
//! - terms: variables (`X`, `Xs`, `_tmp`), integers (`-3`), symbolic
//!   constants (`ottawa`), compound terms (`f(X, 1)`), lists (`[]`,
//!   `[1, 2]`, `[X | Xs]`);
//! - infix comparison atoms `T1 op T2` with `op` one of
//!   `=  \=  !=  <  >  <=  =<  >=` (canonicalised to `=`, `\=`, `<`, `<=`,
//!   `>`, `>=`);
//! - `%` line comments and `/* … */` block comments.

use crate::atom::Atom;
use crate::rule::{Program, Rule};
use crate::term::Term;
use std::fmt;

/// A parse failure with 1-based source position.
#[derive(Clone, PartialEq, Eq)]
pub struct ParseError {
    pub msg: String,
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl fmt::Debug for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Var(String),
    Int(i64),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Dot,
    Bar,
    ColonDash,
    QuestionDash,
    /// Canonicalised comparison operator: `=`, `\=`, `<`, `<=`, `>`, `>=`.
    Op(&'static str),
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Var(s) => write!(f, "variable `{s}`"),
            Tok::Int(i) => write!(f, "integer `{i}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Bar => write!(f, "`|`"),
            Tok::ColonDash => write!(f, "`:-`"),
            Tok::QuestionDash => write!(f, "`?-`"),
            Tok::Op(s) => write!(f, "`{s}`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            chars: src.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            msg: msg.into(),
            line: self.line,
            col: self.col,
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match self.chars.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('%') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                Some('/') => {
                    // Only a comment if followed by '*'; '/' alone is an error
                    // later anyway (no division operator in the term syntax).
                    let mut clone = self.chars.clone();
                    clone.next();
                    if clone.peek() == Some(&'*') {
                        self.bump();
                        self.bump();
                        let mut prev = ' ';
                        loop {
                            match self.bump() {
                                Some('/') if prev == '*' => break,
                                Some(c) => prev = c,
                                None => return Err(self.err("unterminated block comment")),
                            }
                        }
                    } else {
                        return Ok(());
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_int(&mut self) -> Result<i64, ParseError> {
        let mut n: i64 = 0;
        while let Some(&c) = self.chars.peek() {
            let Some(d) = c.to_digit(10) else { break };
            self.bump();
            n = n
                .checked_mul(10)
                .and_then(|n| n.checked_add(d as i64))
                .ok_or_else(|| self.err("integer literal overflows i64"))?;
        }
        Ok(n)
    }

    fn next_tok(&mut self) -> Result<(Tok, u32, u32), ParseError> {
        self.skip_trivia()?;
        let (line, col) = (self.line, self.col);
        let Some(&c) = self.chars.peek() else {
            return Ok((Tok::Eof, line, col));
        };
        let tok = match c {
            '(' => {
                self.bump();
                Tok::LParen
            }
            ')' => {
                self.bump();
                Tok::RParen
            }
            '[' => {
                self.bump();
                Tok::LBracket
            }
            ']' => {
                self.bump();
                Tok::RBracket
            }
            ',' => {
                self.bump();
                Tok::Comma
            }
            '|' => {
                self.bump();
                Tok::Bar
            }
            '.' => {
                self.bump();
                Tok::Dot
            }
            ':' => {
                self.bump();
                if self.chars.peek() == Some(&'-') {
                    self.bump();
                    Tok::ColonDash
                } else {
                    return Err(self.err("expected `:-`"));
                }
            }
            '?' => {
                self.bump();
                if self.chars.peek() == Some(&'-') {
                    self.bump();
                    Tok::QuestionDash
                } else {
                    return Err(self.err("expected `?-`"));
                }
            }
            '=' => {
                self.bump();
                if self.chars.peek() == Some(&'<') {
                    self.bump();
                    Tok::Op("<=")
                } else {
                    Tok::Op("=")
                }
            }
            '<' => {
                self.bump();
                if self.chars.peek() == Some(&'=') {
                    self.bump();
                    Tok::Op("<=")
                } else {
                    Tok::Op("<")
                }
            }
            '>' => {
                self.bump();
                if self.chars.peek() == Some(&'=') {
                    self.bump();
                    Tok::Op(">=")
                } else {
                    Tok::Op(">")
                }
            }
            '\\' | '!' => {
                self.bump();
                if self.chars.peek() == Some(&'=') {
                    self.bump();
                    Tok::Op("\\=")
                } else {
                    return Err(self.err(format!("expected `{c}=`")));
                }
            }
            '-' => {
                self.bump();
                match self.chars.peek() {
                    Some(d) if d.is_ascii_digit() => Tok::Int(-self.lex_int()?),
                    _ => return Err(self.err("expected digit after `-`")),
                }
            }
            d if d.is_ascii_digit() => Tok::Int(self.lex_int()?),
            a if a.is_alphabetic() || a == '_' => {
                let mut word = String::new();
                while let Some(&c) = self.chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        word.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                let first = word.chars().next().unwrap();
                if first.is_uppercase() || first == '_' {
                    Tok::Var(word)
                } else {
                    Tok::Ident(word)
                }
            }
            other => return Err(self.err(format!("unexpected character `{other}`"))),
        };
        Ok((tok, line, col))
    }
}

struct Parser {
    toks: Vec<(Tok, u32, u32)>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Parser, ParseError> {
        let mut lexer = Lexer::new(src);
        let mut toks = Vec::new();
        loop {
            let t = lexer.next_tok()?;
            let eof = t.0 == Tok::Eof;
            toks.push(t);
            if eof {
                break;
            }
        }
        Ok(Parser { toks, pos: 0 })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, msg: impl Into<String>) -> ParseError {
        let (_, line, col) = self.toks[self.pos];
        ParseError {
            msg: msg.into(),
            line,
            col,
        }
    }

    fn expect(&mut self, want: &Tok) -> Result<(), ParseError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.err_here(format!("expected {want}, found {}", self.peek())))
        }
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.bump() {
            Tok::Var(name) => Ok(Term::var(&name)),
            Tok::Int(i) => Ok(Term::Int(i)),
            Tok::Ident(name) => {
                if *self.peek() == Tok::LParen {
                    self.bump();
                    let args = self.term_list(Tok::RParen)?;
                    if args.is_empty() {
                        return Err(self.err_here("compound term needs at least one argument"));
                    }
                    Ok(Term::comp(&name, args))
                } else {
                    Ok(Term::sym(&name))
                }
            }
            Tok::LBracket => self.list_tail(),
            other => Err(self.err_here(format!("expected term, found {other}"))),
        }
    }

    /// Parses the inside of a `[...]` after the opening bracket.
    fn list_tail(&mut self) -> Result<Term, ParseError> {
        if *self.peek() == Tok::RBracket {
            self.bump();
            return Ok(Term::Nil);
        }
        let mut elems = vec![self.term()?];
        loop {
            match self.bump() {
                Tok::Comma => elems.push(self.term()?),
                Tok::Bar => {
                    let tail = self.term()?;
                    self.expect(&Tok::RBracket)?;
                    return Ok(elems
                        .into_iter()
                        .rev()
                        .fold(tail, |t, h| Term::Cons(h.into(), t.into())));
                }
                Tok::RBracket => return Ok(Term::list(elems)),
                other => {
                    return Err(self.err_here(format!("expected `,`, `|` or `]`, found {other}")))
                }
            }
        }
    }

    fn term_list(&mut self, close: Tok) -> Result<Vec<Term>, ParseError> {
        let mut out = Vec::new();
        if *self.peek() == close {
            self.bump();
            return Ok(out);
        }
        loop {
            out.push(self.term()?);
            match self.bump() {
                Tok::Comma => continue,
                t if t == close => return Ok(out),
                other => {
                    return Err(self.err_here(format!("expected `,` or {close}, found {other}")))
                }
            }
        }
    }

    /// An atom: `p`, `p(args)`, or an infix comparison `t1 op t2`.
    fn atom(&mut self) -> Result<Atom, ParseError> {
        // An ident followed by `(` starts a predicate application, but the
        // *whole* thing might still be the left side of a comparison, e.g.
        // `length(L) < N` is not supported — comparisons take plain terms on
        // both sides. A leading ident without parens could be either a
        // zero-ary atom or a constant in a comparison; we parse a term and
        // decide by the next token.
        let lhs = self.term()?;
        if let Tok::Op(op) = self.peek().clone() {
            self.bump();
            let rhs = self.term()?;
            return Ok(Atom::new(op, vec![lhs, rhs]));
        }
        match lhs {
            Term::Sym(s) => Ok(Atom {
                pred: crate::atom::Pred { name: s, arity: 0 },
                args: vec![],
            }),
            Term::Comp(f, args) => Ok(Atom {
                pred: crate::atom::Pred {
                    name: f,
                    arity: args.len() as u32,
                },
                args: args.to_vec(),
            }),
            other => Err(self.err_here(format!(
                "expected an atom or comparison, found bare term `{other}`"
            ))),
        }
    }

    fn rule(&mut self) -> Result<Rule, ParseError> {
        let head = self.atom()?;
        match self.bump() {
            Tok::Dot => Ok(Rule::fact(head)),
            Tok::ColonDash => {
                let mut body = vec![self.atom()?];
                loop {
                    match self.bump() {
                        Tok::Comma => body.push(self.atom()?),
                        Tok::Dot => return Ok(Rule::new(head, body)),
                        other => {
                            return Err(self.err_here(format!("expected `,` or `.`, found {other}")))
                        }
                    }
                }
            }
            other => Err(self.err_here(format!("expected `.` or `:-`, found {other}"))),
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut rules = Vec::new();
        while *self.peek() != Tok::Eof {
            rules.push(self.rule()?);
        }
        Ok(Program::new(rules))
    }

    fn query(&mut self) -> Result<Atom, ParseError> {
        if *self.peek() == Tok::QuestionDash {
            self.bump();
        }
        let a = self.atom()?;
        if *self.peek() == Tok::Dot {
            self.bump();
        }
        if *self.peek() != Tok::Eof {
            return Err(self.err_here(format!("trailing input after query: {}", self.peek())));
        }
        Ok(a)
    }
}

/// Parses a whole program (a sequence of clauses).
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    Parser::new(src)?.program()
}

/// Parses a single clause.
pub fn parse_rule(src: &str) -> Result<Rule, ParseError> {
    let mut p = Parser::new(src)?;
    let r = p.rule()?;
    if *p.peek() != Tok::Eof {
        return Err(p.err_here("trailing input after rule"));
    }
    Ok(r)
}

/// Parses a single term.
pub fn parse_term(src: &str) -> Result<Term, ParseError> {
    let mut p = Parser::new(src)?;
    let t = p.term()?;
    if *p.peek() != Tok::Eof {
        return Err(p.err_here("trailing input after term"));
    }
    Ok(t)
}

/// Parses a query: `?- atom.` (prefix/period optional).
pub fn parse_query(src: &str) -> Result<Atom, ParseError> {
    Parser::new(src)?.query()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_sg_program() {
        let p = parse_program(
            "sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).
             sg(X, Y) :- sibling(X, Y).",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(
            p.rules[0].to_string(),
            "sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1)."
        );
    }

    #[test]
    fn parse_lists() {
        assert_eq!(parse_term("[5, 7, 1]").unwrap(), Term::int_list([5, 7, 1]));
        assert_eq!(parse_term("[]").unwrap(), Term::Nil);
        let t = parse_term("[X | Xs]").unwrap();
        assert_eq!(t.to_string(), "[X | Xs]");
        let t = parse_term("[1, 2 | T]").unwrap();
        assert_eq!(t.to_string(), "[1, 2 | T]");
    }

    #[test]
    fn parse_append() {
        let p = parse_program(
            "append([], L, L).
             append([X | L1], L2, [X | L3]) :- append(L1, L2, L3).",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        assert!(p.rules[0].is_fact()); // non-ground fact, kept as rule by split_facts
        let (facts, rules) = p.split_facts();
        assert!(facts.is_empty());
        assert_eq!(rules.len(), 2);
    }

    #[test]
    fn parse_comparisons() {
        let r = parse_rule("insert(X, [Y | Ys], [Y | Zs]) :- X > Y, insert(X, Ys, Zs).").unwrap();
        assert_eq!(r.body[0].pred.name.as_str(), ">");
        let r = parse_rule("p(X) :- X =< 3, q(X).").unwrap();
        assert_eq!(r.body[0].pred.name.as_str(), "<=");
        let r = parse_rule("p(X) :- X <= 3, q(X).").unwrap();
        assert_eq!(r.body[0].pred.name.as_str(), "<=");
        let r = parse_rule("p(X) :- X != 3, q(X).").unwrap();
        assert_eq!(r.body[0].pred.name.as_str(), "\\=");
        let r = parse_rule("p(X) :- X \\= 3, q(X).").unwrap();
        assert_eq!(r.body[0].pred.name.as_str(), "\\=");
        let r = parse_rule("p(X, Y) :- X = Y.").unwrap();
        assert_eq!(r.body[0].pred.name.as_str(), "=");
    }

    #[test]
    fn parse_negative_ints() {
        assert_eq!(parse_term("-42").unwrap(), Term::Int(-42));
    }

    #[test]
    fn parse_comments() {
        let p = parse_program(
            "% the sibling base case
             sg(X, Y) :- sibling(X, Y). /* inline
             block */ base(a).",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
    }

    #[test]
    fn parse_query_forms() {
        for q in ["?- sg(adam, Y).", "sg(adam, Y)", "sg(adam, Y)."] {
            let a = parse_query(q).unwrap();
            assert_eq!(a.pred.name.as_str(), "sg");
        }
    }

    #[test]
    fn parse_zero_arity() {
        let r = parse_rule("go :- init.").unwrap();
        assert_eq!(r.head.pred.arity, 0);
        assert_eq!(r.body[0].pred.arity, 0);
    }

    #[test]
    fn errors_carry_position() {
        let e = parse_program("p(X) :- q(X)").unwrap_err();
        assert!(e.line >= 1);
        let e = parse_program("p(X :- q(X).").unwrap_err();
        assert!(!e.msg.is_empty());
        assert!(parse_term("[1, 2").is_err());
        assert!(parse_term("f()").is_err());
        assert!(parse_query("p(X). q(Y).").is_err());
    }

    #[test]
    fn underscore_vars() {
        let t = parse_term("_tmp").unwrap();
        assert!(matches!(t, Term::Var(_)));
    }

    #[test]
    fn nested_compound_terms() {
        let t = parse_term("f(g(X, 1), [h(2) | T])").unwrap();
        assert_eq!(t.to_string(), "f(g(X, 1), [h(2) | T])");
    }
}
