//! Rules and programs.
//!
//! A deductive database program (IDB) is a set of Horn-clause rules. Facts
//! are rules with an empty body and a ground head; at load time the engine
//! moves them into the EDB.

use crate::atom::{Atom, Pred};
use crate::term::{dedup_preserving_order, Var};
use std::collections::HashSet;
use std::fmt;

/// A Horn clause `head :- body` (a fact when `body` is empty).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rule {
    pub head: Atom,
    pub body: Vec<Atom>,
}

impl Rule {
    pub fn new(head: Atom, body: Vec<Atom>) -> Rule {
        Rule { head, body }
    }

    /// A fact (empty body).
    pub fn fact(head: Atom) -> Rule {
        Rule {
            head,
            body: Vec::new(),
        }
    }

    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
    }

    /// All variables of the rule, deduplicated, head first.
    pub fn vars(&self) -> Vec<Var> {
        let mut all = Vec::new();
        for a in &self.head.args {
            a.collect_vars(&mut all);
        }
        for b in &self.body {
            for a in &b.args {
                a.collect_vars(&mut all);
            }
        }
        dedup_preserving_order(all)
    }

    /// True iff the rule is *range-restricted*: every head variable occurs
    /// in the body. (Safety in the Datalog sense; functional predicates can
    /// relax this during rectification, so this is a diagnostic, not a hard
    /// requirement.)
    pub fn is_range_restricted(&self) -> bool {
        let body_vars: HashSet<Var> = self.body.iter().flat_map(|a| a.vars()).collect();
        self.head.vars().iter().all(|v| body_vars.contains(v))
    }

    /// True iff `pred` occurs in the body.
    pub fn body_refs(&self, pred: Pred) -> bool {
        self.body.iter().any(|a| a.pred == pred)
    }

    /// Number of body occurrences of `pred`.
    pub fn body_count(&self, pred: Pred) -> usize {
        self.body.iter().filter(|a| a.pred == pred).count()
    }

    /// Renames every variable in the rule with the given rename tag.
    pub fn rename(&self, tag: u32) -> Rule {
        Rule {
            head: self.head.rename(tag),
            body: self.body.iter().map(|a| a.rename(tag)).collect(),
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, a) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
        }
        write!(f, ".")
    }
}

impl fmt::Debug for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// A program: an ordered collection of rules (facts included).
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Program {
    pub rules: Vec<Rule>,
}

impl Program {
    pub fn new(rules: Vec<Rule>) -> Program {
        Program { rules }
    }

    /// All predicates defined in rule heads.
    pub fn head_preds(&self) -> Vec<Pred> {
        dedup_preserving_order(self.rules.iter().map(|r| r.head.pred).collect())
    }

    /// All predicates referenced anywhere (heads and bodies).
    pub fn all_preds(&self) -> Vec<Pred> {
        let mut out = Vec::new();
        for r in &self.rules {
            out.push(r.head.pred);
            out.extend(r.body.iter().map(|a| a.pred));
        }
        dedup_preserving_order(out)
    }

    /// The rules whose head predicate is `pred`.
    pub fn rules_for(&self, pred: Pred) -> impl Iterator<Item = &Rule> {
        self.rules.iter().filter(move |r| r.head.pred == pred)
    }

    /// Splits the program into (EDB facts, IDB rules).
    ///
    /// A ground fact counts as EDB content only when its predicate has no
    /// other defining rule: `parent(a, b).` is EDB, but `isort([], []).` is
    /// an *exit rule* of the intensional `isort` and stays with the rules.
    /// Non-ground "facts" (e.g. `p(X).`) also stay with the rules — they
    /// denote infinite relations and are the rule compiler's problem.
    pub fn split_facts(&self) -> (Vec<Atom>, Vec<Rule>) {
        let idb: HashSet<Pred> = self
            .rules
            .iter()
            .filter(|r| !(r.is_fact() && r.head.is_ground()))
            .map(|r| r.head.pred)
            .collect();
        let mut facts = Vec::new();
        let mut rules = Vec::new();
        for r in &self.rules {
            if r.is_fact() && r.head.is_ground() && !idb.contains(&r.head.pred) {
                facts.push(r.head.clone());
            } else {
                rules.push(r.clone());
            }
        }
        (facts, rules)
    }

    /// Predicates that never occur in the head of a *proper* rule:
    /// extensional by construction (ground facts count as EDB content, not
    /// as intensional definitions).
    pub fn edb_preds(&self) -> Vec<Pred> {
        let heads: HashSet<Pred> = self
            .rules
            .iter()
            .filter(|r| !(r.is_fact() && r.head.is_ground()))
            .map(|r| r.head.pred)
            .collect();
        let mut out = Vec::new();
        for r in &self.rules {
            for a in &r.body {
                if !heads.contains(&a.pred) {
                    out.push(a.pred);
                }
            }
        }
        dedup_preserving_order(out)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn sg_rule() -> Rule {
        // sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).
        Rule::new(
            Atom::new("sg", vec![Term::var("X"), Term::var("Y")]),
            vec![
                Atom::new("parent", vec![Term::var("X"), Term::var("X1")]),
                Atom::new("sg", vec![Term::var("X1"), Term::var("Y1")]),
                Atom::new("parent", vec![Term::var("Y"), Term::var("Y1")]),
            ],
        )
    }

    #[test]
    fn rule_display() {
        assert_eq!(
            sg_rule().to_string(),
            "sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1)."
        );
    }

    #[test]
    fn rule_vars_head_first() {
        let vars: Vec<String> = sg_rule().vars().iter().map(|v| v.to_string()).collect();
        assert_eq!(vars, ["X", "Y", "X1", "Y1"]);
    }

    #[test]
    fn range_restriction() {
        assert!(sg_rule().is_range_restricted());
        let bad = Rule::new(
            Atom::new("p", vec![Term::var("X"), Term::var("Z")]),
            vec![Atom::new("q", vec![Term::var("X")])],
        );
        assert!(!bad.is_range_restricted());
    }

    #[test]
    fn body_counts() {
        let r = sg_rule();
        assert_eq!(r.body_count(Pred::new("parent", 2)), 2);
        assert_eq!(r.body_count(Pred::new("sg", 2)), 1);
        assert!(!r.body_refs(Pred::new("sibling", 2)));
    }

    #[test]
    fn program_fact_split_and_edb() {
        let p = Program::new(vec![
            Rule::fact(Atom::new("parent", vec![Term::sym("a"), Term::sym("b")])),
            sg_rule(),
            Rule::new(
                Atom::new("sg", vec![Term::var("X"), Term::var("Y")]),
                vec![Atom::new("sibling", vec![Term::var("X"), Term::var("Y")])],
            ),
        ]);
        let (facts, rules) = p.split_facts();
        assert_eq!(facts.len(), 1);
        assert_eq!(rules.len(), 2);
        let edb: Vec<String> = p.edb_preds().iter().map(|q| q.to_string()).collect();
        assert_eq!(edb, ["parent/2", "sibling/2"]);
        assert_eq!(p.head_preds().len(), 2); // parent (fact head) and sg
    }

    #[test]
    fn renaming_is_capture_free() {
        let r = sg_rule().rename(3);
        assert!(r.vars().iter().all(|v| v.rename == 3));
        assert_eq!(r.rename(3), sg_rule().rename(3));
    }
}
