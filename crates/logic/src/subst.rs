//! Substitutions (variable bindings).
//!
//! A [`Subst`] is a *triangular* substitution: a binding's right-hand side
//! may itself contain bound variables, and [`Subst::resolve`] chases the
//! chains. This is the standard representation for unification-based
//! evaluation — binding is O(1) and chains are short in practice.

use crate::atom::Atom;
use crate::term::{Term, Var};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A set of variable bindings.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Subst {
    map: HashMap<Var, Term>,
}

impl Subst {
    pub fn new() -> Subst {
        Subst::default()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Binds `v` to `t`. Panics in debug builds if `v` is already bound —
    /// unification never rebinds.
    pub fn bind(&mut self, v: Var, t: Term) {
        let prev = self.map.insert(v, t);
        debug_assert!(prev.is_none(), "variable {v} bound twice");
    }

    /// The direct binding of `v`, if any (no chain chasing).
    pub fn lookup(&self, v: Var) -> Option<&Term> {
        self.map.get(&v)
    }

    /// Follows binding chains from `t` until reaching a non-variable term or
    /// an unbound variable. Does not descend into sub-terms.
    pub fn walk<'a>(&'a self, mut t: &'a Term) -> &'a Term {
        while let Term::Var(v) = t {
            match self.map.get(v) {
                Some(next) => t = next,
                None => break,
            }
        }
        t
    }

    /// Fully applies the substitution to `t`, descending into sub-terms.
    ///
    /// Ground sub-terms are returned by reference count rather than
    /// rebuilt: the evaluators resolve long ground lists constantly (every
    /// answer tuple, every buffered value), and structure sharing is what
    /// keeps that O(1) in allocations.
    pub fn resolve(&self, t: &Term) -> Term {
        let t = self.walk(t);
        match t {
            Term::Var(_) | Term::Int(_) | Term::Sym(_) | Term::Nil => t.clone(),
            _ if t.is_ground() => t.clone(),
            Term::Cons(h, tl) => Term::Cons(Arc::new(self.resolve(h)), Arc::new(self.resolve(tl))),
            Term::Comp(f, args) => Term::Comp(*f, args.iter().map(|a| self.resolve(a)).collect()),
        }
    }

    /// Applies the substitution to every argument of an atom.
    pub fn resolve_atom(&self, a: &Atom) -> Atom {
        Atom {
            pred: a.pred,
            args: a.args.iter().map(|t| self.resolve(t)).collect(),
        }
    }

    /// True iff `t` is ground after applying the substitution.
    pub fn is_ground(&self, t: &Term) -> bool {
        match self.walk(t) {
            Term::Var(_) => false,
            Term::Int(_) | Term::Sym(_) | Term::Nil => true,
            Term::Cons(h, tl) => self.is_ground(h) && self.is_ground(tl),
            Term::Comp(_, args) => args.iter().all(|a| self.is_ground(a)),
        }
    }

    /// Iterates over the raw (triangular) bindings.
    pub fn iter(&self) -> impl Iterator<Item = (Var, &Term)> {
        self.map.iter().map(|(v, t)| (*v, t))
    }

    /// Restricts the substitution to fully-resolved bindings for `vars` —
    /// the shape in which query answers are reported.
    pub fn project(&self, vars: &[Var]) -> Vec<(Var, Term)> {
        vars.iter()
            .map(|&v| (v, self.resolve(&Term::Var(v))))
            .collect()
    }
}

impl fmt::Display for Subst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut items: Vec<(Var, &Term)> = self.iter().collect();
        items.sort_by_key(|(v, _)| (v.name.as_str(), v.rename));
        write!(f, "{{")?;
        for (i, (v, t)) in items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v} = {}", self.resolve(t))?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for Subst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_follows_chains() {
        let mut s = Subst::new();
        s.bind(Var::named("X"), Term::var("Y"));
        s.bind(Var::named("Y"), Term::Int(3));
        assert_eq!(s.walk(&Term::var("X")), &Term::Int(3));
    }

    #[test]
    fn resolve_descends() {
        let mut s = Subst::new();
        s.bind(Var::named("X"), Term::Int(1));
        let t = Term::list([Term::var("X"), Term::var("Z")]);
        assert_eq!(s.resolve(&t).to_string(), "[1, Z]");
    }

    #[test]
    fn groundness_through_bindings() {
        let mut s = Subst::new();
        s.bind(Var::named("X"), Term::int_list([1, 2]));
        assert!(s.is_ground(&Term::var("X")));
        assert!(!s.is_ground(&Term::var("Y")));
    }

    #[test]
    fn project_resolves_fully() {
        let mut s = Subst::new();
        s.bind(Var::named("X"), Term::var("Y"));
        s.bind(Var::named("Y"), Term::sym("ottawa"));
        let p = s.project(&[Var::named("X")]);
        assert_eq!(p[0].1, Term::sym("ottawa"));
    }

    #[test]
    fn resolve_shares_ground_structure() {
        // The ground fast path must return the same allocation, not a
        // rebuilt spine — the evaluators depend on this for O(1) clones
        // and pointer-shortcut equality.
        let big = Term::int_list(0..64);
        let mut s = Subst::new();
        s.bind(Var::named("X"), big.clone());
        let r = s.resolve(&Term::var("X"));
        match (&r, &big) {
            (Term::Cons(h1, t1), Term::Cons(h2, t2)) => {
                assert!(std::sync::Arc::ptr_eq(h1, h2));
                assert!(std::sync::Arc::ptr_eq(t1, t2));
            }
            _ => panic!("expected cons cells"),
        }
    }

    #[test]
    fn display_is_sorted_and_resolved() {
        let mut s = Subst::new();
        s.bind(Var::named("Y"), Term::Int(2));
        s.bind(Var::named("X"), Term::var("Y"));
        assert_eq!(s.to_string(), "{X = 2, Y = 2}");
    }
}
