//! Substitutions (variable bindings).
//!
//! A [`Subst`] is a *triangular* substitution: a binding's right-hand side
//! may itself contain bound variables, and [`Subst::resolve`] chases the
//! chains. This is the standard representation for unification-based
//! evaluation — binding is O(1) and chains are short in practice.
//!
//! # Copy-on-write layering
//!
//! The frontier-at-a-time executor forks every surviving substitution once
//! per matching tuple, so `clone` must be O(1): a `Subst` is a chain of
//! immutable layers behind `Arc`s, and cloning copies one pointer.
//! [`Subst::bind`] mutates the head layer in place when this `Subst` is the
//! only owner ([`Arc::get_mut`]), and otherwise pushes a fresh layer that
//! shadows nothing (unification never rebinds). Lookup walks the chain, so
//! chains are capped: once a fork would exceed `MAX_LAYER_DEPTH` layers
//! the chain is flattened into a single map, keeping lookup O(small
//! constant) even under the top-down solver's deep recursion.

use crate::atom::Atom;
use crate::term::{Term, Var};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Longest layer chain before [`Subst::bind`] flattens into one map.
///
/// Forks are cheap but every layer adds a probe to the unbound-lookup
/// path; eight keeps worst-case lookup small while still letting the hot
/// fork-bind-fork pattern of frontier evaluation stay allocation-light.
const MAX_LAYER_DEPTH: usize = 8;

/// Bindings per layer before its entries upgrade from a linear vector to
/// a hash map. Rule bodies bind a handful of variables, so the common
/// fork-and-bind layer is a one-entry vector — cheaper to allocate and to
/// probe than any hash table; only the top-down solver's deep recursions
/// grow past this.
const SMALL_LAYER: usize = 16;

/// One layer's own bindings: linear below [`SMALL_LAYER`], hashed above.
#[derive(Debug)]
enum Entries {
    Small(Vec<(Var, Term)>),
    Large(HashMap<Var, Term>),
}

impl Entries {
    fn get(&self, v: Var) -> Option<&Term> {
        match self {
            Entries::Small(items) => items.iter().find(|(u, _)| *u == v).map(|(_, t)| t),
            Entries::Large(map) => map.get(&v),
        }
    }

    fn len(&self) -> usize {
        match self {
            Entries::Small(items) => items.len(),
            Entries::Large(map) => map.len(),
        }
    }

    /// Inserts a binding known not to be present (the no-rebind contract),
    /// upgrading to a map when the linear vector stops being cheap.
    fn insert_new(&mut self, v: Var, t: Term) {
        match self {
            Entries::Small(items) => {
                if items.len() < SMALL_LAYER {
                    items.push((v, t));
                } else {
                    let mut map: HashMap<Var, Term> = items.drain(..).collect();
                    map.insert(v, t);
                    *self = Entries::Large(map);
                }
            }
            Entries::Large(map) => {
                map.insert(v, t);
            }
        }
    }

    fn iter(&self) -> impl Iterator<Item = (Var, &Term)> {
        let small = match self {
            Entries::Small(items) => Some(items.iter().map(|(v, t)| (*v, t))),
            Entries::Large(_) => None,
        };
        let large = match self {
            Entries::Small(_) => None,
            Entries::Large(map) => Some(map.iter().map(|(v, t)| (*v, t))),
        };
        small
            .into_iter()
            .flatten()
            .chain(large.into_iter().flatten())
    }
}

/// One immutable block of bindings. `count`/`depth` are cumulative over the
/// whole chain hanging off `parent`, so `len` and the flatten decision are
/// O(1).
#[derive(Debug)]
struct Layer {
    entries: Entries,
    parent: Option<Arc<Layer>>,
    count: usize,
    depth: usize,
}

/// A set of variable bindings.
#[derive(Clone, Default)]
pub struct Subst {
    head: Option<Arc<Layer>>,
}

impl Subst {
    pub fn new() -> Subst {
        Subst::default()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn len(&self) -> usize {
        self.head.as_deref().map_or(0, |l| l.count)
    }

    /// Binds `v` to `t`. Panics in debug builds if `v` is already bound —
    /// unification never rebinds.
    pub fn bind(&mut self, v: Var, t: Term) {
        debug_assert!(self.lookup(v).is_none(), "variable {v} bound twice");
        match &mut self.head {
            None => {
                self.head = Some(Arc::new(Layer {
                    entries: Entries::Small(vec![(v, t)]),
                    parent: None,
                    count: 1,
                    depth: 1,
                }));
            }
            Some(arc) => {
                if let Some(layer) = Arc::get_mut(arc) {
                    // Sole owner: extend in place, no new layer.
                    layer.entries.insert_new(v, t);
                    layer.count += 1;
                } else if arc.depth >= MAX_LAYER_DEPTH {
                    // Shared and already deep: flatten the chain so lookup
                    // cost stays bounded no matter how often we fork.
                    let count = arc.count + 1;
                    let mut entries = if count <= SMALL_LAYER {
                        Entries::Small(Vec::with_capacity(count))
                    } else {
                        Entries::Large(HashMap::with_capacity(count))
                    };
                    flatten_into(arc, &mut entries);
                    entries.insert_new(v, t);
                    let count = entries.len();
                    self.head = Some(Arc::new(Layer {
                        entries,
                        parent: None,
                        count,
                        depth: 1,
                    }));
                } else {
                    // Shared: push a one-binding layer over the shared tail.
                    let parent = Arc::clone(arc);
                    let count = parent.count + 1;
                    let depth = parent.depth + 1;
                    self.head = Some(Arc::new(Layer {
                        entries: Entries::Small(vec![(v, t)]),
                        parent: Some(parent),
                        count,
                        depth,
                    }));
                }
            }
        }
    }

    /// The direct binding of `v`, if any (no chain chasing).
    pub fn lookup(&self, v: Var) -> Option<&Term> {
        let mut cur = self.head.as_deref();
        while let Some(l) = cur {
            if let Some(t) = l.entries.get(v) {
                return Some(t);
            }
            cur = l.parent.as_deref();
        }
        None
    }

    /// Follows binding chains from `t` until reaching a non-variable term or
    /// an unbound variable. Does not descend into sub-terms.
    pub fn walk<'a>(&'a self, mut t: &'a Term) -> &'a Term {
        while let Term::Var(v) = t {
            match self.lookup(*v) {
                Some(next) => t = next,
                None => break,
            }
        }
        t
    }

    /// Fully applies the substitution to `t`, descending into sub-terms.
    ///
    /// Ground sub-terms are returned by reference count rather than
    /// rebuilt: the evaluators resolve long ground lists constantly (every
    /// answer tuple, every buffered value), and structure sharing is what
    /// keeps that O(1) in allocations.
    pub fn resolve(&self, t: &Term) -> Term {
        let t = self.walk(t);
        match t {
            Term::Var(_) | Term::Int(_) | Term::Sym(_) | Term::Nil => t.clone(),
            _ if t.is_ground() => t.clone(),
            Term::Cons(h, tl) => Term::Cons(Arc::new(self.resolve(h)), Arc::new(self.resolve(tl))),
            Term::Comp(f, args) => Term::Comp(*f, args.iter().map(|a| self.resolve(a)).collect()),
        }
    }

    /// Applies the substitution to every argument of an atom.
    pub fn resolve_atom(&self, a: &Atom) -> Atom {
        Atom {
            pred: a.pred,
            args: a.args.iter().map(|t| self.resolve(t)).collect(),
        }
    }

    /// True iff `t` is ground after applying the substitution.
    pub fn is_ground(&self, t: &Term) -> bool {
        match self.walk(t) {
            Term::Var(_) => false,
            Term::Int(_) | Term::Sym(_) | Term::Nil => true,
            Term::Cons(h, tl) => self.is_ground(h) && self.is_ground(tl),
            Term::Comp(_, args) => args.iter().all(|a| self.is_ground(a)),
        }
    }

    /// Iterates over the raw (triangular) bindings.
    ///
    /// Collects once up front: layers can be shared with substitutions that
    /// kept binding, and yielding newest-layer-first with de-duplication is
    /// simpler (and cold — display/tests only) than a lazy walk.
    pub fn iter(&self) -> impl Iterator<Item = (Var, &Term)> {
        let mut out: Vec<(Var, &Term)> = Vec::with_capacity(self.len());
        let mut cur = self.head.as_deref();
        while let Some(l) = cur {
            for (v, t) in l.entries.iter() {
                if !out.iter().any(|&(seen, _)| seen == v) {
                    out.push((v, t));
                }
            }
            cur = l.parent.as_deref();
        }
        out.into_iter()
    }

    /// Restricts the substitution to fully-resolved bindings for `vars` —
    /// the shape in which query answers are reported.
    pub fn project(&self, vars: &[Var]) -> Vec<(Var, Term)> {
        vars.iter()
            .map(|&v| (v, self.resolve(&Term::Var(v))))
            .collect()
    }
}

/// Copies every binding of `layer`'s chain into `out`, oldest layer first
/// (no layer ever shadows another — the no-rebind contract).
fn flatten_into(layer: &Layer, out: &mut Entries) {
    if let Some(parent) = &layer.parent {
        flatten_into(parent, out);
    }
    for (v, t) in layer.entries.iter() {
        out.insert_new(v, t.clone());
    }
}

/// Map equality: layering is an implementation detail, two substitutions
/// are equal iff they bind the same variables to equal terms.
impl PartialEq for Subst {
    fn eq(&self, other: &Subst) -> bool {
        match (&self.head, &other.head) {
            (None, None) => true,
            (Some(a), Some(b)) if Arc::ptr_eq(a, b) => true,
            _ => self.len() == other.len() && self.iter().all(|(v, t)| other.lookup(v) == Some(t)),
        }
    }
}

impl Eq for Subst {}

impl fmt::Display for Subst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut items: Vec<(Var, &Term)> = self.iter().collect();
        items.sort_by_key(|(v, _)| (v.name.as_str(), v.rename));
        write!(f, "{{")?;
        for (i, (v, t)) in items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v} = {}", self.resolve(t))?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for Subst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_follows_chains() {
        let mut s = Subst::new();
        s.bind(Var::named("X"), Term::var("Y"));
        s.bind(Var::named("Y"), Term::Int(3));
        assert_eq!(s.walk(&Term::var("X")), &Term::Int(3));
    }

    #[test]
    fn resolve_descends() {
        let mut s = Subst::new();
        s.bind(Var::named("X"), Term::Int(1));
        let t = Term::list([Term::var("X"), Term::var("Z")]);
        assert_eq!(s.resolve(&t).to_string(), "[1, Z]");
    }

    #[test]
    fn groundness_through_bindings() {
        let mut s = Subst::new();
        s.bind(Var::named("X"), Term::int_list([1, 2]));
        assert!(s.is_ground(&Term::var("X")));
        assert!(!s.is_ground(&Term::var("Y")));
    }

    #[test]
    fn project_resolves_fully() {
        let mut s = Subst::new();
        s.bind(Var::named("X"), Term::var("Y"));
        s.bind(Var::named("Y"), Term::sym("ottawa"));
        let p = s.project(&[Var::named("X")]);
        assert_eq!(p[0].1, Term::sym("ottawa"));
    }

    #[test]
    fn resolve_shares_ground_structure() {
        // The ground fast path must return the same allocation, not a
        // rebuilt spine — the evaluators depend on this for O(1) clones
        // and pointer-shortcut equality.
        let big = Term::int_list(0..64);
        let mut s = Subst::new();
        s.bind(Var::named("X"), big.clone());
        let r = s.resolve(&Term::var("X"));
        match (&r, &big) {
            (Term::Cons(h1, t1), Term::Cons(h2, t2)) => {
                assert!(std::sync::Arc::ptr_eq(h1, h2));
                assert!(std::sync::Arc::ptr_eq(t1, t2));
            }
            _ => panic!("expected cons cells"),
        }
    }

    #[test]
    fn display_is_sorted_and_resolved() {
        let mut s = Subst::new();
        s.bind(Var::named("Y"), Term::Int(2));
        s.bind(Var::named("X"), Term::var("Y"));
        assert_eq!(s.to_string(), "{X = 2, Y = 2}");
    }

    #[test]
    fn clone_is_isolated_cow() {
        // Binding on a fork must never leak into the original or siblings.
        let mut base = Subst::new();
        base.bind(Var::named("A"), Term::Int(1));
        let frozen = base.clone();
        let mut fork1 = base.clone();
        let mut fork2 = base.clone();
        fork1.bind(Var::named("B"), Term::Int(2));
        fork2.bind(Var::named("B"), Term::Int(3));
        assert_eq!(frozen.len(), 1);
        assert_eq!(frozen.lookup(Var::named("B")), None);
        assert_eq!(fork1.lookup(Var::named("B")), Some(&Term::Int(2)));
        assert_eq!(fork2.lookup(Var::named("B")), Some(&Term::Int(3)));
        assert_eq!(fork1.lookup(Var::named("A")), Some(&Term::Int(1)));
        assert_ne!(fork1, fork2);
    }

    #[test]
    fn equality_ignores_layering() {
        // Same bindings reached through different fork histories must
        // compare equal: layering is representation, not meaning.
        let mut flat = Subst::new();
        flat.bind(Var::named("X"), Term::Int(1));
        flat.bind(Var::named("Y"), Term::Int(2));

        let mut layered = Subst::new();
        layered.bind(Var::named("X"), Term::Int(1));
        let _pin = layered.clone(); // force the next bind onto a new layer
        layered.bind(Var::named("Y"), Term::Int(2));

        assert_eq!(flat, layered);
        assert_eq!(layered, flat);
        let mut different = flat.clone();
        different.bind(Var::named("Z"), Term::Int(3));
        assert_ne!(flat, different);
    }

    #[test]
    fn deep_fork_chains_flatten() {
        // Fork-and-bind far past MAX_LAYER_DEPTH: all bindings must stay
        // visible (the flatten path preserves the whole chain) and len must
        // stay exact.
        let mut s = Subst::new();
        let mut pins = Vec::new();
        for i in 0..(MAX_LAYER_DEPTH as i64 * 4) {
            pins.push(s.clone()); // share the head so bind must fork
            s.bind(Var::named(&format!("V{i}")), Term::Int(i));
        }
        assert_eq!(s.len(), MAX_LAYER_DEPTH * 4);
        for i in 0..(MAX_LAYER_DEPTH as i64 * 4) {
            assert_eq!(
                s.lookup(Var::named(&format!("V{i}"))),
                Some(&Term::Int(i)),
                "binding V{i} lost"
            );
        }
        // Earlier pins still see exactly their prefix.
        assert_eq!(pins[3].len(), 3);
        assert_eq!(pins[3].lookup(Var::named("V3")), None);
    }

    #[test]
    fn iter_yields_each_binding_once() {
        let mut s = Subst::new();
        s.bind(Var::named("X"), Term::Int(1));
        let _pin = s.clone();
        s.bind(Var::named("Y"), Term::Int(2));
        let mut got: Vec<(Var, Term)> = s.iter().map(|(v, t)| (v, t.clone())).collect();
        got.sort_by_key(|(v, _)| (v.name.as_str().to_string(), v.rename));
        assert_eq!(
            got,
            vec![
                (Var::named("X"), Term::Int(1)),
                (Var::named("Y"), Term::Int(2)),
            ]
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "bound twice")]
    fn rebind_panics_in_debug() {
        let mut s = Subst::new();
        s.bind(Var::named("X"), Term::Int(1));
        s.bind(Var::named("X"), Term::Int(2));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "bound twice")]
    fn rebind_across_layers_panics_in_debug() {
        // The rebind guard must see through layer boundaries, not just the
        // head map.
        let mut s = Subst::new();
        s.bind(Var::named("X"), Term::Int(1));
        let _pin = s.clone(); // X now lives in a shared tail layer
        s.bind(Var::named("Y"), Term::Int(2));
        s.bind(Var::named("X"), Term::Int(3));
    }
}
