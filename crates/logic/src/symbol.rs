//! Interned symbols.
//!
//! Every identifier in a logic program — predicate names, function symbols,
//! constant atoms — is interned into a global table and handled as a copyable
//! 4-byte [`Sym`]. Interning makes term equality, hashing and substitution
//! cheap, which matters because the evaluators compare and hash terms in
//! their innermost loops.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// An interned string. Two `Sym`s are equal iff their spellings are equal.
///
/// The ordering of `Sym` values is the interning order, which is
/// deterministic within a process but *not* lexicographic; use
/// [`Sym::as_str`] when a lexicographic order is required.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    spellings: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            map: HashMap::new(),
            spellings: Vec::new(),
        })
    })
}

impl Sym {
    /// Interns `s` and returns its symbol.
    pub fn new(s: &str) -> Sym {
        {
            let int = interner().read();
            if let Some(&id) = int.map.get(s) {
                return Sym(id);
            }
        }
        let mut int = interner().write();
        if let Some(&id) = int.map.get(s) {
            return Sym(id);
        }
        // Leaking is bounded by the number of *distinct* symbols ever
        // interned, which is small (program text plus generated names).
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = int.spellings.len() as u32;
        int.spellings.push(leaked);
        int.map.insert(leaked, id);
        Sym(id)
    }

    /// The spelling this symbol was interned with.
    pub fn as_str(self) -> &'static str {
        interner().read().spellings[self.0 as usize]
    }

    /// The raw interning id (stable within a process run).
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({:?})", self.as_str())
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Sym::new("parent");
        let b = Sym::new("parent");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "parent");
    }

    #[test]
    fn distinct_spellings_get_distinct_symbols() {
        assert_ne!(Sym::new("foo"), Sym::new("bar"));
        assert_ne!(Sym::new("foo"), Sym::new("Foo"));
    }

    #[test]
    fn display_round_trips() {
        let s = Sym::new("same_country");
        assert_eq!(s.to_string(), "same_country");
    }

    #[test]
    fn empty_and_unicode_spellings() {
        assert_eq!(Sym::new("").as_str(), "");
        assert_eq!(Sym::new("héllo").as_str(), "héllo");
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Sym::new("concurrent_symbol")))
            .collect();
        let syms: Vec<Sym> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(syms.windows(2).all(|w| w[0] == w[1]));
    }
}
