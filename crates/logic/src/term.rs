//! Terms of the Horn-clause language.
//!
//! The language follows the paper's setting: Datalog extended with function
//! symbols. Lists get first-class constructors ([`Term::Nil`] / [`Term::Cons`])
//! because every functional recursion in the paper (`append`, `isort`,
//! `qsort`, `travel`) is list-manipulating; arbitrary function symbols are
//! supported through [`Term::Comp`].
//!
//! Compound terms share structure through `Arc`, so cloning a term is O(1)
//! on its spine — evaluators clone terms freely.
//!
//! Term operations (equality, groundness, display, drop) recurse on the
//! spine; term depth is bounded by the thread stack (hundreds of
//! thousands of elements), far beyond the workloads of a deductive-DB
//! reproduction. An iterative `Drop` would forbid the by-move pattern
//! matches the evaluators use, so the trade is deliberate.

use crate::symbol::Sym;
use std::fmt;
use std::sync::Arc;

/// A logic variable.
///
/// Parsed variables carry their source spelling in `name` and `rename == 0`.
/// Renaming a rule apart (for resolution or expansion) bumps `rename` to a
/// globally fresh value, so renamed variants stay distinct from every parsed
/// variable while remaining printable (`X#3`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var {
    pub name: Sym,
    pub rename: u32,
}

impl Var {
    /// A source-level variable with the given spelling.
    pub fn named(name: &str) -> Var {
        Var {
            name: Sym::new(name),
            rename: 0,
        }
    }

    /// A renamed-apart variant of this variable.
    pub fn renamed(self, rename: u32) -> Var {
        Var {
            name: self.name,
            rename,
        }
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rename == 0 {
            write!(f, "{}", self.name)
        } else {
            write!(f, "{}#{}", self.name, self.rename)
        }
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// A term: variable, integer, symbolic constant, list, or compound term.
// The manual `PartialEq` below is *semantically identical* to the derived
// one (it only adds an `Arc` pointer shortcut), so the derived `Hash`
// remains consistent with it.
#[allow(clippy::derived_hash_with_manual_eq)]
#[derive(Clone, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A logic variable.
    Var(Var),
    /// An integer constant.
    Int(i64),
    /// A symbolic constant (`adam`, `ottawa`, …).
    Sym(Sym),
    /// The empty list `[]`.
    Nil,
    /// A list cell `[H|T]`.
    Cons(Arc<Term>, Arc<Term>),
    /// A compound term `f(t1, …, tk)` with function symbol `f`.
    Comp(Sym, Arc<[Term]>),
}

impl PartialEq for Term {
    /// Structural equality with a pointer shortcut: structure-shared
    /// sub-terms (the common case after [`crate::subst::Subst::resolve`])
    /// compare in O(1) instead of O(size).
    fn eq(&self, other: &Term) -> bool {
        match (self, other) {
            (Term::Var(a), Term::Var(b)) => a == b,
            (Term::Int(a), Term::Int(b)) => a == b,
            (Term::Sym(a), Term::Sym(b)) => a == b,
            (Term::Nil, Term::Nil) => true,
            (Term::Cons(h1, t1), Term::Cons(h2, t2)) => {
                (Arc::ptr_eq(h1, h2) || h1 == h2) && (Arc::ptr_eq(t1, t2) || t1 == t2)
            }
            (Term::Comp(f, a), Term::Comp(g, b)) => {
                f == g && (std::ptr::eq(a.as_ptr(), b.as_ptr()) && a.len() == b.len() || a == b)
            }
            _ => false,
        }
    }
}

impl Term {
    /// Convenience constructor for a named variable.
    pub fn var(name: &str) -> Term {
        Term::Var(Var::named(name))
    }

    /// Convenience constructor for a symbolic constant.
    pub fn sym(name: &str) -> Term {
        Term::Sym(Sym::new(name))
    }

    /// Convenience constructor for a compound term.
    pub fn comp(functor: &str, args: Vec<Term>) -> Term {
        Term::Comp(Sym::new(functor), args.into())
    }

    /// Builds a proper list term from the given elements.
    pub fn list(elems: impl IntoIterator<Item = Term, IntoIter: DoubleEndedIterator>) -> Term {
        elems.into_iter().rev().fold(Term::Nil, |tail, head| {
            Term::Cons(Arc::new(head), Arc::new(tail))
        })
    }

    /// Builds a list of integers — handy in tests and examples.
    pub fn int_list(elems: impl IntoIterator<Item = i64, IntoIter: DoubleEndedIterator>) -> Term {
        Term::list(elems.into_iter().map(Term::Int))
    }

    /// If this term is a *proper* list (ends in `[]`), returns its elements.
    pub fn as_list(&self) -> Option<Vec<Term>> {
        let mut out = Vec::new();
        let mut cur = self;
        loop {
            match cur {
                Term::Nil => return Some(out),
                Term::Cons(h, t) => {
                    out.push((**h).clone());
                    cur = t;
                }
                _ => return None,
            }
        }
    }

    /// True iff the term contains no variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::Int(_) | Term::Sym(_) | Term::Nil => true,
            Term::Cons(h, t) => h.is_ground() && t.is_ground(),
            Term::Comp(_, args) => args.iter().all(Term::is_ground),
        }
    }

    /// True iff the term is a constant, variable or `[]` (no sub-structure).
    pub fn is_atomic(&self) -> bool {
        !matches!(self, Term::Cons(..) | Term::Comp(..))
    }

    /// Appends every variable occurring in the term to `out` (with
    /// duplicates, in left-to-right occurrence order).
    pub fn collect_vars(&self, out: &mut Vec<Var>) {
        match self {
            Term::Var(v) => out.push(*v),
            Term::Int(_) | Term::Sym(_) | Term::Nil => {}
            Term::Cons(h, t) => {
                h.collect_vars(out);
                t.collect_vars(out);
            }
            Term::Comp(_, args) => {
                for a in args.iter() {
                    a.collect_vars(out);
                }
            }
        }
    }

    /// The variables of the term, deduplicated, in first-occurrence order.
    pub fn vars(&self) -> Vec<Var> {
        let mut all = Vec::new();
        self.collect_vars(&mut all);
        dedup_preserving_order(all)
    }

    /// Structural size (number of constructors) — used by cost heuristics
    /// and by tests that bound term growth.
    pub fn size(&self) -> usize {
        match self {
            Term::Var(_) | Term::Int(_) | Term::Sym(_) | Term::Nil => 1,
            Term::Cons(h, t) => 1 + h.size() + t.size(),
            Term::Comp(_, args) => 1 + args.iter().map(Term::size).sum::<usize>(),
        }
    }

    /// Renames every variable in the term with the given rename tag.
    pub fn rename(&self, tag: u32) -> Term {
        match self {
            Term::Var(v) => Term::Var(v.renamed(tag)),
            Term::Int(_) | Term::Sym(_) | Term::Nil => self.clone(),
            Term::Cons(h, t) => Term::Cons(Arc::new(h.rename(tag)), Arc::new(t.rename(tag))),
            Term::Comp(f, args) => Term::Comp(*f, args.iter().map(|a| a.rename(tag)).collect()),
        }
    }

    /// True iff `v` occurs in the term (occurs check).
    pub fn occurs(&self, v: Var) -> bool {
        match self {
            Term::Var(w) => *w == v,
            Term::Int(_) | Term::Sym(_) | Term::Nil => false,
            Term::Cons(h, t) => h.occurs(v) || t.occurs(v),
            Term::Comp(_, args) => args.iter().any(|a| a.occurs(v)),
        }
    }
}

/// Removes duplicates while preserving first-occurrence order.
pub fn dedup_preserving_order<T: Eq + std::hash::Hash + Copy>(items: Vec<T>) -> Vec<T> {
    let mut seen = std::collections::HashSet::with_capacity(items.len());
    items.into_iter().filter(|x| seen.insert(*x)).collect()
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Int(i) => write!(f, "{i}"),
            Term::Sym(s) => write!(f, "{s}"),
            Term::Nil => write!(f, "[]"),
            Term::Cons(h, t) => {
                write!(f, "[{h}")?;
                let mut cur: &Term = t;
                loop {
                    match cur {
                        Term::Nil => break,
                        Term::Cons(h2, t2) => {
                            write!(f, ", {h2}")?;
                            cur = t2;
                        }
                        other => {
                            write!(f, " | {other}")?;
                            break;
                        }
                    }
                }
                write!(f, "]")
            }
            Term::Comp(functor, args) => {
                write!(f, "{functor}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_construction_and_deconstruction() {
        let l = Term::int_list([5, 7, 1]);
        assert_eq!(l.to_string(), "[5, 7, 1]");
        let elems = l.as_list().unwrap();
        assert_eq!(elems, vec![Term::Int(5), Term::Int(7), Term::Int(1)]);
    }

    #[test]
    fn improper_list_displays_with_bar() {
        let l = Term::Cons(Arc::new(Term::Int(1)), Arc::new(Term::var("T")));
        assert_eq!(l.to_string(), "[1 | T]");
        assert!(l.as_list().is_none());
    }

    #[test]
    fn empty_list() {
        assert_eq!(Term::list([]).to_string(), "[]");
        assert_eq!(Term::Nil.as_list().unwrap(), Vec::<Term>::new());
    }

    #[test]
    fn groundness() {
        assert!(Term::int_list([1, 2]).is_ground());
        assert!(!Term::var("X").is_ground());
        assert!(!Term::comp("f", vec![Term::Int(1), Term::var("X")]).is_ground());
    }

    #[test]
    fn vars_are_deduplicated_in_order() {
        let t = Term::comp("f", vec![Term::var("X"), Term::var("Y"), Term::var("X")]);
        assert_eq!(t.vars(), vec![Var::named("X"), Var::named("Y")]);
    }

    #[test]
    fn rename_keeps_structure_changes_vars() {
        let t = Term::comp("f", vec![Term::var("X"), Term::Int(3)]);
        let r = t.rename(7);
        assert_eq!(r.to_string(), "f(X#7, 3)");
        assert_ne!(t, r);
        assert_eq!(t.rename(7), r);
    }

    #[test]
    fn occurs_check() {
        let x = Var::named("X");
        let t = Term::Cons(Arc::new(Term::var("X")), Arc::new(Term::Nil));
        assert!(t.occurs(x));
        assert!(!t.occurs(Var::named("Y")));
        assert!(!t.occurs(x.renamed(1)));
    }

    #[test]
    fn size_counts_constructors() {
        assert_eq!(Term::Int(1).size(), 1);
        assert_eq!(Term::int_list([1, 2]).size(), 5); // cons cons nil + 2 ints
    }

    #[test]
    fn display_compound() {
        let t = Term::comp("flight", vec![Term::sym("yvr"), Term::sym("yyz")]);
        assert_eq!(t.to_string(), "flight(yvr, yyz)");
    }
}
