//! Unification.
//!
//! Robinson unification over the triangular [`Subst`] representation, with
//! an occurs check (always on: the evaluators rely on finite terms, and the
//! cost is negligible at the term sizes deductive-database workloads see).

use crate::atom::Atom;
use crate::subst::Subst;
use crate::term::Term;

/// Extends `s` so that `a` and `b` become equal, or returns `false` leaving
/// `s` in an unspecified (to-be-discarded) state.
///
/// Callers that need backtracking clone the substitution first; the engines
/// do exactly that at choice points.
pub fn unify(s: &mut Subst, a: &Term, b: &Term) -> bool {
    {
        // Fast path: syntactically equal terms (pointer-shortcut `Eq`)
        // unify with no new bindings — the dominant case when evaluators
        // join structure-shared ground values.
        let aw = s.walk(a);
        let bw = s.walk(b);
        if aw == bw {
            return true;
        }
    }
    let a = s.walk(a).clone();
    let b = s.walk(b).clone();
    match (a, b) {
        (Term::Var(v), Term::Var(w)) if v == w => true,
        (Term::Var(v), t) | (t, Term::Var(v)) => {
            if occurs_resolved(s, v, &t) {
                return false;
            }
            s.bind(v, t);
            true
        }
        (Term::Int(x), Term::Int(y)) => x == y,
        (Term::Sym(x), Term::Sym(y)) => x == y,
        (Term::Nil, Term::Nil) => true,
        (Term::Cons(h1, t1), Term::Cons(h2, t2)) => unify(s, &h1, &h2) && unify(s, &t1, &t2),
        (Term::Comp(f, xs), Term::Comp(g, ys)) => {
            f == g && xs.len() == ys.len() && xs.iter().zip(ys.iter()).all(|(x, y)| unify(s, x, y))
        }
        _ => false,
    }
}

/// Occurs check through the substitution: does `v` occur in `t` once all
/// bindings are chased?
fn occurs_resolved(s: &Subst, v: crate::term::Var, t: &Term) -> bool {
    match s.walk(t) {
        Term::Var(w) => *w == v,
        Term::Int(_) | Term::Sym(_) | Term::Nil => false,
        Term::Cons(h, tl) => occurs_resolved(s, v, h) || occurs_resolved(s, v, tl),
        Term::Comp(_, args) => args.iter().any(|a| occurs_resolved(s, v, a)),
    }
}

/// Unifies two atoms (same predicate, pairwise-unifiable arguments).
pub fn unify_atoms(s: &mut Subst, a: &Atom, b: &Atom) -> bool {
    a.pred == b.pred
        && a.args
            .iter()
            .zip(b.args.iter())
            .all(|(x, y)| unify(s, x, y))
}

/// One-shot match: the most general unifier of `a` and `b` starting from an
/// empty substitution, if any.
pub fn mgu(a: &Term, b: &Term) -> Option<Subst> {
    let mut s = Subst::new();
    unify(&mut s, a, b).then_some(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Var;

    #[test]
    fn unify_constant_with_var() {
        let s = mgu(&Term::var("X"), &Term::Int(5)).unwrap();
        assert_eq!(s.resolve(&Term::var("X")), Term::Int(5));
    }

    #[test]
    fn unify_lists_decomposes() {
        // [X | Xs] = [5, 7, 1]
        let pat = Term::Cons(Term::var("X").into(), Term::var("Xs").into());
        let s = mgu(&pat, &Term::int_list([5, 7, 1])).unwrap();
        assert_eq!(s.resolve(&Term::var("X")), Term::Int(5));
        assert_eq!(s.resolve(&Term::var("Xs")), Term::int_list([7, 1]));
    }

    #[test]
    fn clash_fails() {
        assert!(mgu(&Term::Int(1), &Term::Int(2)).is_none());
        assert!(mgu(&Term::sym("a"), &Term::Int(1)).is_none());
        assert!(mgu(
            &Term::comp("f", vec![Term::Int(1)]),
            &Term::comp("g", vec![Term::Int(1)])
        )
        .is_none());
    }

    #[test]
    fn arity_mismatch_fails() {
        assert!(mgu(
            &Term::comp("f", vec![Term::Int(1)]),
            &Term::comp("f", vec![Term::Int(1), Term::Int(2)])
        )
        .is_none());
    }

    #[test]
    fn occurs_check_rejects_cyclic() {
        // X = [1 | X] must fail.
        let cyc = Term::Cons(Term::Int(1).into(), Term::var("X").into());
        assert!(mgu(&Term::var("X"), &cyc).is_none());
    }

    #[test]
    fn occurs_check_through_chains() {
        // X = Y, then Y = f(X): must fail through the chain.
        let mut s = Subst::new();
        assert!(unify(&mut s, &Term::var("X"), &Term::var("Y")));
        assert!(!unify(
            &mut s,
            &Term::var("Y"),
            &Term::comp("f", vec![Term::var("X")])
        ));
    }

    #[test]
    fn var_var_aliasing() {
        let mut s = Subst::new();
        assert!(unify(&mut s, &Term::var("X"), &Term::var("Y")));
        assert!(unify(&mut s, &Term::var("X"), &Term::Int(9)));
        assert_eq!(s.resolve(&Term::var("Y")), Term::Int(9));
    }

    #[test]
    fn unify_atoms_same_pred_only() {
        let a = Atom::new("p", vec![Term::var("X")]);
        let b = Atom::new("q", vec![Term::Int(1)]);
        let mut s = Subst::new();
        assert!(!unify_atoms(&mut s, &a, &b));
        let c = Atom::new("p", vec![Term::Int(1)]);
        let mut s = Subst::new();
        assert!(unify_atoms(&mut s, &a, &c));
    }

    #[test]
    fn mgu_is_most_general_for_var_pairs() {
        // X = Y leaves one of them free.
        let s = mgu(&Term::var("X"), &Term::var("Y")).unwrap();
        let rx = s.resolve(&Term::var("X"));
        let ry = s.resolve(&Term::var("Y"));
        assert_eq!(rx, ry);
        assert!(matches!(rx, Term::Var(_)));
    }

    #[test]
    fn unifier_unifies_deep_terms() {
        let a = Term::comp("f", vec![Term::var("X"), Term::int_list([1, 2])]);
        let b = Term::comp("f", vec![Term::sym("k"), Term::var("Y")]);
        let s = mgu(&a, &b).unwrap();
        assert_eq!(s.resolve(&a), s.resolve(&b));
        // Self-unification binds nothing.
        let idem = mgu(&a, &a).unwrap();
        assert!(idem.is_empty());
    }

    #[test]
    fn equal_terms_unify_without_bindings() {
        // The syntactic-equality fast path: identical (even non-ground)
        // terms unify and bind nothing.
        let t = Term::comp("f", vec![Term::var("X"), Term::int_list([1, 2])]);
        let mut s = Subst::new();
        assert!(unify(&mut s, &t, &t));
        assert!(s.is_empty());
        // Shared ground lists unify in O(1) via pointer equality.
        let big = Term::int_list(0..128);
        let same = big.clone();
        let mut s = Subst::new();
        assert!(unify(&mut s, &big, &same));
        assert!(s.is_empty());
    }

    #[test]
    fn renamed_vars_are_independent() {
        let x0 = Term::Var(Var::named("X"));
        let x1 = Term::Var(Var::named("X").renamed(1));
        let mut s = Subst::new();
        assert!(unify(&mut s, &x0, &Term::Int(1)));
        assert!(unify(&mut s, &x1, &Term::Int(2)));
    }
}
