//! Property tests for the logic substrate: display/parse round trips and
//! unification laws over randomly generated terms.

use chainsplit_logic::{mgu, parse_term, unify, Subst, Term};
use proptest::prelude::*;

/// Strategy for random terms: variables, ints, symbols, lists, compounds.
fn arb_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        3 => (0u32..6).prop_map(|i| Term::var(&format!("V{i}"))),
        3 => any::<i32>().prop_map(|i| Term::Int(i as i64)),
        2 => (0u32..6).prop_map(|i| Term::sym(&format!("c{i}"))),
        1 => Just(Term::Nil),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(h, t)| Term::Cons(h.into(), t.into())),
            (0u32..3, prop::collection::vec(inner, 1..4))
                .prop_map(|(f, args)| Term::comp(&format!("f{f}"), args)),
        ]
    })
}

/// Strategy for ground terms only.
fn arb_ground_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        3 => any::<i32>().prop_map(|i| Term::Int(i as i64)),
        2 => (0u32..6).prop_map(|i| Term::sym(&format!("c{i}"))),
        1 => Just(Term::Nil),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(h, t)| Term::Cons(h.into(), t.into())),
            (0u32..3, prop::collection::vec(inner, 1..4))
                .prop_map(|(f, args)| Term::comp(&format!("f{f}"), args)),
        ]
    })
}

proptest! {
    /// Displaying a term and parsing it back yields the same term.
    #[test]
    fn display_parse_round_trip(t in arb_term()) {
        let printed = t.to_string();
        let reparsed = parse_term(&printed).unwrap();
        prop_assert_eq!(t, reparsed);
    }

    /// A successful unifier really unifies: resolving both sides gives
    /// syntactically equal terms.
    #[test]
    fn unifier_unifies(a in arb_term(), b in arb_term()) {
        if let Some(s) = mgu(&a, &b) {
            prop_assert_eq!(s.resolve(&a), s.resolve(&b));
        }
    }

    /// Unification is symmetric in success.
    #[test]
    fn unification_symmetric(a in arb_term(), b in arb_term()) {
        prop_assert_eq!(mgu(&a, &b).is_some(), mgu(&b, &a).is_some());
    }

    /// Every term unifies with itself via the empty substitution.
    #[test]
    fn self_unification_binds_nothing(t in arb_term()) {
        let s = mgu(&t, &t).unwrap();
        prop_assert!(s.is_empty());
    }

    /// Ground terms unify iff they are equal.
    #[test]
    fn ground_unification_is_equality(a in arb_ground_term(), b in arb_ground_term()) {
        prop_assert_eq!(mgu(&a, &b).is_some(), a == b);
    }

    /// A fresh variable unifies with any term not containing it, and the
    /// unifier maps the variable to (the resolution of) that term.
    #[test]
    fn var_unifies_with_anything(t in arb_ground_term()) {
        let s = mgu(&Term::var("FreshVarQ"), &t).unwrap();
        prop_assert_eq!(s.resolve(&Term::var("FreshVarQ")), t);
    }

    /// Renaming preserves structure: size and groundness are invariant, and
    /// renamed terms unify with the original (alpha-equivalence).
    #[test]
    fn rename_preserves_structure(t in arb_term()) {
        let r = t.rename(99);
        prop_assert_eq!(t.size(), r.size());
        prop_assert_eq!(t.is_ground(), r.is_ground());
        prop_assert!(mgu(&t, &r).is_some());
    }

    /// resolve is idempotent: applying a substitution twice equals once.
    #[test]
    fn resolve_idempotent(a in arb_term(), b in arb_term()) {
        if let Some(s) = mgu(&a, &b) {
            let once = s.resolve(&a);
            prop_assert_eq!(s.resolve(&once), once);
        }
    }

    /// Unification order over a conjunction doesn't change satisfiability:
    /// unify(a1,b1) then (a2,b2) succeeds iff the other order does.
    #[test]
    fn conjunction_order_independent(
        a1 in arb_term(), b1 in arb_term(),
        a2 in arb_term(), b2 in arb_term()
    ) {
        let mut s12 = Subst::new();
        let ok12 = unify(&mut s12, &a1, &b1) && unify(&mut s12, &a2, &b2);
        let mut s21 = Subst::new();
        let ok21 = unify(&mut s21, &a2, &b2) && unify(&mut s21, &a1, &b1);
        prop_assert_eq!(ok12, ok21);
    }

    /// as_list inverts Term::list.
    #[test]
    fn list_round_trip(elems in prop::collection::vec(arb_ground_term(), 0..8)) {
        let l = Term::list(elems.clone());
        prop_assert_eq!(l.as_list().unwrap(), elems);
    }

    /// The copy-on-write layered `Subst` behaves exactly like a flat map
    /// under arbitrary interleavings of forks (clones) and fresh binds:
    /// same lookups, same length, same equality relation between forks.
    #[test]
    fn cow_subst_matches_flat_map_model(
        ops in prop::collection::vec((0usize..8, 0u32..10, arb_ground_term()), 1..40)
    ) {
        use std::collections::HashMap;
        let mut substs: Vec<Subst> = vec![Subst::new()];
        let mut models: Vec<HashMap<Term, Term>> = vec![HashMap::new()];
        for (at, var_id, ground) in ops {
            let i = at % substs.len();
            let v = Term::var(&format!("V{var_id}"));
            // Fork, then bind into the fork: the COW path a frontier
            // executor takes per emitted match. Skip vars the model says
            // are already bound (rebinding is a contract violation).
            if models[i].contains_key(&v) {
                continue;
            }
            let mut forked = substs[i].clone();
            let mut model = models[i].clone();
            prop_assert!(unify(&mut forked, &v, &ground));
            model.insert(v, ground);
            substs.push(forked);
            models.push(model);
        }
        for (s, m) in substs.iter().zip(&models) {
            prop_assert_eq!(s.len(), m.len());
            prop_assert_eq!(s.is_empty(), m.is_empty());
            for (v, t) in m {
                prop_assert_eq!(&s.resolve(v), t);
            }
        }
        // Equality between any two forks is extensional: it agrees with
        // model equality regardless of how the layers are stacked.
        for i in 0..substs.len() {
            for j in 0..substs.len() {
                prop_assert_eq!(substs[i] == substs[j], models[i] == models[j]);
            }
        }
    }
}
