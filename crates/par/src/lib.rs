//! # chainsplit-par
//!
//! A zero-dependency scoped worker pool with **deterministic result
//! collection**, built on `std::thread::scope` — the offline vendored-stub
//! policy rules out rayon, and the evaluators need far less than rayon
//! offers anyway: run a batch of independent closures, give the results
//! back *in task order* no matter which thread finished which task when.
//!
//! The determinism contract is the whole point: a caller that partitions a
//! semi-naive delta into tasks and merges the returned buffers in task
//! order observes **bit-identical output for any thread count**, including
//! `threads == 1` (which runs the tasks inline on the caller's thread with
//! no spawns at all). Work counters computed inside tasks therefore sum to
//! the same totals regardless of parallelism — the invariant the
//! differential fuzzer in `tests/strategy_agreement.rs` enforces.
//!
//! ```
//! use chainsplit_par::Pool;
//!
//! let pool = Pool::new(4);
//! let tasks: Vec<_> = (0..64).map(|i| move || i * i).collect();
//! let squares = pool.run(tasks).unwrap();
//! assert_eq!(squares[10], 100); // task order, not completion order
//! ```
//!
//! A panicking task surfaces as a clean [`PoolError::WorkerPanicked`] —
//! never a hang and never a poisoned lock taking the process down.

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard};
use std::thread;

/// A pool failure. Tasks cannot fail on their own (they return plain
/// values); the only failure mode is a task panicking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PoolError {
    /// A task panicked. `task` is the index (in submission order) of a
    /// panicking task — the first one the pool observed — and `message` is
    /// its panic payload (so crash reports can be bucketed by message).
    /// Remaining queued tasks are abandoned, running ones finish, and all
    /// results are dropped. The pool handle stays reusable.
    WorkerPanicked { task: usize, message: String },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::WorkerPanicked { task, message } => {
                write!(f, "worker panicked evaluating task {task}: {message}")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// Extracts the human-readable message from a panic payload. `panic!`
/// with a literal yields `&str`, with a format string yields `String`;
/// anything else (a custom `panic_any` payload) has no portable text.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Reads the `CHAINSPLIT_THREADS` environment variable: the default
/// thread count for every evaluator option struct. Unset, empty, or
/// unparsable values (and `0`) fall back to `1` — parallelism is strictly
/// opt-in.
pub fn env_threads() -> usize {
    std::env::var("CHAINSPLIT_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(1)
        .max(1)
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panicking task is reported through `PoolError`, so a poisoned
    // mutex carries no extra information — take the data anyway.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A worker pool of a fixed thread count.
///
/// The pool is a lightweight handle: threads are scoped to each
/// [`Pool::run`] call (so tasks may freely borrow from the caller's
/// stack), and the handle itself is trivially reusable across queries.
#[derive(Clone, Debug)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool that runs tasks on up to `threads` threads (clamped to at
    /// least 1). `Pool::new(1)` never spawns: tasks run inline, in order,
    /// on the caller's thread.
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
        }
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every task, returning their results **in task order**.
    ///
    /// At most `threads` tasks run concurrently (the caller's thread
    /// participates, so `threads == n` means `n - 1` spawns). Excess tasks
    /// queue and are picked up as workers free up, so submitting far more
    /// tasks than threads is the normal, efficient case. An empty task
    /// list returns an empty vector without touching a thread.
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Result<Vec<T>, PoolError>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = tasks.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let workers = self.threads.min(n);
        if workers <= 1 {
            // Inline path: same panic contract as the parallel path, no
            // spawn overhead. This is the `threads = 1` default.
            let mut out = Vec::with_capacity(n);
            for (i, task) in tasks.into_iter().enumerate() {
                match catch_unwind(AssertUnwindSafe(task)) {
                    Ok(v) => out.push(v),
                    Err(payload) => {
                        return Err(PoolError::WorkerPanicked {
                            task: i,
                            message: panic_message(payload),
                        })
                    }
                }
            }
            return Ok(out);
        }

        let queue: Mutex<VecDeque<(usize, F)>> =
            Mutex::new(tasks.into_iter().enumerate().collect());
        let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
        let panicked: Mutex<Option<(usize, String)>> = Mutex::new(None);

        let work = || loop {
            if lock(&panicked).is_some() {
                break; // a sibling already failed: stop draining
            }
            let Some((i, task)) = lock(&queue).pop_front() else {
                break;
            };
            match catch_unwind(AssertUnwindSafe(task)) {
                Ok(v) => lock(&results)[i] = Some(v),
                Err(payload) => {
                    // Keep the lowest-indexed panic so the report is
                    // deterministic even when several tasks blow up.
                    let msg = panic_message(payload);
                    let mut p = lock(&panicked);
                    match &*p {
                        Some((j, _)) if *j <= i => {}
                        _ => *p = Some((i, msg)),
                    }
                    break;
                }
            }
        };

        thread::scope(|s| {
            for _ in 1..workers {
                s.spawn(work);
            }
            work(); // the caller participates instead of blocking idle
        });

        if let Some((task, message)) = lock(&panicked).take() {
            return Err(PoolError::WorkerPanicked { task, message });
        }
        let collected = lock(&results)
            .iter_mut()
            .map(|slot| slot.take().expect("every queued task ran"))
            .collect();
        Ok(collected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order() {
        let pool = Pool::new(4);
        let tasks: Vec<_> = (0..32usize).map(|i| move || i * 10).collect();
        let out = pool.run(tasks).unwrap();
        assert_eq!(out, (0..32usize).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = Pool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.run(vec![|| 7]).unwrap(), vec![7]);
    }

    #[test]
    fn tasks_may_borrow_caller_state() {
        let data: Vec<usize> = (0..100).collect();
        let pool = Pool::new(3);
        let tasks: Vec<_> = data
            .chunks(17)
            .map(|chunk| move || chunk.iter().sum::<usize>())
            .collect();
        let sums = pool.run(tasks).unwrap();
        assert_eq!(sums.iter().sum::<usize>(), data.iter().sum::<usize>());
    }

    #[test]
    fn env_threads_defaults_to_one() {
        // The test runner does not set CHAINSPLIT_THREADS.
        if std::env::var("CHAINSPLIT_THREADS").is_err() {
            assert_eq!(env_threads(), 1);
        }
    }
}
