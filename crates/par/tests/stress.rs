//! Stress tests for the worker pool: the failure modes a fixpoint engine
//! cannot afford — hangs, lost results, schedule-dependent output.

use chainsplit_par::{Pool, PoolError};
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn oversubscription_64_tasks_2_threads() {
    // Far more tasks than threads: everything still runs exactly once and
    // lands in its own slot.
    let ran = AtomicUsize::new(0);
    let pool = Pool::new(2);
    let tasks: Vec<_> = (0..64usize)
        .map(|i| {
            let ran = &ran;
            move || {
                ran.fetch_add(1, Ordering::Relaxed);
                i * i
            }
        })
        .collect();
    let out = pool.run(tasks).unwrap();
    assert_eq!(ran.load(Ordering::Relaxed), 64);
    assert_eq!(out, (0..64usize).map(|i| i * i).collect::<Vec<_>>());
}

#[test]
fn empty_partition_rounds() {
    // A fixpoint round whose every partition is empty submits no tasks at
    // all; the pool must return an empty result without spawning.
    let pool = Pool::new(8);
    for _ in 0..100 {
        let out: Vec<usize> = pool.run(Vec::<fn() -> usize>::new()).unwrap();
        assert!(out.is_empty());
    }
}

#[test]
fn panicking_worker_is_a_clean_error_not_a_hang() {
    let pool = Pool::new(4);
    let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16usize)
        .map(|i| {
            Box::new(move || {
                if i == 5 {
                    panic!("worker blew up");
                }
                i
            }) as Box<dyn FnOnce() -> usize + Send>
        })
        .collect();
    let err = pool.run(tasks).unwrap_err();
    let PoolError::WorkerPanicked { task, ref message } = err;
    assert!(task < 16);
    assert_eq!(message, "worker blew up");
    assert!(err.to_string().contains("panicked"));
    assert!(err.to_string().contains("worker blew up"));

    // The inline path reports the panicking task precisely.
    let sequential = Pool::new(1);
    let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16usize)
        .map(|i| {
            Box::new(move || {
                if i == 5 {
                    panic!("worker blew up");
                }
                i
            }) as Box<dyn FnOnce() -> usize + Send>
        })
        .collect();
    assert_eq!(
        sequential.run(tasks).unwrap_err(),
        PoolError::WorkerPanicked {
            task: 5,
            message: "worker blew up".to_string()
        }
    );
}

#[test]
fn panic_messages_capture_formatted_and_opaque_payloads() {
    let pool = Pool::new(1);
    // Formatted panics arrive as `String` payloads.
    let formatted: Vec<Box<dyn FnOnce() -> usize + Send>> =
        vec![Box::new(|| -> usize { panic!("bad partition {}", 3) })
            as Box<dyn FnOnce() -> usize + Send>];
    let PoolError::WorkerPanicked { message, .. } = pool.run(formatted).unwrap_err();
    assert_eq!(message, "bad partition 3");
    // `panic_any` with a non-string payload still yields a stable marker.
    let opaque: Vec<Box<dyn FnOnce() -> usize + Send>> =
        vec![Box::new(|| -> usize { std::panic::panic_any(42usize) })
            as Box<dyn FnOnce() -> usize + Send>];
    let PoolError::WorkerPanicked { message, .. } = pool.run(opaque).unwrap_err();
    assert_eq!(message, "non-string panic payload");
}

#[test]
fn pool_reuse_across_queries() {
    // One pool handle, many runs — the shape of a shell session issuing
    // query after query. Results must stay deterministic throughout,
    // including after a run that panicked.
    let pool = Pool::new(4);
    for round in 0..10usize {
        let tasks: Vec<_> = (0..20usize).map(|i| move || round * 100 + i).collect();
        let out = pool.run(tasks).unwrap();
        assert_eq!(
            out,
            (0..20usize).map(|i| round * 100 + i).collect::<Vec<_>>()
        );
    }
    let bad: Vec<Box<dyn FnOnce() -> usize + Send>> =
        vec![Box::new(|| -> usize { panic!("transient") }) as Box<dyn FnOnce() -> usize + Send>];
    assert!(pool.run(bad).is_err());
    // Still usable after the panic.
    let out = pool.run((0..8usize).map(|i| move || i + 1).collect::<Vec<_>>());
    assert_eq!(out.unwrap(), (1..=8usize).collect::<Vec<_>>());
}

#[test]
fn output_is_identical_for_any_thread_count() {
    // The determinism contract, stated directly: same tasks, any thread
    // count, same result vector.
    let reference: Vec<u64> = Pool::new(1)
        .run(
            (0..50u64)
                .map(|i| move || i.wrapping_mul(0x9e37_79b9))
                .collect::<Vec<_>>(),
        )
        .unwrap();
    for threads in [2, 3, 4, 8, 64] {
        let out = Pool::new(threads)
            .run(
                (0..50u64)
                    .map(|i| move || i.wrapping_mul(0x9e37_79b9))
                    .collect::<Vec<_>>(),
            )
            .unwrap();
        assert_eq!(out, reference, "thread count {threads} changed the output");
    }
}

#[test]
fn more_threads_than_tasks() {
    let pool = Pool::new(32);
    let out = pool.run(vec![|| 1, || 2]).unwrap();
    assert_eq!(out, vec![1, 2]);
}
