//! # chainsplit-provenance
//!
//! Why-provenance for the chain-split deductive database: *why does this
//! answer exist?*
//!
//! The evaluators are instrumented with [`record`] calls at every site
//! that resolves a rule head to a derived tuple. When recording is **off**
//! — the default — a call is a single relaxed atomic load, so the hot
//! paths cost nothing measurable and every work counter stays bit-identical
//! to an uninstrumented build. When recording is **on**, each call stores
//! one *witness* per derived ground tuple — the pair `(rule, substituted
//! body atoms)` that justified it — into a global interned arena with
//! **first-witness-wins** semantics: a tuple derivable ten ways keeps the
//! justification that was offered first.
//!
//! Parallel evaluators must not race the arena (first-wins would become
//! schedule-dependent). They instead install a **thread-local buffer**
//! around each worker task ([`begin_buffer`] / [`take_buffer`]) and flush
//! the collected buffers on the merge thread in deterministic partition
//! order ([`flush`]) — the same discipline that keeps their answers and
//! counters thread-count-invariant extends to witnesses.
//!
//! On top of the arena sit [`proof_tree`] (a depth/node-capped proof tree
//! for one ground atom), a pretty tree [`render`]er, and a
//! schema-versioned JSON [`export_json`] built on
//! [`chainsplit_trace::json`].
//!
//! ```
//! use chainsplit_logic::{parse_program, parse_query};
//! let p = parse_program("e(a, b).").unwrap();
//! let _guard = chainsplit_provenance::exclusive();
//! chainsplit_provenance::clear();
//! chainsplit_provenance::enable();
//! let head = parse_query("p(a, b)").unwrap();
//! let body = parse_query("e(a, b)").unwrap();
//! let rule = chainsplit_logic::parse_rule("p(X, Y) :- e(X, Y).").unwrap();
//! chainsplit_provenance::record(&head, &rule, std::slice::from_ref(&body));
//! chainsplit_provenance::disable();
//! assert_eq!(chainsplit_provenance::witness_count(), 1);
//! ```

#![forbid(unsafe_code)]

use chainsplit_logic::{Atom, Rule, Term};
use chainsplit_trace::json::Json;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Version stamp of the `:why export` JSON document. Bump deliberately,
/// together with [`PROOF_DOC_KEYS`] / [`PROOF_NODE_KEYS`].
pub const PROOF_SCHEMA_VERSION: usize = 1;

/// Top-level key set of the export document, in document order.
pub const PROOF_DOC_KEYS: [&str; 4] = ["schema_version", "kind", "goal", "proofs"];

/// Key set of every proof-tree node in the export, in document order.
pub const PROOF_NODE_KEYS: [&str; 4] = ["atom", "kind", "rule", "children"];

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns witness recording on. Existing witnesses are kept; call
/// [`clear`] first to start a fresh lineage session.
pub fn enable() {
    ENABLED.store(true, Ordering::Release);
}

/// Turns witness recording off. The arena is kept for inspection.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether witnesses are currently being recorded. This is the one
/// relaxed load every instrumented hot path pays when recording is off.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One materialized witness: the head tuple, the rule that derived it,
/// and the ground body instance that rule was applied to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Witness {
    pub head: Atom,
    pub rule: Rule,
    pub body: Vec<Atom>,
}

/// A witness buffered on a worker thread, awaiting a deterministic
/// [`flush`] on the merge thread.
#[derive(Clone, Debug)]
pub struct Pending {
    head: Atom,
    rule: Rule,
    body: Vec<Atom>,
}

/// The interned arena: ground atoms and rules are stored once; a witness
/// is three small id lists.
#[derive(Default)]
struct Store {
    atoms: Vec<Atom>,
    atom_ids: HashMap<Atom, u32>,
    rules: Vec<Rule>,
    rule_ids: HashMap<Rule, u32>,
    /// head atom id -> (rule id, body atom ids); first-witness-wins.
    witnesses: HashMap<u32, (u32, Vec<u32>)>,
    /// Head ids in the order their witnesses latched.
    order: Vec<u32>,
    /// Governor-currency estimate of the arena's size.
    bytes: u64,
}

fn store() -> &'static Mutex<Store> {
    static STORE: OnceLock<Mutex<Store>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(Store::default()))
}

fn lock() -> MutexGuard<'static, Store> {
    store().lock().unwrap_or_else(|e| e.into_inner())
}

/// Serialises whole provenance sessions: the arena is process-global, so
/// concurrent sessions (e.g. parallel tests in one binary) must hold this
/// guard around their `clear`/`enable` … `disable`/inspect window.
pub fn exclusive() -> MutexGuard<'static, ()> {
    static SESSION: OnceLock<Mutex<()>> = OnceLock::new();
    SESSION
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    /// The stack of active worker buffers on this thread. A stack, not a
    /// slot: `Pool::new(1)` runs tasks inline and the calling thread
    /// participates in every pool, so a nested parallel evaluation (a
    /// chain-split inside a chain-split worker) opens a buffer on a
    /// thread that already holds one. Witnesses land in the innermost
    /// buffer; an inner [`flush`] appends to the enclosing buffer, so
    /// merge order composes across nesting levels.
    static BUFFER: RefCell<Vec<Vec<Pending>>> = const { RefCell::new(Vec::new()) };
}

/// Governor-currency size estimate of one term (matches the coarse
/// node/binding accounting used elsewhere; exactness is not the point —
/// monotone growth under a shared ceiling is).
fn term_bytes(t: &Term) -> u64 {
    match t {
        Term::Var(_) | Term::Int(_) | Term::Sym(_) | Term::Nil => 16,
        Term::Cons(h, tl) => 16 + term_bytes(h) + term_bytes(tl),
        Term::Comp(_, args) => 16 + args.iter().map(term_bytes).sum::<u64>(),
    }
}

fn atom_bytes(a: &Atom) -> u64 {
    24 + a.args.iter().map(term_bytes).sum::<u64>()
}

impl Store {
    fn intern_atom(&mut self, a: &Atom) -> (u32, u64) {
        if let Some(&id) = self.atom_ids.get(a) {
            return (id, 0);
        }
        let id = self.atoms.len() as u32;
        let bytes = atom_bytes(a);
        self.atoms.push(a.clone());
        self.atom_ids.insert(a.clone(), id);
        (id, bytes)
    }

    fn intern_rule(&mut self, r: &Rule) -> (u32, u64) {
        if let Some(&id) = self.rule_ids.get(r) {
            return (id, 0);
        }
        let id = self.rules.len() as u32;
        let bytes = atom_bytes(&r.head) + r.body.iter().map(atom_bytes).sum::<u64>();
        self.rules.push(r.clone());
        self.rule_ids.insert(r.clone(), id);
        (id, bytes)
    }

    /// Offers one witness; first-wins. Returns the estimated bytes the
    /// arena grew by (0 for a duplicate head).
    fn offer(&mut self, head: &Atom, rule: &Rule, body: &[Atom]) -> u64 {
        if let Some(&hid) = self.atom_ids.get(head) {
            if self.witnesses.contains_key(&hid) {
                return 0;
            }
        }
        let (hid, mut bytes) = self.intern_atom(head);
        if self.witnesses.contains_key(&hid) {
            return 0;
        }
        let (rid, rb) = self.intern_rule(rule);
        bytes += rb;
        let mut body_ids = Vec::with_capacity(body.len());
        for b in body {
            let (bid, bb) = self.intern_atom(b);
            bytes += bb;
            body_ids.push(bid);
        }
        bytes += 16 + 4 * body_ids.len() as u64;
        self.witnesses.insert(hid, (rid, body_ids));
        self.order.push(hid);
        self.bytes += bytes;
        bytes
    }

    fn materialize(&self, hid: u32) -> Witness {
        let (rid, body_ids) = &self.witnesses[&hid];
        Witness {
            head: self.atoms[hid as usize].clone(),
            rule: self.rules[*rid as usize].clone(),
            body: body_ids
                .iter()
                .map(|&b| self.atoms[b as usize].clone())
                .collect(),
        }
    }
}

/// Records one witness for a derived tuple, when recording is on.
///
/// Only fully ground instances are recorded (a non-ground head or body
/// atom — e.g. a tabled answer scheme with an open tail — is silently
/// skipped: the lineage oracle validates exactly what was recorded).
/// Inside a worker buffer the witness is deferred to [`flush`]; otherwise
/// it is offered to the arena directly and the estimated bytes the arena
/// grew by are returned, for the caller to charge against the governor's
/// byte budget.
pub fn record(head: &Atom, rule: &Rule, body: &[Atom]) -> u64 {
    if !is_enabled() {
        return 0;
    }
    if !head.is_ground() || body.iter().any(|b| !b.is_ground()) {
        return 0;
    }
    let deferred = BUFFER.with(|b| {
        let mut b = b.borrow_mut();
        if let Some(buf) = b.last_mut() {
            buf.push(Pending {
                head: head.clone(),
                rule: rule.clone(),
                body: body.to_vec(),
            });
            true
        } else {
            false
        }
    });
    if deferred {
        0
    } else {
        lock().offer(head, rule, body)
    }
}

/// Pushes an empty witness buffer on the current thread. Call at the
/// top of a parallel worker task; pair with [`take_buffer`].
pub fn begin_buffer() {
    BUFFER.with(|b| b.borrow_mut().push(Vec::new()));
}

/// Pops and returns the current thread's innermost witness buffer
/// (empty if none was installed). The buffer travels with the task
/// result to the merge thread, which applies it via [`flush`] in merge
/// order.
pub fn take_buffer() -> Vec<Pending> {
    BUFFER.with(|b| b.borrow_mut().pop()).unwrap_or_default()
}

/// Offers a worker's buffered witnesses, in buffer order. On a thread
/// that itself holds an active buffer (a nested parallel merge) the
/// witnesses re-buffer there instead, preserving composed merge order;
/// otherwise they go to the arena and the total estimated bytes the
/// arena grew by is returned.
pub fn flush(buf: Vec<Pending>) -> u64 {
    if buf.is_empty() {
        return 0;
    }
    let rebuffered = BUFFER.with(|b| {
        let mut b = b.borrow_mut();
        if let Some(outer) = b.last_mut() {
            outer.extend(buf.iter().cloned());
            true
        } else {
            false
        }
    });
    if rebuffered {
        return 0;
    }
    let mut s = lock();
    buf.iter().map(|p| s.offer(&p.head, &p.rule, &p.body)).sum()
}

/// Drops every recorded witness and interned object.
pub fn clear() {
    *lock() = Store::default();
}

/// The number of witnessed tuples.
pub fn witness_count() -> usize {
    lock().witnesses.len()
}

/// The governor-currency size estimate of the arena.
pub fn arena_bytes() -> u64 {
    lock().bytes
}

/// The recorded witness for `atom`, if any.
pub fn witness_of(atom: &Atom) -> Option<Witness> {
    let s = lock();
    let hid = *s.atom_ids.get(atom)?;
    s.witnesses.contains_key(&hid).then(|| s.materialize(hid))
}

/// Every recorded witness, in the order the witnesses latched.
pub fn snapshot() -> Vec<Witness> {
    let s = lock();
    s.order.iter().map(|&hid| s.materialize(hid)).collect()
}

/// A position in the latch order; pair with [`delta_since`] to capture
/// the witnesses a bounded stretch of evaluation recorded.
pub fn delta_mark() -> usize {
    lock().order.len()
}

/// The witnesses latched since `mark`, in latch order.
pub fn delta_since(mark: usize) -> Vec<Witness> {
    let s = lock();
    s.order[mark.min(s.order.len())..]
        .iter()
        .map(|&hid| s.materialize(hid))
        .collect()
}

/// Re-offers a previously captured snapshot (e.g. when an answer cache
/// hit replays the lineage captured at fill time). First-wins still
/// applies; returns the estimated bytes the arena grew by.
pub fn replay(witnesses: &[Witness]) -> u64 {
    if witnesses.is_empty() {
        return 0;
    }
    let mut s = lock();
    witnesses
        .iter()
        .map(|w| s.offer(&w.head, &w.rule, &w.body))
        .sum()
}

/// Evicts every witness whose proof transitively rests on `deleted` —
/// the retraction hook: once a tuple leaves the database, any proof that
/// used it (directly or through intermediate derived tuples) is stale and
/// must never be shown by `:why`. Returns the number of witnesses
/// evicted.
///
/// The reverse dependency walk runs to fixpoint: a witness is evicted
/// when any of its body atoms is the deleted tuple or an already-evicted
/// head. Interned atoms and rules stay (ids must remain stable for the
/// surviving witnesses); only the witness links and their latch-order
/// entries go, and the byte estimate shrinks by the per-link share.
/// Deterministic: the evicted *set* is a pure function of the arena
/// contents, and the surviving latch order is preserved.
pub fn evict_dependents(deleted: &Atom) -> usize {
    let mut s = lock();
    let Some(&did) = s.atom_ids.get(deleted) else {
        return 0;
    };
    let mut stale: HashSet<u32> = HashSet::new();
    stale.insert(did);
    loop {
        let mut grew = false;
        for (&hid, (_, body_ids)) in &s.witnesses {
            if !stale.contains(&hid) && body_ids.iter().any(|b| stale.contains(b)) {
                stale.insert(hid);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    let mut evicted = 0usize;
    let mut freed = 0u64;
    for hid in &stale {
        if let Some((_, body_ids)) = s.witnesses.remove(hid) {
            evicted += 1;
            freed += 16 + 4 * body_ids.len() as u64;
        }
    }
    if evicted > 0 {
        s.order.retain(|hid| !stale.contains(hid));
        s.bytes = s.bytes.saturating_sub(freed);
    }
    evicted
}

/// The transitive witness closure supporting `roots`: every witness
/// reachable from the roots through body atoms, in deterministic
/// root-then-breadth order. Used to capture a complete replayable
/// snapshot for one query's answers without dragging in unrelated
/// lineage.
pub fn closure_for(roots: &[Atom]) -> Vec<Witness> {
    let s = lock();
    let mut out = Vec::new();
    let mut seen: HashSet<u32> = HashSet::new();
    let mut queue: Vec<u32> = roots
        .iter()
        .filter_map(|a| s.atom_ids.get(a).copied())
        .collect();
    let mut i = 0;
    while i < queue.len() {
        let hid = queue[i];
        i += 1;
        if !seen.insert(hid) {
            continue;
        }
        let Some((_, body_ids)) = s.witnesses.get(&hid) else {
            continue;
        };
        out.push(s.materialize(hid));
        queue.extend(body_ids.iter().copied());
    }
    out
}

// ---------------------------------------------------------------------
// Proof trees
// ---------------------------------------------------------------------

/// Why a proof node has no children.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeafKind {
    /// An extensional fact.
    Fact,
    /// An evaluable (builtin) atom that holds.
    Builtin,
    /// No witness and not classifiable — e.g. recording was off while
    /// this tuple was derived, or the arena was cleared since.
    Unknown,
}

/// What a proof node is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// Derived by `rule`; children justify the body atoms in rule order.
    Derived { rule: Rule },
    /// A leaf of the proof.
    Leaf(LeafKind),
    /// The subtree was cut by the depth/node budget or a lineage cycle.
    Elided,
}

/// One node of a proof tree.
#[derive(Clone, Debug)]
pub struct ProofNode {
    pub atom: Atom,
    pub kind: NodeKind,
    pub children: Vec<ProofNode>,
}

/// Caps on proof-tree construction, in the governor's budget currency:
/// trees are cut (nodes become [`NodeKind::Elided`]) rather than grown
/// without bound.
#[derive(Clone, Copy, Debug)]
pub struct ProofLimits {
    pub max_depth: usize,
    pub max_nodes: usize,
}

impl Default for ProofLimits {
    fn default() -> Self {
        ProofLimits {
            max_depth: 64,
            max_nodes: 4096,
        }
    }
}

impl ProofLimits {
    /// Derives limits from an (optional) governor byte budget: a proof
    /// node costs roughly an interned atom, so the node cap is the byte
    /// ceiling divided by the per-atom estimate, floored to something
    /// useful and capped by the defaults.
    pub fn from_byte_budget(max_bytes_est: Option<u64>) -> ProofLimits {
        let d = ProofLimits::default();
        match max_bytes_est {
            None => d,
            Some(b) => ProofLimits {
                max_depth: d.max_depth,
                max_nodes: ((b / 64).clamp(16, d.max_nodes as u64)) as usize,
            },
        }
    }
}

/// Builds the proof tree of `root` from the recorded witnesses.
/// `classify` labels witness-less atoms (EDB fact, builtin, unknown);
/// `limits` cap the tree, and a cycle along the path elides rather than
/// recurses.
pub fn proof_tree(
    root: &Atom,
    limits: &ProofLimits,
    classify: &dyn Fn(&Atom) -> LeafKind,
) -> ProofNode {
    let mut nodes = 0usize;
    let mut path: Vec<Atom> = Vec::new();
    build(root, limits, classify, 0, &mut nodes, &mut path)
}

fn build(
    atom: &Atom,
    limits: &ProofLimits,
    classify: &dyn Fn(&Atom) -> LeafKind,
    depth: usize,
    nodes: &mut usize,
    path: &mut Vec<Atom>,
) -> ProofNode {
    *nodes += 1;
    if depth >= limits.max_depth || *nodes > limits.max_nodes || path.contains(atom) {
        return ProofNode {
            atom: atom.clone(),
            kind: NodeKind::Elided,
            children: Vec::new(),
        };
    }
    let Some(w) = witness_of(atom) else {
        return ProofNode {
            atom: atom.clone(),
            kind: NodeKind::Leaf(classify(atom)),
            children: Vec::new(),
        };
    };
    path.push(atom.clone());
    let children = w
        .body
        .iter()
        .map(|b| build(b, limits, classify, depth + 1, nodes, path))
        .collect();
    path.pop();
    ProofNode {
        atom: atom.clone(),
        kind: NodeKind::Derived { rule: w.rule },
        children,
    }
}

impl ProofNode {
    /// Total node count of the tree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(ProofNode::size).sum::<usize>()
    }

    /// Height of the tree (a lone node has depth 1).
    pub fn depth(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(ProofNode::depth)
            .max()
            .unwrap_or(0)
    }

    /// The leaf atoms of the tree, left to right.
    pub fn leaves(&self) -> Vec<&Atom> {
        let mut out = Vec::new();
        fn walk<'a>(n: &'a ProofNode, out: &mut Vec<&'a Atom>) {
            if n.children.is_empty() {
                out.push(&n.atom);
            } else {
                for c in &n.children {
                    walk(c, out);
                }
            }
        }
        walk(self, &mut out);
        out
    }

    /// A structural shape signature: node kinds and arities in preorder.
    /// Two proofs of the same answer under different strategies compare
    /// equal here iff they derive it *the same way*.
    pub fn shape(&self) -> String {
        let mut out = String::new();
        fn walk(n: &ProofNode, out: &mut String) {
            let tag = match &n.kind {
                NodeKind::Derived { .. } => 'D',
                NodeKind::Leaf(LeafKind::Fact) => 'F',
                NodeKind::Leaf(LeafKind::Builtin) => 'B',
                NodeKind::Leaf(LeafKind::Unknown) => '?',
                NodeKind::Elided => 'E',
            };
            out.push(tag);
            if !n.children.is_empty() {
                out.push('(');
                for c in &n.children {
                    walk(c, out);
                }
                out.push(')');
            }
        }
        walk(self, &mut out);
        out
    }
}

/// Renders a proof tree as an indented pretty tree:
///
/// ```text
/// path(a, c)   [path(X, Y) :- edge(X, Z), path(Z, Y).]
/// ├─ edge(a, b)   [fact]
/// └─ path(b, c)   [path(X, Y) :- edge(X, Y).]
///    └─ edge(b, c)   [fact]
/// ```
pub fn render(node: &ProofNode) -> String {
    let mut out = String::new();
    fn annotate(n: &ProofNode) -> String {
        match &n.kind {
            NodeKind::Derived { rule } => format!("   [{rule}]"),
            NodeKind::Leaf(LeafKind::Fact) => "   [fact]".to_string(),
            NodeKind::Leaf(LeafKind::Builtin) => "   [builtin]".to_string(),
            NodeKind::Leaf(LeafKind::Unknown) => "   [unexplained]".to_string(),
            NodeKind::Elided => "   [elided: budget or cycle]".to_string(),
        }
    }
    fn walk(n: &ProofNode, prefix: &str, out: &mut String) {
        let last = n.children.len().saturating_sub(1);
        for (i, c) in n.children.iter().enumerate() {
            let (branch, pad) = if i == last {
                ("└─ ", "   ")
            } else {
                ("├─ ", "│  ")
            };
            out.push_str(prefix);
            out.push_str(branch);
            out.push_str(&c.atom.to_string());
            out.push_str(&annotate(c));
            out.push('\n');
            walk(c, &format!("{prefix}{pad}"), out);
        }
    }
    out.push_str(&node.atom.to_string());
    out.push_str(&annotate(node));
    out.push('\n');
    walk(node, "", &mut out);
    out
}

// ---------------------------------------------------------------------
// JSON export (schema-versioned, alongside the trace schema)
// ---------------------------------------------------------------------

fn node_to_json(n: &ProofNode) -> Json {
    let kind = match &n.kind {
        NodeKind::Derived { .. } => "derived",
        NodeKind::Leaf(LeafKind::Fact) => "fact",
        NodeKind::Leaf(LeafKind::Builtin) => "builtin",
        NodeKind::Leaf(LeafKind::Unknown) => "unknown",
        NodeKind::Elided => "elided",
    };
    let rule = match &n.kind {
        NodeKind::Derived { rule } => Json::str(rule.to_string()),
        _ => Json::Null,
    };
    Json::Obj(vec![
        ("atom".into(), Json::str(n.atom.to_string())),
        ("kind".into(), Json::str(kind)),
        ("rule".into(), rule),
        (
            "children".into(),
            Json::Arr(n.children.iter().map(node_to_json).collect()),
        ),
    ])
}

/// Renders proof trees for `goal` as the schema-versioned `:why export`
/// document (see [`PROOF_DOC_KEYS`] / [`PROOF_NODE_KEYS`]).
pub fn export_json(goal: &str, proofs: &[ProofNode]) -> Json {
    Json::Obj(vec![
        ("schema_version".into(), Json::int(PROOF_SCHEMA_VERSION)),
        ("kind".into(), Json::str("chainsplit-proof")),
        ("goal".into(), Json::str(goal)),
        (
            "proofs".into(),
            Json::Arr(proofs.iter().map(node_to_json).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainsplit_logic::{parse_query, parse_rule};

    fn atom(s: &str) -> Atom {
        parse_query(s).unwrap()
    }

    fn rule(s: &str) -> Rule {
        parse_rule(s).unwrap()
    }

    /// Records the linear path proof a(b(c-fact)).
    fn record_path_chain() {
        let r1 = rule("path(X, Y) :- edge(X, Y).");
        let r2 = rule("path(X, Y) :- edge(X, Z), path(Z, Y).");
        assert!(record(&atom("path(b, c)"), &r1, &[atom("edge(b, c)")]) > 0);
        assert!(
            record(
                &atom("path(a, c)"),
                &r2,
                &[atom("edge(a, b)"), atom("path(b, c)")],
            ) > 0
        );
    }

    #[test]
    fn disabled_recording_is_inert() {
        let _g = exclusive();
        clear();
        disable();
        assert_eq!(
            record(&atom("p(a)"), &rule("p(X) :- e(X)."), &[atom("e(a)")]),
            0
        );
        assert_eq!(witness_count(), 0);
        assert_eq!(arena_bytes(), 0);
    }

    #[test]
    fn first_witness_wins_and_bytes_grow_once() {
        let _g = exclusive();
        clear();
        enable();
        let r1 = rule("p(X) :- e(X).");
        let r2 = rule("p(X) :- f(X).");
        let b1 = record(&atom("p(a)"), &r1, &[atom("e(a)")]);
        assert!(b1 > 0);
        assert_eq!(record(&atom("p(a)"), &r2, &[atom("f(a)")]), 0);
        disable();
        let w = witness_of(&atom("p(a)")).unwrap();
        assert_eq!(w.rule, r1);
        assert_eq!(w.body, vec![atom("e(a)")]);
        assert_eq!(arena_bytes(), b1);
        clear();
    }

    #[test]
    fn non_ground_instances_are_skipped() {
        let _g = exclusive();
        clear();
        enable();
        assert_eq!(
            record(&atom("p(X)"), &rule("p(X) :- e(X)."), &[atom("e(a)")]),
            0
        );
        assert_eq!(
            record(&atom("p(a)"), &rule("p(X) :- e(X)."), &[atom("e(Y)")]),
            0
        );
        disable();
        assert_eq!(witness_count(), 0);
        clear();
    }

    #[test]
    fn buffered_witnesses_flush_in_order() {
        let _g = exclusive();
        clear();
        enable();
        let r1 = rule("p(X) :- e(X).");
        let r2 = rule("p(X) :- f(X).");
        // Two workers race to justify p(a); the merge thread flushes
        // worker 0 first, so its witness must win whatever the thread
        // schedule was.
        let worker = |r: Rule, b: Atom| {
            std::thread::spawn(move || {
                begin_buffer();
                record(&atom("p(a)"), &r, &[b]);
                take_buffer()
            })
        };
        let h0 = worker(r1.clone(), atom("e(a)"));
        let h1 = worker(r2, atom("f(a)"));
        let bufs = [h0.join().unwrap(), h1.join().unwrap()];
        assert_eq!(witness_count(), 0, "buffered, not yet offered");
        let mut bytes = 0;
        for b in bufs {
            bytes += flush(b);
        }
        disable();
        assert!(bytes > 0);
        assert_eq!(witness_of(&atom("p(a)")).unwrap().rule, r1);
        clear();
    }

    #[test]
    fn snapshot_delta_and_replay_round_trip() {
        let _g = exclusive();
        clear();
        enable();
        record_path_chain();
        let snap = snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].head, atom("path(b, c)"), "latch order");
        let mark = delta_mark();
        record(
            &atom("path(b, b)"),
            &rule("path(X, Y) :- edge(X, Y)."),
            &[atom("edge(b, b)")],
        );
        let delta = delta_since(mark);
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].head, atom("path(b, b)"));
        // Replay into a fresh arena restores the witnesses.
        clear();
        assert!(replay(&snap) > 0);
        assert_eq!(replay(&snap), 0, "idempotent");
        assert_eq!(witness_count(), 2);
        disable();
        clear();
    }

    #[test]
    fn closure_collects_only_reachable_witnesses() {
        let _g = exclusive();
        clear();
        enable();
        record_path_chain();
        record(
            &atom("unrelated(z)"),
            &rule("unrelated(X) :- e(X)."),
            &[atom("e(z)")],
        );
        disable();
        let c = closure_for(&[atom("path(a, c)")]);
        assert_eq!(c.len(), 2);
        assert!(c.iter().all(|w| w.head.pred.name.as_str() == "path"));
        clear();
    }

    #[test]
    fn evict_dependents_drops_the_transitive_reverse_closure() {
        let _g = exclusive();
        clear();
        enable();
        record_path_chain();
        record(
            &atom("unrelated(z)"),
            &rule("unrelated(X) :- e(X)."),
            &[atom("e(z)")],
        );
        disable();
        let bytes_before = arena_bytes();
        // Nothing rests on an unknown tuple.
        assert_eq!(evict_dependents(&atom("edge(z, z)")), 0);
        // path(b, c) rests on edge(b, c) directly; path(a, c) rests on it
        // through path(b, c). The unrelated witness survives.
        assert_eq!(evict_dependents(&atom("edge(b, c)")), 2);
        assert!(witness_of(&atom("path(b, c)")).is_none());
        assert!(witness_of(&atom("path(a, c)")).is_none());
        assert!(witness_of(&atom("unrelated(z)")).is_some());
        assert_eq!(witness_count(), 1);
        assert_eq!(snapshot().len(), 1, "latch order drops evicted entries");
        assert!(arena_bytes() < bytes_before);
        // Idempotent.
        assert_eq!(evict_dependents(&atom("edge(b, c)")), 0);
        clear();
    }

    #[test]
    fn proof_tree_renders_and_shapes() {
        let _g = exclusive();
        clear();
        enable();
        record_path_chain();
        disable();
        let classify = |a: &Atom| {
            if a.pred.name.as_str() == "edge" {
                LeafKind::Fact
            } else {
                LeafKind::Unknown
            }
        };
        let t = proof_tree(&atom("path(a, c)"), &ProofLimits::default(), &classify);
        assert_eq!(t.size(), 4);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.shape(), "D(FD(F))");
        let leaves: Vec<String> = t.leaves().iter().map(|a| a.to_string()).collect();
        assert_eq!(leaves, ["edge(a, b)", "edge(b, c)"]);
        let text = render(&t);
        assert!(text.starts_with("path(a, c)"), "{text}");
        assert!(text.contains("└─ path(b, c)"), "{text}");
        assert!(text.contains("[fact]"), "{text}");
        clear();
    }

    #[test]
    fn cycles_and_budgets_elide() {
        let _g = exclusive();
        clear();
        enable();
        let r = rule("p(X) :- p(X).");
        // A self-justifying witness cannot arise from the evaluators
        // (fixpoints derive bottom-up), but the builder must still not
        // loop on one.
        record(&atom("p(a)"), &r, &[atom("p(a)")]);
        disable();
        let t = proof_tree(&atom("p(a)"), &ProofLimits::default(), &|_| {
            LeafKind::Unknown
        });
        assert_eq!(t.depth(), 2);
        assert!(matches!(t.children[0].kind, NodeKind::Elided));
        // A node cap elides, too.
        let capped = ProofLimits {
            max_depth: 64,
            max_nodes: 1,
        };
        let t = proof_tree(&atom("p(a)"), &capped, &|_| LeafKind::Unknown);
        assert!(matches!(t.kind, NodeKind::Derived { .. }));
        assert!(matches!(t.children[0].kind, NodeKind::Elided));
        clear();
    }

    #[test]
    fn export_schema_is_pinned() {
        let _g = exclusive();
        clear();
        enable();
        record_path_chain();
        disable();
        let t = proof_tree(&atom("path(a, c)"), &ProofLimits::default(), &|_| {
            LeafKind::Fact
        });
        let doc = export_json("path(a, Y)", std::slice::from_ref(&t));
        let doc = Json::parse(&doc.to_pretty()).expect("self-parse");
        assert_eq!(doc.keys(), PROOF_DOC_KEYS);
        assert_eq!(
            doc.get("schema_version").and_then(Json::as_usize),
            Some(PROOF_SCHEMA_VERSION)
        );
        assert_eq!(
            doc.get("kind").and_then(Json::as_str),
            Some("chainsplit-proof")
        );
        fn check_node(n: &Json) {
            assert_eq!(n.keys(), PROOF_NODE_KEYS);
            for c in n.get("children").unwrap().as_array() {
                check_node(c);
            }
        }
        let proofs = doc.get("proofs").unwrap().as_array();
        assert_eq!(proofs.len(), 1);
        for p in proofs {
            check_node(p);
        }
        clear();
    }

    #[test]
    fn byte_budget_derives_node_caps() {
        let d = ProofLimits::from_byte_budget(None);
        assert_eq!(d.max_nodes, ProofLimits::default().max_nodes);
        let small = ProofLimits::from_byte_budget(Some(64 * 32));
        assert_eq!(small.max_nodes, 32);
        let tiny = ProofLimits::from_byte_budget(Some(1));
        assert_eq!(tiny.max_nodes, 16);
        let huge = ProofLimits::from_byte_budget(Some(u64::MAX / 2));
        assert_eq!(huge.max_nodes, ProofLimits::default().max_nodes);
    }
}
