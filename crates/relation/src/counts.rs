//! Derivation-support counters for incremental retraction.
//!
//! A [`SupportCounts`] maps each derived tuple of one predicate to the
//! number of distinct rule instantiations currently deriving it — the
//! counting half of the counting + Delete-and-Rederive hybrid (Gupta,
//! Mumick & Subrahmanian's `DRed`, specialised as in the maintenance
//! literature): for tuples of *non-recursive* predicates the count is an
//! exact decision procedure (count reaches zero ⇔ the tuple has no
//! remaining derivation), which lets the over-deletion phase skip the
//! rederivation round-trip for the common flat-view case. For recursive
//! predicates the count is advisory only — a positive count may be
//! sustained entirely by a derivation cycle — so DRed over-deletes and
//! re-derives regardless, and the repair recounts affected predicates at
//! the end to restore exactness.
//!
//! Counts are plain `u64`s keyed by tuple in an `FxHashMap`; all mutation
//! is `&mut` and single-threaded (the repair loop merges unit results in
//! deterministic unit order before touching counts), so no interior
//! mutability is needed.

use crate::hash::FxHashMap;
use crate::tuple::Tuple;

/// Per-predicate map from derived tuple to its number of derivations.
#[derive(Clone, Default, Debug)]
pub struct SupportCounts {
    counts: FxHashMap<Tuple, u64>,
}

impl SupportCounts {
    pub fn new() -> SupportCounts {
        SupportCounts::default()
    }

    /// The current count for `t` (zero when untracked).
    pub fn get(&self, t: &Tuple) -> u64 {
        self.counts.get(t).copied().unwrap_or(0)
    }

    /// Adds one derivation for `t`; returns the new count.
    pub fn inc(&mut self, t: &Tuple) -> u64 {
        let c = self.counts.entry(t.clone()).or_insert(0);
        *c += 1;
        *c
    }

    /// Removes one derivation for `t`; returns the new count.
    ///
    /// Saturates at zero: with the exact one-loss-one-decrement delta
    /// split this never actually saturates, but a defensive floor keeps a
    /// miscount from wrapping into a 2^64 phantom support.
    pub fn dec(&mut self, t: &Tuple) -> u64 {
        match self.counts.get_mut(t) {
            Some(c) => {
                *c = c.saturating_sub(1);
                let now = *c;
                if now == 0 {
                    self.counts.remove(t);
                }
                now
            }
            None => 0,
        }
    }

    /// Forgets `t` entirely (used when a tuple is deleted outright).
    pub fn remove(&mut self, t: &Tuple) {
        self.counts.remove(t);
    }

    /// Drops every count (used before an exact recount pass).
    pub fn clear(&mut self) {
        self.counts.clear();
    }

    /// Number of tuples with a positive count.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, u64)> {
        self.counts.iter().map(|(t, &c)| (t, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainsplit_logic::Term;

    fn t(a: i64) -> Tuple {
        Tuple::new(vec![Term::Int(a)])
    }

    #[test]
    fn inc_dec_roundtrip() {
        let mut s = SupportCounts::new();
        assert_eq!(s.get(&t(1)), 0);
        assert_eq!(s.inc(&t(1)), 1);
        assert_eq!(s.inc(&t(1)), 2);
        assert_eq!(s.dec(&t(1)), 1);
        assert_eq!(s.dec(&t(1)), 0);
        assert!(s.is_empty(), "zero-count tuples are dropped");
    }

    #[test]
    fn dec_saturates_at_zero() {
        let mut s = SupportCounts::new();
        assert_eq!(s.dec(&t(9)), 0);
        s.inc(&t(9));
        s.dec(&t(9));
        assert_eq!(s.dec(&t(9)), 0);
        assert_eq!(s.get(&t(9)), 0);
    }

    #[test]
    fn remove_and_clear() {
        let mut s = SupportCounts::new();
        s.inc(&t(1));
        s.inc(&t(2));
        s.remove(&t(1));
        assert_eq!(s.len(), 1);
        s.clear();
        assert!(s.is_empty());
    }
}
