//! The extensional database: a catalog of named relations.

use crate::relation::Relation;
use crate::tuple::Tuple;
use chainsplit_logic::{Atom, Pred};
use std::collections::BTreeMap;
use std::fmt;

/// A catalog mapping predicates to relations.
///
/// Keyed with a `BTreeMap` so iteration order (and therefore every printed
/// trace and statistic) is deterministic across runs.
#[derive(Clone, Default)]
pub struct Database {
    relations: BTreeMap<Pred, Relation>,
}

impl Database {
    pub fn new() -> Database {
        Database::default()
    }

    /// Builds a database from ground atoms (e.g. the fact part of a parsed
    /// program).
    pub fn from_facts(facts: impl IntoIterator<Item = Atom>) -> Database {
        let mut db = Database::new();
        for f in facts {
            db.add_fact(&f);
        }
        db
    }

    /// Inserts a ground atom as a row; returns `true` if it was new.
    ///
    /// Panics if the atom is not ground — EDB content is facts.
    pub fn add_fact(&mut self, fact: &Atom) -> bool {
        assert!(fact.is_ground(), "EDB fact must be ground: {fact}");
        self.relations
            .entry(fact.pred)
            .or_insert_with(|| Relation::new(fact.pred.arity as usize))
            .insert(Tuple::new(fact.args.clone()))
    }

    /// Removes a ground atom's row; returns `true` if it was present.
    ///
    /// The relation entry itself stays in the catalog even when its last
    /// row goes — keeping the predicate listed (at cardinality 0) means
    /// stats and traces stay stable across a retract/re-assert cycle.
    ///
    /// Panics if the atom is not ground, mirroring [`Database::add_fact`].
    pub fn remove_fact(&mut self, fact: &Atom) -> bool {
        assert!(fact.is_ground(), "EDB fact must be ground: {fact}");
        match self.relations.get_mut(&fact.pred) {
            Some(rel) => rel.remove(&Tuple::new(fact.args.clone())),
            None => false,
        }
    }

    /// The relation for `pred`, if any facts exist.
    pub fn relation(&self, pred: Pred) -> Option<&Relation> {
        self.relations.get(&pred)
    }

    /// Mutable access, creating an empty relation on first touch.
    pub fn relation_mut(&mut self, pred: Pred) -> &mut Relation {
        self.relations
            .entry(pred)
            .or_insert_with(|| Relation::new(pred.arity as usize))
    }

    pub fn contains_pred(&self, pred: Pred) -> bool {
        self.relations.contains_key(&pred)
    }

    pub fn preds(&self) -> impl Iterator<Item = Pred> + '_ {
        self.relations.keys().copied()
    }

    /// Total number of rows across all relations.
    pub fn total_rows(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Merges every relation of `other` into `self`; returns rows added.
    pub fn merge(&mut self, other: &Database) -> usize {
        let mut added = 0;
        for (pred, rel) in &other.relations {
            added += self.relation_mut(*pred).extend_from(rel);
        }
        added
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_map();
        for (pred, rel) in &self.relations {
            d.entry(&pred.to_string(), &rel.len());
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainsplit_logic::Term;

    fn fact(p: &str, args: Vec<Term>) -> Atom {
        Atom::new(p, args)
    }

    #[test]
    fn add_and_query_facts() {
        let mut db = Database::new();
        assert!(db.add_fact(&fact("parent", vec![Term::sym("a"), Term::sym("b")])));
        assert!(!db.add_fact(&fact("parent", vec![Term::sym("a"), Term::sym("b")])));
        let rel = db.relation(Pred::new("parent", 2)).unwrap();
        assert_eq!(rel.len(), 1);
        assert!(db.relation(Pred::new("nothing", 1)).is_none());
    }

    #[test]
    fn same_name_different_arity_are_distinct() {
        let mut db = Database::new();
        db.add_fact(&fact("p", vec![Term::Int(1)]));
        db.add_fact(&fact("p", vec![Term::Int(1), Term::Int(2)]));
        assert_eq!(db.relation(Pred::new("p", 1)).unwrap().len(), 1);
        assert_eq!(db.relation(Pred::new("p", 2)).unwrap().len(), 1);
        assert_eq!(db.total_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "ground")]
    fn non_ground_fact_panics() {
        Database::new().add_fact(&fact("p", vec![Term::var("X")]));
    }

    #[test]
    fn merge_counts_new_rows() {
        let mut a = Database::new();
        a.add_fact(&fact("p", vec![Term::Int(1)]));
        let mut b = Database::new();
        b.add_fact(&fact("p", vec![Term::Int(1)]));
        b.add_fact(&fact("q", vec![Term::Int(2)]));
        assert_eq!(a.merge(&b), 1);
        assert!(a.contains_pred(Pred::new("q", 1)));
    }

    #[test]
    fn remove_fact_roundtrip() {
        let mut db = Database::new();
        let e = fact("edge", vec![Term::Int(1), Term::Int(2)]);
        assert!(!db.remove_fact(&e), "removing from an empty db is a no-op");
        db.add_fact(&e);
        assert!(db.remove_fact(&e));
        assert!(!db.remove_fact(&e));
        // The predicate stays cataloged at cardinality zero.
        assert!(db.contains_pred(Pred::new("edge", 2)));
        assert_eq!(db.total_rows(), 0);
        assert!(db.add_fact(&e), "re-assert after retract is new again");
    }

    #[test]
    fn from_facts_collects() {
        let db = Database::from_facts(vec![
            fact("p", vec![Term::Int(1)]),
            fact("p", vec![Term::Int(2)]),
        ]);
        assert_eq!(db.total_rows(), 2);
        assert_eq!(db.preds().count(), 1);
    }
}
