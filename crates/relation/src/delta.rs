//! Semi-naive delta bookkeeping.
//!
//! Semi-naive evaluation \[1\] re-derives a rule only against the tuples that
//! are *new* since the previous round. [`DeltaRelation`] tracks the three
//! generations: `all` (everything derived so far), `delta` (the previous
//! round's new tuples — the ones rules must join against this round), and
//! `pending` (tuples derived this round, not yet visible).

use crate::relation::Relation;
use crate::tuple::Tuple;

/// A relation evolving in semi-naive rounds.
#[derive(Clone)]
pub struct DeltaRelation {
    all: Relation,
    delta: Relation,
    pending: Relation,
}

impl DeltaRelation {
    pub fn new(arity: usize) -> DeltaRelation {
        DeltaRelation {
            all: Relation::new(arity),
            delta: Relation::new(arity),
            pending: Relation::new(arity),
        }
    }

    /// Seeds the relation before the first round: tuples land in `all` and
    /// in `delta` (everything is new in round zero).
    pub fn seed(&mut self, t: Tuple) -> bool {
        if self.all.insert(t.clone()) {
            self.delta.insert(t);
            true
        } else {
            false
        }
    }

    /// Adds a tuple derived during the current round. It becomes visible in
    /// `delta` only after [`DeltaRelation::advance`]. Returns `true` if the
    /// tuple is globally new.
    pub fn derive(&mut self, t: Tuple) -> bool {
        if self.all.contains(&t) || self.pending.contains(&t) {
            return false;
        }
        self.pending.insert(t)
    }

    /// Ends the round: `pending` becomes the new `delta` and is merged into
    /// `all`. Returns the number of tuples in the new delta; evaluation has
    /// reached fixpoint when this is 0.
    pub fn advance(&mut self) -> usize {
        let arity = self.all.arity();
        let new_delta = std::mem::replace(&mut self.pending, Relation::new(arity));
        self.all.extend_from(&new_delta);
        let n = new_delta.len();
        self.delta = new_delta;
        n
    }

    /// Everything derived so far (excluding this round's pending tuples).
    pub fn all(&self) -> &Relation {
        &self.all
    }

    /// Mutable access to `all` (for index creation).
    pub fn all_mut(&mut self) -> &mut Relation {
        &mut self.all
    }

    /// The previous round's new tuples.
    pub fn delta(&self) -> &Relation {
        &self.delta
    }

    pub fn arity(&self) -> usize {
        self.all.arity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainsplit_logic::Term;

    fn t(v: i64) -> Tuple {
        Tuple::new(vec![Term::Int(v)])
    }

    #[test]
    fn seed_is_visible_immediately() {
        let mut d = DeltaRelation::new(1);
        assert!(d.seed(t(1)));
        assert!(!d.seed(t(1)));
        assert_eq!(d.all().len(), 1);
        assert_eq!(d.delta().len(), 1);
    }

    #[test]
    fn derive_is_invisible_until_advance() {
        let mut d = DeltaRelation::new(1);
        d.seed(t(1));
        assert!(d.derive(t(2)));
        assert_eq!(d.all().len(), 1);
        assert_eq!(d.delta().len(), 1);
        assert_eq!(d.advance(), 1);
        assert_eq!(d.all().len(), 2);
        assert_eq!(d.delta().len(), 1);
        assert!(d.delta().contains(&t(2)));
    }

    #[test]
    fn derive_rejects_already_known() {
        let mut d = DeltaRelation::new(1);
        d.seed(t(1));
        assert!(!d.derive(t(1)));
        assert!(d.derive(t(2)));
        assert!(!d.derive(t(2))); // duplicate within the round
        d.advance();
        assert!(!d.derive(t(2))); // now in all
    }

    #[test]
    fn fixpoint_when_advance_returns_zero() {
        let mut d = DeltaRelation::new(1);
        d.seed(t(1));
        d.advance();
        assert_eq!(d.advance(), 0);
        assert!(d.delta().is_empty());
    }
}
