//! A small Fx-style hasher.
//!
//! The evaluators hash tuples and keys in their innermost loops; SipHash's
//! DoS resistance buys nothing for an embedded deductive engine, so we ship
//! the classic Firefox `FxHash` multiply-xor mix locally rather than pull in
//! a dependency (see DESIGN.md's dependency policy).

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap`/`HashSet` state using [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc/Firefox Fx hash: one multiply and a rotate-xor per word.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash + ?Sized>(t: &T) -> u64 {
        let mut h = FxHasher::default();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&(1u64, "abc")), hash_of(&(1u64, "abc")));
    }

    #[test]
    fn different_values_usually_differ() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
    }

    #[test]
    fn works_as_map_hasher() {
        let mut m: FxHashMap<String, i32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(format!("key{i}"), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m["key500"], 500);
    }

    #[test]
    fn partial_word_writes() {
        // 9 bytes exercises both the chunk and the remainder path.
        assert_eq!(hash_of(&[1u8; 9][..]), hash_of(&[1u8; 9][..]));
        assert_ne!(hash_of(&[1u8; 9][..]), hash_of(&[1u8; 8][..]));
    }
}
