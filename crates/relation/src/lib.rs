//! # chainsplit-relation
//!
//! The extensional-database substrate of the chain-split deductive engine:
//! ground [`Tuple`]s, deduplicating [`Relation`]s with incremental hash
//! indexes, the [`Database`] catalog, on-demand [`Stats`] (cardinality,
//! distinct counts, join expansion ratio, selectivity — the paper's §2.1
//! quantitative measurements), and [`DeltaRelation`] bookkeeping for
//! semi-naive evaluation.

#![forbid(unsafe_code)]

pub mod counts;
pub mod database;
pub mod delta;
pub mod hash;
pub mod relation;
pub mod stats;
pub mod tuple;

pub use counts::SupportCounts;
pub use database::Database;
pub use delta::DeltaRelation;
pub use hash::{FxHashMap, FxHashSet};
pub use relation::{AccessPath, Relation, Selection, LAZY_INDEX_THRESHOLD};
pub use stats::Stats;
pub use tuple::{term_estimated_bytes, Tuple};
