//! Deduplicating relations with lazily built hash indexes.
//!
//! A [`Relation`] keeps its rows in insertion order (so evaluation traces
//! are deterministic) behind a hash set for O(1) duplicate rejection, plus
//! any number of column-set hash indexes. Indexes appear **on demand**: the
//! first selective lookup on a column set over a non-tiny relation builds
//! one (behind a lock, so lookups stay `&self`), and every later insert
//! maintains it — the evaluators never think about access paths, matching
//! how the paper defers those decisions to the system [13, 18].

use crate::hash::{FxHashMap, FxHashSet};
use crate::tuple::Tuple;
use chainsplit_logic::Term;
use parking_lot::{MappedRwLockReadGuard, RwLock, RwLockReadGuard};
use std::fmt;
use std::hash::{Hash, Hasher};

type Index = FxHashMap<Vec<Term>, Vec<usize>>;

/// Scans below this size beat index construction; stay lazy.
///
/// Public so tests and benchmarks can size relations just below or above
/// the boundary to force a particular access path.
pub const LAZY_INDEX_THRESHOLD: usize = 32;

/// A set of ground tuples of a fixed arity.
#[derive(Default)]
pub struct Relation {
    arity: usize,
    rows: Vec<Tuple>,
    seen: FxHashSet<Tuple>,
    /// column set -> (key projection -> row ids); lazily built.
    indexes: RwLock<FxHashMap<Vec<usize>, Index>>,
}

impl Clone for Relation {
    fn clone(&self) -> Relation {
        Relation {
            arity: self.arity,
            rows: self.rows.clone(),
            seen: self.seen.clone(),
            indexes: RwLock::new(self.indexes.read().clone()),
        }
    }
}

impl Relation {
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            ..Relation::default()
        }
    }

    pub fn arity(&self) -> usize {
        self.arity
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts a tuple; returns `true` if it was new. Panics on arity
    /// mismatch — that is always a compiler bug upstream.
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(t.arity(), self.arity, "arity mismatch inserting {t}");
        if !self.seen.insert(t.clone()) {
            return false;
        }
        let id = self.rows.len();
        for (cols, index) in self.indexes.get_mut().iter_mut() {
            index.entry(t.project(cols)).or_default().push(id);
        }
        self.rows.push(t);
        true
    }

    /// Removes a tuple; returns `true` if it was present.
    ///
    /// Remaining rows keep their relative insertion order, so evaluation
    /// traces stay deterministic after a retraction. Indexes store row
    /// ids, which all shift past the removal point, so every index built
    /// so far is rebuilt from the surviving rows — retraction is the rare
    /// operation here and pays the full cost; `insert` stays O(indexes).
    pub fn remove(&mut self, t: &Tuple) -> bool {
        if !self.seen.remove(t) {
            return false;
        }
        let pos = self
            .rows
            .iter()
            .position(|row| row == t)
            .expect("tuple in `seen` must be stored in `rows`");
        self.rows.remove(pos);
        for (cols, index) in self.indexes.get_mut().iter_mut() {
            *index = Self::build_index(&self.rows, cols);
        }
        true
    }

    /// Removes every given tuple in one pass; returns how many were
    /// present. Equivalent to calling [`remove`](Self::remove) per tuple —
    /// survivors keep their relative insertion order — but pays one row
    /// scan per *batch* instead of per tuple and defers index rebuilds to
    /// the next probe, which is what keeps incremental DRed repair rounds
    /// linear.
    pub fn remove_all<'a, I>(&mut self, tuples: I) -> usize
    where
        I: IntoIterator<Item = &'a Tuple>,
    {
        let mut removed = 0;
        for t in tuples {
            if self.seen.remove(t) {
                removed += 1;
            }
        }
        if removed == 0 {
            return 0;
        }
        let seen = &self.seen;
        self.rows.retain(|row| seen.contains(row));
        // Drop indexes rather than rebuild: the next probe re-derives them
        // from the same rows in the same order (identical content), and a
        // repair loop that batch-removes from a relation it never probes
        // again — the common DRed shape — pays nothing at all.
        self.indexes.get_mut().clear();
        removed
    }

    pub fn contains(&self, t: &Tuple) -> bool {
        self.seen.contains(t)
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.rows.iter()
    }

    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    fn build_index(rows: &[Tuple], cols: &[usize]) -> Index {
        let mut index: Index = FxHashMap::default();
        for (id, row) in rows.iter().enumerate() {
            index.entry(row.project(cols)).or_default().push(id);
        }
        index
    }

    /// Ensures a hash index exists on `cols` (sorted ascending), building it
    /// from the current rows if needed.
    pub fn ensure_index(&mut self, cols: &[usize]) {
        debug_assert!(
            cols.windows(2).all(|w| w[0] < w[1]),
            "index columns must be sorted"
        );
        let indexes = self.indexes.get_mut();
        if !indexes.contains_key(cols) {
            indexes.insert(cols.to_vec(), Self::build_index(&self.rows, cols));
        }
    }

    /// True iff an index on exactly `cols` exists.
    pub fn has_index(&self, cols: &[usize]) -> bool {
        self.indexes.read().contains_key(cols)
    }

    /// Builds the index on `cols` ahead of time through `&self` (the same
    /// write-locked path `select` uses for a cold column set), so a join
    /// plan can provision every access path it will probe before the round
    /// starts and `IndexBuild` never lands mid-join. Relations below
    /// [`LAZY_INDEX_THRESHOLD`] stay index-free — a key scan beats index
    /// construction there, exactly as in `select`.
    ///
    /// Returns `true` iff *this call* built the index. When callers race,
    /// exactly one sees `true` — same determinism contract as `select`'s
    /// one-build-reports-`IndexBuild` rule, so plan-time `index_builds`
    /// counters stay schedule-independent.
    pub fn provision_index(&self, cols: &[usize]) -> bool {
        debug_assert!(
            cols.windows(2).all(|w| w[0] < w[1]),
            "index columns must be sorted"
        );
        if cols.is_empty() || self.rows.len() < LAZY_INDEX_THRESHOLD {
            return false;
        }
        if self.indexes.read().contains_key(cols) {
            return false;
        }
        let mut indexes = self.indexes.write();
        if indexes.contains_key(cols) {
            return false;
        }
        indexes.insert(cols.to_vec(), Self::build_index(&self.rows, cols));
        true
    }

    /// The column sets of every access path (hash index) built so far,
    /// sorted — indexes appear on demand, so this is a record of how the
    /// relation has actually been probed.
    pub fn index_cols(&self) -> Vec<Vec<usize>> {
        let mut cols: Vec<Vec<usize>> = self.indexes.read().keys().cloned().collect();
        cols.sort();
        cols
    }

    /// Projects an already-taken read guard onto the `(cols, key)` bucket.
    /// `None` when the key has no bucket — the caller reports a miss with
    /// zero allocation (the satellite fix for the old
    /// `cloned().unwrap_or_default()`).
    fn bucket_under<'r>(
        &'r self,
        guard: RwLockReadGuard<'r, FxHashMap<Vec<usize>, Index>>,
        cols: &[usize],
        key: &[Term],
        path: AccessPath,
    ) -> Selection<'r, 'static> {
        match RwLockReadGuard::try_map(guard, |indexes| {
            indexes
                .get(cols)
                .and_then(|index| index.get(key))
                .map(Vec::as_slice)
        }) {
            Ok(ids) => Selection::new(
                path,
                SelInner::Ids {
                    rows: &self.rows,
                    ids,
                    next: 0,
                },
            ),
            Err(_) => Selection::new(path, SelInner::Empty),
        }
    }

    /// The rows whose projection onto `cols` equals `key`.
    ///
    /// Uses an index when one exists; over a relation worth indexing,
    /// builds one on the spot (subsequent lookups and inserts keep it
    /// current); tiny relations just scan.
    ///
    /// Zero-copy contract: an indexed selection *borrows* its id bucket
    /// out of the index (the returned [`Selection`] holds the index read
    /// lock until dropped), and a key scan borrows `cols`/`key` — nothing
    /// is cloned per probe. Consequently the caller must drain or drop the
    /// selection before calling anything that writes this relation's
    /// indexes (`select` on a cold column set, `ensure_index`) from the
    /// same thread, or it will deadlock on the non-reentrant lock.
    pub fn select<'r, 'k>(&'r self, cols: &'k [usize], key: &'k [Term]) -> Selection<'r, 'k> {
        debug_assert_eq!(cols.len(), key.len());
        if cols.is_empty() {
            return Selection::new(AccessPath::FullScan, SelInner::All(self.rows.iter()));
        }
        let indexes = self.indexes.read();
        if indexes.contains_key(cols) {
            return self.bucket_under(indexes, cols, key, AccessPath::IndexHit);
        }
        drop(indexes);
        if self.rows.len() >= LAZY_INDEX_THRESHOLD {
            let path = {
                let mut indexes = self.indexes.write();
                // Another thread may have built the index between our read
                // probe above and taking the write lock; report what
                // actually happened so exactly one lookup per (relation,
                // column set) counts as a build under any schedule — the
                // access-path counters must not depend on thread
                // interleaving.
                let path = if indexes.contains_key(cols) {
                    AccessPath::IndexHit
                } else {
                    AccessPath::IndexBuild
                };
                indexes
                    .entry(cols.to_vec())
                    .or_insert_with(|| Self::build_index(&self.rows, cols));
                path
            };
            // Re-take as a reader to hand out a borrowed bucket. Indexes
            // are never removed and buckets only change under `&mut self`,
            // so the entry built above is still there and current.
            return self.bucket_under(self.indexes.read(), cols, key, path);
        }
        Selection::new(
            AccessPath::KeyScan,
            SelInner::Scan {
                iter: self.rows.iter(),
                cols,
                key,
            },
        )
    }

    /// Number of distinct projections onto `cols` — the basis for the
    /// paper's join expansion ratio.
    pub fn distinct(&self, cols: &[usize]) -> usize {
        if let Some(index) = self.indexes.read().get(cols) {
            return index.len();
        }
        let mut seen: FxHashSet<Vec<Term>> = FxHashSet::default();
        for row in &self.rows {
            seen.insert(row.project(cols));
        }
        seen.len()
    }

    /// The minimum integer value in column `col`, if the column is
    /// non-empty and all-integer. Used by the constraint-pushing analysis
    /// (Algorithm 3.3) to establish non-negativity of monotone addends.
    pub fn min_int(&self, col: usize) -> Option<i64> {
        let mut min: Option<i64> = None;
        for row in &self.rows {
            match row.get(col) {
                Term::Int(i) => min = Some(min.map_or(*i, |m| m.min(*i))),
                _ => return None,
            }
        }
        min
    }

    /// Extends with every tuple of `other`; returns how many were new.
    pub fn extend_from(&mut self, other: &Relation) -> usize {
        other.iter().filter(|t| self.insert((*t).clone())).count()
    }

    /// Splits the rows into `n` relations by the Fx hash of the
    /// projection onto `cols` (the whole tuple when `cols` is empty).
    ///
    /// The assignment is a pure function of the row values, so the same
    /// relation partitions identically on every call — the basis of the
    /// parallel evaluators' determinism guarantee. Rows keep their
    /// relative order within each partition. Tuples agreeing on `cols`
    /// land in the same partition, so a join keyed on those columns can
    /// be evaluated per-partition without cross-partition duplicates.
    pub fn partition_by_hash(&self, n: usize, cols: &[usize]) -> Vec<Relation> {
        let n = n.max(1);
        let mut parts: Vec<Relation> = (0..n).map(|_| Relation::new(self.arity)).collect();
        for row in &self.rows {
            let mut hasher = crate::hash::FxHasher::default();
            if cols.is_empty() {
                for f in row.fields() {
                    f.hash(&mut hasher);
                }
            } else {
                for &c in cols {
                    row.get(c).hash(&mut hasher);
                }
            }
            let slot = (hasher.finish() % n as u64) as usize;
            parts[slot].insert(row.clone());
        }
        parts
    }
}

/// How a [`Relation::select`] call located its rows.
///
/// Distinguishing these is what lets `EXPLAIN ANALYZE` separate probes
/// that touched a hash bucket from probes that walked the whole relation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessPath {
    /// No bound columns: every row is yielded.
    FullScan,
    /// A pre-existing hash index answered the lookup.
    IndexHit,
    /// The lookup crossed [`LAZY_INDEX_THRESHOLD`] and built the index it
    /// then used; later lookups on the same columns are [`AccessPath::IndexHit`]s.
    IndexBuild,
    /// Below the threshold: rows were filtered one by one.
    KeyScan,
}

/// Iterator over a [`Relation::select`] result.
///
/// Besides yielding the matching rows, it records which [`AccessPath`] the
/// lookup took and how many rows it *inspected* — for indexed paths that
/// equals the rows yielded, while a [`AccessPath::KeyScan`] inspects every
/// row it walks past, matching or not. Evaluators fold `inspected()` into
/// their `probed` counter after draining the iterator.
pub struct Selection<'r, 'k> {
    path: AccessPath,
    inspected: usize,
    inner: SelInner<'r, 'k>,
}

enum SelInner<'r, 'k> {
    All(std::slice::Iter<'r, Tuple>),
    Ids {
        rows: &'r [Tuple],
        /// Borrowed straight out of the index; the mapped guard keeps the
        /// index read-locked (and thus the bucket alive) while we iterate.
        ids: MappedRwLockReadGuard<'r, [usize]>,
        next: usize,
    },
    /// Indexed lookup on a key with no bucket: nothing to yield, nothing
    /// allocated, no lock held.
    Empty,
    Scan {
        iter: std::slice::Iter<'r, Tuple>,
        cols: &'k [usize],
        key: &'k [Term],
    },
}

impl<'r, 'k> Selection<'r, 'k> {
    fn new(path: AccessPath, inner: SelInner<'r, 'k>) -> Selection<'r, 'k> {
        Selection {
            path,
            inspected: 0,
            inner,
        }
    }

    /// The access path this lookup took.
    pub fn path(&self) -> AccessPath {
        self.path
    }

    /// Rows inspected so far (see type-level docs).
    pub fn inspected(&self) -> usize {
        self.inspected
    }
}

impl<'r> Iterator for Selection<'r, '_> {
    type Item = &'r Tuple;

    fn next(&mut self) -> Option<&'r Tuple> {
        match &mut self.inner {
            SelInner::All(it) => {
                let row = it.next()?;
                self.inspected += 1;
                Some(row)
            }
            SelInner::Ids { rows, ids, next } => {
                let id = *ids.get(*next)?;
                *next += 1;
                self.inspected += 1;
                Some(&rows[id])
            }
            SelInner::Empty => None,
            SelInner::Scan { iter, cols, key } => {
                for row in iter {
                    self.inspected += 1;
                    if cols.iter().zip(key.iter()).all(|(&c, k)| row.get(c) == k) {
                        return Some(row);
                    }
                }
                None
            }
        }
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{row}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation[{}]{}", self.arity, self)
    }
}

impl FromIterator<Tuple> for Relation {
    /// Collects tuples into a relation, inferring arity from the first
    /// tuple (empty input yields arity 0).
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Relation {
        let mut it = iter.into_iter().peekable();
        let arity = it.peek().map(Tuple::arity).unwrap_or(0);
        let mut r = Relation::new(arity);
        for t in it {
            r.insert(t);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(a: i64, b: i64) -> Tuple {
        Tuple::new(vec![Term::Int(a), Term::Int(b)])
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = Relation::new(2);
        assert!(r.insert(pair(1, 2)));
        assert!(!r.insert(pair(1, 2)));
        assert!(r.insert(pair(1, 3)));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn insertion_order_is_preserved() {
        let mut r = Relation::new(2);
        r.insert(pair(3, 4));
        r.insert(pair(1, 2));
        let rows: Vec<_> = r.iter().cloned().collect();
        assert_eq!(rows, vec![pair(3, 4), pair(1, 2)]);
    }

    #[test]
    fn select_scan_and_index_agree() {
        let mut r = Relation::new(2);
        for a in 0..10 {
            for b in 0..10 {
                r.insert(pair(a, b));
            }
        }
        let key = [Term::Int(4)];
        let scanned: Vec<_> = r.select(&[0], &key).cloned().collect();
        r.ensure_index(&[0]);
        let indexed: Vec<_> = r.select(&[0], &key).cloned().collect();
        assert_eq!(scanned.len(), 10);
        assert_eq!(scanned, indexed);
    }

    #[test]
    fn index_maintained_across_inserts() {
        let mut r = Relation::new(2);
        r.ensure_index(&[1]);
        r.insert(pair(1, 7));
        r.insert(pair(2, 7));
        r.insert(pair(3, 8));
        let hits: Vec<_> = r.select(&[1], &[Term::Int(7)]).collect();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn empty_cols_selects_all() {
        let mut r = Relation::new(2);
        r.insert(pair(1, 2));
        r.insert(pair(3, 4));
        assert_eq!(r.select(&[], &[]).count(), 2);
    }

    #[test]
    fn missing_key_selects_nothing() {
        let mut r = Relation::new(2);
        r.insert(pair(1, 2));
        r.ensure_index(&[0]);
        assert_eq!(r.select(&[0], &[Term::Int(99)]).count(), 0);
    }

    #[test]
    fn distinct_counts() {
        let mut r = Relation::new(2);
        r.insert(pair(1, 10));
        r.insert(pair(1, 11));
        r.insert(pair(2, 10));
        assert_eq!(r.distinct(&[0]), 2);
        assert_eq!(r.distinct(&[1]), 2);
        assert_eq!(r.distinct(&[0, 1]), 3);
        // Same answer with an index in place.
        r.ensure_index(&[0]);
        assert_eq!(r.distinct(&[0]), 2);
    }

    #[test]
    fn extend_from_counts_new() {
        let mut a = Relation::new(2);
        a.insert(pair(1, 2));
        let mut b = Relation::new(2);
        b.insert(pair(1, 2));
        b.insert(pair(5, 6));
        assert_eq!(a.extend_from(&b), 1);
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(2);
        r.insert(Tuple::new(vec![Term::Int(1)]));
    }

    #[test]
    fn access_path_classification() {
        let mut r = Relation::new(2);
        for a in 0..4 {
            r.insert(pair(a, a + 10));
        }
        // Small relation, no index: key scan.
        assert_eq!(r.select(&[0], &[Term::Int(2)]).path(), AccessPath::KeyScan);
        // Empty column set: full scan.
        assert_eq!(r.select(&[], &[]).path(), AccessPath::FullScan);
        // Explicit index: hit.
        r.ensure_index(&[0]);
        assert_eq!(r.select(&[0], &[Term::Int(2)]).path(), AccessPath::IndexHit);
        // Large relation, cold column set: first lookup builds, second hits.
        let mut big = Relation::new(2);
        for a in 0..(LAZY_INDEX_THRESHOLD as i64 + 4) {
            big.insert(pair(a, a));
        }
        assert_eq!(
            big.select(&[1], &[Term::Int(3)]).path(),
            AccessPath::IndexBuild
        );
        assert_eq!(
            big.select(&[1], &[Term::Int(3)]).path(),
            AccessPath::IndexHit
        );
    }

    #[test]
    fn scan_inspects_all_rows_index_inspects_matches() {
        let mut r = Relation::new(2);
        for b in 0..10 {
            r.insert(pair(b % 2, b));
        }
        let cols = [0usize];
        let key = [Term::Int(0)];
        // Key scan walks every row even though only half match.
        {
            let mut sel = r.select(&cols, &key);
            let matched = sel.by_ref().count();
            assert_eq!(matched, 5);
            assert_eq!(sel.inspected(), 10);
        }
        // The index only touches the matching bucket.
        r.ensure_index(&cols);
        let mut sel = r.select(&cols, &key);
        let matched = sel.by_ref().count();
        assert_eq!(matched, 5);
        assert_eq!(sel.inspected(), 5);
        drop(sel);
        // An indexed miss inspects nothing (and allocates nothing: the
        // Empty selection holds neither bucket nor lock).
        let miss_key = [Term::Int(77)];
        let mut sel = r.select(&cols, &miss_key);
        assert_eq!(sel.path(), AccessPath::IndexHit);
        assert_eq!(sel.by_ref().count(), 0);
        assert_eq!(sel.inspected(), 0);
    }

    #[test]
    fn partition_by_hash_is_a_stable_partition() {
        let mut r = Relation::new(2);
        for a in 0..40 {
            r.insert(pair(a % 7, a));
        }
        let parts = r.partition_by_hash(8, &[0]);
        assert_eq!(parts.len(), 8);
        assert_eq!(parts.iter().map(Relation::len).sum::<usize>(), r.len());
        for row in r.iter() {
            assert_eq!(
                parts.iter().filter(|p| p.contains(row)).count(),
                1,
                "{row} must land in exactly one partition"
            );
        }
        // Same key column value -> same partition.
        for key in 0..7i64 {
            let holders: Vec<usize> = parts
                .iter()
                .enumerate()
                .filter(|(_, p)| p.iter().any(|t| t.get(0) == &Term::Int(key)))
                .map(|(i, _)| i)
                .collect();
            assert!(holders.len() <= 1, "key {key} split across {holders:?}");
        }
        // Deterministic across calls, and n = 0 clamps to one partition.
        let again = r.partition_by_hash(8, &[0]);
        for (a, b) in parts.iter().zip(&again) {
            assert_eq!(a.rows(), b.rows());
        }
        let whole = r.partition_by_hash(0, &[]);
        assert_eq!(whole.len(), 1);
        assert_eq!(whole[0].len(), r.len());
    }

    #[test]
    fn concurrent_select_reports_one_build_per_column_set() {
        // The access-path fix: when many threads race to select on a cold
        // column set, exactly one of them may report IndexBuild; the rest
        // must see IndexHit. Schedule-dependent counters would break the
        // parallel evaluators' determinism contract.
        let mut r = Relation::new(2);
        for a in 0..(LAZY_INDEX_THRESHOLD as i64 * 2) {
            r.insert(pair(a % 5, a));
        }
        let r = &r;
        let paths: Vec<AccessPath> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    s.spawn(move || {
                        let cols = [0usize];
                        let key = [Term::Int(i % 5)];
                        let mut sel = r.select(&cols, &key);
                        let _ = sel.by_ref().count();
                        sel.path()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let builds = paths
            .iter()
            .filter(|&&p| p == AccessPath::IndexBuild)
            .count();
        assert_eq!(
            builds, 1,
            "exactly one select may report the build: {paths:?}"
        );
        assert!(paths
            .iter()
            .all(|&p| matches!(p, AccessPath::IndexBuild | AccessPath::IndexHit)));
    }

    #[test]
    fn provision_index_builds_once_and_respects_threshold() {
        // Below the lazy threshold nothing is built: a key scan is cheaper.
        let mut small = Relation::new(2);
        small.insert(pair(1, 2));
        assert!(!small.provision_index(&[0]));
        assert!(!small.has_index(&[0]));
        assert_eq!(
            small.select(&[0], &[Term::Int(1)]).path(),
            AccessPath::KeyScan
        );

        // Above it, the first call builds, later calls (and select) hit.
        let mut big = Relation::new(2);
        for a in 0..(LAZY_INDEX_THRESHOLD as i64 + 4) {
            big.insert(pair(a, a));
        }
        assert!(big.provision_index(&[0]));
        assert!(!big.provision_index(&[0]));
        assert_eq!(
            big.select(&[0], &[Term::Int(3)]).path(),
            AccessPath::IndexHit
        );

        // Racing provisioners: exactly one reports the build.
        let mut cold = Relation::new(2);
        for a in 0..(LAZY_INDEX_THRESHOLD as i64 * 2) {
            cold.insert(pair(a % 5, a));
        }
        let cold = &cold;
        let builds: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(move || cold.provision_index(&[1])))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .filter(|&built| built)
                .count()
        });
        assert_eq!(builds, 1);
    }

    #[test]
    fn remove_preserves_order_and_rebuilds_indexes() {
        let mut r = Relation::new(2);
        r.insert(pair(1, 10));
        r.insert(pair(2, 20));
        r.insert(pair(3, 20));
        r.ensure_index(&[1]);
        assert!(r.remove(&pair(2, 20)));
        assert!(!r.remove(&pair(2, 20)), "second removal is a no-op");
        assert!(!r.contains(&pair(2, 20)));
        let rows: Vec<_> = r.iter().cloned().collect();
        assert_eq!(rows, vec![pair(1, 10), pair(3, 20)]);
        // The rebuilt index serves the surviving row only.
        let hits: Vec<_> = r.select(&[1], &[Term::Int(20)]).cloned().collect();
        assert_eq!(hits, vec![pair(3, 20)]);
        // Re-insertion after removal works and is indexed.
        assert!(r.insert(pair(2, 20)));
        assert_eq!(r.select(&[1], &[Term::Int(20)]).count(), 2);
    }

    #[test]
    fn from_iterator() {
        let r: Relation = [pair(1, 2), pair(1, 2), pair(3, 4)].into_iter().collect();
        assert_eq!(r.len(), 2);
        assert_eq!(r.arity(), 2);
    }
}
