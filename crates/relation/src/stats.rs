//! Database statistics — the paper's §2.1 quantitative measurements.
//!
//! The efficiency-based chain-split decision compares the *join expansion
//! ratio* of each linkage in a chain generating path against two thresholds
//! (chain-split, chain-following). The ratio for a predicate `p` from a set
//! of bound argument positions `I` is the expected number of `p` tuples
//! matching one concrete binding of `I`:
//!
//! ```text
//!     expansion(p, I) = |p| / distinct_I(p)
//! ```
//!
//! `same_country` in Example 1.2 is the canonical weak linkage: with people
//! uniformly spread over `C` countries, `expansion(same_country, {1}) =
//! N²/C / N = N/C`, which explodes as `C` shrinks.

use crate::database::Database;
use crate::hash::FxHashMap;
use chainsplit_logic::Pred;
use std::cell::RefCell;

/// Statistics provider over a [`Database`].
///
/// A `Stats` value is a *snapshot*: distinct counts are computed on demand
/// from the live relations and then memoized per `(pred, cols)`, so a cost
/// model that asks about the same linkage once per candidate order (or once
/// per plan, per adornment) pays the projection scan exactly once. The
/// numbers stay exact as long as the database is not mutated while the
/// snapshot is alive — take a fresh `Stats` after updates (the paper
/// assumes a catalog of pre-gathered statistics; a per-query snapshot of an
/// immutable EDB is the same thing).
#[derive(Clone)]
pub struct Stats<'a> {
    db: &'a Database,
    /// Memoized `(pred, cols) -> distinct` — the O(1)-after-first-touch
    /// guarantee the join planner relies on.
    distinct_memo: RefCell<FxHashMap<(Pred, Vec<usize>), usize>>,
}

impl<'a> Stats<'a> {
    pub fn new(db: &'a Database) -> Stats<'a> {
        Stats {
            db,
            distinct_memo: RefCell::new(FxHashMap::default()),
        }
    }

    /// Cardinality of `pred` (0 if absent).
    pub fn cardinality(&self, pred: Pred) -> usize {
        self.db.relation(pred).map_or(0, |r| r.len())
    }

    /// Number of distinct values of the projection onto `cols`, memoized
    /// per `(pred, cols)` for the lifetime of this snapshot.
    pub fn distinct(&self, pred: Pred, cols: &[usize]) -> usize {
        if let Some(&n) = self.distinct_memo.borrow().get(&(pred, cols.to_vec())) {
            return n;
        }
        let n = self.db.relation(pred).map_or(0, |r| r.distinct(cols));
        self.distinct_memo
            .borrow_mut()
            .insert((pred, cols.to_vec()), n);
        n
    }

    /// Join expansion ratio of `pred` given bound positions `bound`:
    /// expected matching tuples per binding. Returns `f64::INFINITY` for an
    /// unbound scan of a non-empty relation with `bound` empty, and `0.0`
    /// for an absent/empty relation (nothing can expand).
    pub fn expansion(&self, pred: Pred, bound: &[usize]) -> f64 {
        let n = self.cardinality(pred);
        if n == 0 {
            return 0.0;
        }
        if bound.is_empty() {
            return f64::INFINITY;
        }
        n as f64 / self.distinct(pred, bound) as f64
    }

    /// Selectivity of binding positions `bound` of `pred`: the fraction of
    /// tuples matching one average binding (1.0 when nothing is bound, 0.0
    /// for an absent/empty relation — no binding can match anything).
    pub fn selectivity(&self, pred: Pred, bound: &[usize]) -> f64 {
        let n = self.cardinality(pred);
        if n == 0 {
            return 0.0;
        }
        if bound.is_empty() {
            return 1.0;
        }
        self.expansion(pred, bound) / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainsplit_logic::{Atom, Term};

    /// same_country over 2 countries x 3 people each: 18 pairs.
    fn country_db() -> Database {
        let mut db = Database::new();
        for c in 0..2 {
            for i in 0..3 {
                for j in 0..3 {
                    db.add_fact(&Atom::new(
                        "same_country",
                        vec![
                            Term::sym(&format!("p{c}_{i}")),
                            Term::sym(&format!("p{c}_{j}")),
                        ],
                    ));
                }
            }
        }
        db
    }

    #[test]
    fn cardinality_and_distinct() {
        let db = country_db();
        let s = Stats::new(&db);
        let p = Pred::new("same_country", 2);
        assert_eq!(s.cardinality(p), 18);
        assert_eq!(s.distinct(p, &[0]), 6);
        assert_eq!(s.distinct(p, &[0, 1]), 18);
    }

    #[test]
    fn expansion_matches_fanout() {
        let db = country_db();
        let s = Stats::new(&db);
        let p = Pred::new("same_country", 2);
        // Each person has 3 compatriots: N/C = 6/2 = 3.
        assert_eq!(s.expansion(p, &[0]), 3.0);
        assert_eq!(s.expansion(p, &[0, 1]), 1.0);
        assert_eq!(s.expansion(p, &[]), f64::INFINITY);
    }

    #[test]
    fn absent_relation_is_zero() {
        let db = Database::new();
        let s = Stats::new(&db);
        assert_eq!(s.cardinality(Pred::new("nope", 2)), 0);
        assert_eq!(s.expansion(Pred::new("nope", 2), &[0]), 0.0);
        // An empty relation matches nothing, whatever is bound.
        assert_eq!(s.selectivity(Pred::new("nope", 2), &[0]), 0.0);
        assert_eq!(s.selectivity(Pred::new("nope", 2), &[]), 0.0);
    }

    #[test]
    fn distinct_is_memoized_per_snapshot() {
        let db = country_db();
        let s = Stats::new(&db);
        let p = Pred::new("same_country", 2);
        assert_eq!(s.distinct(p, &[0]), 6);
        // Second call is served from the memo (same value; and the memo
        // holds exactly the keys touched so far).
        assert_eq!(s.distinct(p, &[0]), 6);
        assert_eq!(s.distinct_memo.borrow().len(), 1);
        assert_eq!(s.distinct(p, &[0, 1]), 18);
        assert_eq!(s.distinct_memo.borrow().len(), 2);
        // Expansion goes through the same memo.
        assert_eq!(s.expansion(p, &[0]), 3.0);
        assert_eq!(s.distinct_memo.borrow().len(), 2);
    }

    #[test]
    fn selectivity_is_fractional() {
        let db = country_db();
        let s = Stats::new(&db);
        let p = Pred::new("same_country", 2);
        assert!((s.selectivity(p, &[0]) - 3.0 / 18.0).abs() < 1e-12);
        assert_eq!(s.selectivity(p, &[]), 1.0);
    }
}
