//! Ground tuples — the rows of EDB and derived relations.

use chainsplit_logic::Term;
use std::fmt;
use std::sync::Arc;

/// A ground row. Terms inside are structure-shared (`Arc`), so cloning a
/// tuple is cheap even when its fields are long lists.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(Arc<[Term]>);

impl Tuple {
    /// Builds a tuple. Debug-asserts groundness: relations store facts, and
    /// every evaluator resolves its substitution before inserting.
    pub fn new(fields: Vec<Term>) -> Tuple {
        debug_assert!(
            fields.iter().all(Term::is_ground),
            "tuple fields must be ground: {fields:?}"
        );
        Tuple(fields.into())
    }

    pub fn arity(&self) -> usize {
        self.0.len()
    }

    pub fn fields(&self) -> &[Term] {
        &self.0
    }

    pub fn get(&self, i: usize) -> &Term {
        &self.0[i]
    }

    /// The projection of this tuple onto the given columns.
    pub fn project(&self, cols: &[usize]) -> Vec<Term> {
        cols.iter().map(|&c| self.0[c].clone()).collect()
    }

    /// Estimated heap footprint of this tuple, for the governor's byte
    /// budget. A deliberately simple size model (struct sizes plus
    /// recursive list/compound payloads, structure-sharing not
    /// discounted): stable across platforms in spirit, cheap to compute,
    /// and monotone in real memory use — which is all a budget needs.
    pub fn estimated_bytes(&self) -> usize {
        std::mem::size_of::<Tuple>() + self.0.iter().map(term_estimated_bytes).sum::<usize>()
    }
}

/// Estimated heap footprint of one ground term (see
/// [`Tuple::estimated_bytes`]).
pub fn term_estimated_bytes(t: &Term) -> usize {
    let own = std::mem::size_of::<Term>();
    match t {
        Term::Var(_) | Term::Int(_) | Term::Sym(_) | Term::Nil => own,
        Term::Cons(h, t) => own + term_estimated_bytes(h) + term_estimated_bytes(t),
        Term::Comp(_, args) => own + args.iter().map(term_estimated_bytes).sum::<usize>(),
    }
}

impl From<Vec<Term>> for Tuple {
    fn from(fields: Vec<Term>) -> Tuple {
        Tuple::new(fields)
    }
}

impl std::ops::Index<usize> for Tuple {
    type Output = Term;
    fn index(&self, i: usize) -> &Term {
        &self.0[i]
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, t) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tuple::new(vec![Term::sym("a"), Term::Int(3)]);
        assert_eq!(t.arity(), 2);
        assert_eq!(t[0], Term::sym("a"));
        assert_eq!(t.get(1), &Term::Int(3));
    }

    #[test]
    fn projection() {
        let t = Tuple::new(vec![Term::Int(1), Term::Int(2), Term::Int(3)]);
        assert_eq!(t.project(&[2, 0]), vec![Term::Int(3), Term::Int(1)]);
        assert_eq!(t.project(&[]), Vec::<Term>::new());
    }

    #[test]
    fn equality_is_structural() {
        let a = Tuple::new(vec![Term::int_list([1, 2])]);
        let b = Tuple::new(vec![Term::int_list([1, 2])]);
        assert_eq!(a, b);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "ground")]
    fn non_ground_tuple_panics_in_debug() {
        let _ = Tuple::new(vec![Term::var("X")]);
    }

    #[test]
    fn display() {
        let t = Tuple::new(vec![Term::sym("yvr"), Term::Int(600)]);
        assert_eq!(t.to_string(), "(yvr, 600)");
    }

    #[test]
    fn estimated_bytes_grows_with_structure() {
        let flat = Tuple::new(vec![Term::Int(1), Term::Int(2)]);
        let listy = Tuple::new(vec![Term::int_list([1, 2, 3, 4]), Term::Int(2)]);
        assert!(flat.estimated_bytes() > 0);
        assert!(
            listy.estimated_bytes() > flat.estimated_bytes(),
            "a 4-element list must cost more than a scalar: {} vs {}",
            listy.estimated_bytes(),
            flat.estimated_bytes()
        );
        // Deterministic: the same tuple always sizes the same.
        assert_eq!(listy.estimated_bytes(), listy.estimated_bytes());
    }
}
