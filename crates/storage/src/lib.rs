//! # chainsplit-storage
//!
//! Crash-safe durability for the chain-split deductive database: a
//! write-ahead log of logical mutations plus atomic, schema-versioned
//! snapshots, with crash-consistent recovery (DESIGN.md §15).
//!
//! The design splits responsibility with `chainsplit-core`:
//!
//! - **This crate** knows about bytes on disk. It frames, checksums and
//!   rotates WAL records ([`wal`]), writes and loads snapshots
//!   atomically ([`snapshot`]), and on open reconstructs the durable
//!   history — newest valid snapshot plus the WAL suffix, with a torn
//!   tail detected by checksum and truncated, never replayed
//!   ([`Store::open`]).
//! - **The facade** knows about logic. `DeductiveDb` appends one
//!   [`WalRecord`] per mutation *before* mutating memory, stamps it with
//!   the post-op epochs, and on open replays the recovered records
//!   through its own mutation paths so epochs — and with them answer- and
//!   plan-cache invalidation — come back bit-identical.
//!
//! Persistence points (frame writes, fsyncs, rotations, snapshot
//! write/fsync/rename) consult the filesystem failpoints in
//! `chainsplit_governor::faults` when the `fault-inject` feature is on,
//! so the recovery oracle can kill a session at any point and prove
//! recovery correct rather than assume it. WAL bytes are charged to the
//! governor's byte budget and fsync stalls to its deadline; a budget trip
//! mid-replay surfaces as a clean [`StorageError::Budget`] refusal, never
//! a half-open database.

#![forbid(unsafe_code)]

pub mod record;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use record::{Op, WalRecord};
pub use snapshot::SnapshotData;
pub use store::{Recovered, RecoveryReport, Store, StoreStatus};

use chainsplit_governor::BudgetTrip;
use std::fmt;

/// The snapshot schema version this build writes and reads. Bumped on
/// any incompatible change to the snapshot layout; recovery refuses a
/// newer version instead of misparsing it.
pub const SNAPSHOT_SCHEMA_VERSION: u32 = 1;

/// A storage failure.
#[derive(Debug)]
pub enum StorageError {
    /// An operating-system I/O failure, with the path it hit.
    Io {
        path: String,
        source: std::io::Error,
    },
    /// Durable state that cannot be read back: a bad magic number, an
    /// unsupported schema version, a checksum mismatch in the *interior*
    /// of the log (a torn tail is truncated silently, not reported), or
    /// a record that fails validation against the replaying database.
    Corrupt { path: String, detail: String },
    /// A governor budget tripped during a storage operation (WAL bytes,
    /// an fsync past the deadline, or mid-replay). The operation did not
    /// complete; for recovery this is a clean refusal to open.
    Budget(BudgetTrip),
    /// A simulated crash from an armed filesystem failpoint
    /// (`fault-inject` builds only). The session must be treated as
    /// killed: drop the handle and recover from disk.
    Crashed {
        point: &'static str,
        fault: &'static str,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { path, source } => write!(f, "i/o error on {path}: {source}"),
            StorageError::Corrupt { path, detail } => {
                write!(f, "corrupt storage at {path}: {detail}")
            }
            StorageError::Budget(trip) => write!(f, "storage budget exceeded: {trip}"),
            StorageError::Crashed { point, fault } => {
                write!(f, "simulated crash at {point} ({fault})")
            }
        }
    }
}

impl std::error::Error for StorageError {
    /// The underlying cause, for `source()` chaining: an I/O error keeps
    /// its `std::io::Error` so callers can match on
    /// [`std::io::ErrorKind`] instead of `Display` strings.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl StorageError {
    pub(crate) fn io(path: &std::path::Path, source: std::io::Error) -> StorageError {
        StorageError::Io {
            path: path.display().to_string(),
            source,
        }
    }

    /// Whether this error is a simulated crash from a failpoint.
    pub fn is_crash(&self) -> bool {
        matches!(self, StorageError::Crashed { .. })
    }
}

/// FNV-1a 64-bit: the frame and snapshot checksum. Not cryptographic —
/// it detects torn and bit-flipped writes, which is all recovery needs.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_stable_and_sensitive() {
        let a = checksum(b"add_fact e(1,2)");
        assert_eq!(a, checksum(b"add_fact e(1,2)"));
        assert_ne!(a, checksum(b"add_fact e(1,3)"));
        assert_ne!(checksum(b""), checksum(b"\0"));
    }

    #[test]
    fn storage_error_chains_its_io_source() {
        use std::error::Error;
        let e = StorageError::io(
            std::path::Path::new("/nowhere/wal"),
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        let src = e.source().expect("io errors chain their source");
        assert_eq!(
            src.downcast_ref::<std::io::Error>().map(|e| e.kind()),
            Some(std::io::ErrorKind::NotFound)
        );
        assert!(StorageError::Corrupt {
            path: "x".into(),
            detail: "y".into()
        }
        .source()
        .is_none());
    }
}
