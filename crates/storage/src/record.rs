//! Logical mutation records and their binary payload encoding.
//!
//! One [`WalRecord`] per facade mutation, written *before* the mutation
//! touches memory. The payload carries the operation (as canonical
//! program text — replay re-parses it, which is deterministic) plus the
//! *post-op* epoch stamps: the program epoch and every EDB predicate
//! epoch the operation moves. Replay applies the operation through the
//! facade's own mutation path and then checks the resulting epochs
//! against the stamps — a divergence means the log does not describe the
//! database it is being replayed into, and recovery refuses.

use crate::StorageError;

/// A logical mutation, as the facade performs it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// `DeductiveDb::add_fact` — canonical atom text.
    AddFact(String),
    /// `DeductiveDb::retract_fact` — canonical atom text. Logged even
    /// when the retraction turns out to be a no-op: replaying a no-op is
    /// also a no-op, and logging unconditionally keeps the record stream
    /// a pure function of the op sequence.
    RetractFact(String),
    /// `DeductiveDb::load_rule` — one clause of program text.
    LoadRule(String),
    /// `DeductiveDb::load` — a program fragment (facts and/or rules).
    LoadProgram(String),
    /// A recompile marker: the preceding operation was a rule-program
    /// change that dropped the compiled system. Carries no text; its
    /// program-epoch stamp cross-checks the replay.
    Recompile,
}

impl Op {
    fn tag(&self) -> u8 {
        match self {
            Op::AddFact(_) => 1,
            Op::RetractFact(_) => 2,
            Op::LoadRule(_) => 3,
            Op::LoadProgram(_) => 4,
            Op::Recompile => 5,
        }
    }

    /// The operation's program text (empty for markers).
    pub fn text(&self) -> &str {
        match self {
            Op::AddFact(t) | Op::RetractFact(t) | Op::LoadRule(t) | Op::LoadProgram(t) => t,
            Op::Recompile => "",
        }
    }

    /// Whether this record counts as a logical mutation (markers do not).
    pub fn is_mutation(&self) -> bool {
        !matches!(self, Op::Recompile)
    }
}

/// One WAL record: a logical mutation (or marker) stamped with the
/// post-op epochs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotonic record sequence number, 1-based across the whole log
    /// (markers consume sequence numbers too).
    pub seq: u64,
    pub op: Op,
    /// The program epoch after the operation applied.
    pub program_epoch: u64,
    /// The post-op EDB epoch of every predicate the operation moved
    /// (formatted `name/arity`). Empty for program-level operations —
    /// a recompile clears the per-predicate epochs wholesale.
    pub edb_epochs: Vec<(String, u64)>,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked little-endian reader over a record payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn str(&mut self) -> Option<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

impl WalRecord {
    /// Encodes the record payload (everything the frame checksum covers
    /// besides the sequence number).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.op.text().len());
        out.push(self.op.tag());
        put_str(&mut out, self.op.text());
        put_u64(&mut out, self.program_epoch);
        put_u32(&mut out, self.edb_epochs.len() as u32);
        for (pred, epoch) in &self.edb_epochs {
            put_str(&mut out, pred);
            put_u64(&mut out, *epoch);
        }
        out
    }

    /// Decodes a payload previously produced by
    /// [`encode_payload`](Self::encode_payload). `path` is for error
    /// context only.
    pub fn decode_payload(seq: u64, payload: &[u8], path: &str) -> Result<WalRecord, StorageError> {
        let corrupt = |detail: &str| StorageError::Corrupt {
            path: path.to_string(),
            detail: format!("record seq {seq}: {detail}"),
        };
        let mut r = Reader {
            buf: payload,
            pos: 0,
        };
        let tag = *r
            .take(1)
            .ok_or_else(|| corrupt("missing op tag"))?
            .first()
            .unwrap();
        let text = r.str().ok_or_else(|| corrupt("bad op text"))?;
        let op = match tag {
            1 => Op::AddFact(text),
            2 => Op::RetractFact(text),
            3 => Op::LoadRule(text),
            4 => Op::LoadProgram(text),
            5 => Op::Recompile,
            t => return Err(corrupt(&format!("unknown op tag {t}"))),
        };
        let program_epoch = r.u64().ok_or_else(|| corrupt("missing program epoch"))?;
        let n = r.u32().ok_or_else(|| corrupt("missing epoch count"))? as usize;
        // An absurd count means a misframed payload, not a huge record.
        if n > payload.len() {
            return Err(corrupt(&format!("implausible epoch count {n}")));
        }
        let mut edb_epochs = Vec::with_capacity(n);
        for _ in 0..n {
            let pred = r.str().ok_or_else(|| corrupt("bad epoch predicate"))?;
            let epoch = r.u64().ok_or_else(|| corrupt("missing epoch value"))?;
            edb_epochs.push((pred, epoch));
        }
        if r.pos != payload.len() {
            return Err(corrupt("trailing bytes after record payload"));
        }
        Ok(WalRecord {
            seq,
            op,
            program_epoch,
            edb_epochs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rec: &WalRecord) {
        let payload = rec.encode_payload();
        let back = WalRecord::decode_payload(rec.seq, &payload, "test").unwrap();
        assert_eq!(&back, rec);
    }

    #[test]
    fn records_roundtrip_through_the_payload_encoding() {
        roundtrip(&WalRecord {
            seq: 1,
            op: Op::AddFact("e(1, 2)".into()),
            program_epoch: 0,
            edb_epochs: vec![("e/2".into(), 3)],
        });
        roundtrip(&WalRecord {
            seq: 2,
            op: Op::LoadProgram("p(X) :- e(X, _).\ne(1, 2).".into()),
            program_epoch: 4,
            edb_epochs: vec![],
        });
        roundtrip(&WalRecord {
            seq: 3,
            op: Op::Recompile,
            program_epoch: 5,
            edb_epochs: vec![],
        });
        roundtrip(&WalRecord {
            seq: 4,
            op: Op::RetractFact("e(1, 2)".into()),
            program_epoch: 5,
            edb_epochs: vec![("e/2".into(), 1), ("f/1".into(), 9)],
        });
    }

    #[test]
    fn truncated_and_garbled_payloads_are_rejected() {
        let rec = WalRecord {
            seq: 7,
            op: Op::LoadRule("p(X) :- q(X).".into()),
            program_epoch: 2,
            edb_epochs: vec![("q/1".into(), 1)],
        };
        let payload = rec.encode_payload();
        for cut in 0..payload.len() {
            assert!(
                WalRecord::decode_payload(7, &payload[..cut], "test").is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
        let mut garbled = payload.clone();
        garbled[0] = 99;
        assert!(WalRecord::decode_payload(7, &garbled, "test").is_err());
    }
}
