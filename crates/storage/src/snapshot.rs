//! Atomic, schema-versioned snapshots.
//!
//! A snapshot is a full dump of the durable state — program text, EDB,
//! and the epoch vector — that lets recovery skip the WAL prefix it
//! covers. Writing is crash-atomic: the bytes go to a `.tmp` file, are
//! fsynced, renamed to `snap-<last_seq:016x>.db`, and the directory is
//! fsynced; a crash anywhere in that sequence leaves either the old
//! state or the new, never a half-written snapshot under the final name.
//! Loading walks snapshots newest-first and falls back past any that
//! fail validation (bad magic, unsupported schema version, checksum
//! mismatch, truncation) — the older snapshot plus a longer WAL suffix
//! reconstructs the same state.
//!
//! ## Format (schema version 1)
//!
//! ```text
//! CSNAP 1
//! last_seq <dec>
//! op_count <dec>
//! program_epoch <dec>
//! edb_epochs <n>
//! <pred>/<arity> <epoch>        (n lines)
//! program_bytes <len>
//! <exactly len bytes of loadable program text>
//! checksum <16 hex digits>
//! ```
//!
//! The checksum is FNV-1a 64 over everything before the `checksum` line.

use crate::{checksum, StorageError, SNAPSHOT_SCHEMA_VERSION};
use chainsplit_governor::Governor;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

/// The durable state a snapshot carries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotData {
    /// The highest WAL sequence number this snapshot covers (0 when the
    /// snapshot precedes any WAL record).
    pub last_seq: u64,
    /// Logical mutations applied up to and including `last_seq`.
    pub op_count: u64,
    /// The absolute program epoch at snapshot time.
    pub program_epoch: u64,
    /// Absolute per-predicate EDB epochs (`name/arity`, epoch), sorted.
    pub edb_epochs: Vec<(String, u64)>,
    /// Loadable program text (`DeductiveDb::dump`).
    pub program: String,
}

fn snapshot_path(dir: &Path, last_seq: u64) -> PathBuf {
    dir.join(format!("snap-{last_seq:016x}.db"))
}

/// Lists snapshot files in `dir`, newest (highest covered seq) first.
pub fn snapshot_files(dir: &Path) -> Result<Vec<PathBuf>, StorageError> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| StorageError::io(dir, e))?;
    for entry in entries {
        let path = entry.map_err(|e| StorageError::io(dir, e))?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("snap-") && name.ends_with(".db") {
            out.push(path);
        }
    }
    out.sort();
    out.reverse();
    Ok(out)
}

fn encode(data: &SnapshotData) -> Vec<u8> {
    let mut out = Vec::with_capacity(256 + data.program.len());
    out.extend_from_slice(format!("CSNAP {SNAPSHOT_SCHEMA_VERSION}\n").as_bytes());
    out.extend_from_slice(format!("last_seq {}\n", data.last_seq).as_bytes());
    out.extend_from_slice(format!("op_count {}\n", data.op_count).as_bytes());
    out.extend_from_slice(format!("program_epoch {}\n", data.program_epoch).as_bytes());
    out.extend_from_slice(format!("edb_epochs {}\n", data.edb_epochs.len()).as_bytes());
    for (pred, epoch) in &data.edb_epochs {
        out.extend_from_slice(format!("{pred} {epoch}\n").as_bytes());
    }
    out.extend_from_slice(format!("program_bytes {}\n", data.program.len()).as_bytes());
    out.extend_from_slice(data.program.as_bytes());
    let sum = checksum(&out);
    out.extend_from_slice(format!("checksum {sum:016x}\n").as_bytes());
    out
}

/// A line-oriented cursor over the snapshot header bytes.
struct Lines<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Lines<'a> {
    fn line(&mut self) -> Option<&'a str> {
        let rest = self.buf.get(self.pos..)?;
        let end = rest.iter().position(|&b| b == b'\n')?;
        self.pos += end + 1;
        std::str::from_utf8(&rest[..end]).ok()
    }

    /// Reads a `<key> <value>` line, returning the value.
    fn field(&mut self, key: &str) -> Option<&'a str> {
        let line = self.line()?;
        line.strip_prefix(key)?.strip_prefix(' ')
    }

    fn field_u64(&mut self, key: &str) -> Option<u64> {
        self.field(key)?.parse().ok()
    }
}

fn decode(bytes: &[u8], path: &str) -> Result<SnapshotData, StorageError> {
    let corrupt = |detail: String| StorageError::Corrupt {
        path: path.to_string(),
        detail,
    };
    let mut r = Lines { buf: bytes, pos: 0 };
    let version: u32 = r
        .field("CSNAP")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| corrupt("bad snapshot magic".into()))?;
    if version != SNAPSHOT_SCHEMA_VERSION {
        return Err(corrupt(format!(
            "unsupported snapshot schema version {version} (this build reads {SNAPSHOT_SCHEMA_VERSION})"
        )));
    }
    let last_seq = r
        .field_u64("last_seq")
        .ok_or_else(|| corrupt("bad last_seq".into()))?;
    let op_count = r
        .field_u64("op_count")
        .ok_or_else(|| corrupt("bad op_count".into()))?;
    let program_epoch = r
        .field_u64("program_epoch")
        .ok_or_else(|| corrupt("bad program_epoch".into()))?;
    let n = r
        .field_u64("edb_epochs")
        .ok_or_else(|| corrupt("bad edb_epochs count".into()))? as usize;
    if n > bytes.len() {
        return Err(corrupt(format!("implausible epoch count {n}")));
    }
    let mut edb_epochs = Vec::with_capacity(n);
    for _ in 0..n {
        let line = r
            .line()
            .ok_or_else(|| corrupt("missing epoch line".into()))?;
        let (pred, epoch) = line
            .rsplit_once(' ')
            .ok_or_else(|| corrupt(format!("bad epoch line {line:?}")))?;
        let epoch: u64 = epoch
            .parse()
            .map_err(|_| corrupt(format!("bad epoch value in {line:?}")))?;
        edb_epochs.push((pred.to_string(), epoch));
    }
    let len = r
        .field_u64("program_bytes")
        .ok_or_else(|| corrupt("bad program_bytes".into()))? as usize;
    let program_end = r
        .pos
        .checked_add(len)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| corrupt("truncated program text".into()))?;
    let program = std::str::from_utf8(&bytes[r.pos..program_end])
        .map_err(|_| corrupt("program text is not utf-8".into()))?
        .to_string();
    let expected = checksum(&bytes[..program_end]);
    let mut footer = Lines {
        buf: bytes,
        pos: program_end,
    };
    let stored = footer
        .field("checksum")
        .and_then(|v| u64::from_str_radix(v, 16).ok())
        .ok_or_else(|| corrupt("missing checksum footer".into()))?;
    if stored != expected {
        return Err(corrupt(format!(
            "checksum mismatch: stored {stored:016x}, computed {expected:016x}"
        )));
    }
    if footer.pos != bytes.len() {
        return Err(corrupt("trailing bytes after checksum".into()));
    }
    Ok(SnapshotData {
        last_seq,
        op_count,
        program_epoch,
        edb_epochs,
        program,
    })
}

/// Produces the damaged byte image an armed failpoint leaves on disk.
#[cfg(feature = "fault-inject")]
fn damaged(bytes: &[u8], fault: chainsplit_governor::faults::FsFault) -> Vec<u8> {
    use chainsplit_governor::faults::FsFault;
    match fault {
        FsFault::TornWrite => bytes[..bytes.len() / 2].to_vec(),
        FsFault::ShortWrite => bytes[..bytes.len() - 1].to_vec(),
        FsFault::CorruptChecksum => {
            let mut bad = bytes.to_vec();
            // Flip a checksum digit (the byte before the trailing newline).
            let at = bad.len() - 2;
            bad[at] = if bad[at] == b'0' { b'f' } else { b'0' };
            bad
        }
        FsFault::DuplicateRecord => {
            let mut twice = bytes.to_vec();
            twice.extend_from_slice(bytes);
            twice
        }
        FsFault::CrashBeforeRename | FsFault::CrashAfterRename => bytes.to_vec(),
    }
}

fn write_file_synced(path: &Path, bytes: &[u8]) -> Result<(), StorageError> {
    let mut f = File::create(path).map_err(|e| StorageError::io(path, e))?;
    f.write_all(bytes)
        .and_then(|()| f.sync_all())
        .map_err(|e| StorageError::io(path, e))
}

fn sync_dir(dir: &Path) -> Result<(), StorageError> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| StorageError::io(dir, e))
}

/// Handles an armed failpoint at a snapshot persistence point: leaves the
/// described damage and reports the simulated crash. The torn/short/
/// corrupt/duplicate kinds model a rename whose file data was never
/// flushed — the final name exists but holds a damaged image, which
/// recovery must reject and fall back past.
#[cfg(feature = "fault-inject")]
fn crash_at(
    point: &'static str,
    fault: chainsplit_governor::faults::FsFault,
    dir: &Path,
    final_path: &Path,
    tmp_path: &Path,
    bytes: &[u8],
) -> StorageError {
    use chainsplit_governor::faults::FsFault;
    let outcome = match fault {
        FsFault::CrashBeforeRename => {
            // Temp written and synced; the rename never happened.
            write_file_synced(tmp_path, bytes).err()
        }
        FsFault::CrashAfterRename => write_file_synced(tmp_path, bytes)
            .and_then(|()| {
                std::fs::rename(tmp_path, final_path).map_err(|e| StorageError::io(final_path, e))
            })
            .and_then(|()| sync_dir(dir))
            .err(),
        torn => {
            let _ = std::fs::remove_file(tmp_path);
            write_file_synced(final_path, &damaged(bytes, torn)).err()
        }
    };
    outcome.unwrap_or(StorageError::Crashed {
        point,
        fault: fault_name(fault),
    })
}

#[cfg(feature = "fault-inject")]
fn fault_name(fault: chainsplit_governor::faults::FsFault) -> &'static str {
    use chainsplit_governor::faults::FsFault;
    match fault {
        FsFault::TornWrite => "torn-write",
        FsFault::ShortWrite => "short-write",
        FsFault::CorruptChecksum => "corrupt-checksum",
        FsFault::CrashBeforeRename => "crash-before-rename",
        FsFault::CrashAfterRename => "crash-after-rename",
        FsFault::DuplicateRecord => "duplicate-record",
    }
}

/// Writes `data` atomically into `dir` and returns the snapshot path.
/// Charges the snapshot bytes to `gov`'s byte budget; a trip refuses
/// before anything is written. Two persistence points (`fault-inject`):
/// the temp write+fsync and the rename+dir-fsync.
pub fn write(dir: &Path, data: &SnapshotData, gov: &Governor) -> Result<PathBuf, StorageError> {
    let mut sp = chainsplit_trace::Span::enter_cat("snapshot-write", "wal");
    sp.set_attr("last_seq", data.last_seq);
    let bytes = encode(data);
    sp.set_attr("bytes", bytes.len());
    gov.add_bytes(bytes.len() as u64);
    gov.check("snapshot-write").map_err(StorageError::Budget)?;
    let final_path = snapshot_path(dir, data.last_seq);
    let tmp_path = final_path.with_extension("db.tmp");
    #[cfg(feature = "fault-inject")]
    if let Some(fault) = chainsplit_governor::faults::poll_fs() {
        return Err(crash_at(
            "snapshot-write",
            fault,
            dir,
            &final_path,
            &tmp_path,
            &bytes,
        ));
    }
    write_file_synced(&tmp_path, &bytes)?;
    #[cfg(feature = "fault-inject")]
    if let Some(fault) = chainsplit_governor::faults::poll_fs() {
        let _ = std::fs::remove_file(&tmp_path);
        return Err(crash_at(
            "snapshot-rename",
            fault,
            dir,
            &final_path,
            &tmp_path,
            &bytes,
        ));
    }
    std::fs::rename(&tmp_path, &final_path).map_err(|e| StorageError::io(&final_path, e))?;
    sync_dir(dir)?;
    Ok(final_path)
}

/// Loads the newest snapshot that validates, falling back past damaged
/// ones. Returns the snapshot together with how many candidates were
/// skipped as invalid.
pub fn load_newest(dir: &Path) -> Result<(Option<SnapshotData>, usize), StorageError> {
    let mut skipped = 0;
    for path in snapshot_files(dir)? {
        let bytes = std::fs::read(&path).map_err(|e| StorageError::io(&path, e))?;
        match decode(&bytes, &path.display().to_string()) {
            Ok(data) => return Ok((Some(data), skipped)),
            Err(_) => skipped += 1,
        }
    }
    Ok((None, skipped))
}

/// Deletes snapshots older than `keep_seq` (after a newer snapshot has
/// durably landed).
pub fn prune_older(dir: &Path, keep_seq: u64) -> Result<usize, StorageError> {
    let mut pruned = 0;
    for path in snapshot_files(dir)? {
        let seq = path
            .file_stem()
            .and_then(|s| s.to_str())
            .and_then(|s| s.strip_prefix("snap-"))
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .unwrap_or(u64::MAX);
        if seq < keep_seq {
            std::fs::remove_file(&path).map_err(|e| StorageError::io(&path, e))?;
            pruned += 1;
        }
    }
    Ok(pruned)
}

/// Removes stale `.tmp` files left by a crash between write and rename.
pub fn sweep_tmp(dir: &Path) -> Result<(), StorageError> {
    let entries = std::fs::read_dir(dir).map_err(|e| StorageError::io(dir, e))?;
    for entry in entries {
        let path = entry.map_err(|e| StorageError::io(dir, e))?.path();
        if path.extension().and_then(|e| e.to_str()) == Some("tmp") {
            std::fs::remove_file(&path).map_err(|e| StorageError::io(&path, e))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "chainsplit-snap-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample(last_seq: u64) -> SnapshotData {
        SnapshotData {
            last_seq,
            op_count: last_seq,
            program_epoch: 2,
            edb_epochs: vec![("e/2".into(), 3), ("edge label/2".into(), 1)],
            program: "p(X) :- e(X, _).\ne(1, 2).\n".into(),
        }
    }

    #[test]
    fn snapshots_roundtrip_and_survive_reload() {
        let dir = tmp_dir("roundtrip");
        let gov = Governor::new();
        write(&dir, &sample(7), &gov).unwrap();
        let (back, skipped) = load_newest(&dir).unwrap();
        assert_eq!(back, Some(sample(7)));
        assert_eq!(skipped, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_truncation_of_a_snapshot_is_rejected() {
        let bytes = encode(&sample(3));
        for cut in 0..bytes.len() {
            assert!(
                decode(&bytes[..cut], "test").is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
        assert!(decode(&bytes, "test").is_ok());
    }

    #[test]
    fn a_damaged_newest_snapshot_falls_back_to_the_older_one() {
        let dir = tmp_dir("fallback");
        let gov = Governor::new();
        write(&dir, &sample(3), &gov).unwrap();
        let newest = write(&dir, &sample(9), &gov).unwrap();
        // Flip one byte of the newest snapshot's program text.
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&newest, &bytes).unwrap();
        let (back, skipped) = load_newest(&dir).unwrap();
        assert_eq!(back, Some(sample(3)), "recovery must fall back");
        assert_eq!(skipped, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn newer_schema_versions_are_refused_not_misparsed() {
        let mut bytes = encode(&sample(1));
        // Forge a version bump; the checksum no longer matters because
        // the version check comes first.
        let header = format!("CSNAP {}\n", SNAPSHOT_SCHEMA_VERSION + 1);
        bytes.splice(0.."CSNAP 1\n".len(), header.bytes());
        let err = decode(&bytes, "test").unwrap_err();
        assert!(err.to_string().contains("schema version"));
    }

    #[test]
    fn pruning_keeps_the_newest_snapshot() {
        let dir = tmp_dir("prune");
        let gov = Governor::new();
        write(&dir, &sample(2), &gov).unwrap();
        write(&dir, &sample(5), &gov).unwrap();
        write(&dir, &sample(8), &gov).unwrap();
        assert_eq!(prune_older(&dir, 8).unwrap(), 2);
        let (back, _) = load_newest(&dir).unwrap();
        assert_eq!(back.map(|s| s.last_seq), Some(8));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
