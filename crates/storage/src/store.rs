//! The durable store: one directory holding WAL segments and snapshots,
//! opened into a crash-consistent recovery.
//!
//! [`Store::open`] is the recovery state machine (DESIGN.md §15):
//!
//! 1. sweep stale `.tmp` files (a crash between snapshot write and
//!    rename leaves one; it was never part of durable state),
//! 2. load the newest snapshot that validates, falling back past
//!    damaged ones,
//! 3. scan the WAL, truncating a torn tail in the final segment,
//! 4. keep the record suffix past the snapshot (`seq > last_seq`),
//!    refusing on a sequence gap — that would mean a pruned or missing
//!    segment, which is corruption, not a crash artifact,
//! 5. hand the snapshot + suffix to the caller for logical replay.
//!
//! The store itself never interprets record text; `chainsplit-core`
//! replays records through the facade's own mutation paths and
//! cross-checks the epoch stamps.

use crate::record::{Op, WalRecord};
use crate::snapshot::{self, SnapshotData};
use crate::wal::{self, Wal, DEFAULT_SEGMENT_BYTES};
use crate::StorageError;
use chainsplit_governor::Governor;
use std::path::{Path, PathBuf};

/// What [`Store::open`] recovered from disk.
pub struct Recovered {
    /// The newest valid snapshot, if any.
    pub snapshot: Option<SnapshotData>,
    /// WAL records past the snapshot, contiguous and in order, for the
    /// caller to replay.
    pub records: Vec<WalRecord>,
    pub report: RecoveryReport,
}

/// A summary of one recovery, for `:wal status` and the recovery oracle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sequence number the recovered snapshot covers (0 = no snapshot).
    pub snapshot_seq: u64,
    /// Damaged snapshots skipped before one validated.
    pub snapshots_skipped: usize,
    /// WAL records replayed past the snapshot.
    pub replayed_records: usize,
    /// Bytes cut from the final segment as a torn tail.
    pub truncated_bytes: u64,
    /// Logical mutations durable after recovery: the snapshot's count
    /// plus every replayed mutation record (markers excluded). A crash
    /// while persisting op *i* recovers to exactly `i` or `i + 1` — this
    /// field says which, so a twin can apply the identical prefix.
    pub ops_durable: u64,
}

/// A point-in-time description of the store, for `:wal status`.
#[derive(Clone, Debug)]
pub struct StoreStatus {
    pub dir: PathBuf,
    pub segments: usize,
    pub wal_bytes: u64,
    pub next_seq: u64,
    pub snapshot_seq: u64,
    pub ops_durable: u64,
}

impl std::fmt::Display for StoreStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dir {} | wal {} segment(s), {} byte(s), next seq {} | snapshot seq {} | {} op(s) durable",
            self.dir.display(),
            self.segments,
            self.wal_bytes,
            self.next_seq,
            self.snapshot_seq,
            self.ops_durable
        )
    }
}

/// An open durable store.
pub struct Store {
    dir: PathBuf,
    wal: Wal,
    snapshot_seq: u64,
    ops_durable: u64,
}

impl Store {
    /// Opens (creating if needed) the store at `dir` and recovers its
    /// durable state. Replay-time budget checks go through `gov`: a trip
    /// mid-recovery refuses to open rather than returning a half-open
    /// store.
    pub fn open(dir: &Path, gov: &Governor) -> Result<(Store, Recovered), StorageError> {
        let mut sp = chainsplit_trace::Span::enter_cat("wal-recover", "wal");
        std::fs::create_dir_all(dir).map_err(|e| StorageError::io(dir, e))?;
        snapshot::sweep_tmp(dir)?;
        let (snap, snapshots_skipped) = snapshot::load_newest(dir)?;
        let snapshot_seq = snap.as_ref().map_or(0, |s| s.last_seq);
        let mut scanned = wal::scan(dir)?;
        let mut records = Vec::new();
        let mut expected = snapshot_seq + 1;
        for rec in std::mem::take(&mut scanned.records) {
            if rec.seq <= snapshot_seq {
                continue; // Covered by the snapshot; kept only until pruning.
            }
            // Replayed bytes count against the byte budget like any other
            // evaluation work, so a bounded open stays bounded.
            gov.add_bytes((rec.op.text().len() + 48) as u64);
            gov.check("wal-replay").map_err(StorageError::Budget)?;
            if rec.seq != expected {
                return Err(StorageError::Corrupt {
                    path: dir.display().to_string(),
                    detail: format!(
                        "sequence gap in wal: expected seq {expected}, found {}",
                        rec.seq
                    ),
                });
            }
            expected += 1;
            records.push(rec);
        }
        let ops_durable = snap.as_ref().map_or(0, |s| s.op_count)
            + records.iter().filter(|r| r.op.is_mutation()).count() as u64;
        let report = RecoveryReport {
            snapshot_seq,
            snapshots_skipped,
            replayed_records: records.len(),
            truncated_bytes: scanned.truncated_bytes,
            ops_durable,
        };
        let wal = Wal::open(dir, &scanned, DEFAULT_SEGMENT_BYTES)?;
        sp.set_attr("snapshot_seq", snapshot_seq);
        sp.set_attr("replayed", records.len());
        sp.set_attr("truncated_bytes", report.truncated_bytes);
        Ok((
            Store {
                dir: dir.to_path_buf(),
                wal,
                snapshot_seq,
                ops_durable,
            },
            Recovered {
                snapshot: snap,
                records,
                report,
            },
        ))
    }

    /// Appends one operation (stamped with its post-op epochs) to the
    /// log and fsyncs. Returns the record's sequence number. Must be
    /// called *before* the operation mutates memory.
    pub fn append(
        &mut self,
        op: Op,
        program_epoch: u64,
        edb_epochs: Vec<(String, u64)>,
        gov: &Governor,
    ) -> Result<u64, StorageError> {
        let rec = WalRecord {
            seq: self.wal.next_seq,
            op,
            program_epoch,
            edb_epochs,
        };
        self.wal.append(&rec, gov)?;
        if rec.op.is_mutation() {
            self.ops_durable += 1;
        }
        Ok(rec.seq)
    }

    /// Writes a snapshot of the given state, then prunes WAL segments
    /// and older snapshots it covers. Pruning runs only after the
    /// snapshot has durably landed — a crash during the write leaves the
    /// previous snapshot and the full WAL suffix intact.
    pub fn write_snapshot(
        &mut self,
        program: String,
        program_epoch: u64,
        edb_epochs: Vec<(String, u64)>,
        gov: &Governor,
    ) -> Result<PathBuf, StorageError> {
        let data = SnapshotData {
            last_seq: self.wal.next_seq - 1,
            op_count: self.ops_durable,
            program_epoch,
            edb_epochs,
            program,
        };
        let path = snapshot::write(&self.dir, &data, gov)?;
        self.snapshot_seq = data.last_seq;
        self.wal.prune_through(data.last_seq)?;
        snapshot::prune_older(&self.dir, data.last_seq)?;
        Ok(path)
    }

    pub fn status(&self) -> StoreStatus {
        StoreStatus {
            dir: self.dir.clone(),
            segments: self.wal.segments,
            wal_bytes: self.wal.live_bytes,
            next_seq: self.wal.next_seq,
            snapshot_seq: self.snapshot_seq,
            ops_durable: self.ops_durable,
        }
    }

    /// The sequence number the next appended record will receive.
    pub fn next_seq(&self) -> u64 {
        self.wal.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "chainsplit-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn add(n: u64) -> Op {
        Op::AddFact(format!("e({n}, {})", n + 1))
    }

    #[test]
    fn an_empty_directory_opens_empty() {
        let dir = tmp_dir("empty");
        let gov = Governor::new();
        let (store, rec) = Store::open(&dir, &gov).unwrap();
        assert!(rec.snapshot.is_none());
        assert!(rec.records.is_empty());
        assert_eq!(rec.report.ops_durable, 0);
        assert_eq!(store.next_seq(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn appended_ops_recover_in_order_across_reopen() {
        let dir = tmp_dir("reopen");
        let gov = Governor::new();
        let (mut store, _) = Store::open(&dir, &gov).unwrap();
        for n in 1..=5 {
            let epochs = vec![("e/2".into(), n)];
            store.append(add(n), 0, epochs, &gov).unwrap();
        }
        store.append(Op::Recompile, 1, vec![], &gov).unwrap();
        drop(store);
        let (store, rec) = Store::open(&dir, &gov).unwrap();
        assert_eq!(rec.records.len(), 6);
        assert_eq!(rec.records[2].op, add(3));
        assert_eq!(rec.report.ops_durable, 5, "the marker is not a mutation");
        assert_eq!(store.next_seq(), 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_snapshot_absorbs_the_wal_prefix() {
        let dir = tmp_dir("absorb");
        let gov = Governor::new();
        let (mut store, _) = Store::open(&dir, &gov).unwrap();
        for n in 1..=3 {
            store
                .append(add(n), 0, vec![("e/2".into(), n)], &gov)
                .unwrap();
        }
        store
            .write_snapshot(
                "e(1, 2).\ne(2, 3).\ne(3, 4).\n".into(),
                0,
                vec![("e/2".into(), 3)],
                &gov,
            )
            .unwrap();
        store
            .append(add(4), 0, vec![("e/2".into(), 4)], &gov)
            .unwrap();
        drop(store);
        let (_, rec) = Store::open(&dir, &gov).unwrap();
        let snap = rec.snapshot.expect("snapshot recovered");
        assert_eq!(snap.last_seq, 3);
        assert_eq!(snap.op_count, 3);
        assert_eq!(rec.records.len(), 1, "only the suffix replays");
        assert_eq!(rec.records[0].seq, 4);
        assert_eq!(rec.report.ops_durable, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_missing_interior_segment_refuses_to_open() {
        let dir = tmp_dir("gap");
        std::fs::create_dir_all(&dir).unwrap();
        let gov = Governor::new();
        // A 1-byte segment limit puts every record in its own segment.
        let scanned = wal::scan(&dir).unwrap();
        let mut w = Wal::open(&dir, &scanned, 1).unwrap();
        for seq in 1..=3 {
            let rec = WalRecord {
                seq,
                op: add(seq),
                program_epoch: 0,
                edb_epochs: vec![],
            };
            w.append(&rec, &gov).unwrap();
        }
        drop(w);
        let segs = wal::segment_files(&dir).unwrap();
        assert!(segs.len() >= 3);
        // Losing an interior segment is not a crash artifact — a crash
        // only ever tears the tail. Recovery must refuse, not silently
        // replay around the hole.
        std::fs::remove_file(&segs[1]).unwrap();
        match Store::open(&dir, &gov) {
            Err(StorageError::Corrupt { detail, .. }) => {
                assert!(detail.contains("sequence gap"), "got: {detail}")
            }
            Ok(_) => panic!("a sequence gap must refuse to open"),
            Err(e) => panic!("unexpected error: {e}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_budget_trip_is_a_clean_refusal() {
        let dir = tmp_dir("budget");
        let gov = Governor::new();
        let (mut store, _) = Store::open(&dir, &gov).unwrap();
        for n in 1..=10 {
            store.append(add(n), 0, vec![], &gov).unwrap();
        }
        drop(store);
        let tight = Governor::new();
        tight.set_budget(chainsplit_governor::Budget {
            max_bytes_est: Some(1),
            ..Default::default()
        });
        tight.begin_query();
        // Drive the byte counter over the limit, as replayed record
        // bytes would.
        tight.add_bytes(100);
        match Store::open(&dir, &tight) {
            Err(StorageError::Budget(trip)) => {
                assert_eq!(trip.resource, chainsplit_governor::Resource::Bytes);
            }
            Ok(_) => panic!("a tripped budget must refuse to open"),
            Err(e) => panic!("unexpected error: {e}"),
        }
        // The same directory still opens fine with an unlimited governor.
        let (_, rec) = Store::open(&dir, &Governor::new()).unwrap();
        assert_eq!(rec.records.len(), 10);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
